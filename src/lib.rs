//! # arc-dr — ARC: Warp-level Adaptive Atomic Reduction, reproduced
//!
//! A from-scratch Rust reproduction of *"ARC: Warp-level Adaptive Atomic
//! Reduction in GPUs to Accelerate Differentiable Rendering"*
//! (ASPLOS '25). This facade crate re-exports the whole stack:
//!
//! * [`trace`] — the warp-level kernel-trace IR;
//! * [`arc`] — the ARC primitive: transactions, warp-level reduction
//!   algorithms (serialized / butterfly), the balancing policy, the
//!   ARC-SW and CCCL trace rewrites, the threshold auto-tuner, and the
//!   area model;
//! * [`sim`] — the cycle-level GPU simulator with baseline, ARC-HW,
//!   LAB, LAB-ideal and PHI atomic paths;
//! * [`render`] — the differentiable rendering substrates (3DGS-style
//!   Gaussian splatting, NvDiffRec-style cubemap learning, Pulsar-style
//!   spheres) and their trace generators;
//! * [`workloads`] — the paper's Table-2 workload registry, the
//!   pagerank contrast workload, and the experiment runner. Workloads
//!   build multi-kernel [`workloads::FrameTrace`] pipelines of named,
//!   role-tagged stages — the Table-2 entries as legacy
//!   forward/loss/gradcomp triples, plus `3D-TB`, the tile-binned
//!   3DGS frame (radix sort / scan / bin as traced kernels).
//!
//! # Quickstart
//!
//! ```
//! use arc_dr::workloads::{run_gradcomp, spec, Technique};
//! use arc_dr::sim::GpuConfig;
//!
//! // Build a (scaled-down) 3DGS workload and measure ARC-HW's speedup.
//! let traces = spec("3D-LE").expect("known workload").scaled(0.2).build();
//! let cfg = GpuConfig::tiny();
//! let base = run_gradcomp(&cfg, Technique::Baseline, traces.gradcomp()).unwrap();
//! let arc = run_gradcomp(&cfg, Technique::ArcHw, traces.gradcomp()).unwrap();
//! assert!(arc.cycles < base.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The warp-level kernel-trace IR (re-export of `warp-trace`).
pub mod trace {
    pub use warp_trace::*;
}

/// The ARC primitive (re-export of `arc-core`).
pub mod arc {
    pub use arc_core::*;
}

/// The cycle-level GPU simulator (re-export of `gpu-sim`).
pub mod sim {
    pub use gpu_sim::*;
}

/// Differentiable rendering substrates (re-export of `diffrender`).
pub mod render {
    pub use diffrender::*;
}

/// Workload registry and experiment runner (re-export of
/// `arc-workloads`).
pub mod workloads {
    pub use arc_workloads::*;
}

#!/usr/bin/env bash
# Repo CI: formatting, lints, release build, the tier-1 test suite with
# the parallel harness enabled, and a determinism matrix asserting that
# simulation results (with telemetry off AND on) are bit-identical under
# every host-parallelism combination, with the event-driven fast-forward
# engine on and off (ARC_FF), and across epoch-synchronization modes
# (ARC_SIM_EPOCH: per-cycle, fixed-length, and the auto default).
#
# rustfmt and clippy are optional components: when a toolchain ships
# without them the corresponding step warns and is skipped instead of
# failing the run.
set -euo pipefail
cd "$(dirname "$0")/.."

if cargo fmt --version >/dev/null 2>&1; then
  echo "== cargo fmt --check =="
  cargo fmt --all -- --check
else
  echo "== cargo fmt not installed; skipping format check =="
fi

if cargo clippy --version >/dev/null 2>&1; then
  echo "== cargo clippy (-D warnings) =="
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "== cargo clippy not installed; skipping lints =="
fi

echo "== cargo build --release =="
cargo build --release

echo "== cargo doc (-D warnings) =="
# API docs must build clean: broken intra-doc links (e.g. a registry
# item renamed without its references) fail CI here.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test (ARC_JOBS=2) =="
ARC_JOBS=2 cargo test -q

echo "== conformance suite (fuzzer + oracle + metamorphic invariants) =="
# Fixed seed so a CI failure is reproducible verbatim on any machine:
#   CONFORMANCE_SEED=0xA12C2025 cargo test -p conformance
# Shrunk minimal reproducers for any failure land in
# target/conformance-failures/ (uploaded as a CI artifact).
CONFORMANCE_SEED=0xA12C2025 cargo test -q -p conformance

echo "== determinism matrix (ARC_JOBS x ARC_SIM_WORKERS x ARC_FF) =="
# The probe simulates a fixed cell grid with telemetry off and on and
# prints one canonical line per cell; every host-parallelism combination
# must produce byte-identical output. The ARC_FF axis keeps the
# fast-forward escape hatch honest: the naive cycle loop (ARC_FF=0) must
# stay byte-identical to the event-driven one (ARC_FF=1, the default).
outdir="$(mktemp -d)"
trap 'rm -rf "$outdir"' EXIT
baseline="$outdir/det_1_1_1.txt"
ARC_JOBS=1 ARC_SIM_WORKERS=1 ARC_FF=1 ./target/release/determinism > "$baseline"
for ff in 1 0; do
  for jobs in 2 8; do
    for workers in 1 2 8; do
      out="$outdir/det_${jobs}_${workers}_${ff}.txt"
      ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers ARC_FF=$ff \
        ./target/release/determinism > "$out"
      if ! cmp -s "$baseline" "$out"; then
        echo "determinism matrix FAILED: ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers ARC_FF=$ff diverges:"
        diff "$baseline" "$out" || true
        exit 1
      fi
      echo "ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers ARC_FF=$ff: identical"
    done
  done
done
# The escape hatch alone, serial: the smallest FF-off configuration.
out="$outdir/det_1_1_0.txt"
ARC_JOBS=1 ARC_SIM_WORKERS=1 ARC_FF=0 ./target/release/determinism > "$out"
if ! cmp -s "$baseline" "$out"; then
  echo "determinism matrix FAILED: ARC_FF=0 serial diverges:"
  diff "$baseline" "$out" || true
  exit 1
fi
echo "ARC_JOBS=1 ARC_SIM_WORKERS=1 ARC_FF=0: identical"

echo "== determinism matrix (ARC_SIM_EPOCH axis) =="
# The baseline above already runs the default epoch mode (auto); the
# epoch axis pins the per-cycle escape hatch (1), a fixed cap (4), and
# an explicit auto against it, crossed with worker counts and the
# fast-forward toggle. All byte-identical: the epoch-safety analysis
# may only change wall-clock time, never output.
for epoch in 1 4 auto; do
  for workers in 1 8; do
    for ff in 1 0; do
      out="$outdir/det_e${epoch}_${workers}_${ff}.txt"
      ARC_SIM_EPOCH=$epoch ARC_JOBS=2 ARC_SIM_WORKERS=$workers ARC_FF=$ff \
        ./target/release/determinism > "$out"
      if ! cmp -s "$baseline" "$out"; then
        echo "determinism matrix FAILED: ARC_SIM_EPOCH=$epoch ARC_SIM_WORKERS=$workers ARC_FF=$ff diverges:"
        diff "$baseline" "$out" || true
        exit 1
      fi
      echo "ARC_SIM_EPOCH=$epoch ARC_SIM_WORKERS=$workers ARC_FF=$ff: identical"
    done
  done
done

echo "CI OK"

#!/usr/bin/env bash
# Repo CI: formatting, lints, release build, the tier-1 test suite with
# the parallel harness enabled, and a determinism matrix asserting that
# simulation results (with telemetry off AND on) are bit-identical under
# every host-parallelism combination.
#
# rustfmt and clippy are optional components: when a toolchain ships
# without them the corresponding step warns and is skipped instead of
# failing the run.
set -euo pipefail
cd "$(dirname "$0")/.."

if cargo fmt --version >/dev/null 2>&1; then
  echo "== cargo fmt --check =="
  cargo fmt --all -- --check
else
  echo "== cargo fmt not installed; skipping format check =="
fi

if cargo clippy --version >/dev/null 2>&1; then
  echo "== cargo clippy (-D warnings) =="
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "== cargo clippy not installed; skipping lints =="
fi

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (ARC_JOBS=2) =="
ARC_JOBS=2 cargo test -q

echo "== conformance suite (fuzzer + oracle + metamorphic invariants) =="
# Fixed seed so a CI failure is reproducible verbatim on any machine:
#   CONFORMANCE_SEED=0xA12C2025 cargo test -p conformance
# Shrunk minimal reproducers for any failure land in
# target/conformance-failures/ (uploaded as a CI artifact).
CONFORMANCE_SEED=0xA12C2025 cargo test -q -p conformance

echo "== determinism matrix (ARC_JOBS x ARC_SIM_WORKERS) =="
# The probe simulates a fixed cell grid with telemetry off and on and
# prints one canonical line per cell; every host-parallelism combination
# must produce byte-identical output.
outdir="$(mktemp -d)"
trap 'rm -rf "$outdir"' EXIT
baseline="$outdir/det_1_1.txt"
ARC_JOBS=1 ARC_SIM_WORKERS=1 ./target/release/determinism > "$baseline"
for jobs in 2 8; do
  for workers in 1 2 8; do
    out="$outdir/det_${jobs}_${workers}.txt"
    ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers ./target/release/determinism > "$out"
    if ! cmp -s "$baseline" "$out"; then
      echo "determinism matrix FAILED: ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers diverges:"
      diff "$baseline" "$out" || true
      exit 1
    fi
    echo "ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers: identical"
  done
done

echo "CI OK"

#!/usr/bin/env bash
# Repo CI, runnable whole or per step:
#
#   scripts/ci.sh                 run every step (the full pipeline)
#   scripts/ci.sh build test      run only the named steps, in order
#
# Steps:
#   fmt          cargo fmt --check (skipped when rustfmt is absent)
#   clippy       cargo clippy -D warnings (skipped when clippy is absent)
#   build        cargo build --release, failing on any compiler warning
#   doc          cargo doc with -D warnings (broken intra-doc links fail)
#   test         tier-1 test suite with the parallel harness enabled
#   conformance  fuzzer + oracle + metamorphic invariants, fixed seed
#   determinism  byte-identity matrix over ARC_JOBS x ARC_SIM_WORKERS x
#                ARC_FF x ARC_SIM_EPOCH
#   store        result-store round-trip: the fixed `simserved sweep`
#                grid runs cold then warm against a temp store; stdout
#                must be byte-identical, the warm pass must be all hits
#                and >= 5x faster
#   frame        multi-kernel frame pipeline: the tile-binned 3DGS
#                structural tests (sorted-key monotonicity, bin-edge /
#                scan cross-check, image == functional rasterizer), the
#                per-stage conformance battery, the harness end-to-end
#                + stage-keyed store round-trip, and the legacy
#                bit-identity golden
#   passes       trace-IR optimizer pipeline: the pass-equivalence
#                conformance subset (fused == composed, cache hits
#                pointer-equal and byte-invisible), a determinism matrix
#                cell with ARC_PASSES=all (byte-identical across host
#                parallelism, observably different from the baseline),
#                the ARC_PASSES-unset / ARC_PASSES=none default-off
#                pins, and the perf_smoke pass-overhead gate (gradcomp
#                wall_on_s/wall_off_s vs the recorded baseline) against
#                a scratch copy of the trajectory
#
# `determinism`, `store`, and `passes` need release binaries and build
# the ones they use, so each step also works standalone on a fresh
# checkout.
#
# rustfmt and clippy are optional components: when a toolchain ships
# without them the corresponding step warns and is skipped instead of
# failing the run.
set -euo pipefail
cd "$(dirname "$0")/.."

TMPROOT="$(mktemp -d)"
trap 'rm -rf "$TMPROOT"' EXIT

step_fmt() {
  if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check =="
    cargo fmt --all -- --check
  else
    echo "== cargo fmt not installed; skipping format check =="
  fi
}

step_clippy() {
  if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy (-D warnings) =="
    cargo clippy --workspace --all-targets -- -D warnings
  else
    echo "== cargo clippy not installed; skipping lints =="
  fi
}

step_build() {
  echo "== cargo build --release (must be warning-clean) =="
  local log="$TMPROOT/build.log"
  cargo build --release 2>&1 | tee "$log"
  local warnings
  warnings=$(grep -c '^warning' "$log" || true)
  if [ "$warnings" -ne 0 ]; then
    echo "build emitted $warnings warning line(s); the release build must be warning-clean"
    exit 1
  fi
}

step_doc() {
  echo "== cargo doc (-D warnings) =="
  # API docs must build clean: broken intra-doc links (e.g. a registry
  # item renamed without its references) fail CI here.
  RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
}

step_test() {
  echo "== cargo test (ARC_JOBS=2) =="
  ARC_JOBS=2 cargo test -q
}

step_conformance() {
  echo "== conformance suite (fuzzer + oracle + metamorphic invariants) =="
  # Fixed seed so a CI failure is reproducible verbatim on any machine:
  #   CONFORMANCE_SEED=0xA12C2025 cargo test -p conformance
  # Shrunk minimal reproducers for any failure land in
  # target/conformance-failures/ (uploaded as a CI artifact).
  CONFORMANCE_SEED=0xA12C2025 cargo test -q -p conformance
}

step_determinism() {
  cargo build --release -q -p arc-bench --bin determinism

  echo "== determinism matrix (ARC_JOBS x ARC_SIM_WORKERS x ARC_FF) =="
  # The probe simulates a fixed cell grid with telemetry off and on and
  # prints one canonical line per cell; every host-parallelism
  # combination must produce byte-identical output. The ARC_FF axis
  # keeps the fast-forward escape hatch honest: the naive cycle loop
  # (ARC_FF=0) must stay byte-identical to the event-driven one
  # (ARC_FF=1, the default).
  local outdir="$TMPROOT/determinism"
  mkdir -p "$outdir"
  local baseline="$outdir/det_1_1_1.txt"
  ARC_JOBS=1 ARC_SIM_WORKERS=1 ARC_FF=1 ./target/release/determinism > "$baseline"
  local ff jobs workers out
  for ff in 1 0; do
    for jobs in 2 8; do
      for workers in 1 2 8; do
        out="$outdir/det_${jobs}_${workers}_${ff}.txt"
        ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers ARC_FF=$ff \
          ./target/release/determinism > "$out"
        if ! cmp -s "$baseline" "$out"; then
          echo "determinism matrix FAILED: ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers ARC_FF=$ff diverges:"
          diff "$baseline" "$out" || true
          exit 1
        fi
        echo "ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers ARC_FF=$ff: identical"
      done
    done
  done
  # The escape hatch alone, serial: the smallest FF-off configuration.
  out="$outdir/det_1_1_0.txt"
  ARC_JOBS=1 ARC_SIM_WORKERS=1 ARC_FF=0 ./target/release/determinism > "$out"
  if ! cmp -s "$baseline" "$out"; then
    echo "determinism matrix FAILED: ARC_FF=0 serial diverges:"
    diff "$baseline" "$out" || true
    exit 1
  fi
  echo "ARC_JOBS=1 ARC_SIM_WORKERS=1 ARC_FF=0: identical"

  echo "== determinism matrix (ARC_SIM_EPOCH axis) =="
  # The baseline above already runs the default epoch mode (auto); the
  # epoch axis pins the per-cycle escape hatch (1), a fixed cap (4), and
  # an explicit auto against it, crossed with worker counts and the
  # fast-forward toggle. All byte-identical: the epoch-safety analysis
  # may only change wall-clock time, never output.
  local epoch
  for epoch in 1 4 auto; do
    for workers in 1 8; do
      for ff in 1 0; do
        out="$outdir/det_e${epoch}_${workers}_${ff}.txt"
        ARC_SIM_EPOCH=$epoch ARC_JOBS=2 ARC_SIM_WORKERS=$workers ARC_FF=$ff \
          ./target/release/determinism > "$out"
        if ! cmp -s "$baseline" "$out"; then
          echo "determinism matrix FAILED: ARC_SIM_EPOCH=$epoch ARC_SIM_WORKERS=$workers ARC_FF=$ff diverges:"
          diff "$baseline" "$out" || true
          exit 1
        fi
        echo "ARC_SIM_EPOCH=$epoch ARC_SIM_WORKERS=$workers ARC_FF=$ff: identical"
      done
    done
  done
}

step_store() {
  cargo build --release -q -p sim-service --bin simserved

  echo "== result store round-trip (simserved sweep, cold vs warm) =="
  # The fixed sweep grid runs twice against a fresh temp store. The
  # second pass must (a) print byte-identical rows — a cache hit may
  # never change results — (b) serve every cell from the store, and
  # (c) be at least 5x faster than the cold pass, the whole point of
  # persisting results.
  local storedir="$TMPROOT/store"
  local cold="$TMPROOT/sweep-cold" warm="$TMPROOT/sweep-warm"
  ./target/release/simserved sweep --store "$storedir" --scale 1.0 --jobs 2 \
    > "$cold.out" 2> "$cold.err"
  ./target/release/simserved sweep --store "$storedir" --scale 1.0 --jobs 2 \
    > "$warm.out" 2> "$warm.err"

  if ! cmp -s "$cold.out" "$warm.out"; then
    echo "store round-trip FAILED: warm sweep rows differ from cold:"
    diff "$cold.out" "$warm.out" || true
    exit 1
  fi
  echo "cold and warm sweep rows are byte-identical ($(wc -l < "$cold.out") cells)"

  # The store must not be poisoned by its own writes.
  ./target/release/simserved fsck --store "$storedir" | tee "$TMPROOT/fsck.out"
  if ! grep -q ' 0 removed' "$TMPROOT/fsck.out"; then
    echo "store round-trip FAILED: fsck removed entries from a freshly written store"
    exit 1
  fi

  grep '^sweep-wall-seconds ' "$cold.err" "$warm.err"
  local cold_s warm_s warm_misses
  cold_s=$(awk '/^sweep-wall-seconds/{print $2}' "$cold.err")
  warm_s=$(awk '/^sweep-wall-seconds/{print $2}' "$warm.err")
  warm_misses=$(awk '/^sweep-wall-seconds/{print $6}' "$warm.err")
  if [ "$warm_misses" != "0" ]; then
    echo "store round-trip FAILED: warm sweep recorded $warm_misses misses (want 0)"
    exit 1
  fi
  if ! awk -v c="$cold_s" -v w="$warm_s" \
      'BEGIN { exit (w > 0 && c / w >= 5.0) ? 0 : 1 }'; then
    echo "store round-trip FAILED: warm pass ${warm_s}s vs cold ${cold_s}s — want >= 5x speedup"
    exit 1
  fi
  awk -v c="$cold_s" -v w="$warm_s" \
    'BEGIN { printf "warm sweep %.3fs vs cold %.3fs: %.1fx\n", w, c, c / w }'
}

step_frame() {
  echo "== frame pipeline (tile-binned 3DGS structural tests) =="
  # Sorted-key monotonicity, the bin-edge / exclusive-scan cross-check,
  # and the tile-binned image matching the functional rasterizer all
  # live in the primitives module's unit tests.
  cargo test -q -p diffrender --lib primitives

  echo "== frame pipeline (per-stage conformance battery) =="
  # Every kernel of the 3D-TB frame through the functional oracle and
  # the metamorphic simulator invariants.
  CONFORMANCE_SEED=0xA12C2025 cargo test -q -p conformance --test frame_stages

  echo "== frame pipeline (harness end-to-end + stage-keyed store) =="
  cargo test -q -p arc-bench --test frame_pipeline

  echo "== frame pipeline (legacy three-stage bit-identity golden) =="
  cargo test -q -p arc-bench --test legacy_goldens
}

step_passes() {
  cargo build --release -q -p arc-bench --bin determinism

  echo "== pass-equivalence conformance subset =="
  # The full battery runs the invariant over every fuzzed trace in the
  # conformance step; this is the fast targeted slice — one case per
  # fuzz shape (including loop-heavy) plus a stream sample.
  CONFORMANCE_SEED=0xA12C2025 cargo test -q -p conformance --test pass_equivalence

  echo "== determinism matrix (ARC_PASSES axis) =="
  local outdir="$TMPROOT/passes"
  mkdir -p "$outdir"
  local plain="$outdir/det_plain.txt"
  ARC_JOBS=1 ARC_SIM_WORKERS=1 ./target/release/determinism > "$plain"

  # Default-off pins: unset and `none` are byte-identical to each other
  # and (by construction: the empty pipeline is Cow::Borrowed) to any
  # build without the pass module at all.
  local none="$outdir/det_none.txt"
  ARC_PASSES=none ARC_JOBS=1 ARC_SIM_WORKERS=1 ./target/release/determinism > "$none"
  if ! cmp -s "$plain" "$none"; then
    echo "passes matrix FAILED: ARC_PASSES=none diverges from unset:"
    diff "$plain" "$none" || true
    exit 1
  fi
  echo "ARC_PASSES=none == unset: identical"

  # ARC_PASSES=all is deterministic in itself across host parallelism.
  local baseline="$outdir/det_all_1_1.txt"
  ARC_PASSES=all ARC_JOBS=1 ARC_SIM_WORKERS=1 ./target/release/determinism > "$baseline"
  local jobs workers out
  for jobs in 2 8; do
    for workers in 1 8; do
      out="$outdir/det_all_${jobs}_${workers}.txt"
      ARC_PASSES=all ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers \
        ./target/release/determinism > "$out"
      if ! cmp -s "$baseline" "$out"; then
        echo "passes matrix FAILED: ARC_PASSES=all ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers diverges:"
        diff "$baseline" "$out" || true
        exit 1
      fi
      echo "ARC_PASSES=all ARC_JOBS=$jobs ARC_SIM_WORKERS=$workers: identical"
    done
  done

  # The pipeline must actually do something on these workloads —
  # identical output would mean the knob is silently dead.
  if cmp -s "$plain" "$baseline"; then
    echo "passes matrix FAILED: ARC_PASSES=all output is identical to the baseline"
    exit 1
  fi
  echo "ARC_PASSES=all changes the probe output (pipeline is live)"

  echo "== pass-overhead perf gate (perf_smoke --gate, scratch trajectory) =="
  # perf_smoke's gate includes the pass-overhead axis: each passes
  # workload's wall_on_s/wall_off_s ratio must stay within tolerance of
  # the recorded baseline's. Gate against a scratch copy so this step
  # never mutates the checked-in trajectory (bench_gate.sh does that
  # deliberately, once, at the end of the pipeline). With no comparable
  # baseline (different core count) the gate records-and-passes.
  cargo build --release -q -p arc-bench --bin perf_smoke
  local bench="$TMPROOT/bench_passes.json"
  if [ -f BENCH_parallel_sim.json ]; then
    cp BENCH_parallel_sim.json "$bench"
  fi
  ./target/release/perf_smoke \
    --scale "${ARC_BENCH_SCALE:-0.35}" --jobs "${ARC_BENCH_JOBS:-2}" \
    --gate "${ARC_BENCH_TOLERANCE:-0.2}" --out "$bench"
}

usage() {
  echo "usage: scripts/ci.sh [fmt|clippy|build|doc|test|conformance|determinism|store|frame|passes|all]..." >&2
  exit 2
}

steps=("$@")
if [ "${#steps[@]}" -eq 0 ]; then
  steps=(all)
fi
for s in "${steps[@]}"; do
  case "$s" in
    fmt) step_fmt ;;
    clippy) step_clippy ;;
    build) step_build ;;
    doc) step_doc ;;
    test) step_test ;;
    conformance) step_conformance ;;
    determinism) step_determinism ;;
    store) step_store ;;
    frame) step_frame ;;
    passes) step_passes ;;
    all)
      step_fmt
      step_clippy
      step_build
      step_doc
      step_test
      step_conformance
      step_determinism
      step_store
      step_frame
      step_passes
      ;;
    *) usage ;;
  esac
done
echo "CI OK"

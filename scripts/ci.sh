#!/usr/bin/env bash
# Repo CI: formatting, lints, release build, and the tier-1 test suite
# with the parallel harness enabled (ARC_JOBS=2 exercises the job pool
# even on single-core runners; results are identical at any job count).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (ARC_JOBS=2) =="
ARC_JOBS=2 cargo test -q

echo "CI OK"

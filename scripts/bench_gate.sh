#!/usr/bin/env bash
# Perf-regression gate: runs the perf_smoke throughput benchmark and
# compares simulated cycles/second against the most recent comparable
# sample recorded in BENCH_parallel_sim.json (same scale, jobs, and
# core count). Throughput more than TOLERANCE below the baseline — at
# either parallelism level, or on any fast-forward workload's FF-on
# cycles/second (the number every consumer sees, since ARC_FF defaults
# on) — fails the gate (exit 1), as does any passes workload whose
# pass overhead (wall_on_s/wall_off_s) grew more than TOLERANCE over
# the baseline's ratio; otherwise the fresh sample, including
# per-workload skip ratios, lane-skip ratios, FF-on/FF-off wall-clock
# ratios, and pass-memoization amortization, is appended so the file
# accumulates a perf trajectory across PRs.
#
# Environment knobs:
#   ARC_BENCH_TOLERANCE  fractional tolerance (default 0.2 = 20%)
#   ARC_BENCH_SCALE      workload scale        (default 0.35, matching
#                        the recorded baseline)
#   ARC_BENCH_JOBS       parallel job count    (default 2)
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${ARC_BENCH_TOLERANCE:-0.2}"
SCALE="${ARC_BENCH_SCALE:-0.35}"
JOBS="${ARC_BENCH_JOBS:-2}"

echo "== perf gate: scale $SCALE, jobs $JOBS, tolerance $TOLERANCE =="
cargo build --release -p arc-bench --bin perf_smoke
if ! ./target/release/perf_smoke \
    --scale "$SCALE" --jobs "$JOBS" --gate "$TOLERANCE" \
    --out BENCH_parallel_sim.json; then
  # GitHub Actions annotation: surfaces the regression on the PR's
  # checks tab without digging through the job log. Harmless noise when
  # running locally.
  echo "::error title=perf-regression gate::simulated throughput fell more than ${TOLERANCE} below the recorded baseline (scale ${SCALE}, jobs ${JOBS}); see the perf_smoke output in this step's log"
  exit 1
fi
echo "perf gate OK"

//! Reproduces the paper's workload characterization (§3.1 and §5.6):
//! differentiable rendering has extreme intra-warp atomic locality,
//! graph analytics has essentially none — which is why ARC targets the
//! former and bypasses on the latter.
//!
//! ```text
//! cargo run --release --example atomic_locality
//! ```

use arc_dr::trace::TraceStats;
use arc_dr::workloads::pagerank::{pagerank_trace, Graph};
use arc_dr::workloads::spec;

fn main() {
    println!(
        "{:<22} {:>16} {:>14} {:>12}",
        "workload", "same-addr(>=2ln)", "mean active", "atomics"
    );

    // Rendering workloads: one per application class, scaled for speed.
    for id in ["3D-PR", "NV-LE", "PS-SL"] {
        let traces = spec(id).expect("Table-2 id").scaled(0.4).build();
        let stats = TraceStats::compute(traces.gradcomp());
        println!(
            "{:<22} {:>15.1}% {:>14.1} {:>12}",
            id,
            100.0 * stats.same_address_multi_fraction(),
            stats.mean_active_lanes(),
            stats.atomic_requests
        );
    }

    // The Pannotia-style pagerank contrast (paper §5.6).
    let graph = Graph::power_law(4000, 10.0, 7);
    let rank = vec![1.0 / 4000.0; 4000];
    let trace = pagerank_trace(&graph, &rank, 0.85);
    let stats = TraceStats::compute(&trace);
    println!(
        "{:<22} {:>15.2}% {:>14.1} {:>12}",
        "pagerank (Pannotia)",
        100.0 * stats.same_address_multi_fraction(),
        stats.mean_active_lanes(),
        stats.atomic_requests
    );

    println!(
        "\nThe paper measures ~99% same-address warps for rendering and \
         <0.1% for pagerank (§3.1, §5.6):\nARC's warp-level reduction \
         only pays off when threads of a warp update the same parameter."
    );
}

//! The automatic balancing-threshold tuner (paper §5.5.3) in action:
//! profiles one gradient-kernel execution per candidate threshold in
//! the simulator, picks the fastest, and re-tunes periodically while
//! the training loop runs.
//!
//! ```text
//! cargo run --release --example tune_threshold
//! ```

use arc_dr::arc::AutoTuner;
use arc_dr::sim::GpuConfig;
use arc_dr::workloads::{run_gradcomp, spec, Technique};

fn main() {
    let traces = spec("3D-TK")
        .expect("3D-TK is a Table-2 workload")
        .scaled(0.4)
        .build();
    let cfg = GpuConfig::rtx4090_sim();

    // The paper re-profiles every N = 2000 training iterations; we use a
    // small interval so the demo shows two profiling sweeps.
    let mut tuner = AutoTuner::new(5);
    for iter in 0..10 {
        let thr = tuner.on_iteration(|thr| {
            run_gradcomp(&cfg, Technique::SwB(thr), traces.gradcomp())
                .expect("simulation drains")
                .cycles as f64
        });
        println!("iteration {iter}: balancing threshold = {thr}");
    }

    let outcome = tuner.last_outcome().expect("profiled at least once");
    println!("\nlast profiling sweep:");
    for (thr, cycles) in &outcome.probes {
        let marker = if *thr == outcome.best { " <= best" } else { "" };
        println!(
            "  threshold {:>2}: {:>9.0} cycles{marker}",
            thr.value(),
            cycles
        );
    }
    println!(
        "\nbest threshold {} is {:.2}x faster than the worst candidate; \
         profiling overhead so far: {:.2}%",
        outcome.best,
        outcome.best_over_worst(),
        100.0 * tuner.profiling_overhead()
    );
}

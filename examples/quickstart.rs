//! Quickstart: build one differentiable-rendering workload, run its
//! gradient-computation kernel through the simulated GPU under the
//! baseline and every ARC technique, and print the speedups.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use arc_dr::arc::BalanceThreshold;
use arc_dr::sim::GpuConfig;
use arc_dr::trace::TraceStats;
use arc_dr::workloads::{run_gradcomp, spec, Technique};

fn main() {
    // 1. Build the 3DGS "Lego" workload: this renders a synthetic
    //    Gaussian scene, backpropagates an L1 loss, and records the
    //    gradient kernel as a warp-level trace (scaled to run quickly).
    let workload = spec("3D-LE").expect("3D-LE is a Table-2 workload");
    println!("building {} ({})...", workload.id, workload.description);
    let traces = workload.scaled(0.6).build();

    // 2. Characterize the atomic traffic (paper §3.1).
    let stats = TraceStats::compute(traces.gradcomp());
    println!(
        "gradient kernel: {} warps, {} atomic requests, \
         {:.1}% same-address warps, {:.1} mean active lanes",
        stats.warps,
        stats.atomic_requests,
        100.0 * stats.same_address_fraction(),
        stats.mean_active_lanes()
    );

    // 3. Simulate under each technique on the 3060 model (small
    //    demo workloads saturate it fully).
    let cfg = GpuConfig::rtx3060_sim();
    let base =
        run_gradcomp(&cfg, Technique::Baseline, traces.gradcomp()).expect("baseline simulation");
    println!(
        "\n{:<12} {:>10} cycles ({:.3} ms at {} GHz)",
        "Baseline", base.cycles, base.time_ms, cfg.clock_ghz
    );

    let thr = BalanceThreshold::new(8).expect("8 is in 0..=32");
    for technique in [
        Technique::ArcHw,
        Technique::SwB(thr),
        Technique::SwS(thr),
        Technique::Cccl,
        Technique::Lab,
        Technique::LabIdeal,
        Technique::Phi,
    ] {
        let report = run_gradcomp(&cfg, technique, traces.gradcomp()).expect("simulation drains");
        println!(
            "{:<12} {:>10} cycles  =>  {:.2}x speedup",
            technique.label(),
            report.cycles,
            base.cycles as f64 / report.cycles as f64
        );
    }
    println!(
        "\n(scaled-down demo; run `cargo run --release -p arc-bench --bin figures -- all`\n for the full-size evaluation reproducing the paper's figures)"
    );
}

//! Full 3D scene reconstruction, end to end: train 3D Gaussians from
//! multiple posed views (the paper's 3DGS workload), then capture the
//! gradient-computation kernel of one training view as a warp trace and
//! measure how much ARC accelerates it on the simulated GPU.
//!
//! ```text
//! cargo run --release --example scene3d
//! ```

use arc_dr::arc::BalanceThreshold;
use arc_dr::render::gaussian::{backward_scene, render_scene, NoopRecorder};
use arc_dr::render::projection::{project, project_backward, Camera, Gaussian3DModel};
use arc_dr::render::tracegen::{splat_gradcomp_trace, TraceCosts};
use arc_dr::render::train::{train_3d, LossKind, TrainConfig};
use arc_dr::render::{l2_loss, psnr, Vec3};
use arc_dr::sim::GpuConfig;
use arc_dr::trace::TraceStats;
use arc_dr::workloads::{run_gradcomp, Technique};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZE: usize = 64;
const GAUSSIANS: usize = 120;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let bg = Vec3::splat(0.02);

    // Ground-truth 3D scene and an orbit of six cameras.
    let gt = Gaussian3DModel::random(GAUSSIANS, 0.9, &mut rng);
    let views: Vec<(Camera, arc_dr::render::Image)> = (0..6)
        .map(|k| {
            let angle = k as f32 * std::f32::consts::TAU / 6.0;
            let pos = Vec3::new(4.0 * angle.sin(), 1.0, -4.0 * angle.cos());
            let cam = Camera::look_at(
                pos,
                Vec3::default(),
                Vec3::new(0.0, 1.0, 0.0),
                0.9,
                SIZE,
                SIZE,
            );
            let img = render_scene(&project(&gt, &cam).splats, SIZE, SIZE, bg).image;
            (cam, img)
        })
        .collect();

    // Train a fresh model against the captured views.
    let mut model = Gaussian3DModel::random(GAUSSIANS, 0.9, &mut rng);
    let before = {
        let (cam, target) = &views[0];
        psnr(
            &render_scene(&project(&model, cam).splats, SIZE, SIZE, bg).image,
            target,
        )
    };
    println!(
        "training {GAUSSIANS} 3D Gaussians from {} views...",
        views.len()
    );
    let stats = train_3d(
        &mut model,
        &views,
        &TrainConfig {
            iters: 150,
            lr: 0.02,
            loss: LossKind::L2,
            background: bg,
        },
    );
    println!(
        "view-0 PSNR: {before:.2} dB -> {:.2} dB  (loss {:.5} -> {:.5})",
        stats.final_psnr,
        stats.initial_loss(),
        stats.final_loss()
    );

    // Capture the gradient kernel of one training step as a warp trace.
    let (cam, target) = &views[0];
    let proj = project(&model, cam);
    let out = render_scene(&proj.splats, SIZE, SIZE, bg);
    let (_, pixel_grads) = l2_loss(&out.image, target);
    let (trace, raster) =
        splat_gradcomp_trace(&proj.splats, &out, &pixel_grads, TraceCosts::default());
    // (Sanity: the same raster grads also feed the 3D parameter update.)
    let _grads3d = project_backward(&model, cam, &proj, &raster);
    let _ = backward_scene(&proj.splats, &out, &pixel_grads, &mut NoopRecorder);

    let tstats = TraceStats::compute(&trace);
    println!(
        "\ngradient kernel: {} warps, {} atomic requests, {:.1}% same-address",
        tstats.warps,
        tstats.atomic_requests,
        100.0 * tstats.same_address_fraction()
    );

    // Simulate it under the baseline and the ARC techniques.
    let cfg = GpuConfig::rtx3060_sim();
    let base = run_gradcomp(&cfg, Technique::Baseline, &trace).expect("baseline drains");
    println!("\n{:<10} {:>9} cycles", "Baseline", base.cycles);
    let thr = BalanceThreshold::new(8).expect("valid threshold");
    for technique in [Technique::ArcHw, Technique::SwB(thr), Technique::SwS(thr)] {
        let r = run_gradcomp(&cfg, technique, &trace).expect("simulation drains");
        println!(
            "{:<10} {:>9} cycles  =>  {:.2}x",
            technique.label(),
            r.cycles,
            base.cycles as f64 / r.cycles as f64
        );
    }
}

//! Scene reconstruction with differentiable Gaussian splatting: trains a
//! randomly initialized Gaussian model to reproduce a target image and
//! reports PSNR/L1 as training progresses — the correctness metrics the
//! paper's artifact checks (PSNR↑, L1↓).
//!
//! ```text
//! cargo run --release --example train_gaussians
//! ```

use arc_dr::render::gaussian::{
    backward, param_grads, render, GaussianModel, NoopRecorder, PARAMS_PER_GAUSSIAN,
};
use arc_dr::render::{l1, l1_loss, psnr, Adam, Vec3};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZE: usize = 96;
const GAUSSIANS: usize = 250;
const ITERS: usize = 120;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let bg = Vec3::splat(0.1);

    // Ground truth: a random Gaussian scene we try to reconstruct.
    let gt = GaussianModel::random(GAUSSIANS, SIZE, SIZE, &mut rng);
    let target = render(&gt, SIZE, SIZE, bg).image;

    // Model under training: fresh random initialization.
    let mut model = GaussianModel::random(GAUSSIANS, SIZE, SIZE, &mut rng);
    let mut opt = Adam::new(model.len() * PARAMS_PER_GAUSSIAN, 0.03);

    println!("training {GAUSSIANS} Gaussians on a {SIZE}x{SIZE} target");
    println!("{:>6} {:>10} {:>10}", "iter", "L1", "PSNR(dB)");
    for iter in 0..=ITERS {
        let out = render(&model, SIZE, SIZE, bg);
        if iter % 20 == 0 {
            println!(
                "{:>6} {:>10.4} {:>10.2}",
                iter,
                l1(&out.image, &target),
                psnr(&out.image, &target)
            );
        }
        if iter == ITERS {
            break;
        }
        let (_, pixel_grads) = l1_loss(&out.image, &target);
        // The gradient-computation step — on a GPU this is the kernel
        // ARC accelerates; here it runs functionally on the CPU.
        let raster = backward(&model, &out, &pixel_grads, &mut NoopRecorder);
        let grads = param_grads(&model, &raster);
        let mut params = model.to_params();
        opt.step(&mut params, &grads);
        model.set_params(&params);
    }

    let final_img = render(&model, SIZE, SIZE, bg).image;
    let final_psnr = psnr(&final_img, &target);
    println!("\nfinal PSNR: {final_psnr:.2} dB");
    assert!(
        final_psnr
            > psnr(
                &render(
                    &GaussianModel::random(GAUSSIANS, SIZE, SIZE, &mut rng),
                    SIZE,
                    SIZE,
                    bg
                )
                .image,
                &target
            ),
        "training should beat a random model"
    );
}

//! Golden-trace replay, and the end-to-end shrink-to-golden
//! demonstration on an intentionally seeded reducer bug.
//!
//! The checked-in golden under `tests/golden/` was produced by exactly
//! the flow replayed in [`seeded_bug_is_caught_and_shrinks_to_golden`]:
//! plant a bug (a serialized reducer that drops the last active lane),
//! fuzz until the oracle-style comparison catches it, shrink the
//! offending trace, and pin the minimal reproducer. Re-bless with
//! `CONFORMANCE_BLESS=1` if the fuzzer or shrinker intentionally
//! changes.

use std::path::{Path, PathBuf};

use arc_core::{coalesce_atomic, AtomicTransaction};
use conformance::fuzz::Fuzzer;
use conformance::{invariants, oracle, shrink};
use gpu_sim::GpuConfig;
use warp_trace::KernelTrace;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The intentionally buggy reducer: sums every lane value *except the
/// last* — the classic off-by-one a hand-rolled `for (i = 0; i < n-1)`
/// loop produces.
fn buggy_serialized_reduce(tx: &AtomicTransaction) -> f32 {
    let n = tx.values.len();
    tx.values[..n.saturating_sub(1)].iter().sum()
}

/// The same comparison the functional oracle applies to the real
/// reducers, aimed at the buggy one: true iff the bug is observable on
/// this trace within the documented tolerance.
fn buggy_reducer_caught(trace: &KernelTrace) -> bool {
    trace.bundles().flat_map(|b| b.params.iter()).any(|p| {
        coalesce_atomic(p).iter().any(|tx| {
            let want = tx.total();
            let abs_sum: f64 = tx.values.iter().map(|&v| f64::from(v).abs()).sum();
            let tol = oracle::tolerance(u64::from(tx.request_count()), abs_sum);
            (f64::from(buggy_serialized_reduce(tx)) - want).abs() > tol
        })
    })
}

#[test]
fn seeded_bug_is_caught_and_shrinks_to_golden() {
    // Fixed seed (not the CONFORMANCE_SEED override): the golden's
    // identity depends on it.
    let seed = conformance::DEFAULT_SEED;
    let (case, trace) = (0..50u64)
        .find_map(|case| {
            let t = Fuzzer::new(seed, case).trace();
            buggy_reducer_caught(&t).then_some((case, t))
        })
        .expect("50 fuzz cases never caught a reducer that drops a lane");
    // The bug must be found fast — a fuzzer that needs thousands of
    // cases to see a dropped lane is not adversarial enough.
    assert!(case < 5, "bug first caught only at case {case}");

    let shrunk = shrink::shrink_trace(&trace, buggy_reducer_caught);
    if std::env::var("CONFORMANCE_BLESS").is_ok() {
        shrink::emit_golden(&golden_dir(), "buggy-reducer-min", &shrunk);
    }
    let golden = shrink::load_golden(&golden_dir().join("buggy-reducer-min.json"));
    assert_eq!(
        shrunk, golden,
        "shrinker no longer reproduces the checked-in minimal trace; \
         re-bless with CONFORMANCE_BLESS=1 if the change is intentional"
    );

    // The golden still bites the buggy reducer, is minimal, and is
    // perfectly fine under the *real* reducers.
    assert!(buggy_reducer_caught(&golden));
    assert_eq!(golden.warps().len(), 1, "golden should be one warp");
    assert_eq!(
        golden.warps()[0].instrs.len(),
        1,
        "golden should be one instruction"
    );
    oracle::check_trace(&golden).expect("real reducers must pass on the golden");
}

#[test]
fn goldens_pass_the_oracle_and_all_invariants() {
    let dir = golden_dir();
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "json") {
            let trace = shrink::load_golden(&path);
            oracle::check_trace(&trace).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            invariants::check_trace(&GpuConfig::tiny(), &trace)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            replayed += 1;
        }
    }
    assert!(replayed >= 1, "no goldens found in {}", dir.display());
}

//! Fast-forward equivalence suite: the event-driven cycle loop
//! (`ARC_FF=1`) must be observationally indistinguishable from the
//! naive one (`ARC_FF=0`) — same [`gpu_sim::KernelReport`], same
//! telemetry, same chrome-trace bytes — on every fuzz shape, every
//! atomic path, every preset, and across SM-worker counts.
//!
//! The shapes are exercised one-per-test (rather than folded into one
//! loop) so a failure names the family immediately; each test sweeps
//! several fuzz cases of its shape so the RNG varies masks, bundle
//! widths, and queue geometry.

use conformance::fuzz::{Fuzzer, TraceShape};
use conformance::invariants;
use gpu_sim::GpuConfig;

/// Fuzz cases `base, base + ALL.len(), ...` all have the same shape;
/// run each through the full FF-on/FF-off equivalence battery under its
/// fuzzed config.
fn shape_cases(shape: TraceShape, rounds: u64) {
    let seed = conformance::seed();
    let stride = TraceShape::ALL.len() as u64;
    let base = TraceShape::ALL
        .iter()
        .position(|&s| s == shape)
        .expect("shape is in ALL") as u64;
    for round in 0..rounds {
        let case = base + round * stride;
        let mut f = Fuzzer::new(seed, case);
        assert_eq!(f.shape(), shape);
        let trace = f.trace();
        let cfg = f.config();
        if let Err(e) = invariants::check_fast_forward(&cfg, &trace) {
            panic!("{e}\n  reproduce: CONFORMANCE_SEED={seed:#x} (case {case})");
        }
    }
}

#[test]
fn ff_equivalence_degenerate() {
    shape_cases(TraceShape::Degenerate, 3);
}

#[test]
fn ff_equivalence_hot_storm() {
    shape_cases(TraceShape::HotAddressStorm, 3);
}

#[test]
fn ff_equivalence_full_densify() {
    shape_cases(TraceShape::FullDensify, 3);
}

#[test]
fn ff_equivalence_scatter_mix() {
    shape_cases(TraceShape::ScatterMix, 3);
}

#[test]
fn ff_equivalence_multi_param() {
    shape_cases(TraceShape::MultiParamBundle, 3);
}

#[test]
fn ff_equivalence_sparse_idle() {
    // The headline shape for fast-forward: huge latency gaps mean the
    // engine spends most of the run jumping, so give it extra rounds.
    shape_cases(TraceShape::SparseIdle, 5);
}

#[test]
fn ff_equivalence_on_full_presets() {
    // The fuzzed configs above are tiny-based; also pin equivalence on
    // the real machine models (many SMs, deep queues, realistic
    // latencies) with one trace per shape.
    let seed = conformance::seed().wrapping_add(3);
    for (case, _) in TraceShape::ALL.iter().enumerate() {
        let trace = Fuzzer::new(seed, case as u64).trace();
        for cfg in [GpuConfig::rtx4090_sim(), GpuConfig::rtx3060_sim()] {
            if let Err(e) = invariants::check_fast_forward(&cfg, &trace) {
                panic!(
                    "{e} on {}\n  reproduce: CONFORMANCE_SEED={seed:#x} (case {case})",
                    cfg.name
                );
            }
        }
    }
}

#[test]
fn ff_equivalence_on_atomred_conversions() {
    // `atomred` kernels drive the ARC-HW reduction units — the issue
    // path with the most intricate LDST-port bookkeeping — so check the
    // converted traces explicitly.
    let seed = conformance::seed().wrapping_add(4);
    for case in 0..TraceShape::ALL.len() as u64 {
        let mut f = Fuzzer::new(seed, case);
        let trace = f.trace().with_atomred();
        let cfg = f.config();
        if let Err(e) = invariants::check_fast_forward(&cfg, &trace) {
            panic!("{e}\n  reproduce: CONFORMANCE_SEED={seed:#x} (case {case})");
        }
    }
}

//! Store-equivalence suite: the result store must never change bytes,
//! and a *poisoned* store — stale `SIM_VERSION`, truncated object blob —
//! must degrade to a recompute, never to a wrong or failed result.
//!
//! The happy path (cold = warm = daemon = store-less reference, across
//! the engine matrix) lives in `invariants::check_store_equivalence`
//! and runs as part of the per-trace battery; here it is additionally
//! driven over fuzzed traces, and the corruption cases get targeted
//! coverage.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use arc_core::passes::PassPipeline;
use arc_core::Technique;
use conformance::fuzz::Fuzzer;
use conformance::invariants;
use gpu_sim::{GpuConfig, TelemetryConfig};
use sim_service::{
    run_cell, store_key, trace_digest, EngineOpts, ResultStore, SimRequest, SimResult,
};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "arc-store-equivalence-{}-{name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The comparable output of one cell: serialized report + telemetry and
/// the chrome-trace bytes.
fn bytes(r: &SimResult) -> (String, String, String) {
    (
        serde_json::to_string(&r.report).expect("report serializes"),
        r.telemetry
            .as_ref()
            .map(|t| serde_json::to_string(t).expect("telemetry serializes"))
            .unwrap_or_default(),
        r.chrome.clone().unwrap_or_default(),
    )
}

fn request(trace: Arc<warp_trace::KernelTrace>) -> SimRequest {
    SimRequest {
        config: GpuConfig::tiny(),
        technique: Technique::ArcHw,
        trace,
        rewrite: true,
        telemetry: Some(TelemetryConfig::every(8)),
        want_chrome: true,
        passes: PassPipeline::empty(),
        stage: None,
    }
}

#[test]
fn fuzzed_traces_survive_store_equivalence() {
    // A slice of the fuzz stream through the full invariant (cold /
    // warm / disk-bytes / daemon, across the engine matrix); the main
    // metamorphic battery covers many more cases via `check_trace`.
    let seed = conformance::seed().wrapping_add(7);
    for case in 0..conformance::iters(3) as u64 {
        let mut f = Fuzzer::new(seed, case);
        let trace = f.trace();
        let cfg = f.config();
        if let Err(e) = invariants::check_store_equivalence(&cfg, &trace) {
            panic!("{e}\n  reproduce: CONFORMANCE_SEED={seed:#x} (case {case})");
        }
    }
}

#[test]
fn stale_sim_version_is_a_miss_and_recomputes() {
    let dir = scratch("stale-version");
    let trace = Arc::new(invariants::storm(4, 2));
    let req = request(Arc::clone(&trace));
    let opts = EngineOpts::default();

    let fresh = run_cell(None, &req, &opts).expect("reference run");

    // Populate through a store stamped with a different SIM_VERSION:
    // the entry lands at the right key but carries the wrong version,
    // exactly what a store written by an older binary looks like.
    let stale =
        ResultStore::open_versioned(dir.join("store"), "arc-sim-0000.00-stale").expect("open");
    let seeded = run_cell(Some(&stale), &req, &opts).expect("populate");
    assert!(!seeded.cached, "empty store cannot hit");

    let store = ResultStore::open(dir.join("store")).expect("reopen at current version");
    let key = store_key(
        gpu_sim::SIM_VERSION,
        &req.config,
        req.technique,
        true,
        req.telemetry.as_ref(),
        &trace_digest(&req.trace),
        &req.passes,
    );
    assert!(
        store.get(&key).is_none(),
        "a stale-version entry must never be served"
    );

    let recomputed = run_cell(Some(&store), &req, &opts).expect("recompute");
    assert!(!recomputed.cached, "poisoned entry must force a recompute");
    assert_eq!(bytes(&recomputed), bytes(&fresh));

    // The recompute repaired the store: next run is a real hit.
    let warm = run_cell(Some(&store), &req, &opts).expect("warm");
    assert!(warm.cached);
    assert_eq!(bytes(&warm), bytes(&fresh));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_blob_is_a_miss_and_recomputes() {
    let dir = scratch("truncated-blob");
    let trace = Arc::new(invariants::storm(4, 2));
    let req = request(Arc::clone(&trace));
    let opts = EngineOpts::default();

    let store = ResultStore::open(dir.join("store")).expect("open");
    let fresh = run_cell(Some(&store), &req, &opts).expect("populate");
    assert!(!fresh.cached);

    // Truncate the object blob in place: a torn write / partial copy.
    let key = store_key(
        gpu_sim::SIM_VERSION,
        &req.config,
        req.technique,
        true,
        req.telemetry.as_ref(),
        &trace_digest(&req.trace),
        &req.passes,
    );
    let object = dir
        .join("store")
        .join("objects")
        .join(format!("{}.json", key.to_hex()));
    let blob = fs::read(&object).expect("object exists after populate");
    assert!(blob.len() > 2, "blob should be non-trivial");
    fs::write(&object, &blob[..blob.len() / 2]).expect("truncate");

    assert!(
        store.get(&key).is_none(),
        "a truncated entry must never be served"
    );

    let recomputed = run_cell(Some(&store), &req, &opts).expect("recompute");
    assert!(!recomputed.cached, "truncated entry must force a recompute");
    assert_eq!(bytes(&recomputed), bytes(&fresh));

    // Repaired: the rewritten blob serves again, byte-identical.
    let warm = run_cell(Some(&store), &req, &opts).expect("warm");
    assert!(warm.cached);
    assert_eq!(bytes(&warm), bytes(&fresh));

    let _ = fs::remove_dir_all(&dir);
}

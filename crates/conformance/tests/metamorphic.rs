//! Metamorphic suite: conservation laws on fuzzed traces under fuzzed
//! and preset GPU configurations, plus the trend invariants that
//! cross-check the cycle simulator against the analytical model.
//!
//! Failures shrink to a minimal trace (re-checked under the same
//! config), land in [`conformance::failure_dir`], and print the
//! `(seed, case)` reproduction pair.

use conformance::fuzz::Fuzzer;
use conformance::{invariants, shrink};
use gpu_sim::GpuConfig;

/// Runs the per-trace invariant battery, shrinking on failure.
fn check_or_shrink(cfg: &GpuConfig, trace: &warp_trace::KernelTrace, seed: u64, case: u64) {
    if let Err(e) = invariants::check_trace(cfg, trace) {
        let shrunk = shrink::shrink_trace(trace, |t| invariants::check_trace(cfg, t).is_err());
        let out = shrink::emit_golden(
            &conformance::failure_dir(),
            &format!("invariant-s{seed:#x}-c{case}"),
            &shrunk,
        );
        panic!(
            "metamorphic invariant failed: {e}\n  \
             reproduce: CONFORMANCE_SEED={seed:#x} (case {case})\n  \
             shrunk trace: {}",
            out.display()
        );
    }
}

#[test]
fn conservation_laws_hold_on_fuzzed_configs() {
    let seed = conformance::seed();
    let iters = conformance::iters(12) as u64;
    for case in 0..iters {
        let mut f = Fuzzer::new(seed, case);
        let trace = f.trace();
        let cfg = f.config();
        check_or_shrink(&cfg, &trace, seed, case);
    }
}

#[test]
fn conservation_laws_hold_on_both_gpu_presets() {
    let seed = conformance::seed();
    let iters = conformance::iters(6) as u64;
    for case in 0..iters {
        let mut f = Fuzzer::new(seed.wrapping_add(1), case);
        let trace = f.trace();
        for cfg in [GpuConfig::rtx4090_sim(), GpuConfig::rtx3060_sim()] {
            check_or_shrink(&cfg, &trace, seed.wrapping_add(1), case);
        }
    }
}

#[test]
fn rop_throughput_is_monotone_on_fuzzed_traces() {
    let seed = conformance::seed();
    let iters = conformance::iters(10) as u64;
    for case in 0..iters {
        let mut f = Fuzzer::new(seed.wrapping_add(2), case);
        let trace = f.trace();
        if let Err(e) = invariants::check_rop_monotonicity(&trace) {
            panic!(
                "{e}\n  reproduce: CONFORMANCE_SEED={:#x} (case {case})",
                seed.wrapping_add(2)
            );
        }
    }
}

#[test]
fn bigger_gpu_is_never_slower_on_spread_storms() {
    // Single hot address: one partition bottleneck, a tie is legal.
    invariants::check_config_ordering(24, 4, 1).unwrap();
    // Mildly spread: ordering must hold, tie still legal.
    invariants::check_config_ordering(24, 4, 4).unwrap();
    // Widely spread: the extra partitions must actually pay off.
    invariants::check_config_ordering(32, 4, 64).unwrap();
}

#[test]
fn adaptive_routing_never_loses_on_hot_storms() {
    for cfg in [
        GpuConfig::tiny(),
        GpuConfig::rtx4090_sim(),
        GpuConfig::rtx3060_sim(),
    ] {
        invariants::check_adaptive_wins_contended(&cfg, 24, 4).unwrap();
    }
}

#[test]
fn balancing_threshold_crossover_direction_holds() {
    invariants::check_threshold_crossover(&GpuConfig::rtx3060_sim()).unwrap();
}

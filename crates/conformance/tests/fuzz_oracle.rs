//! Fuzz loop over the functional oracle: every generated trace, however
//! adversarial, must produce numerically equivalent gradient sums on
//! every reduction path.
//!
//! On failure the trace is shrunk to a local minimum, written to
//! [`conformance::failure_dir`] for inspection (CI uploads it as an
//! artifact), and the panic message carries the exact
//! `CONFORMANCE_SEED` / case pair to reproduce.

use conformance::fuzz::{Fuzzer, TraceShape};
use conformance::{oracle, shrink};

#[test]
fn fuzzed_traces_pass_the_functional_oracle() {
    let seed = conformance::seed();
    let iters = conformance::iters(150) as u64;
    let mut totals = oracle::OracleStats::default();
    for case in 0..iters {
        let mut f = Fuzzer::new(seed, case);
        let trace = f.trace();
        match oracle::check_trace(&trace) {
            Ok(stats) => {
                totals.transactions += stats.transactions;
                totals.addresses += stats.addresses;
                totals.paths += stats.paths;
            }
            Err(e) => {
                let shrunk = shrink::shrink_trace(&trace, |t| oracle::check_trace(t).is_err());
                let out = shrink::emit_golden(
                    &conformance::failure_dir(),
                    &format!("oracle-s{seed:#x}-c{case}"),
                    &shrunk,
                );
                panic!(
                    "functional oracle failed: {e}\n  \
                     reproduce: CONFORMANCE_SEED={seed:#x} (case {case})\n  \
                     shrunk trace: {}",
                    out.display()
                );
            }
        }
    }
    // The budget must actually exercise the oracle, not vacuously pass
    // on empty traces.
    assert!(
        totals.transactions > 100,
        "fuzz budget produced only {} transactions",
        totals.transactions
    );
}

#[test]
fn fuzz_stream_is_deterministic_and_covers_every_shape() {
    let seed = conformance::seed();
    let mut seen = [false; TraceShape::ALL.len()];
    for case in 0..10u64 {
        let a = Fuzzer::new(seed, case).trace();
        let b = Fuzzer::new(seed, case).trace();
        assert_eq!(a, b, "case {case} not reproducible from (seed, case)");
        seen[case as usize % TraceShape::ALL.len()] = true;
    }
    assert!(seen.iter().all(|&s| s), "some trace shape never generated");
}

//! Targeted pass-equivalence suite: the `pass-equivalence` invariant
//! (`invariants::check_pass_equivalence`) driven over every fuzz shape.
//!
//! The invariant also runs inside the full per-trace battery
//! (`check_trace`, exercised by the metamorphic suite); this file is
//! the fast subset CI invokes as `scripts/ci.sh passes` — one case per
//! `TraceShape` (including `loop-heavy`, the shape built for the
//! hoisting and coalescing passes) plus a slice of the open fuzz
//! stream, with shrink-to-golden on failure.

use conformance::fuzz::{Fuzzer, TraceShape};
use conformance::{invariants, shrink};

#[test]
fn every_fuzz_shape_survives_pass_equivalence() {
    let seed = conformance::seed().wrapping_add(11);
    // case % ALL.len() selects the shape, so one round of consecutive
    // cases covers every shape exactly once.
    for case in 0..TraceShape::ALL.len() as u64 {
        let mut f = Fuzzer::new(seed, case);
        let trace = f.trace();
        let cfg = f.config();
        assert_eq!(
            f.shape(),
            TraceShape::ALL[case as usize % TraceShape::ALL.len()]
        );
        if let Err(e) = invariants::check_pass_equivalence(&cfg, &trace) {
            let shrunk = shrink::shrink_trace(&trace, |t| {
                invariants::check_pass_equivalence(&cfg, t).is_err()
            });
            let out = shrink::emit_golden(
                &conformance::failure_dir(),
                &format!("pass-equivalence-s{seed:#x}-c{case}"),
                &shrunk,
            );
            panic!(
                "{e}\n  shrunk reproducer: {}\n  reproduce: CONFORMANCE_SEED={seed:#x} (case {case})",
                out.display()
            );
        }
    }
}

#[test]
fn fuzzed_traces_survive_pass_equivalence() {
    let seed = conformance::seed().wrapping_add(13);
    for case in 0..conformance::iters(8) as u64 {
        let mut f = Fuzzer::new(seed, case);
        let trace = f.trace();
        let cfg = f.config();
        if let Err(e) = invariants::check_pass_equivalence(&cfg, &trace) {
            panic!("{e}\n  reproduce: CONFORMANCE_SEED={seed:#x} (case {case})");
        }
    }
}

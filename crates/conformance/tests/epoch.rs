//! Epoch-synchronization equivalence suite: the epoch-based cycle loop
//! (`ARC_SIM_EPOCH` ∈ {4, auto}) must be observationally
//! indistinguishable from the per-cycle loop (`ARC_SIM_EPOCH=1`) — same
//! [`gpu_sim::KernelReport`], same telemetry, same chrome-trace bytes —
//! on every fuzz shape, every atomic path, across SM-worker counts 1/2/8
//! and with fast-forward both on and off.
//!
//! The shapes are exercised one-per-test (rather than folded into one
//! loop) so a failure names the family immediately; each test sweeps
//! fuzz cases of its shape so the RNG varies masks, bundle widths, and
//! queue geometry — including the single-slot and multi-thousand-entry
//! partition queues where the epoch-safety analysis sits right on its
//! accept/reject decision boundaries.

use conformance::fuzz::{Fuzzer, TraceShape};
use conformance::invariants;
use gpu_sim::GpuConfig;

/// Fuzz cases `base, base + ALL.len(), ...` all have the same shape;
/// run each through the full epoch × workers × fast-forward equivalence
/// battery under its fuzzed config.
fn shape_cases(shape: TraceShape, rounds: u64) {
    let seed = conformance::seed();
    let stride = TraceShape::ALL.len() as u64;
    let base = TraceShape::ALL
        .iter()
        .position(|&s| s == shape)
        .expect("shape is in ALL") as u64;
    for round in 0..rounds {
        let case = base + round * stride;
        let mut f = Fuzzer::new(seed, case);
        assert_eq!(f.shape(), shape);
        let trace = f.trace();
        let cfg = f.config();
        if let Err(e) = invariants::check_epoch_equivalence(&cfg, &trace) {
            panic!("{e}\n  reproduce: CONFORMANCE_SEED={seed:#x} (case {case})");
        }
    }
}

#[test]
fn epoch_equivalence_degenerate() {
    shape_cases(TraceShape::Degenerate, 2);
}

#[test]
fn epoch_equivalence_hot_storm() {
    shape_cases(TraceShape::HotAddressStorm, 2);
}

#[test]
fn epoch_equivalence_full_densify() {
    shape_cases(TraceShape::FullDensify, 2);
}

#[test]
fn epoch_equivalence_scatter_mix() {
    shape_cases(TraceShape::ScatterMix, 2);
}

#[test]
fn epoch_equivalence_multi_param() {
    shape_cases(TraceShape::MultiParamBundle, 2);
}

#[test]
fn epoch_equivalence_sparse_idle() {
    // Long idle spans are where epochs and fast-forward jumps hand off
    // to each other, so give this shape extra rounds.
    shape_cases(TraceShape::SparseIdle, 3);
}

#[test]
fn epoch_equivalence_icnt_flood() {
    // The headline shape for the epoch-safety analysis: sustained
    // cross-SM traffic keeps partition occupancy at the accept/reject
    // decision boundary.
    shape_cases(TraceShape::IcntFlood, 3);
}

#[test]
fn epoch_equivalence_on_full_presets() {
    // The fuzzed configs above are tiny-based; also pin equivalence on
    // the real machine models (many SMs, deep queues, realistic
    // latencies) for the two shapes with the most interconnect churn.
    let seed = conformance::seed().wrapping_add(5);
    for shape in [TraceShape::SparseIdle, TraceShape::IcntFlood] {
        let case = TraceShape::ALL
            .iter()
            .position(|&s| s == shape)
            .expect("shape is in ALL") as u64;
        let trace = Fuzzer::new(seed, case).trace();
        for cfg in [GpuConfig::rtx4090_sim(), GpuConfig::rtx3060_sim()] {
            if let Err(e) = invariants::check_epoch_equivalence(&cfg, &trace) {
                panic!(
                    "{e} on {}\n  reproduce: CONFORMANCE_SEED={seed:#x} (case {case})",
                    cfg.name
                );
            }
        }
    }
}

#[test]
fn epoch_equivalence_on_atomred_conversions() {
    // `atomred` kernels drive the ARC-HW reduction units, whose pending
    // queues are exactly what disqualifies a lane from the
    // reject-certain epoch mode — check the converted traces explicitly.
    let seed = conformance::seed().wrapping_add(6);
    for case in 0..TraceShape::ALL.len() as u64 {
        let mut f = Fuzzer::new(seed, case);
        let trace = f.trace().with_atomred();
        let cfg = f.config();
        if let Err(e) = invariants::check_epoch_equivalence(&cfg, &trace) {
            panic!("{e}\n  reproduce: CONFORMANCE_SEED={seed:#x} (case {case})");
        }
    }
}

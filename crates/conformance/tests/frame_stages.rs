//! Per-stage conformance coverage for the tile-binned 3DGS frame: every
//! kernel of the multi-stage pipeline — intersect mapping, scan, the
//! radix sort's atomic histogram and scatter, bin-edge extraction, and
//! the tile-local rasterizer — must satisfy the functional oracle and
//! the metamorphic simulator invariants, not just the legacy gradcomp
//! kernel the suite has always covered.

use conformance::{invariants, oracle};
use gpu_sim::GpuConfig;

#[test]
fn tile_binned_stages_pass_oracle_and_invariants() {
    let frame = arc_workloads::spec("3D-TB")
        .expect("tile-binned workload registered")
        .scaled(0.15)
        .build();
    assert!(
        frame.stages().len() > 3,
        "3D-TB must be a multi-kernel frame"
    );
    let cfg = GpuConfig::tiny();
    let mut atomic_stages = 0usize;
    for stage in frame.stages() {
        let trace = stage.trace();
        if trace.total_atomic_requests() > 0 {
            atomic_stages += 1;
        }
        if let Err(e) = oracle::check_trace(trace) {
            panic!("oracle failed on stage {}: {e}", stage.name());
        }
        if let Err(e) = invariants::check_trace(&cfg, trace) {
            panic!("invariants failed on stage {}: {e}", stage.name());
        }
    }
    assert!(
        atomic_stages >= 1,
        "the radix histogram stage must carry atomics for the oracle to bite on"
    );
}

//! Pass-pipeline golden: a fuzzer-found, shrinker-minimized trace on
//! which the atomic-coalescing pass fires, with the optimized form
//! pinned byte-exactly.
//!
//! The flow mirrors `golden.rs`: fuzz from the fixed default seed until
//! coalescing finds work, shrink while it still fires, and pin both the
//! minimal input (`coalesce-min.json`) and its optimized output
//! (`coalesce-min.optimized.json`). Any change to the fuzzer, shrinker,
//! or the pass itself that moves either file must be deliberate —
//! re-bless with `CONFORMANCE_BLESS=1`.

use std::fs;
use std::path::{Path, PathBuf};

use arc_core::passes::Pass;
use arc_core::technique::TraceTransform;
use conformance::fuzz::Fuzzer;
use conformance::{oracle, shrink};
use warp_trace::{GlobalMemory, KernelTrace};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// True iff the coalescing pass merges at least one atomic on `trace`
/// *and* the merge sums a shared lane — the reassociating path the
/// oracle tolerance exists for, not just a union of disjoint lanes.
fn coalesce_fires(trace: &KernelTrace) -> bool {
    let stats = Pass::AtomicCoalesce.apply_with_stats(trace).1;
    stats.atomics_coalesced > 0 && stats.lane_ops_removed > 0
}

fn mem_of(trace: &KernelTrace) -> GlobalMemory {
    let mut mem = GlobalMemory::new();
    mem.apply_trace(trace);
    mem
}

#[test]
fn coalesce_golden_is_minimal_and_its_optimized_form_is_pinned() {
    // Fixed seed (not the CONFORMANCE_SEED override): the golden's
    // identity depends on it.
    let seed = conformance::DEFAULT_SEED;
    let (case, trace) = (0..50u64)
        .find_map(|case| {
            let t = Fuzzer::new(seed, case).trace();
            coalesce_fires(&t).then_some((case, t))
        })
        .expect("50 fuzz cases never gave the coalescing pass any work");
    // A fuzzer that rarely emits back-to-back compatible atomics is not
    // exercising the pass; the storm/loop-heavy shapes should hit fast.
    assert!(case < 10, "coalescing first fired only at case {case}");

    let shrunk = shrink::shrink_trace(&trace, coalesce_fires);
    let dir = golden_dir();
    let optimized_path = dir.join("coalesce-min.optimized.json");
    if std::env::var("CONFORMANCE_BLESS").is_ok() {
        shrink::emit_golden(&dir, "coalesce-min", &shrunk);
        let optimized = Pass::AtomicCoalesce.apply(&shrunk).into_owned();
        let json = serde_json::to_string_pretty(&optimized).expect("trace serializes");
        fs::write(&optimized_path, json).expect("write optimized golden");
    }

    let golden = shrink::load_golden(&dir.join("coalesce-min.json"));
    assert_eq!(
        shrunk, golden,
        "shrinker no longer reproduces the checked-in minimal trace; \
         re-bless with CONFORMANCE_BLESS=1 if the change is intentional"
    );

    // The optimized form is pinned byte-exactly: the pass must keep
    // producing this output, byte for byte, forever.
    let optimized = Pass::AtomicCoalesce.apply(&golden).into_owned();
    let want = serde_json::to_string_pretty(&optimized).expect("trace serializes");
    let pinned = fs::read_to_string(&optimized_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", optimized_path.display()));
    assert_eq!(
        pinned, want,
        "the coalescing pass no longer produces the pinned optimized \
         trace; re-bless with CONFORMANCE_BLESS=1 if the change is \
         intentional"
    );

    // The pass still fires on the golden, actually shrank it, and kept
    // the functional memory image within the oracle's reassociation
    // tolerance.
    assert!(coalesce_fires(&golden));
    assert!(optimized.total_issue_slots() < golden.total_issue_slots());
    let (reference, piped) = (mem_of(&golden), mem_of(&optimized));
    for (addr, want) in reference.iter() {
        let (n, abs_sum) = golden
            .bundles()
            .flat_map(|b| b.params.iter())
            .flat_map(|p| p.ops().iter())
            .filter(|op| op.addr == addr)
            .fold((0u64, 0.0f64), |(n, s), op| {
                (n + 1, s + f64::from(op.value.abs()))
            });
        let diff = (want - piped.read_f64(addr)).abs();
        let tol = oracle::tolerance(n, abs_sum);
        assert!(diff <= tol, "addr {addr:#x}: diff {diff} > tolerance {tol}");
    }
}

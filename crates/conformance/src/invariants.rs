//! Metamorphic invariant suite: conservation laws on the simulator's
//! raw counters, and trend cross-checks against the first-order
//! analytical model in `arc_core::analysis`.
//!
//! The cycle simulator and the machine model were written against the
//! same paper but share no code; where their *directions* must agree
//! (more ROP throughput never hurts, ARC-HW never loses on contended
//! storms, a bigger GPU is never slower on spread-out work), this suite
//! pins the agreement. Where the model is knowingly blind — its
//! mean-active all-or-nothing threshold approximation cannot see
//! per-transaction group sizes — the invariant is stated on the
//! simulator alone.
//!
//! Every conservation law here was derived from the queueing design and
//! then verified empirically across fuzzed traces, all atomic paths,
//! and stressed queue configurations before being pinned:
//!
//! * **issue**: every trace issue slot is issued exactly once;
//! * **flits**: each interconnect flit is retired as exactly one ROP
//!   lane-op, load sector, or store sector — nothing is dropped or
//!   duplicated in flight;
//! * **atomic lane-values**: per path, lane-values entering the machine
//!   equal lane-values accounted at the ROPs / reduction units /
//!   aggregation buffers (see [`check_atomic_value_conservation`]).
//!
//! The trend invariants use constructed workloads ([`storm`],
//! [`spread_storm`], [`grouped_storm`]) whose contention structure is
//! known by construction, so each check's precondition is guaranteed
//! rather than assumed.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use arc_core::analysis::{baseline_cycles, predicted_hw_speedup};
use arc_core::passes::{Pass, PassCache, PassPipeline};
use arc_core::technique::TraceTransform;
use arc_core::{rewrite_kernel_sw, BalanceThreshold, KernelProfile, SwConfig, Technique};
use gpu_sim::{
    AtomicPath, EpochMode, GpuConfig, KernelReport, KernelTelemetry, SimCounters, Simulator,
    TelemetryConfig,
};
use sim_service::{
    run_cell, store_key, trace_digest, DaemonClient, EngineOpts, ResultStore, SimRequest,
    SimResult, WireCell,
};
use warp_trace::{AtomicInstr, KernelKind, KernelTrace, LaneOp, TraceStats, WarpTraceBuilder};

/// How a metamorphic invariant failed.
#[derive(Clone, Debug)]
pub struct InvariantFailure {
    /// Which invariant was violated (stable, greppable name).
    pub invariant: &'static str,
    /// Human-readable description with the offending numbers.
    pub detail: String,
}

impl std::fmt::Display for InvariantFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

fn fail(invariant: &'static str, detail: String) -> InvariantFailure {
    InvariantFailure { invariant, detail }
}

fn run(
    cfg: &GpuConfig,
    path: AtomicPath,
    trace: &KernelTrace,
) -> Result<KernelReport, InvariantFailure> {
    Simulator::new(cfg.clone(), path)
        .map_err(|e| fail("sim-construct", format!("{path:?}: {e:?}")))?
        .run(trace)
        .map_err(|e| fail("sim-run", format!("{path:?}: {e:?}")))
}

// ---------------------------------------------------------------------
// Workload constructors with known contention structure.
// ---------------------------------------------------------------------

/// A single-hot-address storm: `warps` warps, each issuing `atomics`
/// full-warp atomics to the *same* gradient word. Maximal contention —
/// one memory partition, one ROP queue absorbs everything.
pub fn storm(warps: usize, atomics: usize) -> KernelTrace {
    let w = (0..warps)
        .map(|_| {
            let mut b = WarpTraceBuilder::new();
            for _ in 0..atomics {
                b.compute_fp32(1);
                b.atomic(AtomicInstr::same_address(0x100, &[0.5; 32]));
            }
            b.finish()
        })
        .collect();
    KernelTrace::new("storm", KernelKind::GradCompute, w)
}

/// A storm spread over `addrs` distinct gradient words (round-robin),
/// each atomic still warp-uniform. With many addresses the load spreads
/// across memory partitions, so aggregate ROP throughput matters.
pub fn spread_storm(warps: usize, atomics: usize, addrs: usize) -> KernelTrace {
    assert!(addrs > 0, "need at least one address");
    let w = (0..warps)
        .map(|wi| {
            let mut b = WarpTraceBuilder::new();
            for a in 0..atomics {
                let addr = ((wi * atomics + a) % addrs) as u64 * 256;
                b.compute_fp32(1);
                b.atomic(AtomicInstr::same_address(addr, &[0.5; 32]));
            }
            b.finish()
        })
        .collect();
    KernelTrace::new("spread-storm", KernelKind::GradCompute, w)
}

/// Full-warp atomics where consecutive runs of `group` lanes share an
/// address (`group == 32` is warp-uniform, `group == 1` gives every
/// lane its own word). Addresses are unique per instruction, so the
/// per-transaction group size — the quantity the balancing threshold
/// keys on — is exactly `group`.
pub fn grouped_storm(warps: usize, atomics: usize, group: usize) -> KernelTrace {
    assert!((1..=32).contains(&group), "group must be 1..=32");
    let w = (0..warps)
        .map(|wi| {
            let mut b = WarpTraceBuilder::new();
            for a in 0..atomics {
                let ops = (0..32u8)
                    .map(|lane| LaneOp {
                        lane,
                        addr: ((wi * atomics + a) * 32 + (lane as usize / group)) as u64 * 4,
                        value: 0.5,
                    })
                    .collect();
                b.compute_fp32(1);
                b.atomic(AtomicInstr::new(ops));
            }
            b.finish()
        })
        .collect();
    KernelTrace::new("grouped-storm", KernelKind::GradCompute, w)
}

// ---------------------------------------------------------------------
// Conservation laws (hold for every trace, every path, every config).
// ---------------------------------------------------------------------

fn issue_law(path: AtomicPath, c: &SimCounters, issue_slots: u64) -> Result<(), InvariantFailure> {
    if c.instructions_issued != issue_slots {
        return Err(fail(
            "issue-conservation",
            format!(
                "{path:?}: issued {} instructions, trace has {issue_slots} issue slots",
                c.instructions_issued
            ),
        ));
    }
    Ok(())
}

/// **Invariant `issue-conservation`** — on every atomic path, the
/// number of warp instructions issued equals the trace's issue-slot
/// count exactly: nothing is double-issued or lost at drain.
pub fn check_issue_conservation(
    cfg: &GpuConfig,
    trace: &KernelTrace,
) -> Result<(), InvariantFailure> {
    let want = trace.total_issue_slots();
    for path in AtomicPath::ALL {
        issue_law(path, &run(cfg, path, trace)?.counters, want)?;
    }
    Ok(())
}

/// **Invariant `flit-conservation`** — every interconnect flit is
/// retired as exactly one ROP lane-op, load sector, or store sector:
/// `icnt_flits == rop_lane_ops + load_sectors + store_sectors` on every
/// path. On the baseline path the LSU additionally forwards everything
/// it accepts (`lsu_accepted == icnt_flits`).
pub fn check_flit_conservation(
    cfg: &GpuConfig,
    trace: &KernelTrace,
) -> Result<(), InvariantFailure> {
    for path in AtomicPath::ALL {
        flit_law(path, &run(cfg, path, trace)?.counters)?;
    }
    Ok(())
}

fn flit_law(path: AtomicPath, c: &SimCounters) -> Result<(), InvariantFailure> {
    let retired = c.rop_lane_ops + c.load_sectors + c.store_sectors;
    if c.icnt_flits != retired {
        return Err(fail(
            "flit-conservation",
            format!(
                "{path:?}: {} flits crossed the interconnect but {} units retired \
                 (rop {} + load {} + store {})",
                c.icnt_flits, retired, c.rop_lane_ops, c.load_sectors, c.store_sectors
            ),
        ));
    }
    if path == AtomicPath::Baseline && c.lsu_accepted != c.icnt_flits {
        return Err(fail(
            "flit-conservation",
            format!(
                "Baseline: LSU accepted {} units but {} flits crossed",
                c.lsu_accepted, c.icnt_flits
            ),
        ));
    }
    Ok(())
}

/// **Invariant `atomic-value-conservation`** — atomic lane-values are
/// neither dropped nor duplicated, with a per-path ledger:
///
/// * `Baseline`: all requests retire at the ROPs, none at reduction
///   units (`rop_lane_ops == requests`, `redunit_lane_ops == 0`);
/// * `ArcHw`: a reduction unit folds a k-lane transaction and emits one
///   lane-value to the ROPs, so
///   `rop_lane_ops + redunit_lane_ops == requests + redunit_transactions`;
/// * `Lab` / `LabIdeal` / `Phi`: every request is merged into, evicted
///   from, or flushed out of an aggregation-buffer entry
///   (`merges + evictions + flushes == requests`), and the ROPs see
///   exactly the evicted/flushed entries
///   (`rop_lane_ops == evictions + flushes`).
pub fn check_atomic_value_conservation(
    cfg: &GpuConfig,
    trace: &KernelTrace,
) -> Result<(), InvariantFailure> {
    let requests = trace.total_atomic_requests();
    for path in AtomicPath::ALL {
        atomic_law(path, &run(cfg, path, trace)?.counters, requests)?;
    }
    Ok(())
}

fn atomic_law(path: AtomicPath, c: &SimCounters, requests: u64) -> Result<(), InvariantFailure> {
    let violation = {
        match path {
            AtomicPath::Baseline => {
                if c.rop_lane_ops != requests || c.redunit_lane_ops != 0 {
                    Some(format!(
                        "rop {} (want {requests}), redunit {} (want 0)",
                        c.rop_lane_ops, c.redunit_lane_ops
                    ))
                } else {
                    None
                }
            }
            AtomicPath::ArcHw => {
                let folded = c.rop_lane_ops + c.redunit_lane_ops;
                let sourced = requests + c.redunit_transactions;
                if folded != sourced {
                    Some(format!(
                        "rop {} + redunit {} = {folded}, want requests {requests} + \
                         redunit_tx {} = {sourced}",
                        c.rop_lane_ops, c.redunit_lane_ops, c.redunit_transactions
                    ))
                } else {
                    None
                }
            }
            AtomicPath::Lab | AtomicPath::LabIdeal | AtomicPath::Phi => {
                let absorbed = c.buffer_merges + c.buffer_evictions + c.buffer_flushes;
                let emitted = c.buffer_evictions + c.buffer_flushes;
                if absorbed != requests || c.rop_lane_ops != emitted {
                    Some(format!(
                        "merges {} + evictions {} + flushes {} = {absorbed} (want \
                         {requests}); rop {} (want evictions+flushes = {emitted})",
                        c.buffer_merges, c.buffer_evictions, c.buffer_flushes, c.rop_lane_ops
                    ))
                } else {
                    None
                }
            }
        }
    };
    if let Some(detail) = violation {
        return Err(fail(
            "atomic-value-conservation",
            format!("{path:?}: {detail}"),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Trend invariants (simulator vs. analytical model direction).
// ---------------------------------------------------------------------

/// **Invariant `rop-monotonicity`** — raising per-partition ROP
/// throughput never increases simulated cycles (baseline path, tiny
/// base config, `rops_per_partition` swept 1 → 2 → 4 → 8), and the
/// analytical model's `baseline_cycles` agrees on the direction when
/// `rop_rate` is scaled the same way.
pub fn check_rop_monotonicity(trace: &KernelTrace) -> Result<(), InvariantFailure> {
    let profile = KernelProfile::from_stats(&TraceStats::compute(trace));
    let mut prev_sim = u64::MAX;
    let mut prev_model = f64::INFINITY;
    for rops in [1u32, 2, 4, 8] {
        let mut cfg = GpuConfig::tiny();
        cfg.rops_per_partition = rops;
        let sim = run(&cfg, AtomicPath::Baseline, trace)?.cycles;
        if sim > prev_sim {
            return Err(fail(
                "rop-monotonicity",
                format!("sim: {prev_sim} cycles -> {sim} cycles going to {rops} rops/partition"),
            ));
        }
        let model = baseline_cycles(&cfg.machine_model(), &profile);
        if model > prev_model {
            return Err(fail(
                "rop-monotonicity",
                format!("model: {prev_model} -> {model} going to {rops} rops/partition"),
            ));
        }
        prev_sim = sim;
        prev_model = model;
    }
    Ok(())
}

/// **Invariant `config-ordering`** — on a spread storm the bigger GPU
/// (RTX 4090-Sim: more SMs, more ROP partitions) never takes more
/// cycles than the smaller one (RTX 3060-Sim), strictly fewer once the
/// storm spans many addresses (`addrs >= 16`, so multiple partitions
/// are engaged); the analytical model agrees on the ordering. A
/// single-address storm is allowed to tie — one partition's ROP queue
/// is the bottleneck on both machines.
pub fn check_config_ordering(
    warps: usize,
    atomics: usize,
    addrs: usize,
) -> Result<(), InvariantFailure> {
    let trace = spread_storm(warps, atomics, addrs);
    let big = GpuConfig::rtx4090_sim();
    let small = GpuConfig::rtx3060_sim();
    let big_cycles = run(&big, AtomicPath::Baseline, &trace)?.cycles;
    let small_cycles = run(&small, AtomicPath::Baseline, &trace)?.cycles;
    let strict = addrs >= 16;
    if big_cycles > small_cycles || (strict && big_cycles == small_cycles) {
        return Err(fail(
            "config-ordering",
            format!(
                "sim: 4090-Sim took {big_cycles} cycles vs 3060-Sim {small_cycles} on a \
                 {addrs}-address storm (strict ordering expected: {strict})"
            ),
        ));
    }
    let profile = KernelProfile::from_stats(&TraceStats::compute(&trace));
    let big_model = baseline_cycles(&big.machine_model(), &profile);
    let small_model = baseline_cycles(&small.machine_model(), &profile);
    if big_model > small_model {
        return Err(fail(
            "config-ordering",
            format!("model: 4090-Sim {big_model} > 3060-Sim {small_model}"),
        ));
    }
    Ok(())
}

/// **Invariant `adaptive-wins-contended`** — on a single-hot-address
/// storm the ARC-HW adaptive path never takes more cycles than the
/// baseline (the reduction units offload the saturated ROP queue), and
/// the model's `predicted_hw_speedup` agrees the direction is >= 1.
pub fn check_adaptive_wins_contended(
    cfg: &GpuConfig,
    warps: usize,
    atomics: usize,
) -> Result<(), InvariantFailure> {
    let trace = storm(warps, atomics);
    let base = run(cfg, AtomicPath::Baseline, &trace)?.cycles;
    // Convert to `atomred` for the ARC run: plain atomics bypass the
    // reduction units entirely, so the adaptive path only differs on
    // converted kernels (paper §5.6).
    let arc = run(cfg, AtomicPath::ArcHw, &trace.clone().with_atomred())?.cycles;
    if arc > base {
        return Err(fail(
            "adaptive-wins-contended",
            format!("sim: ArcHw took {arc} cycles vs Baseline {base} on a hot storm"),
        ));
    }
    let profile = KernelProfile::from_stats(&TraceStats::compute(&trace));
    let predicted = predicted_hw_speedup(&cfg.machine_model(), &profile);
    if predicted < 1.0 {
        return Err(fail(
            "adaptive-wins-contended",
            format!("model: predicted_hw_speedup = {predicted} < 1 on a hot storm"),
        ));
    }
    Ok(())
}

/// **Invariant `threshold-crossover`** — the balancing threshold's
/// crossover direction (paper §4.4), on the simulator:
///
/// * contended small groups (8 lanes per address): always reducing
///   (threshold 0) beats never reducing (threshold 32) because each
///   software reduction collapses 8 ROP lane-values into one;
/// * contention-free (1 lane per address): the SW rewrite's shuffle and
///   instruction overhead buys nothing, so the rewritten kernel is no
///   faster than the untouched baseline at *any* threshold.
///
/// Stated on the simulator alone: the analytical model's mean-active
/// approximation sees 32 active lanes in both workloads and cannot
/// distinguish them — exactly the blindness that motivates empirical
/// threshold tuning in the paper.
pub fn check_threshold_crossover(cfg: &GpuConfig) -> Result<(), InvariantFailure> {
    let thr = |v: u8| BalanceThreshold::new(v).expect("threshold in range");
    let rewritten = |trace: &KernelTrace, v: u8| -> Result<u64, InvariantFailure> {
        let r = rewrite_kernel_sw(trace, &SwConfig::serialized(thr(v)));
        Ok(run(cfg, AtomicPath::Baseline, &r.trace)?.cycles)
    };

    let contended = grouped_storm(48, 4, 8);
    let always = rewritten(&contended, 0)?;
    let never = rewritten(&contended, 32)?;
    if always >= never {
        return Err(fail(
            "threshold-crossover",
            format!(
                "contended 8-lane groups: threshold 0 took {always} cycles, \
                 threshold 32 took {never} — reducing should win"
            ),
        ));
    }

    let free = grouped_storm(48, 4, 1);
    let plain = run(cfg, AtomicPath::Baseline, &free)?.cycles;
    for v in [0u8, 32] {
        let rw = rewritten(&free, v)?;
        if rw < plain {
            return Err(fail(
                "threshold-crossover",
                format!(
                    "contention-free: SW rewrite at threshold {v} took {rw} cycles, \
                     beating the untouched baseline at {plain} — overhead should not pay off"
                ),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Store / service equivalence.
// ---------------------------------------------------------------------

/// A unique scratch directory for one store-equivalence run. The caller
/// removes it when done; a crashed run leaves only temp-dir litter.
fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "arc-conformance-store-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The full observable output of one cell as comparable bytes:
/// serialized report, serialized telemetry, and the chrome-trace JSON.
fn cell_bytes(
    report: &KernelReport,
    telemetry: Option<&KernelTelemetry>,
    chrome: Option<&str>,
) -> Result<(String, String, String), InvariantFailure> {
    let enc = |label, r: Result<String, serde_json::Error>| {
        r.map_err(|e| fail("store-equivalence", format!("serializing {label}: {e}")))
    };
    let tel = match telemetry {
        Some(t) => enc("telemetry", serde_json::to_string(t))?,
        None => String::new(),
    };
    Ok((
        enc("report", serde_json::to_string(report))?,
        tel,
        chrome.unwrap_or_default().to_string(),
    ))
}

fn result_bytes(r: &SimResult) -> Result<(String, String, String), InvariantFailure> {
    cell_bytes(&r.report, r.telemetry.as_ref(), r.chrome.as_deref())
}

/// **Invariant `store-equivalence`** — the result store and the
/// `simserved` daemon are observationally invisible: a store hit is
/// byte-identical (report, telemetry, and chrome-trace serialization)
/// to a fresh engine run. Checked per atomic path (one canonical
/// technique each, plus a rewriting SW technique): a cold run through a
/// fresh store must match a store-less reference run; the bytes
/// persisted on disk must re-serialize to the same output; every warm
/// run across the engine matrix — SM workers {1, 2, 8} × fast-forward
/// {on, off} × epoch {per-cycle, auto}, knobs that are deliberately
/// *not* part of the store key — must hit and match; and a daemon
/// round-trip over the same store must serve the same bytes.
pub fn check_store_equivalence(
    cfg: &GpuConfig,
    trace: &KernelTrace,
) -> Result<(), InvariantFailure> {
    let dir = scratch_dir();
    let result = store_equivalence_in(cfg, trace, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn store_equivalence_in(
    cfg: &GpuConfig,
    trace: &KernelTrace,
    dir: &Path,
) -> Result<(), InvariantFailure> {
    const INV: &str = "store-equivalence";
    let err = |detail: String| fail(INV, detail);
    // One canonical technique per atomic path, plus SW-B to cover a
    // trace-rewriting technique sharing the baseline path.
    let techniques = [
        Technique::Baseline,
        Technique::ArcHw,
        Technique::SwB(BalanceThreshold::new(8).expect("threshold in range")),
        Technique::Lab,
        Technique::LabIdeal,
        Technique::Phi,
    ];
    let store = Arc::new(
        ResultStore::open(dir.join("store")).map_err(|e| err(format!("opening store: {e}")))?,
    );
    let trace = Arc::new(trace.clone());
    let digest = trace_digest(&trace);
    let tcfg = TelemetryConfig::every(4);

    // The engine knobs that must never change served bytes (they are
    // not part of the store key). The first combo does the cold run.
    let mut combos = Vec::new();
    for workers in [1usize, 2, 8] {
        for ff in [false, true] {
            for epoch in [EpochMode::PerCycle, EpochMode::Auto] {
                combos.push(EngineOpts {
                    workers: Some(workers),
                    fast_forward: Some(ff),
                    epoch: Some(epoch),
                });
            }
        }
    }

    let mut daemon =
        sim_service::daemon::spawn(dir.join("simserved.sock"), Some(Arc::clone(&store)), 2)
            .map_err(|e| err(format!("spawning daemon: {e}")))?;
    let client = DaemonClient::connect(daemon.socket_path())
        .map_err(|e| err(format!("connecting to daemon: {e}")))?;

    for technique in techniques {
        let req = SimRequest {
            config: cfg.clone(),
            technique,
            trace: Arc::clone(&trace),
            rewrite: true,
            telemetry: Some(tcfg.clone()),
            want_chrome: true,
            passes: PassPipeline::empty(),
            stage: None,
        };

        // Reference semantics: a fresh engine run with no store at all.
        let fresh = run_cell(None, &req, &combos[0])
            .map_err(|e| err(format!("{technique:?}: store-less reference run: {e:?}")))?;
        let want = result_bytes(&fresh)?;

        // Cold run populates the store and must already match.
        let cold = run_cell(Some(&store), &req, &combos[0])
            .map_err(|e| err(format!("{technique:?}: cold run: {e:?}")))?;
        if cold.cached {
            return Err(err(format!(
                "{technique:?}: cold run against an empty store claims `cached`"
            )));
        }
        if result_bytes(&cold)? != want {
            return Err(err(format!(
                "{technique:?}: cold store run diverged from the store-less reference"
            )));
        }

        // The persisted entry must re-serialize to the same bytes.
        let key = store_key(
            gpu_sim::SIM_VERSION,
            cfg,
            technique,
            true,
            Some(&tcfg),
            &digest,
            &PassPipeline::empty(),
        );
        let stored = store.get(&key).ok_or_else(|| {
            err(format!(
                "{technique:?}: entry absent right after cold populate"
            ))
        })?;
        let chrome = stored
            .chrome
            .clone()
            .or_else(|| stored.telemetry.as_ref().map(KernelTelemetry::chrome_trace));
        if cell_bytes(&stored.report, stored.telemetry.as_ref(), chrome.as_deref())? != want {
            return Err(err(format!(
                "{technique:?}: bytes persisted on disk diverged from the fresh serialization"
            )));
        }

        // Warm runs: every remaining engine combo must hit, byte-equal.
        for opts in &combos[1..] {
            let warm = run_cell(Some(&store), &req, opts)
                .map_err(|e| err(format!("{technique:?}: warm run {opts:?}: {e:?}")))?;
            if !warm.cached {
                return Err(err(format!(
                    "{technique:?}: warm run missed the store under {opts:?}"
                )));
            }
            if result_bytes(&warm)? != want {
                return Err(err(format!(
                    "{technique:?}: warm store hit diverged under {opts:?}"
                )));
            }
        }

        // Daemon round-trip over the same store: same bytes, from cache.
        let served = client
            .sim(WireCell {
                config: cfg.clone(),
                technique,
                trace: (*trace).clone(),
                rewrite: true,
                telemetry: Some(tcfg.clone()),
                want_chrome: true,
                passes: PassPipeline::empty(),
                stage: None,
            })
            .map_err(|e| err(format!("{technique:?}: daemon round-trip: {e}")))?;
        if !served.cached {
            return Err(err(format!(
                "{technique:?}: daemon missed the store it was spawned with"
            )));
        }
        if result_bytes(&served)? != want {
            return Err(err(format!(
                "{technique:?}: daemon round-trip diverged from the store-less reference"
            )));
        }
    }
    // Close the connection before joining the daemon: its handler
    // thread sits in a blocking read until the client hangs up.
    drop(client);
    daemon.shutdown();
    Ok(())
}

// ---------------------------------------------------------------------
// Trace-IR optimizer pass invariants.
// ---------------------------------------------------------------------

/// **Invariant `pass-equivalence`** — the optimizer pass pipeline
/// (`arc_core::passes`) is functionally invisible: for every pass
/// subset (the empty set, each pass alone, and all passes together),
/// the transformed trace's final gradient memory image matches the
/// unoptimized trace's within the oracle's documented f32 tolerance
/// (`tol(n, S) = (n + 4)·ε₃₂·max(S, 1)` per address — only the
/// coalescing pass reassociates sums, and it stays inside that bound).
/// The empty subset is held to a stronger standard: it must return the
/// *borrowed* input trace, so a build with the pipeline compiled in but
/// `ARC_PASSES` unset simulates byte-identically to a build without
/// it — pinned here by comparing serialized baseline reports.
///
/// The invariant also pins the optimizer's fast paths: the fused
/// single-traversal engine must match the composed per-pass reference
/// byte-for-byte (trace, stats, and borrow decision) on every subset,
/// and `PassCache` memoization must be observationally invisible — a
/// warm hit returns the pointer-identical `Arc`, and simulating the
/// cached trace matches a fresh optimization's report/telemetry/chrome
/// bytes for SM worker counts {1, 2, 8}.
pub fn check_pass_equivalence(
    cfg: &GpuConfig,
    trace: &KernelTrace,
) -> Result<(), InvariantFailure> {
    const INV: &str = "pass-equivalence";
    let err = |detail: String| fail(INV, detail);

    // Per-address contribution counts and absolute sums from the
    // *unoptimized* trace drive the tolerance (same accounting as the
    // functional oracle's rewrite check).
    let mut reference = warp_trace::GlobalMemory::new();
    reference.apply_trace(trace);
    let mut contribs: std::collections::HashMap<u64, (u64, f64)> = std::collections::HashMap::new();
    for warp in trace.warps() {
        for instr in &warp.instrs {
            if let warp_trace::Instr::Atomic(b) | warp_trace::Instr::AtomRed(b) = instr {
                for param in &b.params {
                    for op in param.ops() {
                        let e = contribs.entry(op.addr).or_insert((0, 0.0));
                        e.0 += 1;
                        e.1 += f64::from(op.value).abs();
                    }
                }
            }
        }
    }

    let mut subsets: Vec<PassPipeline> = vec![PassPipeline::empty()];
    subsets.extend(Pass::ALL.iter().map(|&p| PassPipeline::new([p])));
    subsets.push(PassPipeline::all());

    for pipeline in &subsets {
        let piped = pipeline.apply(trace);
        let key = pipeline.key();

        // Passes only ever remove or merge work.
        if piped.total_issue_slots() > trace.total_issue_slots() {
            return Err(err(format!(
                "[{key}] grew the trace: {} issue slots from {}",
                piped.total_issue_slots(),
                trace.total_issue_slots()
            )));
        }

        let mut mem = warp_trace::GlobalMemory::new();
        mem.apply_trace(&piped);
        for (addr, want) in reference.iter() {
            let got = mem.read_f64(addr);
            let (n, abs_sum) = contribs.get(&addr).copied().unwrap_or((1, 1.0));
            let tol = crate::oracle::tolerance(n, abs_sum);
            if (got - want).abs() > tol {
                return Err(err(format!(
                    "[{key}] addr {addr:#x} ({n} contributions): got {got}, want {want} \
                     (|diff| {} > tol {tol})",
                    (got - want).abs(),
                )));
            }
        }
        for (addr, got) in mem.iter() {
            if !reference.iter().any(|(a, _)| a == addr) {
                return Err(err(format!(
                    "[{key}] invented gradient word at addr {addr:#x} = {got}"
                )));
            }
        }
    }

    // Empty-set byte identity: the pipeline must hand back the borrowed
    // input (no rebuild, however faithful, is accepted) and the
    // simulated baseline report must serialize to the same bytes as a
    // run that never saw the pipeline.
    let empty = PassPipeline::empty();
    let piped = empty.apply(trace);
    if !matches!(piped, std::borrow::Cow::Borrowed(_)) {
        return Err(err(
            "empty pipeline returned an owned trace instead of the borrowed input".to_string(),
        ));
    }
    let plain = run(cfg, AtomicPath::Baseline, trace)?;
    let through = run(cfg, AtomicPath::Baseline, &piped)?;
    let plain_bytes =
        serde_json::to_string(&plain).map_err(|e| err(format!("serializing plain report: {e}")))?;
    let through_bytes = serde_json::to_string(&through)
        .map_err(|e| err(format!("serializing piped report: {e}")))?;
    if plain_bytes != through_bytes {
        return Err(err(
            "empty pipeline changed the serialized baseline report".to_string()
        ));
    }

    // Fused-vs-composed byte identity: the single-traversal engine
    // behind `run` must reproduce the composed per-pass reference
    // exactly for every subset — serialized trace bytes, per-pass
    // stats, and the borrowed-vs-owned (zero-stat) decision.
    for pipeline in &subsets {
        let key = pipeline.key();
        let (fused, fused_stats) = pipeline.run(trace);
        let (composed, composed_stats) = pipeline.run_composed(trace);
        if fused_stats != composed_stats {
            return Err(err(format!(
                "[{key}] fused PassStats diverged from the composed reference: \
                 {fused_stats:?} vs {composed_stats:?}"
            )));
        }
        let fused_borrowed = matches!(fused, std::borrow::Cow::Borrowed(_));
        let composed_borrowed = matches!(composed, std::borrow::Cow::Borrowed(_));
        if fused_borrowed != composed_borrowed {
            return Err(err(format!(
                "[{key}] fused borrow decision diverged: borrowed {fused_borrowed} \
                 vs composed {composed_borrowed}"
            )));
        }
        let fused_bytes = serde_json::to_string(fused.as_ref())
            .map_err(|e| err(format!("serializing fused trace: {e}")))?;
        let composed_bytes = serde_json::to_string(composed.as_ref())
            .map_err(|e| err(format!("serializing composed trace: {e}")))?;
        if fused_bytes != composed_bytes {
            return Err(err(format!(
                "[{key}] fused trace bytes diverged from the composed reference"
            )));
        }
    }

    // Memoization: a warm `PassCache` hit must hand back the *same*
    // `Arc` (pointer equality — no rebuild, however faithful, is
    // accepted), and simulating the cached trace must be byte-identical
    // (report, telemetry, chrome trace) to simulating a freshly
    // optimized one, for any SM worker count.
    let all = PassPipeline::all();
    let cache = PassCache::new();
    let cold = cache.apply(&all, trace.name(), trace);
    let warm = cache.apply(&all, trace.name(), trace);
    if !Arc::ptr_eq(&cold, &warm) {
        return Err(err(
            "warm pass-cache hit returned a different Arc than the cold fill".to_string(),
        ));
    }
    let fresh = all.apply(trace);
    for workers in [1usize, 2, 8] {
        let run_tel = |t: &KernelTrace| {
            Simulator::new(cfg.clone(), AtomicPath::Baseline)
                .map_err(|e| fail("sim-construct", format!("{e:?}")))?
                .with_sm_workers(workers)
                .with_telemetry(TelemetryConfig::every(4))
                .run_with_telemetry(t)
                .map_err(|e| fail("sim-run", format!("{e:?}")))
        };
        let (cold_report, cold_tel) = run_tel(&fresh)?;
        let (warm_report, warm_tel) = run_tel(&warm)?;
        let cold_chrome = cold_tel.as_ref().map(KernelTelemetry::chrome_trace);
        let warm_chrome = warm_tel.as_ref().map(KernelTelemetry::chrome_trace);
        let cold_bytes = cell_bytes(&cold_report, cold_tel.as_ref(), cold_chrome.as_deref())?;
        let warm_bytes = cell_bytes(&warm_report, warm_tel.as_ref(), warm_chrome.as_deref())?;
        if cold_bytes != warm_bytes {
            return Err(err(format!(
                "cached optimized trace diverged from a fresh optimization \
                 under {workers} SM workers"
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Determinism and observability invariants.
// ---------------------------------------------------------------------

/// **Invariant `worker-determinism`** — the parallel cycle loop is
/// bit-identical: simulating with 1, 2, and 8 SM workers produces the
/// same [`KernelReport`] and the same telemetry, on every atomic path.
pub fn check_worker_determinism(
    cfg: &GpuConfig,
    trace: &KernelTrace,
) -> Result<(), InvariantFailure> {
    for path in AtomicPath::ALL {
        let mut reference = None;
        for workers in [1usize, 2, 8] {
            let sim = Simulator::new(cfg.clone(), path)
                .map_err(|e| fail("sim-construct", format!("{path:?}: {e:?}")))?
                .with_sm_workers(workers)
                .with_telemetry(TelemetryConfig::every(4));
            let out = sim
                .run_with_telemetry(trace)
                .map_err(|e| fail("sim-run", format!("{path:?}: {e:?}")))?;
            match &reference {
                None => reference = Some(out),
                Some(want) => {
                    if out != *want {
                        return Err(fail(
                            "worker-determinism",
                            format!(
                                "{path:?}: {workers} SM workers diverged from the \
                                 single-worker report/telemetry"
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// **Invariant `fast-forward`** — the event-driven fast-forward engine
/// is an observationally pure optimization: with `ARC_FF=1` and
/// `ARC_FF=0` semantics (forced through `with_fast_forward`, so the
/// check is independent of the live environment) the simulator produces
/// byte-identical [`KernelReport`]s, telemetry, and chrome-trace
/// exports, on every atomic path and across `ARC_SIM_WORKERS`-style
/// worker counts 1, 2 and 8.
pub fn check_fast_forward(cfg: &GpuConfig, trace: &KernelTrace) -> Result<(), InvariantFailure> {
    for path in AtomicPath::ALL {
        for workers in [1usize, 2, 8] {
            let engine = |ff: bool| {
                Simulator::new(cfg.clone(), path)
                    .map_err(|e| fail("sim-construct", format!("{path:?}: {e:?}")))?
                    .with_sm_workers(workers)
                    .with_fast_forward(ff)
                    .with_telemetry(TelemetryConfig::every(4))
                    .run_with_telemetry(trace)
                    .map_err(|e| fail("sim-run", format!("{path:?}: {e:?}")))
            };
            let naive = engine(false)?;
            let fast = engine(true)?;
            if fast.0 != naive.0 {
                return Err(fail(
                    "fast-forward",
                    format!(
                        "{path:?}/{workers} workers: fast-forward report diverged from \
                         the naive cycle loop"
                    ),
                ));
            }
            if fast.1 != naive.1 {
                return Err(fail(
                    "fast-forward",
                    format!(
                        "{path:?}/{workers} workers: fast-forward telemetry diverged \
                         from the naive cycle loop"
                    ),
                ));
            }
            let naive_trace = naive.1.as_ref().map(KernelTelemetry::chrome_trace);
            let fast_trace = fast.1.as_ref().map(KernelTelemetry::chrome_trace);
            if fast_trace != naive_trace {
                return Err(fail(
                    "fast-forward",
                    format!(
                        "{path:?}/{workers} workers: fast-forward chrome-trace bytes \
                         diverged from the naive cycle loop"
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// **Invariant `epoch-equivalence`** — epoch-based SM synchronization
/// is observationally pure: across `ARC_SIM_EPOCH` ∈ {1, 4, auto}
/// (forced through `with_epoch`, so the check is independent of the
/// live environment) × SM workers {1, 2, 8} × fast-forward on/off, the
/// simulator produces byte-identical [`KernelReport`]s, telemetry, and
/// chrome-trace exports on every atomic path. The per-cycle
/// single-worker naive loop is the reference semantics.
pub fn check_epoch_equivalence(
    cfg: &GpuConfig,
    trace: &KernelTrace,
) -> Result<(), InvariantFailure> {
    let modes = [
        ("1", EpochMode::PerCycle),
        ("4", EpochMode::Fixed(4)),
        ("auto", EpochMode::Auto),
    ];
    for path in AtomicPath::ALL {
        let mut reference = None;
        for (label, mode) in modes {
            for workers in [1usize, 2, 8] {
                for ff in [true, false] {
                    let out = Simulator::new(cfg.clone(), path)
                        .map_err(|e| fail("sim-construct", format!("{path:?}: {e:?}")))?
                        .with_epoch(mode)
                        .with_sm_workers(workers)
                        .with_fast_forward(ff)
                        .with_telemetry(TelemetryConfig::every(4))
                        .run_with_telemetry(trace)
                        .map_err(|e| fail("sim-run", format!("{path:?}: {e:?}")))?;
                    let chrome = out.1.as_ref().map(KernelTelemetry::chrome_trace);
                    match &reference {
                        None => reference = Some((out, chrome)),
                        Some((want, want_chrome)) => {
                            if out != *want || chrome != *want_chrome {
                                return Err(fail(
                                    "epoch-equivalence",
                                    format!(
                                        "{path:?}: ARC_SIM_EPOCH={label}, {workers} workers, \
                                         ff={ff} diverged from the per-cycle reference \
                                         (report/telemetry/chrome-trace bytes)"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// **Invariant `telemetry-consistency`** — the telemetry layer is a
/// view, not a second set of books: every counter series' cumulative
/// total equals the corresponding [`KernelReport`] counter, stall
/// series match the stall breakdown, and the `warps.remaining` gauge
/// has drained to zero at kernel end.
pub fn check_telemetry_consistency(
    cfg: &GpuConfig,
    path: AtomicPath,
    trace: &KernelTrace,
) -> Result<(), InvariantFailure> {
    let sim = Simulator::new(cfg.clone(), path)
        .map_err(|e| fail("sim-construct", format!("{path:?}: {e:?}")))?
        .with_telemetry(TelemetryConfig::every(4));
    let (report, telemetry) = sim
        .run_with_telemetry(trace)
        .map_err(|e| fail("sim-run", format!("{path:?}: {e:?}")))?;
    let t = telemetry.ok_or_else(|| {
        fail(
            "telemetry-consistency",
            "telemetry enabled but none returned".into(),
        )
    })?;

    let c = &report.counters;
    let s = &report.stalls;
    let pairs: [(&str, u64); 10] = [
        ("issue.instructions", c.instructions_issued),
        ("icnt.flits", c.icnt_flits),
        ("rop.lane_ops", c.rop_lane_ops),
        ("redunit.lane_ops", c.redunit_lane_ops),
        ("lsu.accepted", c.lsu_accepted),
        ("atomic.redunit_tx", c.redunit_transactions),
        ("stall.lsu_full", s.lsu_full),
        ("stall.long_scoreboard", s.long_scoreboard),
        ("stall.no_warp", s.no_warp),
        ("stall.other", s.other),
    ];
    for (name, want) in pairs {
        let series = t.series(name).ok_or_else(|| {
            fail(
                "telemetry-consistency",
                format!("{path:?}: series `{name}` missing"),
            )
        })?;
        if series.total != want as f64 {
            return Err(fail(
                "telemetry-consistency",
                format!(
                    "{path:?}: series `{name}` totals {} but the report counter is {want}",
                    series.total
                ),
            ));
        }
    }
    let remaining = t.series("warps.remaining").ok_or_else(|| {
        fail(
            "telemetry-consistency",
            format!("{path:?}: series `warps.remaining` missing"),
        )
    })?;
    if remaining.total != 0.0 {
        return Err(fail(
            "telemetry-consistency",
            format!(
                "{path:?}: warps.remaining gauge ended at {} — kernel did not drain",
                remaining.total
            ),
        ));
    }
    Ok(())
}

/// Runs every per-trace invariant (conservation laws, worker
/// determinism, fast-forward and epoch-synchronization equivalence,
/// result-store/daemon equivalence, optimizer-pass equivalence,
/// telemetry consistency on the baseline and ARC-HW paths) against one
/// trace/config pair. The workload-constructing trend
/// invariants ([`check_rop_monotonicity`], [`check_config_ordering`],
/// [`check_adaptive_wins_contended`], [`check_threshold_crossover`])
/// are invoked separately by the suite since they pick their own
/// traces or sweep their own configs.
pub fn check_trace(cfg: &GpuConfig, trace: &KernelTrace) -> Result<(), InvariantFailure> {
    let issue_slots = trace.total_issue_slots();
    let requests = trace.total_atomic_requests();
    // One sim per path; all three counter laws applied to the same run.
    for path in AtomicPath::ALL {
        let c = run(cfg, path, trace)?.counters;
        issue_law(path, &c, issue_slots)?;
        flit_law(path, &c)?;
        atomic_law(path, &c, requests)?;
    }
    // The ArcHw ledger only has non-trivial reduction-unit terms on
    // `atomred` kernels, so check the converted trace too.
    let converted = trace.clone().with_atomred();
    let c = run(cfg, AtomicPath::ArcHw, &converted)?.counters;
    issue_law(AtomicPath::ArcHw, &c, converted.total_issue_slots())?;
    flit_law(AtomicPath::ArcHw, &c)?;
    atomic_law(AtomicPath::ArcHw, &c, requests)?;
    check_worker_determinism(cfg, trace)?;
    check_fast_forward(cfg, trace)?;
    check_epoch_equivalence(cfg, trace)?;
    check_store_equivalence(cfg, trace)?;
    check_pass_equivalence(cfg, trace)?;
    check_telemetry_consistency(cfg, AtomicPath::Baseline, trace)?;
    check_telemetry_consistency(cfg, AtomicPath::ArcHw, trace)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_holds_on_a_storm() {
        let t = storm(6, 3);
        check_trace(&GpuConfig::tiny(), &t).unwrap();
    }

    #[test]
    fn conservation_holds_on_an_empty_trace() {
        let t = KernelTrace::new("empty", KernelKind::GradCompute, vec![]);
        check_trace(&GpuConfig::tiny(), &t).unwrap();
    }

    #[test]
    fn trend_invariants_hold() {
        check_rop_monotonicity(&storm(6, 3)).unwrap();
        check_adaptive_wins_contended(&GpuConfig::tiny(), 8, 4).unwrap();
    }

    #[test]
    fn constructors_have_the_advertised_structure() {
        let s = storm(4, 2);
        assert_eq!(s.total_atomic_requests(), 4 * 2 * 32);
        let stats = TraceStats::compute(&grouped_storm(2, 2, 8));
        assert!((stats.mean_active_lanes() - 32.0).abs() < 1e-9);
        let spread = spread_storm(2, 3, 4);
        assert_eq!(spread.total_atomic_requests(), 2 * 3 * 32);
    }
}

//! Deterministic, seeded generation of adversarial kernel traces and
//! GPU configurations.
//!
//! The fuzzer is intentionally biased toward the shapes that have
//! historically broken atomic-reduction machinery:
//!
//! * **degenerate warps** — empty warps, empty atomic instructions,
//!   single-lane atomics, warps with no atomics at all;
//! * **single-hot-address storms** — every lane of every warp hammers
//!   one gradient word (the paper's §3.1 Observation 1 taken to its
//!   extreme, and the worst case for ROP serialization);
//! * **full-densify warps** — all 32 lanes active on one address, the
//!   only shape SW-B's butterfly accepts without the Fig. 17 transform;
//! * **scatter mixes** — per-lane random addresses with partial masks,
//!   the shape that defeats warp-level reduction entirely;
//! * **multi-parameter bundles** — 3DGS-style `num_params > 1` bundles,
//!   both warp-uniform and per-thread (`non_uniform`, SW-B-ineligible).
//!
//! Every generator consumes only a [`rand::rngs::StdRng`] seeded from a
//! `(base seed, case index)` pair, so any failing case is reproducible
//! from the two integers a failure message prints.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use warp_trace::{
    AtomicBundle, AtomicInstr, ComputeKind, KernelKind, KernelTrace, LaneOp, WarpTrace,
    WarpTraceBuilder, WARP_SIZE,
};

use gpu_sim::GpuConfig;

/// The adversarial trace families the fuzzer cycles through.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceShape {
    /// Empty warps, empty atomics, single-lane atomics.
    Degenerate,
    /// Every warp's every atomic targets one shared hot address.
    HotAddressStorm,
    /// Full 32-lane single-address atomics (butterfly/densify eligible).
    FullDensify,
    /// Partial masks with per-lane scattered addresses.
    ScatterMix,
    /// Multi-parameter bundles, mixing uniform and non-uniform loops.
    MultiParamBundle,
    /// A handful of warps separated by huge load-latency gaps — almost
    /// every cycle is dead time, the shape where the event-driven
    /// fast-forward engine must shine and where off-by-one jump bugs
    /// hide.
    SparseIdle,
    /// Every SM blasts multi-unit traffic (full-warp atomics on distinct
    /// words, multi-sector loads and stores) across all memory
    /// partitions at once, holding queue occupancies near their
    /// capacity boundary — the regime where the epoch-safety analysis
    /// must flip between accept-certain, reject-certain, and per-cycle
    /// stepping without changing observable behavior.
    IcntFlood,
    /// Unrolled-loop shape: each warp repeats near-identical
    /// `load; compute; same-address atomic` iterations, the
    /// redundant-load / mergeable-atomic structure the trace-IR
    /// optimizer passes (`arc_core::passes`) are built to shrink.
    /// Occasional stores break the spans so hoisting must respect
    /// write barriers.
    LoopHeavy,
    /// Radix-sort digit-histogram bursts: many warps all hammering the
    /// same tiny bank of counter words (one per 4-bit digit), each lane
    /// incrementing the counter its key's digit selects. The shape of
    /// the tile-binned 3DGS sort front-end — few distinct addresses,
    /// heavy inter-warp contention, moderate per-instruction
    /// same-address multiplicity — which routes differently from both
    /// hot storms (one word) and scatter mixes (many words).
    SortHistogram,
}

impl TraceShape {
    /// All shapes in generation order. New shapes are appended so the
    /// `case -> shape` mapping of earlier cases (and everything derived
    /// from their RNG streams, like the checked-in golden) is stable.
    pub const ALL: [TraceShape; 9] = [
        TraceShape::Degenerate,
        TraceShape::HotAddressStorm,
        TraceShape::FullDensify,
        TraceShape::ScatterMix,
        TraceShape::MultiParamBundle,
        TraceShape::SparseIdle,
        TraceShape::IcntFlood,
        TraceShape::LoopHeavy,
        TraceShape::SortHistogram,
    ];

    /// Short label used in trace names and failure messages.
    pub fn label(self) -> &'static str {
        match self {
            TraceShape::Degenerate => "degenerate",
            TraceShape::HotAddressStorm => "hot-storm",
            TraceShape::FullDensify => "full-densify",
            TraceShape::ScatterMix => "scatter-mix",
            TraceShape::MultiParamBundle => "multi-param",
            TraceShape::SparseIdle => "sparse-idle",
            TraceShape::IcntFlood => "icnt-flood",
            TraceShape::LoopHeavy => "loop-heavy",
            TraceShape::SortHistogram => "sort-histogram",
        }
    }
}

/// Deterministic trace/config generator for one `(seed, case)` pair.
#[derive(Debug)]
pub struct Fuzzer {
    rng: StdRng,
    seed: u64,
    case: u64,
}

impl Fuzzer {
    /// Creates the generator for fuzz case `case` of stream `seed`.
    ///
    /// Each case gets an independent RNG stream derived from both
    /// numbers, so inserting a new case never perturbs later ones.
    pub fn new(seed: u64, case: u64) -> Self {
        // SplitMix-style mixing keeps (seed, case) streams independent.
        let mixed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(case.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .rotate_left(31);
        Fuzzer {
            rng: StdRng::seed_from_u64(mixed),
            seed,
            case,
        }
    }

    /// The shape this case exercises (cases cycle through
    /// [`TraceShape::ALL`]).
    pub fn shape(&self) -> TraceShape {
        TraceShape::ALL[(self.case % TraceShape::ALL.len() as u64) as usize]
    }

    /// Generates this case's kernel trace. The trace name embeds
    /// `(shape, seed, case)` so any report naming the kernel is already
    /// a reproduction recipe.
    pub fn trace(&mut self) -> KernelTrace {
        let shape = self.shape();
        let name = format!("fuzz-{}-s{:#x}-c{}", shape.label(), self.seed, self.case);
        let warps = match shape {
            TraceShape::Degenerate => self.degenerate_warps(),
            TraceShape::HotAddressStorm => self.hot_storm_warps(),
            TraceShape::FullDensify => self.full_densify_warps(),
            TraceShape::ScatterMix => self.scatter_warps(),
            TraceShape::MultiParamBundle => self.multi_param_warps(),
            TraceShape::SparseIdle => self.sparse_idle_warps(),
            TraceShape::IcntFlood => self.icnt_flood_warps(),
            TraceShape::LoopHeavy => self.loop_heavy_warps(),
            TraceShape::SortHistogram => self.sort_histogram_warps(),
        };
        KernelTrace::new(name, KernelKind::GradCompute, warps)
    }

    /// Generates a stressed-but-valid GPU configuration: the tiny
    /// preset with queue capacities, drain rates, and ROP counts pushed
    /// to extremes (single-slot queues up to multi-thousand-entry
    /// ones). Always passes `GpuConfig::validate()` and keeps the
    /// deadlock guard (`max_cycles`) in place.
    pub fn config(&mut self) -> GpuConfig {
        let mut cfg = GpuConfig::tiny();
        cfg.name = format!("Fuzz-Tiny-s{:#x}-c{}", self.seed, self.case);
        cfg.lsu_queue_capacity = *pick(&mut self.rng, &[1, 2, 8, 128, 4096]);
        cfg.lsu_drain_rate = *pick(&mut self.rng, &[1, 2, 4, 64]);
        cfg.partition_queue_capacity = *pick(&mut self.rng, &[1, 4, 256, 8192]);
        cfg.rops_per_partition = *pick(&mut self.rng, &[1, 2, 8]);
        cfg.redunit_queue_capacity = *pick(&mut self.rng, &[1, 4, 32]);
        cfg.ldst_dispatch_width = *pick(&mut self.rng, &[1, 8, 32]);
        cfg.max_warps_per_subcore = *pick(&mut self.rng, &[1, 4, 16]);
        // Load-latency extremes (drawn after the queue knobs so older
        // seed/case streams keep their queue geometry): multi-thousand
        // cycle DRAM gaps make almost every cycle dead time, which is
        // exactly where fast-forward jump arithmetic must stay exact.
        cfg.l2_load_latency = *pick(&mut self.rng, &[20, 200, 2000]);
        cfg.dram_extra_latency = *pick(&mut self.rng, &[30, 500, 5000]);
        cfg.l2_hit_rate = *pick(&mut self.rng, &[1.0, 0.97, 0.5]);
        cfg.validate().expect("fuzzed config must stay valid");
        cfg
    }

    // --- trace families -------------------------------------------------

    fn degenerate_warps(&mut self) -> Vec<WarpTrace> {
        let n = self.rng.gen_range(1..=6usize);
        let mut warps = Vec::with_capacity(n);
        for _ in 0..n {
            match self.rng.gen_range(0..4u32) {
                // A completely empty warp.
                0 => warps.push(WarpTrace::new()),
                // Compute/loads only — no atomics at all.
                1 => {
                    let mut b = WarpTraceBuilder::new();
                    b.compute_ffma(self.rng.gen_range(1..=8u16)).load(1);
                    warps.push(b.finish());
                }
                // An atomic instruction with zero active lanes.
                2 => {
                    let mut b = WarpTraceBuilder::new();
                    b.atomic(AtomicInstr::new(vec![]));
                    warps.push(b.finish());
                }
                // Single-lane atomics on random lanes.
                _ => {
                    let mut b = WarpTraceBuilder::new();
                    for _ in 0..self.rng.gen_range(1..=4usize) {
                        let lane = self.rng.gen_range(0..WARP_SIZE as u8);
                        b.atomic(AtomicInstr::new(vec![LaneOp {
                            lane,
                            addr: self.addr(),
                            value: self.value(),
                        }]));
                    }
                    warps.push(b.finish());
                }
            }
        }
        warps
    }

    fn hot_storm_warps(&mut self) -> Vec<WarpTrace> {
        let hot = self.addr();
        let warps = self.rng.gen_range(2..=12usize);
        let atomics = self.rng.gen_range(2..=10usize);
        (0..warps)
            .map(|_| {
                let mut b = WarpTraceBuilder::new();
                for _ in 0..atomics {
                    let mask = self.lane_mask(1..=WARP_SIZE);
                    let ops = mask
                        .iter()
                        .map(|&lane| LaneOp {
                            lane,
                            addr: hot,
                            value: self.value(),
                        })
                        .collect();
                    b.compute_fp32(1).atomic(AtomicInstr::new(ops));
                }
                b.finish()
            })
            .collect()
    }

    fn full_densify_warps(&mut self) -> Vec<WarpTrace> {
        let warps = self.rng.gen_range(1..=8usize);
        (0..warps)
            .map(|_| {
                let mut b = WarpTraceBuilder::new();
                for _ in 0..self.rng.gen_range(1..=6usize) {
                    let addr = self.addr();
                    let mut values = [0.0f32; WARP_SIZE];
                    for v in &mut values {
                        *v = self.value();
                    }
                    b.atomic(AtomicInstr::same_address(addr, &values));
                }
                b.finish()
            })
            .collect()
    }

    fn scatter_warps(&mut self) -> Vec<WarpTrace> {
        let warps = self.rng.gen_range(1..=8usize);
        (0..warps)
            .map(|_| {
                let mut b = WarpTraceBuilder::new();
                for _ in 0..self.rng.gen_range(1..=6usize) {
                    let mask = self.lane_mask(1..=WARP_SIZE);
                    let ops = mask
                        .iter()
                        .map(|&lane| LaneOp {
                            lane,
                            addr: self.addr(),
                            value: self.value(),
                        })
                        .collect();
                    b.load(self.rng.gen_range(1..=4u16))
                        .atomic(AtomicInstr::new(ops));
                }
                b.store(1);
                b.finish()
            })
            .collect()
    }

    fn multi_param_warps(&mut self) -> Vec<WarpTrace> {
        let warps = self.rng.gen_range(1..=6usize);
        (0..warps)
            .map(|_| {
                let mut b = WarpTraceBuilder::new();
                for _ in 0..self.rng.gen_range(1..=4usize) {
                    let params = self.rng.gen_range(1..=9usize);
                    let mask = self.lane_mask(1..=WARP_SIZE);
                    // All parameters share the active mask (as in 3DGS)
                    // but target distinct gradient arrays.
                    let instrs: Vec<AtomicInstr> = (0..params)
                        .map(|p| {
                            let base = self.addr() + (p as u64) * 0x1_0000;
                            let ops = mask
                                .iter()
                                .map(|&lane| LaneOp {
                                    lane,
                                    addr: base,
                                    value: self.value(),
                                })
                                .collect();
                            AtomicInstr::new(ops)
                        })
                        .collect();
                    let bundle = if self.rng.gen_bool(0.5) {
                        AtomicBundle::new(instrs)
                    } else {
                        AtomicBundle::non_uniform(instrs)
                    };
                    b.compute(ComputeKind::IntAlu, 2).atomic_bundle(bundle);
                }
                b.finish()
            })
            .collect()
    }

    fn sparse_idle_warps(&mut self) -> Vec<WarpTrace> {
        // Deliberately tiny population: with 1-3 warps spread across the
        // machine, most sub-cores idle and the few busy ones spend their
        // time parked on outstanding loads. Each iteration is a load
        // dependency chain with an optional trickle of compute and a
        // rare single-lane atomic, so the simulated-cycle count is
        // dominated by (fuzzed, possibly multi-thousand-cycle) load
        // latency rather than throughput.
        let warps = self.rng.gen_range(1..=3usize);
        (0..warps)
            .map(|_| {
                let mut b = WarpTraceBuilder::new();
                for _ in 0..self.rng.gen_range(2..=5usize) {
                    b.load(self.rng.gen_range(1..=2u16));
                    if self.rng.gen_bool(0.5) {
                        b.compute_fp32(1);
                    }
                    if self.rng.gen_bool(0.3) {
                        let lane = self.rng.gen_range(0..WARP_SIZE as u8);
                        b.atomic(AtomicInstr::new(vec![LaneOp {
                            lane,
                            addr: self.addr(),
                            value: self.value(),
                        }]));
                    }
                }
                b.finish()
            })
            .collect()
    }

    fn icnt_flood_warps(&mut self) -> Vec<WarpTrace> {
        // Enough warps to keep every SM of the tiny config resident, and
        // every instruction moves multi-unit traffic: full-warp atomics
        // on per-instruction distinct words (striding the partition
        // interleave), multi-sector loads, and an occasional store
        // burst. The sustained cross-SM flood keeps partition queues
        // hovering at their capacity boundary.
        let warps = self.rng.gen_range(6..=12usize);
        let atomics = self.rng.gen_range(2..=6usize);
        (0..warps)
            .map(|wi| {
                let mut b = WarpTraceBuilder::new();
                for a in 0..atomics {
                    let addr = ((wi * atomics + a) as u64) * 256;
                    let mut values = [0.0f32; WARP_SIZE];
                    for v in &mut values {
                        *v = self.value();
                    }
                    b.load(self.rng.gen_range(2..=8u16));
                    b.atomic(AtomicInstr::same_address(addr, &values));
                    if self.rng.gen_bool(0.5) {
                        b.store(self.rng.gen_range(1..=4u16));
                    }
                }
                b.finish()
            })
            .collect()
    }

    fn loop_heavy_warps(&mut self) -> Vec<WarpTrace> {
        // An unrolled gradient-accumulation loop: every iteration
        // re-issues the same-sector load, a short compute burst, and an
        // atomic on the warp's accumulator word. Back-to-back
        // iterations are exactly what load hoisting (duplicate load,
        // no intervening store) and atomic coalescing (same-address
        // atomics separated only by compute) fold away; the occasional
        // store closes both windows mid-warp, so passes must re-open
        // them on the far side.
        let warps = self.rng.gen_range(2..=6usize);
        (0..warps)
            .map(|_| {
                let accumulator = self.addr();
                let sectors = self.rng.gen_range(1..=4u16);
                let mask = self.lane_mask(1..=WARP_SIZE);
                let mut b = WarpTraceBuilder::new();
                for _ in 0..self.rng.gen_range(3..=10usize) {
                    b.load(sectors);
                    b.compute_fp32(self.rng.gen_range(1..=3u16));
                    let ops = mask
                        .iter()
                        .map(|&lane| LaneOp {
                            lane,
                            addr: accumulator,
                            value: self.value(),
                        })
                        .collect();
                    b.atomic(AtomicInstr::new(ops));
                    if self.rng.gen_bool(0.2) {
                        b.store(1);
                    }
                }
                b.finish()
            })
            .collect()
    }

    fn sort_histogram_warps(&mut self) -> Vec<WarpTrace> {
        // A radix-sort counting pass over random keys: every warp runs
        // several key-chunk iterations, and each iteration ends in one
        // atomic where every active lane bumps the counter word its
        // key digit selects. All warps share the same 16-word counter
        // bank, so the inter-warp collision rate is maximal while the
        // per-instruction same-address multiplicity stays moderate
        // (32 lanes over up to 16 words) — between the hot-storm and
        // scatter extremes the other shapes pin down.
        let digits = *pick(&mut self.rng, &[4usize, 8, 16]);
        let base = self.rng.gen_range(0..4u64) * 0x100;
        let warps = self.rng.gen_range(6..=16usize);
        (0..warps)
            .map(|_| {
                let mut b = WarpTraceBuilder::new();
                for iter in 0..self.rng.gen_range(2..=6usize) {
                    if iter % 2 == 0 {
                        b.load(self.rng.gen_range(2..=4u16)); // key chunk
                    }
                    b.compute(ComputeKind::IntAlu, 2); // shift + mask
                    let mask = self.lane_mask(8..=WARP_SIZE);
                    let ops = mask
                        .iter()
                        .map(|&lane| LaneOp {
                            lane,
                            addr: base + u64::from(self.rng.gen_range(0..digits as u32)) * 4,
                            value: 1.0,
                        })
                        .collect();
                    b.atomic(AtomicInstr::new(ops));
                }
                b.finish()
            })
            .collect()
    }

    // --- primitive draws ------------------------------------------------

    /// A word-aligned gradient address from a small pool, so distinct
    /// atomics collide often (collisions are where reductions act).
    fn addr(&mut self) -> u64 {
        u64::from(self.rng.gen_range(0..64u32)) * 4
    }

    /// A gradient value in `[-1, 1]`. Magnitudes are bounded so the
    /// documented oracle tolerance (a function of contribution count
    /// and absolute sum) stays tight.
    fn value(&mut self) -> f32 {
        self.rng.gen_range(-1.0f32..=1.0)
    }

    /// A strictly-ascending random lane subset of the requested size
    /// range.
    fn lane_mask(&mut self, size: std::ops::RangeInclusive<usize>) -> Vec<u8> {
        let want = self.rng.gen_range(size).min(WARP_SIZE);
        let mut lanes: Vec<u8> = (0..WARP_SIZE as u8).collect();
        // Partial Fisher-Yates: the first `want` entries are a uniform
        // sample without replacement.
        for i in 0..want {
            let j = self.rng.gen_range(i..WARP_SIZE);
            lanes.swap(i, j);
        }
        lanes.truncate(want);
        lanes.sort_unstable();
        lanes
    }
}

fn pick<'a, T, R: Rng>(rng: &mut R, options: &'a [T]) -> &'a T {
    &options[rng.gen_range(0..options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_and_case_is_reproducible() {
        let a = Fuzzer::new(42, 7).trace();
        let b = Fuzzer::new(42, 7).trace();
        assert_eq!(a, b);
    }

    #[test]
    fn different_cases_differ() {
        // Shapes repeat every `ALL.len()` cases, so compare two cases of
        // the same shape; the RNG stream must still differ.
        let stride = TraceShape::ALL.len() as u64;
        let a = Fuzzer::new(42, 1).trace();
        let b = Fuzzer::new(42, 1 + stride).trace();
        assert_eq!(
            Fuzzer::new(42, 1).shape(),
            Fuzzer::new(42, 1 + stride).shape()
        );
        assert_ne!(a, b);
    }

    #[test]
    fn all_shapes_are_cycled() {
        for (case, &shape) in TraceShape::ALL.iter().enumerate() {
            assert_eq!(Fuzzer::new(0, case as u64).shape(), shape);
        }
    }

    #[test]
    fn fuzzed_configs_always_validate() {
        for case in 0..50 {
            let cfg = Fuzzer::new(9, case).config();
            cfg.validate().unwrap();
            assert!(cfg.max_cycles > 0);
        }
    }

    #[test]
    fn hot_storm_is_single_address() {
        let mut f = Fuzzer::new(3, 1); // case 1 = HotAddressStorm
        assert_eq!(f.shape(), TraceShape::HotAddressStorm);
        let t = f.trace();
        let mut addrs: Vec<u64> = t
            .bundles()
            .flat_map(|b| b.params.iter())
            .flat_map(|p| p.ops().iter().map(|op| op.addr))
            .collect();
        addrs.dedup();
        assert_eq!(addrs.len(), 1, "hot storm must hammer one address");
    }

    #[test]
    fn sparse_idle_is_load_dominated() {
        let mut f = Fuzzer::new(3, 5); // case 5 = SparseIdle
        assert_eq!(f.shape(), TraceShape::SparseIdle);
        let t = f.trace();
        assert!(t.warps().len() <= 3, "sparse-idle keeps the machine empty");
        for w in t.warps() {
            let loads = w
                .instrs
                .iter()
                .filter(|i| matches!(i, warp_trace::Instr::Load { .. }))
                .count();
            assert!(loads >= 2, "each warp chains at least two loads");
        }
    }

    #[test]
    fn icnt_flood_spreads_heavy_traffic() {
        let mut f = Fuzzer::new(3, 6); // case 6 = IcntFlood
        assert_eq!(f.shape(), TraceShape::IcntFlood);
        let t = f.trace();
        assert!(t.warps().len() >= 6, "flood keeps many SMs busy");
        let mut addrs: Vec<u64> = t
            .bundles()
            .flat_map(|b| b.params.iter())
            .flat_map(|p| p.ops().iter().map(|op| op.addr))
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert!(
            addrs.len() >= 12,
            "flood must spread across many words, got {}",
            addrs.len()
        );
        for w in t.warps() {
            assert!(w
                .instrs
                .iter()
                .any(|i| matches!(i, warp_trace::Instr::Load { .. })));
        }
    }

    #[test]
    fn loop_heavy_repeats_foldable_iterations() {
        let mut f = Fuzzer::new(3, 7); // case 7 = LoopHeavy
        assert_eq!(f.shape(), TraceShape::LoopHeavy);
        let t = f.trace();
        for w in t.warps() {
            // Per warp: one accumulator address and one load sector
            // count, repeated every iteration — the redundancy the
            // optimizer passes exist to remove.
            let mut addrs: Vec<u64> = w
                .instrs
                .iter()
                .filter_map(|i| i.bundle())
                .flat_map(|b| b.params.iter())
                .flat_map(|p| p.ops().iter().map(|op| op.addr))
                .collect();
            addrs.sort_unstable();
            addrs.dedup();
            assert_eq!(addrs.len(), 1, "one accumulator word per warp");
            let mut sectors: Vec<u16> = w
                .instrs
                .iter()
                .filter_map(|i| match i {
                    warp_trace::Instr::Load { sectors } => Some(*sectors),
                    _ => None,
                })
                .collect();
            assert!(sectors.len() >= 3, "at least three loop iterations");
            sectors.dedup();
            assert_eq!(sectors.len(), 1, "identical load per iteration");
        }
    }

    #[test]
    fn sort_histogram_hammers_a_small_counter_bank() {
        let mut f = Fuzzer::new(3, 8); // case 8 = SortHistogram
        assert_eq!(f.shape(), TraceShape::SortHistogram);
        let t = f.trace();
        assert!(t.warps().len() >= 6, "histogram keeps many warps busy");
        assert!(t.total_atomic_requests() > 0);
        let mut addrs: Vec<u64> = t
            .bundles()
            .flat_map(|b| b.params.iter())
            .flat_map(|p| p.ops().iter().map(|op| op.addr))
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert!(
            addrs.len() <= 16,
            "all warps share one digit-counter bank, got {} words",
            addrs.len()
        );
        assert!(addrs.len() >= 2, "a histogram is not a single hot word");
        let span = addrs.last().unwrap() - addrs.first().unwrap();
        assert!(span < 16 * 4, "counters are contiguous words");
    }

    #[test]
    fn full_densify_masks_are_full() {
        let mut f = Fuzzer::new(3, 2); // case 2 = FullDensify
        assert_eq!(f.shape(), TraceShape::FullDensify);
        let t = f.trace();
        assert!(t.total_atomic_requests() > 0);
        for b in t.bundles() {
            for p in &b.params {
                assert_eq!(p.active_count(), WARP_SIZE as u32);
                assert!(p.single_address());
            }
        }
    }
}

//! Greedy delta-debugging shrinker for failing kernel traces.
//!
//! The vendored `proptest` shim deliberately has no shrinking, so the
//! conformance suite carries its own: given a trace and a predicate
//! "does this trace still fail?", [`shrink_trace`] greedily removes
//! structure while the predicate holds, in coarse-to-fine order:
//!
//! 1. drop whole warps (front/back halves first, then singletons);
//! 2. drop instructions within each warp;
//! 3. drop parameters within each atomic bundle;
//! 4. drop lane operations within each atomic instruction;
//! 5. canonicalize surviving lane values to `1.0` where the failure
//!    persists.
//!
//! The result is a local minimum: removing any single remaining element
//! makes the failure disappear. [`emit_golden`] serializes it as JSON
//! (via the trace IR's serde derives) so the minimal reproducer can be
//! pinned under `tests/golden/` and replayed forever; [`load_golden`]
//! reads one back.

use std::fs;
use std::path::{Path, PathBuf};

use warp_trace::{AtomicInstr, Instr, KernelTrace, LaneOp, WarpTrace};

/// Shrinks `trace` to a locally-minimal trace still satisfying `fails`.
///
/// `fails(&trace)` must be `true` on entry (otherwise the input is
/// returned unchanged). The predicate is invoked O(elements × passes)
/// times; passes repeat until a fixpoint, bounded by the element count,
/// so shrinking always terminates.
pub fn shrink_trace<F>(trace: &KernelTrace, fails: F) -> KernelTrace
where
    F: Fn(&KernelTrace) -> bool,
{
    if !fails(trace) {
        return trace.clone();
    }
    let mut best = trace.clone();
    loop {
        let before = size_of(&best);
        best = drop_warps(best, &fails);
        best = drop_instrs(best, &fails);
        best = drop_params(best, &fails);
        best = drop_lanes(best, &fails);
        best = canonicalize_values(best, &fails);
        if size_of(&best) >= before {
            return best;
        }
    }
}

/// A crude structural size: elements the shrinker can still remove.
fn size_of(t: &KernelTrace) -> usize {
    let mut n = t.warps().len();
    for w in t.warps() {
        n += w.instrs.len();
        for i in &w.instrs {
            if let Instr::Atomic(b) | Instr::AtomRed(b) = i {
                n += b.params.len();
                n += b.params.iter().map(|p| p.ops().len()).sum::<usize>();
            }
        }
    }
    n
}

fn rebuild(t: &KernelTrace, warps: Vec<WarpTrace>) -> KernelTrace {
    KernelTrace::new(t.name(), t.kind(), warps)
}

fn drop_warps<F: Fn(&KernelTrace) -> bool>(t: KernelTrace, fails: &F) -> KernelTrace {
    let mut best = t;
    // Halves first (logarithmic progress on large traces).
    loop {
        let n = best.warps().len();
        if n < 2 {
            break;
        }
        let halves = [
            rebuild(&best, best.warps()[n / 2..].to_vec()),
            rebuild(&best, best.warps()[..n / 2].to_vec()),
        ];
        match halves.into_iter().find(|c| fails(c)) {
            Some(smaller) => best = smaller,
            None => break,
        }
    }
    // Then individual warps.
    let mut i = 0;
    while i < best.warps().len() {
        if best.warps().len() == 1 {
            break;
        }
        let mut warps = best.warps().to_vec();
        warps.remove(i);
        let candidate = rebuild(&best, warps);
        if fails(&candidate) {
            best = candidate;
        } else {
            i += 1;
        }
    }
    best
}

fn drop_instrs<F: Fn(&KernelTrace) -> bool>(t: KernelTrace, fails: &F) -> KernelTrace {
    let mut best = t;
    for w in 0..best.warps().len() {
        let mut i = 0;
        while i < best.warps()[w].instrs.len() {
            let mut warps = best.warps().to_vec();
            warps[w].instrs.remove(i);
            let candidate = rebuild(&best, warps);
            if fails(&candidate) {
                best = candidate;
            } else {
                i += 1;
            }
        }
    }
    best
}

fn drop_params<F: Fn(&KernelTrace) -> bool>(t: KernelTrace, fails: &F) -> KernelTrace {
    mutate_bundles(t, fails, |params, i| {
        if params.len() > 1 {
            params.remove(i);
            true
        } else {
            false
        }
    })
}

fn drop_lanes<F: Fn(&KernelTrace) -> bool>(t: KernelTrace, fails: &F) -> KernelTrace {
    let mut best = t;
    loop {
        let mut progressed = false;
        'outer: for w in 0..best.warps().len() {
            for ii in 0..best.warps()[w].instrs.len() {
                let (params_len, ops_lens) = match &best.warps()[w].instrs[ii] {
                    Instr::Atomic(b) | Instr::AtomRed(b) => (
                        b.params.len(),
                        b.params.iter().map(|p| p.ops().len()).collect::<Vec<_>>(),
                    ),
                    _ => continue,
                };
                for (p, &ops_len) in ops_lens.iter().enumerate().take(params_len) {
                    for lane_i in 0..ops_len {
                        let mut warps = best.warps().to_vec();
                        if let Instr::Atomic(b) | Instr::AtomRed(b) = &mut warps[w].instrs[ii] {
                            let mut ops: Vec<LaneOp> = b.params[p].ops().to_vec();
                            ops.remove(lane_i);
                            b.params[p] = AtomicInstr::new(ops);
                        }
                        let candidate = rebuild(&best, warps);
                        if fails(&candidate) {
                            best = candidate;
                            progressed = true;
                            continue 'outer;
                        }
                    }
                }
            }
        }
        if !progressed {
            return best;
        }
    }
}

fn canonicalize_values<F: Fn(&KernelTrace) -> bool>(t: KernelTrace, fails: &F) -> KernelTrace {
    let mut best = t;
    for w in 0..best.warps().len() {
        for ii in 0..best.warps()[w].instrs.len() {
            let params_len = match &best.warps()[w].instrs[ii] {
                Instr::Atomic(b) | Instr::AtomRed(b) => b.params.len(),
                _ => continue,
            };
            for p in 0..params_len {
                let ops_len = match &best.warps()[w].instrs[ii] {
                    Instr::Atomic(b) | Instr::AtomRed(b) => b.params[p].ops().len(),
                    _ => 0,
                };
                for lane_i in 0..ops_len {
                    let mut warps = best.warps().to_vec();
                    if let Instr::Atomic(b) | Instr::AtomRed(b) = &mut warps[w].instrs[ii] {
                        let mut ops: Vec<LaneOp> = b.params[p].ops().to_vec();
                        if ops[lane_i].value == 1.0 {
                            continue;
                        }
                        ops[lane_i].value = 1.0;
                        b.params[p] = AtomicInstr::new(ops);
                    }
                    let candidate = rebuild(&best, warps);
                    if fails(&candidate) {
                        best = candidate;
                    }
                }
            }
        }
    }
    best
}

fn mutate_bundles<F, M>(t: KernelTrace, fails: &F, mutate: M) -> KernelTrace
where
    F: Fn(&KernelTrace) -> bool,
    M: Fn(&mut Vec<AtomicInstr>, usize) -> bool,
{
    let mut best = t;
    for w in 0..best.warps().len() {
        for ii in 0..best.warps()[w].instrs.len() {
            'insn: while let Instr::Atomic(b) | Instr::AtomRed(b) = &best.warps()[w].instrs[ii] {
                let params_len = b.params.len();
                for p in 0..params_len {
                    let mut warps = best.warps().to_vec();
                    let changed = match &mut warps[w].instrs[ii] {
                        Instr::Atomic(b) | Instr::AtomRed(b) => mutate(&mut b.params, p),
                        _ => false,
                    };
                    if !changed {
                        continue;
                    }
                    let candidate = rebuild(&best, warps);
                    if fails(&candidate) {
                        best = candidate;
                        continue 'insn;
                    }
                }
                break;
            }
        }
    }
    best
}

/// Serializes a shrunk trace as pretty-printed JSON into `dir` under
/// `<name>.json`, creating the directory if needed. Returns the path.
///
/// # Panics
///
/// Panics if the directory cannot be created or the file cannot be
/// written — a conformance failure that cannot be recorded should be
/// loud.
pub fn emit_golden(dir: &Path, name: &str, trace: &KernelTrace) -> PathBuf {
    fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(trace).expect("trace serializes");
    fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

/// Reads a golden trace back.
///
/// # Panics
///
/// Panics if the file is missing or not a valid serialized trace.
pub fn load_golden(path: &Path) -> KernelTrace {
    let json = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&json).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_trace::{AtomicInstr, KernelKind, WarpTraceBuilder};

    /// A "bug" that fires whenever any atomic touches address 0x40.
    fn touches_hot(t: &KernelTrace) -> bool {
        t.bundles()
            .flat_map(|b| b.params.iter())
            .any(|p| p.ops().iter().any(|op| op.addr == 0x40))
    }

    fn noisy_trace() -> KernelTrace {
        let mut warps = Vec::new();
        for i in 0..8 {
            let mut b = WarpTraceBuilder::new();
            b.compute_fp32(4);
            b.atomic(AtomicInstr::same_address(0x100 + i * 8, &[0.5; 32]));
            if i == 5 {
                b.atomic(AtomicInstr::same_address(0x40, &[2.0; 32]));
            }
            b.load(2);
            warps.push(b.finish());
        }
        KernelTrace::new("noisy", KernelKind::GradCompute, warps)
    }

    #[test]
    fn shrinks_to_single_lane_reproducer() {
        let shrunk = shrink_trace(&noisy_trace(), touches_hot);
        assert!(touches_hot(&shrunk), "shrunk trace must still fail");
        assert_eq!(shrunk.warps().len(), 1);
        let instrs = &shrunk.warps()[0].instrs;
        assert_eq!(instrs.len(), 1, "non-atomic instructions removed");
        assert_eq!(shrunk.total_atomic_requests(), 1, "one lane suffices");
        // Value canonicalization kicked in.
        let op = shrunk.bundles().next().unwrap().params[0].ops()[0];
        assert_eq!(op.addr, 0x40);
        assert_eq!(op.value, 1.0);
    }

    #[test]
    fn passing_trace_is_returned_unchanged() {
        let t = noisy_trace();
        let same = shrink_trace(&t, |_| false);
        assert_eq!(same, t);
    }

    #[test]
    fn golden_round_trip() {
        let shrunk = shrink_trace(&noisy_trace(), touches_hot);
        let dir = std::env::temp_dir().join("arc-conformance-shrink-test");
        let path = emit_golden(&dir, "hot-addr", &shrunk);
        let back = load_golden(&path);
        assert_eq!(back, shrunk);
        let _ = std::fs::remove_file(&path);
    }
}

//! Conformance subsystem for the ARC reproduction.
//!
//! Everything the paper reports flows through one artifact — the
//! cycle-level simulator's queueing behaviour — and through the ARC
//! rewrite passes that feed it. This crate independently checks both,
//! so hot-path rewrites (the parallel cycle loop of PR 1, the telemetry
//! threading of PR 2, and whatever comes next) cannot silently change
//! *functional* results or *performance trends*. Three pillars:
//!
//! * [`fuzz`] — a deterministic, seeded trace fuzzer producing
//!   adversarial [`warp_trace::KernelTrace`]s (degenerate warps,
//!   single-hot-address storms, full-densify warps, scattered
//!   multi-address mixes, multi-parameter bundles) and stressed
//!   [`gpu_sim::GpuConfig`] variations (tiny and huge queues) that all
//!   still pass `GpuConfig::validate`.
//! * [`oracle`] — a functional oracle executing any trace with the
//!   timing-free reference reducers in `arc_core::reduce` and the f64
//!   [`warp_trace::GlobalMemory`] accumulator, asserting that every
//!   atomic reduction path (serialized / butterfly-densify / CCCL /
//!   adaptive `atomred`) lands numerically equivalent gradient sums
//!   within a documented floating-point tolerance.
//! * [`invariants`] — a metamorphic suite cross-checking cycle-sim
//!   output against `arc_core::analysis::MachineModel` trends
//!   (monotonicity in ROP throughput, RTX 4090 ≥ RTX 3060 on contended
//!   workloads, threshold-crossover direction) and conservation laws on
//!   the raw counters (issued = trace issue slots at drain; interconnect
//!   flits in = lane-ops/sectors retired out), plus the
//!   `store-equivalence` invariant pinning the PR 7 result store and
//!   `simserved` daemon: a cache hit must be byte-identical to a fresh
//!   engine run across worker/fast-forward/epoch combinations.
//!
//! [`shrink`] closes the loop: when a fuzz case fails, a greedy
//! delta-debugging pass minimizes the trace (warps → instructions →
//! bundle parameters → lanes → values) and re-emits it as a JSON golden
//! under `tests/golden/` so the bug stays pinned forever.
//!
//! # Budget and reproducibility
//!
//! The suite is budgeted to stay well under a minute in CI. Two
//! environment knobs widen or redirect it:
//!
//! * `CONFORMANCE_SEED` — base seed for every fuzzer stream
//!   (default [`DEFAULT_SEED`]). CI pins it so runs are deterministic.
//! * `CONFORMANCE_ITERS` — fuzz iterations per suite (default: each
//!   test's built-in budget). Crank it up for deep local soak runs.
//!
//! A failure message always prints the `(seed, case)` pair; re-running
//! with `CONFORMANCE_SEED=<seed>` reproduces it exactly, and the shrunk
//! trace is written to [`failure_dir`] for inspection and CI artifact
//! upload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod invariants;
pub mod oracle;
pub mod shrink;

use std::path::PathBuf;

/// Default base seed for all conformance fuzz streams. Chosen once and
/// fixed so CI is deterministic; override with `CONFORMANCE_SEED`.
pub const DEFAULT_SEED: u64 = 0xA12C_2025;

/// The base fuzz seed: `CONFORMANCE_SEED` if set to an integer
/// (decimal, or hex with an `0x` prefix), otherwise [`DEFAULT_SEED`].
pub fn seed() -> u64 {
    match std::env::var("CONFORMANCE_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("CONFORMANCE_SEED must be an integer, got `{s}`"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// The per-suite fuzz iteration budget: `CONFORMANCE_ITERS` if set to a
/// positive integer, otherwise `default`.
pub fn iters(default: usize) -> usize {
    std::env::var("CONFORMANCE_ITERS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Directory where shrunk failing traces are written (created on
/// demand): `CONFORMANCE_OUT` if set, otherwise
/// `target/conformance-failures` at the workspace root. CI uploads this
/// directory as an artifact when the suite fails.
pub fn failure_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CONFORMANCE_OUT") {
        return PathBuf::from(dir);
    }
    // CARGO_MANIFEST_DIR = <workspace>/crates/conformance.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target")
        .join("conformance-failures")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_is_stable() {
        // The whole point of the default seed is that it never drifts:
        // CI determinism and golden files depend on it.
        assert_eq!(DEFAULT_SEED, 0xA12C_2025);
    }

    #[test]
    fn iters_falls_back_to_default() {
        assert_eq!(iters(37), 37);
    }

    #[test]
    fn failure_dir_is_under_target_by_default() {
        let dir = failure_dir();
        assert!(dir.ends_with("target/conformance-failures") || dir.is_absolute());
    }
}

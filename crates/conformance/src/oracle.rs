//! Functional oracle: every atomic-reduction path must land the same
//! gradient sums.
//!
//! The cycle simulator models *timing*; values are defined by the trace
//! itself and by the reduction algorithms the rewrite passes apply. The
//! oracle therefore checks, for any [`KernelTrace`]:
//!
//! * **per-transaction** — each coalesced [`AtomicTransaction`]'s
//!   serialized (SW-S, Fig. 15 order) and densified-butterfly (SW-B,
//!   Fig. 16 `shfl_xor` tree) reductions against the transaction's f64
//!   reference total;
//! * **per-kernel** — the final [`GlobalMemory`] contents after the
//!   SW-S / SW-B rewrites (at several balancing thresholds), the CCCL
//!   rewrite, and the adaptive `atomred` conversion, against the
//!   original trace's contents.
//!
//! # Tolerance policy
//!
//! f32 addition is not associative (paper §5.2); each path sums in a
//! different order, so exact equality is wrong and a fixed epsilon is
//! arbitrary. The documented policy: for a result assembled from `n`
//! f32 contributions whose absolute values sum to `S`, the permitted
//! absolute error is
//!
//! ```text
//! tol(n, S) = (n + 4) · ε₃₂ · max(S, 1)        ε₃₂ = f32::EPSILON
//! ```
//!
//! — the standard worst-case bound for reassociating an `n`-term f32
//! sum, `(n−1)·ε·S`, with slack for the final rounding of each partial
//! result and a floor of one ε for near-zero sums. Everything the
//! fuzzer generates keeps `|value| ≤ 1` and `n ≤ 32 × params`, so the
//! tolerance stays far below any gradient signal.

use std::collections::HashMap;

use arc_core::reduce::densify;
use arc_core::{
    butterfly_reduce, coalesce_atomic, serialized_reduce, AtomicTransaction, BalanceThreshold,
    Technique,
};
use warp_trace::{GlobalMemory, Instr, KernelTrace};

/// How a trace failed the oracle. The `path` label names the reduction
/// path that diverged; `detail` pinpoints the transaction or address.
#[derive(Clone, Debug)]
pub struct OracleFailure {
    /// Which reduction path diverged (e.g. `"serialized"`, `"sw-b-0"`).
    pub path: String,
    /// Human-readable description with address, got/want, and tolerance.
    pub detail: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.path, self.detail)
    }
}

/// What one oracle pass covered, for budget sanity-checks.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Coalesced transactions checked against the reference reducers.
    pub transactions: u64,
    /// Distinct gradient addresses compared across kernel rewrites.
    pub addresses: u64,
    /// Kernel-level reduction paths compared.
    pub paths: u64,
}

/// The documented FP tolerance for a value assembled from `n` f32
/// contributions with absolute sum `abs_sum` (see the module docs).
pub fn tolerance(n: u64, abs_sum: f64) -> f64 {
    (n as f64 + 4.0) * f64::from(f32::EPSILON) * abs_sum.max(1.0)
}

/// Runs the full functional oracle over one trace.
///
/// # Errors
///
/// The first divergence found, labeled with the offending path.
pub fn check_trace(trace: &KernelTrace) -> Result<OracleStats, OracleFailure> {
    let mut stats = OracleStats::default();
    check_transactions(trace, &mut stats)?;
    check_rewrites(trace, &mut stats)?;
    Ok(stats)
}

/// Per-transaction reference checks: SW-S serialized order and the
/// densify + butterfly tree must both match the f64 total.
fn check_transactions(trace: &KernelTrace, stats: &mut OracleStats) -> Result<(), OracleFailure> {
    for bundle in trace.bundles() {
        for param in &bundle.params {
            for tx in coalesce_atomic(param) {
                stats.transactions += 1;
                let want = tx.total();
                let abs_sum: f64 = tx.values.iter().map(|&v| f64::from(v).abs()).sum();
                let tol = tolerance(u64::from(tx.request_count()), abs_sum);

                let serial = f64::from(serialized_reduce(&tx));
                if (serial - want).abs() > tol {
                    return Err(tx_failure("serialized", &tx, serial, want, tol));
                }

                let tree = f64::from(butterfly_reduce(&densify(&tx)));
                if (tree - want).abs() > tol {
                    return Err(tx_failure("butterfly-densify", &tx, tree, want, tol));
                }
            }
        }
    }
    Ok(())
}

fn tx_failure(path: &str, tx: &AtomicTransaction, got: f64, want: f64, tol: f64) -> OracleFailure {
    OracleFailure {
        path: path.to_string(),
        detail: format!(
            "addr {:#x} ({} lanes): got {got}, want {want} (|diff| {} > tol {tol})",
            tx.addr,
            tx.request_count(),
            (got - want).abs(),
        ),
    }
}

/// Kernel-level checks: every rewrite path's final memory image must
/// match the original trace's within the per-address tolerance.
fn check_rewrites(trace: &KernelTrace, stats: &mut OracleStats) -> Result<(), OracleFailure> {
    let mut reference = GlobalMemory::new();
    reference.apply_trace(trace);

    // Per-address contribution counts and absolute sums drive the
    // tolerance: an address touched by many lanes may accumulate more
    // reassociation error.
    let mut contribs: HashMap<u64, (u64, f64)> = HashMap::new();
    for warp in trace.warps() {
        for instr in &warp.instrs {
            if let Instr::Atomic(b) | Instr::AtomRed(b) = instr {
                for param in &b.params {
                    for op in param.ops() {
                        let e = contribs.entry(op.addr).or_insert((0, 0.0));
                        e.0 += 1;
                        e.1 += f64::from(op.value).abs();
                    }
                }
            }
        }
    }
    stats.addresses += reference.len() as u64;

    // Every registered trace-rewriting technique, parametric families
    // at both sweep endpoints — single-sourced from the technique
    // registry, so a new rewrite pass is covered the moment it is
    // registered in `arc_core::technique::TECHNIQUES`.
    let thr = |v: u8| BalanceThreshold::new(v).expect("threshold in range");
    let paths: Vec<(String, KernelTrace)> = Technique::all_with(&[thr(0), thr(16)])
        .into_iter()
        .filter(Technique::rewrites_trace)
        .map(|t| (t.cli_name(), t.prepare(trace)))
        .collect();

    for (label, rewritten) in paths {
        stats.paths += 1;
        let mut mem = GlobalMemory::new();
        mem.apply_trace(&rewritten);
        // Walk the union of addresses; a rewrite must neither drop nor
        // invent gradient words.
        for (addr, want) in reference.iter() {
            let got = mem.read_f64(addr);
            let (n, abs_sum) = contribs.get(&addr).copied().unwrap_or((1, 1.0));
            let tol = tolerance(n, abs_sum);
            if (got - want).abs() > tol {
                return Err(OracleFailure {
                    path: label,
                    detail: format!(
                        "addr {addr:#x} ({n} contributions): got {got}, want {want} \
                         (|diff| {} > tol {tol})",
                        (got - want).abs(),
                    ),
                });
            }
        }
        for (addr, got) in mem.iter() {
            if reference.read_f64(addr) == 0.0 && !reference.iter().any(|(a, _)| a == addr) {
                return Err(OracleFailure {
                    path: label,
                    detail: format!("invented gradient word at addr {addr:#x} = {got}"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_trace::{AtomicInstr, KernelKind, LaneOp, WarpTraceBuilder};

    fn simple_trace() -> KernelTrace {
        let mut b = WarpTraceBuilder::new();
        b.atomic(AtomicInstr::same_address(0x40, &[0.25; 32]));
        b.atomic(AtomicInstr::new(vec![
            LaneOp {
                lane: 0,
                addr: 0x80,
                value: 1.5,
            },
            LaneOp {
                lane: 9,
                addr: 0x80,
                value: -0.5,
            },
        ]));
        KernelTrace::new("oracle-unit", KernelKind::GradCompute, vec![b.finish()])
    }

    #[test]
    fn clean_trace_passes_all_paths() {
        let stats = check_trace(&simple_trace()).unwrap();
        assert_eq!(stats.transactions, 2);
        assert_eq!(stats.addresses, 2);
        assert_eq!(stats.paths, 6);
    }

    #[test]
    fn empty_trace_passes_vacuously() {
        let t = KernelTrace::new("empty", KernelKind::GradCompute, vec![]);
        let stats = check_trace(&t).unwrap();
        assert_eq!(stats.transactions, 0);
        assert_eq!(stats.addresses, 0);
    }

    #[test]
    fn tolerance_grows_with_contributions_and_magnitude() {
        assert!(tolerance(32, 32.0) > tolerance(2, 32.0));
        assert!(tolerance(32, 32.0) > tolerance(32, 1.0));
        // Near-zero sums keep a one-epsilon floor.
        assert!(tolerance(1, 0.0) >= f64::from(f32::EPSILON));
    }

    #[test]
    fn corrupted_sum_is_caught() {
        // A trace whose rewrite would be fine, checked against a
        // deliberately corrupted memory image, must trip the per-address
        // comparison — exercised here through the public API by
        // corrupting the trace between reference and check instead.
        let good = simple_trace();
        let mut bad = good.clone();
        // Flip one lane value far outside tolerance.
        for warp in bad.warps_mut() {
            for instr in &mut warp.instrs {
                if let Instr::Atomic(b) = instr {
                    // Rebuild the first param with a corrupted value.
                    let mut ops: Vec<LaneOp> = b.params[0].ops().to_vec();
                    ops[0].value += 10.0;
                    b.params[0] = AtomicInstr::new(ops);
                    // The reference totals of `bad` now differ from
                    // `good`; the oracle on `bad` itself still passes
                    // (it is self-consistent) …
                }
            }
        }
        assert!(check_trace(&bad).is_ok());
        // … but the two memory images differ, which is what the
        // kernel-level comparison measures.
        let mut a = GlobalMemory::new();
        a.apply_trace(&good);
        let mut b = GlobalMemory::new();
        b.apply_trace(&bad);
        assert!(a.max_abs_diff(&b) > 1.0);
    }
}

//! LAB paths: atomics aggregate in L1-resident SRAM buffers
//! (Dalmia et al., HPCA'22), in the realistic and idealized variants.

use crate::config::GpuConfig;
use crate::machine::AggBuffer;
use crate::paths::AtomicBackend;

/// LAB: atomic buffering in a partition of the L1/shared-memory SRAM.
/// Buffered loads pay the L1-contention penalty; `atomred` has no
/// special hardware and issues as a plain atomic.
pub(crate) struct Lab;

impl AtomicBackend for Lab {
    fn label(&self) -> &'static str {
        "LAB"
    }

    fn description(&self) -> &'static str {
        "atomics aggregate in a partition of the L1/shared-memory SRAM, contending with loads"
    }

    fn agg_buffer(&self, cfg: &GpuConfig) -> Option<AggBuffer> {
        Some(AggBuffer::lab(
            cfg.lab_entries as usize,
            cfg.lab_l1_load_penalty,
        ))
    }
}

/// LAB-ideal: a dedicated same-capacity SRAM with no tag/L1 contention
/// overheads — the paper's idealized comparator.
pub(crate) struct LabIdeal;

impl AtomicBackend for LabIdeal {
    fn label(&self) -> &'static str {
        "LAB-ideal"
    }

    fn description(&self) -> &'static str {
        "idealized LAB: dedicated SRAM, no tag/L1 contention overheads"
    }

    fn agg_buffer(&self, cfg: &GpuConfig) -> Option<AggBuffer> {
        Some(AggBuffer::lab(cfg.lab_ideal_entries as usize, 0))
    }
}

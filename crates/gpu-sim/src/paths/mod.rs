//! Pluggable atomic-path backends.
//!
//! [`AtomicPath`] is a thin enum: each variant delegates its
//! path-specific behaviour — which aggregation buffer the SMs carry and
//! how an `atomred` instruction is issued — to a backend module
//! implementing the crate-internal `AtomicBackend` trait
//! (`baseline`, `arc_hw`, `lab`, `phi`). The queue/scheduler
//! plumbing in `sim`/`machine` stays path-agnostic: it asks the backend
//! at the two decision points instead of matching on the path inline.
//!
//! Energy is attributed from event counters (`SimCounters` →
//! `EnergyModel::evaluate`), so a backend's energy hook *is* the
//! counters it increments while issuing (`redunit_transactions`,
//! `rop_routed_transactions`, buffer hits/evictions via the
//! `AggBuffer` it installs) — there is no separate per-path energy
//! dispatch to implement.
//!
//! Adding a hardware path = one backend module here + one registry
//! entry in `arc_core::technique` (see DESIGN.md §7).

// Path dispatch must be exhaustive: a variant added to `AtomicPath` or
// `Technique` without full wiring must fail to compile here, not fall
// through a `_` arm.
#![deny(
    clippy::match_wildcard_for_single_variants,
    clippy::wildcard_enum_match_arm
)]

pub(crate) mod arc_hw;
pub(crate) mod baseline;
pub(crate) mod lab;
pub(crate) mod phi;

use serde::{Deserialize, Serialize};
use warp_trace::AtomicBundle;

use arc_core::{coalesce_atomic_sizes_into, Technique};

use crate::config::GpuConfig;
use crate::machine::{AggBuffer, LsuQueue, MemReq, RedUnit, ReqKind};
use crate::sim::{advance, advance_bundle, ldst_busy, WarpRt};
use crate::stats::SimCounters;

/// How the GPU handles atomic traffic — the paper's evaluated designs.
///
/// ARC-SW and CCCL are not separate paths: they are trace *rewrites*
/// (see `arc_core::sw` / `arc_core::cccl`) executed on [`Baseline`].
///
/// [`Baseline`]: AtomicPath::Baseline
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomicPath {
    /// All atomics go to the L2 ROP units (`atomicAdd` semantics).
    Baseline,
    /// ARC-HW: greedy scheduling between per-sub-core reduction units
    /// and the ROPs for `AtomRed` instructions (paper §4.3/§5.1).
    ArcHw,
    /// LAB: atomics aggregate in a partition of the L1/shared-memory
    /// SRAM (Dalmia et al., HPCA'22), contending with normal loads.
    Lab,
    /// LAB-ideal: a dedicated same-capacity SRAM with no tag/L1
    /// contention overheads (the paper's idealized comparator).
    LabIdeal,
    /// PHI: commutative atomics aggregate in L1 cache lines (Mukkara et
    /// al., MICRO'19); every request still traverses the LSU first.
    Phi,
}

impl AtomicPath {
    /// Figure-label name.
    pub fn label(self) -> &'static str {
        self.backend().label()
    }

    /// One-line description of the modeled design.
    pub fn description(self) -> &'static str {
        self.backend().description()
    }

    /// All evaluated hardware paths.
    pub const ALL: [AtomicPath; 5] = [
        AtomicPath::Baseline,
        AtomicPath::ArcHw,
        AtomicPath::Lab,
        AtomicPath::LabIdeal,
        AtomicPath::Phi,
    ];

    /// The backend module implementing this path's behaviour.
    pub(crate) fn backend(self) -> &'static dyn AtomicBackend {
        match self {
            AtomicPath::Baseline => &baseline::Baseline,
            AtomicPath::ArcHw => &arc_hw::ArcHw,
            AtomicPath::Lab => &lab::Lab,
            AtomicPath::LabIdeal => &lab::LabIdeal,
            AtomicPath::Phi => &phi::Phi,
        }
    }
}

/// Maps a registered [`Technique`] to the hardware [`AtomicPath`] it
/// runs on. Lives here — not in `arc_core` — because the core crate is
/// substrate-independent and must not name simulator types.
pub trait TechniquePath {
    /// The hardware path simulating this technique.
    fn path(&self) -> AtomicPath;
}

impl TechniquePath for Technique {
    fn path(&self) -> AtomicPath {
        match self {
            Technique::Baseline | Technique::SwS(_) | Technique::SwB(_) | Technique::Cccl => {
                AtomicPath::Baseline
            }
            Technique::ArcHw => AtomicPath::ArcHw,
            Technique::Lab => AtomicPath::Lab,
            Technique::LabIdeal => AtomicPath::LabIdeal,
            Technique::Phi => AtomicPath::Phi,
        }
    }
}

/// Whether an atomic issue attempt succeeded this cycle.
pub(crate) enum AtomicIssue {
    /// The instruction (or one bundle parameter) was issued.
    Issued,
    /// The warp stalls on the LSU-atomic class this cycle.
    Blocked,
}

/// Everything a backend may touch while issuing one atomic instruction:
/// the issuing sub-core's LDST port and reduction unit, the SM's LSU,
/// and the SM-local accounting. Reborrowed per attempt inside the
/// sub-core scan loop.
pub(crate) struct AtomicIssueCtx<'a> {
    pub(crate) cfg: &'a GpuConfig,
    pub(crate) cycle: u64,
    /// Instruction count of the issuing warp's trace (for retirement).
    pub(crate) instr_len: usize,
    pub(crate) ldst_free_at: &'a mut u64,
    pub(crate) redunit: &'a mut RedUnit,
    /// Reusable coalescing buffer: (addr, lane-values) per transaction.
    pub(crate) tx_scratch: &'a mut Vec<(u64, u32)>,
    /// Reusable ARC-HW greedy plan (true = reduce).
    pub(crate) plan_scratch: &'a mut Vec<bool>,
    pub(crate) lsu: &'a mut LsuQueue,
    pub(crate) counters: &'a mut SimCounters,
    pub(crate) retired: &'a mut u64,
}

/// One atomic-path backend: the per-path behaviour carved out of the
/// cycle loop. Everything else in `sim`/`machine` is path-agnostic.
pub(crate) trait AtomicBackend: Sync {
    /// Figure-label name (single source: [`AtomicPath::label`]).
    fn label(&self) -> &'static str;

    /// One-line description of the modeled design.
    fn description(&self) -> &'static str;

    /// The aggregation buffer each SM carries under this path, if any
    /// (admission + service timing of buffered atomics live in
    /// [`AggBuffer`]; its drain is driven path-agnostically by the
    /// cycle loop).
    fn agg_buffer(&self, cfg: &GpuConfig) -> Option<AggBuffer>;

    /// Issues one `atomred` instruction (or one parameter of its
    /// bundle). The default models hardware without ARC support:
    /// "the ARC reduction unit is bypassed" (§5.6) and the instruction
    /// behaves as a plain atomic.
    fn issue_atomred(
        &self,
        ctx: &mut AtomicIssueCtx<'_>,
        bundle: &AtomicBundle,
        rt: &mut WarpRt,
    ) -> AtomicIssue {
        issue_plain_atomic(ctx, bundle, rt)
    }
}

/// Issues one parameter of a plain atomic bundle to the LSU → ROP path.
/// Path-independent: every backend routes `Instr::Atomic` through here,
/// and the default [`AtomicBackend::issue_atomred`] reuses it.
pub(crate) fn issue_plain_atomic(
    ctx: &mut AtomicIssueCtx<'_>,
    bundle: &AtomicBundle,
    rt: &mut WarpRt,
) -> AtomicIssue {
    if bundle.params.is_empty() {
        ctx.counters.instructions_issued += 1;
        advance(rt, ctx.retired, ctx.instr_len);
        return AtomicIssue::Issued;
    }
    let param = &bundle.params[rt.sub as usize];
    // Cheap pre-check (no allocation): the total lane-value size equals
    // the active-lane count regardless of how the coalescer groups it.
    let total = param.active_count();
    if total == 0 {
        ctx.counters.instructions_issued += 1;
        advance_bundle(rt, ctx.retired, ctx.instr_len, bundle.params.len());
        return AtomicIssue::Issued;
    }
    if ctx.cycle < *ctx.ldst_free_at || !ctx.lsu.can_accept(total) {
        return AtomicIssue::Blocked;
    }
    coalesce_atomic_sizes_into(param, ctx.tx_scratch);
    for &(addr, size) in ctx.tx_scratch.iter() {
        ctx.lsu.push(
            MemReq {
                size,
                partition: ctx.cfg.partition_of(addr) as u32,
                addr,
                kind: ReqKind::Atomic,
            },
            ctx.counters,
        );
    }
    *ctx.ldst_free_at = ctx.cycle + ldst_busy(total, ctx.cfg.ldst_dispatch_width);
    ctx.counters.instructions_issued += 1;
    advance_bundle(rt, ctx.retired, ctx.instr_len, bundle.params.len());
    AtomicIssue::Issued
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_labels_are_the_path_labels() {
        for path in AtomicPath::ALL {
            let backend = path.backend();
            assert_eq!(path.label(), backend.label());
            assert!(!backend.description().is_empty());
        }
    }

    #[test]
    fn technique_to_path_mapping() {
        use arc_core::BalanceThreshold;
        let thr = BalanceThreshold::default();
        // Software techniques run on the baseline hardware path.
        for t in [
            Technique::Baseline,
            Technique::SwS(thr),
            Technique::SwB(thr),
            Technique::Cccl,
        ] {
            assert_eq!(t.path(), AtomicPath::Baseline);
        }
        assert_eq!(Technique::ArcHw.path(), AtomicPath::ArcHw);
        assert_eq!(Technique::Lab.path(), AtomicPath::Lab);
        assert_eq!(Technique::LabIdeal.path(), AtomicPath::LabIdeal);
        assert_eq!(Technique::Phi.path(), AtomicPath::Phi);
        // Every hardware path is reachable from some registered
        // technique, and labels agree where the concepts coincide.
        for path in AtomicPath::ALL {
            let t = Technique::registered()
                .into_iter()
                .find(|t| t.path() == path)
                .expect("unreachable hardware path");
            if !t.rewrites_trace() || t == Technique::ArcHw {
                assert_eq!(t.label(), path.label());
            }
        }
    }

    #[test]
    fn only_lab_and_phi_install_buffers() {
        let cfg = GpuConfig::tiny();
        for path in AtomicPath::ALL {
            let has_buffer = path.backend().agg_buffer(&cfg).is_some();
            let expected = matches!(
                path,
                AtomicPath::Lab | AtomicPath::LabIdeal | AtomicPath::Phi
            );
            assert_eq!(has_buffer, expected, "buffer mismatch for {path:?}");
        }
    }
}

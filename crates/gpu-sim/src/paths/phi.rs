//! PHI path: commutative atomics aggregate in L1 cache lines
//! (Mukkara et al., MICRO'19).

use crate::config::GpuConfig;
use crate::machine::AggBuffer;
use crate::paths::AtomicBackend;

/// PHI: every atomic still traverses the LSU, then aggregates in an
/// L1 line until eviction. `atomred` has no special hardware and issues
/// as a plain atomic.
pub(crate) struct Phi;

impl AtomicBackend for Phi {
    fn label(&self) -> &'static str {
        "PHI"
    }

    fn description(&self) -> &'static str {
        "commutative atomics aggregate in L1 cache lines; requests still traverse the LSU"
    }

    fn agg_buffer(&self, cfg: &GpuConfig) -> Option<AggBuffer> {
        Some(AggBuffer::phi(
            cfg.phi_lines as usize,
            cfg.phi_l1_load_penalty,
        ))
    }
}

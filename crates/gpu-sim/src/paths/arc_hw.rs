//! ARC-HW path: greedy scheduling of `atomred` transactions between
//! the per-sub-core reduction units and the ROPs (paper §4.3/§5.1).

use warp_trace::AtomicBundle;

use arc_core::coalesce_atomic_sizes_into;

use crate::config::GpuConfig;
use crate::machine::{AggBuffer, MemReq, ReqKind};
use crate::paths::{AtomicBackend, AtomicIssue, AtomicIssueCtx};
use crate::sim::{advance, advance_bundle, ldst_busy, WarpRt};

/// ARC-HW: the paper's hardware design. No aggregation buffer — the
/// added state is the per-sub-core reduction unit, which the greedy
/// issue below feeds.
pub(crate) struct ArcHw;

impl AtomicBackend for ArcHw {
    fn label(&self) -> &'static str {
        "ARC-HW"
    }

    fn description(&self) -> &'static str {
        "`atomred` scheduled greedily between per-sub-core reduction units and the ROPs"
    }

    fn agg_buffer(&self, _cfg: &GpuConfig) -> Option<AggBuffer> {
        None
    }

    fn issue_atomred(
        &self,
        ctx: &mut AtomicIssueCtx<'_>,
        bundle: &AtomicBundle,
        rt: &mut WarpRt,
    ) -> AtomicIssue {
        if bundle.params.is_empty() {
            ctx.counters.instructions_issued += 1;
            advance(rt, ctx.retired, ctx.instr_len);
            return AtomicIssue::Issued;
        }
        let param = &bundle.params[rt.sub as usize];
        if param.active_count() == 0 {
            ctx.counters.instructions_issued += 1;
            advance_bundle(rt, ctx.retired, ctx.instr_len, bundle.params.len());
            return AtomicIssue::Issued;
        }
        if ctx.cycle < *ctx.ldst_free_at {
            return AtomicIssue::Blocked;
        }
        // Cheap pre-check before paying for coalescing: if neither a
        // reduction-unit slot nor a single LSU slot is available,
        // nothing can be scheduled this cycle.
        if ctx.redunit.space(ctx.cfg.redunit_queue_capacity) == 0 && !ctx.lsu.can_accept(1) {
            return AtomicIssue::Blocked;
        }
        coalesce_atomic_sizes_into(param, ctx.tx_scratch);
        // Greedy scheduling "depending on which queue is free" (paper
        // §4.3): each transaction goes to whichever of the
        // reduction-unit queue and the LSU/ROP path is relatively
        // emptier, overflowing to the other side. The LDST-stall signal
        // is folded in: a stalled LSU reads as fully occupied.
        let mut red_pending = ctx.redunit.pending() as u32;
        let mut rop_total = 0u32;
        ctx.plan_scratch.clear();
        for &(_, size) in ctx.tx_scratch.iter() {
            let red_space = ctx.cfg.redunit_queue_capacity.saturating_sub(red_pending);
            let red_frac =
                f64::from(red_pending) / f64::from(ctx.cfg.redunit_queue_capacity.max(1));
            let lsu_frac = if ctx.lsu.stalled(ctx.cfg.lsu_stall_threshold) {
                1.0
            } else {
                (ctx.lsu.occupancy_fraction()
                    + f64::from(rop_total) / f64::from(ctx.cfg.lsu_queue_capacity))
                .min(1.0)
            };
            if red_space > 0 && red_frac <= lsu_frac {
                ctx.plan_scratch.push(true);
                red_pending += 1;
            } else if ctx.lsu.can_accept(rop_total + size) {
                ctx.plan_scratch.push(false);
                rop_total += size;
            } else if red_space > 0 {
                ctx.plan_scratch.push(true);
                red_pending += 1;
            } else {
                return AtomicIssue::Blocked;
            }
        }
        let mut red_count = 0u64;
        for (&(addr, size), &reduce) in ctx.tx_scratch.iter().zip(ctx.plan_scratch.iter()) {
            let partition = ctx.cfg.partition_of(addr) as u32;
            if reduce {
                ctx.redunit.push(size, addr, partition);
                ctx.counters.redunit_transactions += 1;
                red_count += 1;
            } else {
                ctx.counters.rop_routed_transactions += 1;
                ctx.lsu.push(
                    MemReq {
                        size,
                        partition,
                        addr,
                        kind: ReqKind::Atomic,
                    },
                    ctx.counters,
                );
            }
        }
        let busy = if rop_total > 0 {
            ldst_busy(rop_total, ctx.cfg.ldst_dispatch_width)
        } else {
            0
        } + red_count;
        *ctx.ldst_free_at = ctx.cycle + busy.max(1);
        ctx.counters.instructions_issued += 1;
        advance_bundle(rt, ctx.retired, ctx.instr_len, bundle.params.len());
        AtomicIssue::Issued
    }
}

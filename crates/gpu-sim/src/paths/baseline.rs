//! Baseline path: every atomic goes to the L2 ROP units.

use crate::config::GpuConfig;
use crate::machine::AggBuffer;
use crate::paths::AtomicBackend;

/// Plain `atomicAdd` hardware — the reference the paper measures
/// against. No SM-side aggregation; `atomred` instructions fall back to
/// the default plain-atomic issue ("the ARC reduction unit is
/// bypassed", §5.6).
pub(crate) struct Baseline;

impl AtomicBackend for Baseline {
    fn label(&self) -> &'static str {
        "Baseline"
    }

    fn description(&self) -> &'static str {
        "all atomics go to the L2 ROP units (`atomicAdd` semantics)"
    }

    fn agg_buffer(&self, _cfg: &GpuConfig) -> Option<AggBuffer> {
        None
    }
}

//! GPU model configuration (paper Table 1).
//!
//! The two presets mirror the paper's simulated configurations:
//!
//! | | RTX 4090 | RTX 3060 |
//! |---|---|---|
//! | SMs | 128 | 28 |
//! | ROP units | 176 (22 partitions × 8) | 48 (12 partitions × 4) |
//! | Core clock | 2.24 GHz | 1.32 GHz |
//! | Sub-cores/SM | 4 | 4 |
//!
//! The RTX 4090's *lower ROP-to-SM ratio* (1.375 ROPs/SM vs 1.71) is the
//! structural reason the atomic bottleneck — and ARC's benefit — is
//! larger on the 4090 (paper §3.2, §7.2).

use serde::{Deserialize, Serialize};

/// Complete parameterization of the simulated GPU.
///
/// Queue capacities and throughputs are in *lane-value* units for
/// atomics (one lane's atomic request — the paper's unit of atomic
/// traffic) and in 32-byte sectors for loads/stores.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Human-readable configuration name ("RTX4090-Sim", ...).
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Sub-cores (warp schedulers + register file partitions) per SM.
    pub subcores_per_sm: u32,
    /// Maximum warps resident per sub-core; further warps wait for a slot.
    pub max_warps_per_subcore: u32,
    /// Core clock in GHz (converts cycles to wall time).
    pub clock_ghz: f64,

    /// Number of L2/memory subpartitions (addresses interleave across
    /// them at 256 B granularity).
    pub num_mem_partitions: u32,
    /// ROP atomic units per partition; each retires one atomic
    /// lane-value per cycle.
    pub rops_per_partition: u32,

    /// Lane-values (or sectors) a sub-core's LDST port can hand to the
    /// LSU per cycle; a wide atomic occupies the port for several cycles.
    pub ldst_dispatch_width: u32,
    /// Capacity of the per-SM LSU/MIO queue, in lane-value/sector units.
    pub lsu_queue_capacity: u32,
    /// Lane-values the LSU moves onward per cycle (to the interconnect,
    /// or into a LAB/PHI buffer — the paper's "requests overwhelm the
    /// load-store units" rate limit).
    pub lsu_drain_rate: u32,
    /// Occupancy fraction of the LSU queue above which the LDST units
    /// report "stalled" — the signal the greedy ARC-HW scheduler reads.
    pub lsu_stall_threshold: f64,

    /// Capacity of each memory partition's input queues (lane-values).
    pub partition_queue_capacity: u32,
    /// L2 hit latency for loads, in cycles.
    pub l2_load_latency: u32,
    /// Load sectors each partition can service per cycle.
    pub l2_load_throughput: u32,
    /// Additional latency for the (rare) L2 misses, in cycles.
    pub dram_extra_latency: u32,
    /// Fraction of load sectors that hit in L2 (the paper measures ~97%
    /// for these workloads).
    pub l2_hit_rate: f64,

    /// Warp shuffles per cycle the SM's shared MIO port sustains, in
    /// quarter-units (8 = 2 shuffles/cycle/SM). On NVIDIA hardware
    /// `shfl` executes in the LSU/MIO pipeline shared by all four
    /// sub-cores, which is what bounds software warp reductions.
    pub shfl_throughput_q: u32,

    /// ARC-HW: pending-transaction capacity of each sub-core reduction
    /// unit.
    pub redunit_queue_capacity: u32,
    /// ARC-HW: lane-values the reduction-unit FPU folds per cycle.
    pub redunit_throughput: u32,
    /// ARC-HW: LSU queue headroom reserved for reduction-unit emissions
    /// (a reduced transaction is a single lane-value; without reserved
    /// slots it would deadlock behind the very traffic it replaces).
    pub redunit_emit_reserve: u32,

    /// LAB: entries of the carved-out L1/shared-memory atomic buffer.
    pub lab_entries: u32,
    /// LAB-ideal: entries of the dedicated (extra) SRAM buffer.
    pub lab_ideal_entries: u32,
    /// Extra cycles added to every load while LAB shares the L1 SRAM
    /// (reduced capacity / bank contention). Zero for LAB-ideal.
    pub lab_l1_load_penalty: u32,
    /// PHI: cache lines available for atomic aggregation in L1.
    pub phi_lines: u32,
    /// PHI: extra cycles added to every load by the per-atomic L1 tag
    /// lookups PHI performs.
    pub phi_l1_load_penalty: u32,

    /// Hard safety cap on simulated cycles (guards against deadlocked
    /// configurations in tests).
    pub max_cycles: u64,
}

impl GpuConfig {
    /// The paper's 4090-Sim configuration: 128 SMs, 176 ROP units.
    pub fn rtx4090() -> Self {
        GpuConfig {
            name: "RTX4090-Sim".to_string(),
            num_sms: 128,
            subcores_per_sm: 4,
            max_warps_per_subcore: 16,
            clock_ghz: 2.24,
            num_mem_partitions: 22,
            rops_per_partition: 8,
            ldst_dispatch_width: 8,
            lsu_queue_capacity: 128,
            lsu_drain_rate: 4,
            lsu_stall_threshold: 0.25,
            partition_queue_capacity: 256,
            l2_load_latency: 210,
            l2_load_throughput: 4,
            dram_extra_latency: 260,
            l2_hit_rate: 0.97,
            shfl_throughput_q: 8,
            redunit_queue_capacity: 16,
            redunit_throughput: 1,
            redunit_emit_reserve: 64,
            lab_entries: 3072,
            lab_ideal_entries: 4096,
            lab_l1_load_penalty: 3,
            phi_lines: 512,
            phi_l1_load_penalty: 4,
            max_cycles: 2_000_000_000,
        }
    }

    /// The paper's 3060-Sim configuration: 28 SMs, 48 ROP units.
    pub fn rtx3060() -> Self {
        GpuConfig {
            name: "RTX3060-Sim".to_string(),
            num_sms: 28,
            subcores_per_sm: 4,
            max_warps_per_subcore: 16,
            clock_ghz: 1.32,
            num_mem_partitions: 12,
            rops_per_partition: 4,
            ldst_dispatch_width: 8,
            lsu_queue_capacity: 128,
            lsu_drain_rate: 4,
            lsu_stall_threshold: 0.25,
            partition_queue_capacity: 256,
            l2_load_latency: 190,
            l2_load_throughput: 4,
            dram_extra_latency: 230,
            l2_hit_rate: 0.97,
            shfl_throughput_q: 8,
            redunit_queue_capacity: 16,
            redunit_throughput: 1,
            redunit_emit_reserve: 64,
            lab_entries: 3072,
            lab_ideal_entries: 4096,
            lab_l1_load_penalty: 3,
            phi_lines: 512,
            phi_l1_load_penalty: 4,
            max_cycles: 2_000_000_000,
        }
    }

    /// Quarter-scale 4090 experiment configuration: 32 SMs, 44 ROPs.
    ///
    /// The evaluation harness runs on resource-scaled models so that
    /// laptop-scale workload traces saturate the GPU the way the
    /// paper's full-resolution scenes saturate the real cards. The
    /// ratios that drive every result are preserved exactly: 4.57×
    /// more SMs than the 3060 model but only ~3.67× more ROPs (the
    /// numbers quoted in paper §3.2).
    pub fn rtx4090_sim() -> Self {
        GpuConfig {
            name: "4090-Sim".to_string(),
            num_sms: 32,
            num_mem_partitions: 11,
            rops_per_partition: 4,
            ..GpuConfig::rtx4090()
        }
    }

    /// Quarter-scale 3060 experiment configuration: 7 SMs, 12 ROPs.
    /// See [`GpuConfig::rtx4090_sim`].
    pub fn rtx3060_sim() -> Self {
        GpuConfig {
            name: "3060-Sim".to_string(),
            num_sms: 7,
            num_mem_partitions: 3,
            rops_per_partition: 4,
            ..GpuConfig::rtx3060()
        }
    }

    /// A tiny configuration for unit tests: 2 SMs, 3 partitions. The
    /// ROP:SM ratio (1.5) is kept close to the real cards' so the
    /// relative ordering of the atomic paths carries over.
    pub fn tiny() -> Self {
        GpuConfig {
            name: "Tiny-Sim".to_string(),
            num_sms: 2,
            subcores_per_sm: 2,
            max_warps_per_subcore: 4,
            clock_ghz: 1.0,
            num_mem_partitions: 3,
            rops_per_partition: 1,
            ldst_dispatch_width: 8,
            lsu_queue_capacity: 128,
            lsu_drain_rate: 4,
            lsu_stall_threshold: 0.25,
            partition_queue_capacity: 256,
            l2_load_latency: 20,
            l2_load_throughput: 2,
            dram_extra_latency: 30,
            l2_hit_rate: 1.0,
            shfl_throughput_q: 8,
            redunit_queue_capacity: 4,
            redunit_throughput: 1,
            redunit_emit_reserve: 64,
            lab_entries: 16,
            lab_ideal_entries: 64,
            lab_l1_load_penalty: 4,
            phi_lines: 8,
            phi_l1_load_penalty: 4,
            max_cycles: 50_000_000,
        }
    }

    /// Total ROP units (the paper's headline resource).
    pub fn total_rops(&self) -> u32 {
        self.num_mem_partitions * self.rops_per_partition
    }

    /// ROP-units-per-SM ratio; lower means a more pronounced atomic
    /// bottleneck (paper §3.2).
    pub fn rop_to_sm_ratio(&self) -> f64 {
        f64::from(self.total_rops()) / f64::from(self.num_sms)
    }

    /// Total sub-cores across the GPU.
    pub fn total_subcores(&self) -> u32 {
        self.num_sms * self.subcores_per_sm
    }

    /// Converts a cycle count to milliseconds at this config's clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e6)
    }

    /// Maps a global address to its memory partition: 64 B interleave
    /// with address-bit hashing, as real GPUs do to prevent partition
    /// camping when kernels sweep arrays in order.
    pub fn partition_of(&self, addr: u64) -> usize {
        let h = (addr >> 6).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h % u64::from(self.num_mem_partitions)) as usize
    }

    /// The first-order analytical machine model for this configuration
    /// (see `arc_core::analysis`): aggregate ROP, reduction-unit,
    /// shuffle-port, and issue throughputs.
    pub fn machine_model(&self) -> arc_core::analysis::MachineModel {
        arc_core::analysis::MachineModel {
            rop_rate: f64::from(self.total_rops()),
            redunit_rate: f64::from(self.total_subcores() * self.redunit_throughput),
            shfl_rate: f64::from(self.num_sms) * f64::from(self.shfl_throughput_q) / 4.0,
            issue_rate: f64::from(self.total_subcores()),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 || self.subcores_per_sm == 0 {
            return Err("need at least one SM and sub-core".into());
        }
        if self.num_mem_partitions == 0 || self.rops_per_partition == 0 {
            return Err("need at least one memory partition and ROP".into());
        }
        if self.lsu_queue_capacity == 0 || self.lsu_drain_rate == 0 {
            return Err("LSU capacity/drain must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.lsu_stall_threshold) {
            return Err("lsu_stall_threshold must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.l2_hit_rate) {
            return Err("l2_hit_rate must be in [0,1]".into());
        }
        if self.clock_ghz <= 0.0 {
            return Err("clock must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rop_counts() {
        assert_eq!(GpuConfig::rtx4090().total_rops(), 176);
        assert_eq!(GpuConfig::rtx3060().total_rops(), 48);
    }

    #[test]
    fn ratio_ordering_matches_paper() {
        // The 4090 has the lower ROP:SM ratio, hence the bigger bottleneck.
        assert!(GpuConfig::rtx4090().rop_to_sm_ratio() < GpuConfig::rtx3060().rop_to_sm_ratio());
        // 4.57× more SMs but only ~3.6× more ROPs (paper §3.2).
        let sm_ratio = 128.0 / 28.0;
        let rop_ratio = 176.0 / 48.0;
        assert!(sm_ratio > 4.5 && rop_ratio < 3.7);
    }

    #[test]
    fn presets_validate() {
        for cfg in [
            GpuConfig::rtx4090(),
            GpuConfig::rtx3060(),
            GpuConfig::tiny(),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn partition_mapping_in_range_and_interleaved() {
        let cfg = GpuConfig::rtx4090();
        let p0 = cfg.partition_of(0);
        let p1 = cfg.partition_of(256);
        assert_ne!(p0, p1);
        for addr in (0..10_000u64).step_by(97) {
            assert!(cfg.partition_of(addr) < cfg.num_mem_partitions as usize);
        }
    }

    #[test]
    fn cycles_to_ms_uses_clock() {
        let cfg = GpuConfig::rtx4090();
        let ms = cfg.cycles_to_ms(2_240_000);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = GpuConfig::tiny();
        cfg.num_sms = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = GpuConfig::tiny();
        cfg.lsu_stall_threshold = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = GpuConfig::tiny();
        cfg.clock_ghz = 0.0;
        assert!(cfg.validate().is_err());
    }
}

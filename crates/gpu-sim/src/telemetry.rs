//! Simulator observability: a metrics registry, periodic queue/stall
//! sampling, warp-lifetime events, and Chrome-trace export.
//!
//! The end-of-run aggregates in `crate::stats` say *how much* a kernel
//! stalled; this module says *when*. A [`MetricsRegistry`] holds three
//! metric kinds:
//!
//! * **counters** — monotonically increasing totals (instructions
//!   issued, ROP lane-ops, interconnect flits); each sample records the
//!   delta since the previous sample, so a counter series is a rate
//!   curve;
//! * **gauges** — instantaneous levels (LSU/ROP/reduction-unit queue
//!   occupancies, warps remaining); each sample records the current
//!   value;
//! * **histograms** — power-of-two bucketed distributions of sampled
//!   values (e.g. ROP-queue occupancy across all samples).
//!
//! The simulator samples the registry every
//! [`TelemetryConfig::sample_interval`] cycles **from the serial
//! coordinator phase only**: per-SM shards are read under their (then
//! uncontended) locks in SM-index order, so a sample is a pure function
//! of simulation state and the engine's bit-identical-for-any-worker-
//! count guarantee extends to every telemetry artifact. Telemetry never
//! writes simulation state, so enabling it cannot change results; when
//! disabled the engine pays one branch per cycle.
//!
//! [`KernelTelemetry::chrome_trace`] renders the whole run as a
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev) JSON
//! timeline: one counter track per metric plus one slice per warp
//! residency (pid = SM + 1, tid = sub-core). Timestamps are simulated
//! cycles presented as microseconds (1 µs = 1 cycle).

use serde::{Deserialize, Serialize};

use crate::stats::{SimCounters, StallBreakdown};

/// Configuration for telemetry collection on a [`crate::Simulator`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Cycles between registry samples (clamped to ≥ 1). A final sample
    /// is always recorded at kernel completion.
    pub sample_interval: u64,
    /// Record one timeline span per warp residency (dispatch → retire).
    pub warp_events: bool,
    /// Cap on recorded warp spans; spans beyond the cap are counted in
    /// [`KernelTelemetry::dropped_spans`] rather than silently lost.
    pub max_warp_spans: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_interval: 64,
            warp_events: true,
            max_warp_spans: 100_000,
        }
    }
}

impl TelemetryConfig {
    /// A config sampling every `interval` cycles, warp events on.
    pub fn every(interval: u64) -> Self {
        TelemetryConfig {
            sample_interval: interval,
            ..TelemetryConfig::default()
        }
    }
}

/// What a metric measures — see the module docs for sampling semantics.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonic total; sampled as per-interval deltas.
    Counter,
    /// Instantaneous level; sampled as-is.
    Gauge,
    /// Power-of-two bucketed distribution of observed values.
    Histogram,
}

/// Handle to a registered metric (an index into the registry).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MetricId(usize);

#[derive(Debug)]
struct MetricState {
    name: String,
    kind: MetricKind,
    /// Gauge level or counter running total.
    current: f64,
    /// Counter total at the previous sample.
    last_total: f64,
    points: Vec<(u64, f64)>,
    /// Histogram buckets: index `k` counts values in `[2^(k-1), 2^k)`
    /// (index 0 counts zeros).
    buckets: Vec<u64>,
}

/// A registry of named metrics sampled on a fixed cycle cadence.
///
/// Registration order is the export order, and every mutation is driven
/// by the (serial) simulation coordinator, so the output is fully
/// deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Vec<MetricState>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register(&mut self, name: &str, kind: MetricKind) -> MetricId {
        assert!(
            !self.metrics.iter().any(|m| m.name == name),
            "metric `{name}` registered twice"
        );
        self.metrics.push(MetricState {
            name: name.to_string(),
            kind,
            current: 0.0,
            last_total: 0.0,
            points: Vec::new(),
            buckets: Vec::new(),
        });
        MetricId(self.metrics.len() - 1)
    }

    /// Registers a counter.
    ///
    /// # Panics
    ///
    /// If the name is already registered.
    pub fn counter(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Counter)
    }

    /// Registers a gauge.
    ///
    /// # Panics
    ///
    /// If the name is already registered.
    pub fn gauge(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Gauge)
    }

    /// Registers a histogram.
    ///
    /// # Panics
    ///
    /// If the name is already registered.
    pub fn histogram(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Histogram)
    }

    /// Adds to a counter's running total.
    pub fn add(&mut self, id: MetricId, delta: f64) {
        debug_assert_eq!(self.metrics[id.0].kind, MetricKind::Counter);
        self.metrics[id.0].current += delta;
    }

    /// Sets a gauge's level.
    pub fn set(&mut self, id: MetricId, value: f64) {
        debug_assert_eq!(self.metrics[id.0].kind, MetricKind::Gauge);
        self.metrics[id.0].current = value;
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: MetricId, value: u64) {
        debug_assert_eq!(self.metrics[id.0].kind, MetricKind::Histogram);
        let bucket = (64 - value.leading_zeros()) as usize;
        let m = &mut self.metrics[id.0];
        if m.buckets.len() <= bucket {
            m.buckets.resize(bucket + 1, 0);
        }
        m.buckets[bucket] += 1;
    }

    /// Takes a sample at `cycle`: gauges record their level, counters
    /// record (and reset) their delta since the previous sample.
    pub fn sample(&mut self, cycle: u64) {
        for m in &mut self.metrics {
            match m.kind {
                MetricKind::Gauge => m.points.push((cycle, m.current)),
                MetricKind::Counter => {
                    m.points.push((cycle, m.current - m.last_total));
                    m.last_total = m.current;
                }
                MetricKind::Histogram => {}
            }
        }
    }

    /// Exports the registry as series and histograms, consuming it.
    pub fn export(self) -> (Vec<MetricSeries>, Vec<HistogramReport>) {
        let mut series = Vec::new();
        let mut hists = Vec::new();
        for m in self.metrics {
            match m.kind {
                MetricKind::Histogram => hists.push(HistogramReport {
                    name: m.name,
                    total: m.buckets.iter().sum(),
                    // Bucket k holds values < 2^k (k=0 holds exactly 0).
                    buckets: m
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|&(_, &n)| n > 0)
                        .map(|(k, &n)| {
                            let bound = if k == 0 { 0 } else { (1u64 << k) - 1 };
                            (bound, n)
                        })
                        .collect(),
                }),
                kind => series.push(MetricSeries {
                    name: m.name,
                    kind,
                    total: match kind {
                        MetricKind::Counter => m.current,
                        _ => m.points.last().map_or(0.0, |&(_, v)| v),
                    },
                    points: m.points,
                }),
            }
        }
        (series, hists)
    }
}

/// One exported metric: its sampled `(cycle, value)` points.
///
/// For counters each point is the per-interval delta and `total` is the
/// end-of-run cumulative count; for gauges each point is a level and
/// `total` is the final level.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricSeries {
    /// Metric name (dotted, e.g. `"lsu.occupancy"`).
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// `(cycle, value)` samples in cycle order.
    pub points: Vec<(u64, f64)>,
    /// Cumulative total (counter) or final level (gauge).
    pub total: f64,
}

impl MetricSeries {
    /// The maximum sample and the cycle it occurred at (first maximum
    /// on ties); `(0, 0.0)` for an empty series.
    pub fn peak(&self) -> (u64, f64) {
        let mut best = (0u64, f64::NEG_INFINITY);
        for &(cycle, v) in &self.points {
            if v > best.1 {
                best = (cycle, v);
            }
        }
        if best.1 == f64::NEG_INFINITY {
            (0, 0.0)
        } else {
            best
        }
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

/// An exported histogram: per-bucket counts keyed by the bucket's
/// inclusive upper bound (`0`, `1`, `3`, `7`, `15`, ...).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramReport {
    /// Metric name.
    pub name: String,
    /// `(inclusive upper bound, count)` for each non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub total: u64,
}

/// One warp's residency on a sub-core: dispatch to retirement.
///
/// Retirement is observed by the serial dispatch phase, so `end` is the
/// cycle the retire was *observed*, at most one cycle after the warp's
/// final instruction completed.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpSpan {
    /// Warp id (trace index).
    pub warp: u32,
    /// Owning SM index.
    pub sm: u32,
    /// Owning sub-core index within the SM.
    pub subcore: u32,
    /// Dispatch cycle.
    pub start: u64,
    /// Retirement cycle (≥ `start`).
    pub end: u64,
}

/// Everything telemetry collected over one kernel run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelTelemetry {
    /// Kernel name (from the trace).
    pub kernel: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// The sampling cadence used.
    pub sample_interval: u64,
    /// Counter and gauge series, in registration order.
    pub series: Vec<MetricSeries>,
    /// Histograms, in registration order.
    pub histograms: Vec<HistogramReport>,
    /// Warp residency spans (empty when warp events are disabled).
    pub warp_spans: Vec<WarpSpan>,
    /// Spans not recorded because `max_warp_spans` was reached.
    pub dropped_spans: u64,
}

impl KernelTelemetry {
    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&MetricSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramReport> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Condenses the full telemetry into the machine-readable summary
    /// written to `telemetry.json`.
    pub fn summary(&self) -> TelemetrySummary {
        let samples = self.series.first().map_or(0, |s| s.points.len());
        let (rop_peak_cycle, rop_peak) = self
            .series("rop.queue")
            .map_or((0, 0.0), MetricSeries::peak);
        let icnt = self
            .series("icnt.flits")
            .map_or(0.0, |s| s.total / self.cycles.max(1) as f64);
        TelemetrySummary {
            kernel: self.kernel.clone(),
            cycles: self.cycles,
            sample_interval: self.sample_interval,
            samples,
            rop_queue_peak: rop_peak,
            rop_queue_peak_cycle: rop_peak_cycle,
            icnt_flits_per_cycle: icnt,
            warp_spans: self.warp_spans.len() as u64,
            dropped_spans: self.dropped_spans,
            metrics: self
                .series
                .iter()
                .map(|s| {
                    let (peak_cycle, peak) = s.peak();
                    MetricSummary {
                        name: s.name.clone(),
                        kind: s.kind,
                        total: s.total,
                        peak,
                        peak_cycle,
                        mean: s.mean(),
                    }
                })
                .collect(),
        }
    }

    /// Renders the telemetry as Chrome-trace (`chrome://tracing` /
    /// Perfetto) JSON. Deterministic: identical input produces
    /// byte-identical output.
    pub fn chrome_trace(&self) -> String {
        self.chrome_trace_impl(None)
    }

    /// Like [`KernelTelemetry::chrome_trace`], with an extra
    /// "coordinator" process track carrying the cycle-loop engine
    /// counters (epochs executed, epoch cycles, max epoch length,
    /// barrier waits avoided, boundary flush flits).
    ///
    /// Engine stats describe *how* the loop ran, which legitimately
    /// varies with `ARC_SIM_EPOCH`/`ARC_FF`; keeping them out of the
    /// plain [`KernelTelemetry::chrome_trace`] is what lets conformance
    /// compare that export byte-for-byte across those knobs.
    pub fn chrome_trace_with_engine(&self, engine: &crate::stats::EngineStats) -> String {
        self.chrome_trace_impl(Some(engine))
    }

    fn chrome_trace_impl(&self, engine: Option<&crate::stats::EngineStats>) -> String {
        use serde::Value;

        fn obj(pairs: Vec<(&str, Value)>) -> Value {
            Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        }
        let s = |s: &str| Value::Str(s.to_string());
        let u = Value::UInt;

        let mut events: Vec<Value> = Vec::new();
        // Name pid 0 ("metrics") and each SM process for the UI.
        events.push(obj(vec![
            ("name", s("process_name")),
            ("ph", s("M")),
            ("pid", u(0)),
            ("args", obj(vec![("name", s("metrics"))])),
        ]));
        let mut sms: Vec<u32> = self.warp_spans.iter().map(|w| w.sm).collect();
        sms.sort_unstable();
        sms.dedup();
        for sm in sms {
            events.push(obj(vec![
                ("name", s("process_name")),
                ("ph", s("M")),
                ("pid", u(u64::from(sm) + 1)),
                ("args", obj(vec![("name", s(&format!("SM {sm}")))])),
            ]));
        }
        for series in &self.series {
            for &(cycle, v) in &series.points {
                events.push(obj(vec![
                    ("name", s(&series.name)),
                    ("ph", s("C")),
                    ("ts", u(cycle)),
                    ("pid", u(0)),
                    ("tid", u(0)),
                    ("args", obj(vec![("value", Value::Float(v))])),
                ]));
            }
        }
        for w in &self.warp_spans {
            events.push(obj(vec![
                ("name", s(&format!("warp {}", w.warp))),
                ("cat", s("warp")),
                ("ph", s("X")),
                ("ts", u(w.start)),
                ("dur", u(w.end - w.start)),
                ("pid", u(u64::from(w.sm) + 1)),
                ("tid", u(u64::from(w.subcore))),
                ("args", obj(vec![("warp", u(u64::from(w.warp)))])),
            ]));
        }
        if let Some(e) = engine {
            // The coordinator gets a pid far above any SM's so the track
            // sorts last and never collides.
            const COORD_PID: u64 = 1_000_000;
            events.push(obj(vec![
                ("name", s("process_name")),
                ("ph", s("M")),
                ("pid", u(COORD_PID)),
                ("args", obj(vec![("name", s("coordinator"))])),
            ]));
            for (name, v) in [
                ("engine.cycles_stepped", e.cycles_stepped),
                ("engine.epochs", e.epochs),
                ("engine.epoch_cycles", e.epoch_cycles),
                ("engine.epoch_len_max", e.epoch_len_max),
                ("engine.barrier_waits_avoided", e.barrier_waits_avoided),
                ("engine.boundary_flits", e.boundary_flits),
            ] {
                events.push(obj(vec![
                    ("name", s(name)),
                    ("ph", s("C")),
                    ("ts", u(0)),
                    ("pid", u(COORD_PID)),
                    ("tid", u(0)),
                    ("args", obj(vec![("value", u(v))])),
                ]));
            }
            events.push(obj(vec![
                ("name", s("engine.mean_epoch_len")),
                ("ph", s("C")),
                ("ts", u(0)),
                ("pid", u(COORD_PID)),
                ("tid", u(0)),
                (
                    "args",
                    obj(vec![("value", Value::Float(e.mean_epoch_len()))]),
                ),
            ]));
        }
        let top = obj(vec![
            ("traceEvents", Value::Array(events)),
            ("displayTimeUnit", s("ms")),
            (
                "otherData",
                obj(vec![
                    ("kernel", s(&self.kernel)),
                    ("cycles", u(self.cycles)),
                    ("sample_interval", u(self.sample_interval)),
                    ("time_unit", s("1 ts = 1 simulated cycle")),
                ]),
            ),
        ]);
        serde_json::to_string(&top).expect("chrome trace serializes")
    }
}

/// Per-metric roll-up inside a [`TelemetrySummary`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Metric name.
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Cumulative total (counter) or final level (gauge).
    pub total: f64,
    /// Largest sample.
    pub peak: f64,
    /// Cycle of the largest sample (first on ties).
    pub peak_cycle: u64,
    /// Mean sample value.
    pub mean: f64,
}

/// The machine-readable per-kernel summary emitted as `telemetry.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Kernel name.
    pub kernel: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Sampling cadence.
    pub sample_interval: u64,
    /// Number of samples taken.
    pub samples: usize,
    /// Peak ROP-queue occupancy (atomic lane-values buffered in the
    /// memory partitions) — the paper's atomic-bottleneck signal.
    pub rop_queue_peak: f64,
    /// Cycle of the ROP-queue peak.
    pub rop_queue_peak_cycle: u64,
    /// Mean interconnect flits per cycle (crossbar utilization proxy).
    pub icnt_flits_per_cycle: f64,
    /// Warp spans recorded.
    pub warp_spans: u64,
    /// Warp spans dropped at the cap.
    pub dropped_spans: u64,
    /// Per-metric roll-ups, in registration order.
    pub metrics: Vec<MetricSummary>,
}

impl TelemetrySummary {
    /// Looks up a metric roll-up by name.
    pub fn metric(&self, name: &str) -> Option<&MetricSummary> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

// ---------------------------------------------------------------------
// Collection state driven by the simulator's serial phases.
// ---------------------------------------------------------------------

/// The standard simulator metric set, registered in a fixed order.
struct Ids {
    // Gauges.
    lsu_occ: MetricId,
    lsu_occ_max: MetricId,
    part_occ: MetricId,
    rop_queue: MetricId,
    rop_queue_max: MetricId,
    red_pending: MetricId,
    agg_entries: MetricId,
    agg_backlog: MetricId,
    warps_remaining: MetricId,
    // Counters.
    issued: MetricId,
    stall_lsu: MetricId,
    stall_scoreboard: MetricId,
    stall_no_warp: MetricId,
    stall_other: MetricId,
    icnt: MetricId,
    rop_ops: MetricId,
    red_ops: MetricId,
    rop_tx: MetricId,
    red_tx: MetricId,
    lsu_accepted: MetricId,
    // Histograms.
    hist_rop: MetricId,
    hist_lsu: MetricId,
}

impl Ids {
    fn register(reg: &mut MetricsRegistry) -> Ids {
        Ids {
            lsu_occ: reg.gauge("lsu.occupancy"),
            lsu_occ_max: reg.gauge("lsu.occupancy_max"),
            part_occ: reg.gauge("partition.occupancy"),
            rop_queue: reg.gauge("rop.queue"),
            rop_queue_max: reg.gauge("rop.queue_max"),
            red_pending: reg.gauge("redunit.pending"),
            agg_entries: reg.gauge("aggbuf.entries"),
            agg_backlog: reg.gauge("aggbuf.evict_backlog"),
            warps_remaining: reg.gauge("warps.remaining"),
            issued: reg.counter("issue.instructions"),
            stall_lsu: reg.counter("stall.lsu_full"),
            stall_scoreboard: reg.counter("stall.long_scoreboard"),
            stall_no_warp: reg.counter("stall.no_warp"),
            stall_other: reg.counter("stall.other"),
            icnt: reg.counter("icnt.flits"),
            rop_ops: reg.counter("rop.lane_ops"),
            red_ops: reg.counter("redunit.lane_ops"),
            rop_tx: reg.counter("atomic.rop_tx"),
            red_tx: reg.counter("atomic.redunit_tx"),
            lsu_accepted: reg.counter("lsu.accepted"),
            hist_rop: reg.histogram("rop.queue.dist"),
            hist_lsu: reg.histogram("lsu.occupancy.dist"),
        }
    }
}

/// An aggregated point-in-time view of the machine, assembled by the
/// serial coordinator (hub state plus every SM shard in SM-index order).
pub(crate) struct SampleSnapshot {
    /// Aggregate counters: hub totals merged with every SM shard.
    pub counters: SimCounters,
    /// Aggregate stall accounting across shards.
    pub stalls: StallBreakdown,
    /// Total LSU queue occupancy across SMs.
    pub lsu_occupancy: u64,
    /// Largest single-SM LSU occupancy.
    pub lsu_occupancy_max: u32,
    /// Total memory-partition input-buffer occupancy.
    pub partition_occupancy: u64,
    /// Atomic lane-values waiting for ROPs across partitions.
    pub rop_queue: u64,
    /// Largest single-partition ROP queue.
    pub rop_queue_max: u32,
    /// Pending reduction-unit transactions across sub-cores.
    pub redunit_pending: u64,
    /// LAB/PHI aggregation-buffer entries across SMs.
    pub aggbuf_entries: u64,
    /// Pending eviction/flush emissions across SMs.
    pub aggbuf_backlog: u64,
    /// Warps not yet retired.
    pub warps_remaining: u64,
}

/// Live collection state owned by the simulation coordinator.
pub(crate) struct TelemetryState {
    interval: u64,
    warp_events: bool,
    max_warp_spans: usize,
    reg: MetricsRegistry,
    ids: Ids,
    last_counters: SimCounters,
    last_stalls: StallBreakdown,
    /// Per-warp open span: (start cycle, sm, subcore).
    open: Vec<Option<(u64, u32, u32)>>,
    spans: Vec<WarpSpan>,
    dropped_spans: u64,
    last_sample_cycle: Option<u64>,
}

impl TelemetryState {
    pub(crate) fn new(cfg: &TelemetryConfig, num_warps: usize) -> Self {
        let mut reg = MetricsRegistry::new();
        let ids = Ids::register(&mut reg);
        TelemetryState {
            interval: cfg.sample_interval.max(1),
            warp_events: cfg.warp_events,
            max_warp_spans: cfg.max_warp_spans,
            reg,
            ids,
            last_counters: SimCounters::default(),
            last_stalls: StallBreakdown::default(),
            open: if cfg.warp_events {
                vec![None; num_warps]
            } else {
                Vec::new()
            },
            spans: Vec::new(),
            dropped_spans: 0,
            last_sample_cycle: None,
        }
    }

    /// Whether the end of `cycle` is a sampling point.
    pub(crate) fn due(&self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.interval)
    }

    /// The earliest cycle `>= cycle` whose end is a sampling point —
    /// the boundary fast-forward jumps must not cross (see `sim.rs`).
    pub(crate) fn next_due(&self, cycle: u64) -> u64 {
        cycle.next_multiple_of(self.interval)
    }

    /// Whether warp dispatch/retire events should be reported.
    pub(crate) fn wants_warp_events(&self) -> bool {
        self.warp_events
    }

    /// Records a warp entering a sub-core slot.
    pub(crate) fn warp_dispatched(&mut self, warp: u32, sm: u32, subcore: u32, cycle: u64) {
        if self.warp_events {
            self.open[warp as usize] = Some((cycle, sm, subcore));
        }
    }

    /// Records a warp leaving its slot (observed retired).
    pub(crate) fn warp_retired(&mut self, warp: u32, cycle: u64) {
        if !self.warp_events {
            return;
        }
        if let Some((start, sm, subcore)) = self.open[warp as usize].take() {
            if self.spans.len() < self.max_warp_spans {
                self.spans.push(WarpSpan {
                    warp,
                    sm,
                    subcore,
                    start,
                    end: cycle,
                });
            } else {
                self.dropped_spans += 1;
            }
        }
    }

    /// Feeds one snapshot into the registry and samples it.
    pub(crate) fn record_sample(&mut self, cycle: u64, snap: &SampleSnapshot) {
        if self.last_sample_cycle == Some(cycle) {
            return;
        }
        self.last_sample_cycle = Some(cycle);
        let ids = &self.ids;
        let reg = &mut self.reg;
        reg.set(ids.lsu_occ, snap.lsu_occupancy as f64);
        reg.set(ids.lsu_occ_max, f64::from(snap.lsu_occupancy_max));
        reg.set(ids.part_occ, snap.partition_occupancy as f64);
        reg.set(ids.rop_queue, snap.rop_queue as f64);
        reg.set(ids.rop_queue_max, f64::from(snap.rop_queue_max));
        reg.set(ids.red_pending, snap.redunit_pending as f64);
        reg.set(ids.agg_entries, snap.aggbuf_entries as f64);
        reg.set(ids.agg_backlog, snap.aggbuf_backlog as f64);
        reg.set(ids.warps_remaining, snap.warps_remaining as f64);
        let c = &snap.counters;
        let p = &self.last_counters;
        let d = |new: u64, old: u64| (new - old) as f64;
        reg.add(ids.issued, d(c.instructions_issued, p.instructions_issued));
        reg.add(ids.icnt, d(c.icnt_flits, p.icnt_flits));
        reg.add(ids.rop_ops, d(c.rop_lane_ops, p.rop_lane_ops));
        reg.add(ids.red_ops, d(c.redunit_lane_ops, p.redunit_lane_ops));
        reg.add(
            ids.rop_tx,
            d(c.rop_routed_transactions, p.rop_routed_transactions),
        );
        reg.add(
            ids.red_tx,
            d(c.redunit_transactions, p.redunit_transactions),
        );
        reg.add(ids.lsu_accepted, d(c.lsu_accepted, p.lsu_accepted));
        let s = &snap.stalls;
        let q = &self.last_stalls;
        reg.add(ids.stall_lsu, d(s.lsu_full, q.lsu_full));
        reg.add(
            ids.stall_scoreboard,
            d(s.long_scoreboard, q.long_scoreboard),
        );
        reg.add(ids.stall_no_warp, d(s.no_warp, q.no_warp));
        reg.add(ids.stall_other, d(s.other, q.other));
        reg.observe(ids.hist_rop, snap.rop_queue);
        reg.observe(ids.hist_lsu, snap.lsu_occupancy);
        self.last_counters = snap.counters;
        self.last_stalls = snap.stalls;
        reg.sample(cycle);
    }

    /// Finalizes collection into a [`KernelTelemetry`]: closes any
    /// still-open warp spans at `cycles` and exports the registry.
    pub(crate) fn finish(mut self, kernel: &str, cycles: u64) -> KernelTelemetry {
        for warp in 0..self.open.len() {
            if self.open[warp].is_some() {
                self.warp_retired(warp as u32, cycles);
            }
        }
        let (series, histograms) = self.reg.export();
        KernelTelemetry {
            kernel: kernel.to_string(),
            cycles,
            sample_interval: self.interval,
            series,
            histograms,
            warp_spans: self.spans,
            dropped_spans: self.dropped_spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_samples_are_deltas_and_total_is_cumulative() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("c");
        reg.add(c, 3.0);
        reg.sample(0);
        reg.add(c, 2.0);
        reg.add(c, 1.0);
        reg.sample(10);
        reg.sample(20);
        let (series, _) = reg.export();
        assert_eq!(series[0].points, vec![(0, 3.0), (10, 3.0), (20, 0.0)]);
        assert_eq!(series[0].total, 6.0);
    }

    #[test]
    fn gauge_samples_levels() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("g");
        reg.set(g, 5.0);
        reg.sample(0);
        reg.set(g, 2.0);
        reg.sample(7);
        let (series, _) = reg.export();
        assert_eq!(series[0].points, vec![(0, 5.0), (7, 2.0)]);
        assert_eq!(series[0].total, 2.0);
        assert_eq!(series[0].peak(), (0, 5.0));
        assert!((series[0].mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        for v in [0, 1, 2, 3, 4, 100] {
            reg.observe(h, v);
        }
        let (_, hists) = reg.export();
        // 0 → bound 0; 1 → bound 1; 2,3 → bound 3; 4 → bound 7; 100 → bound 127.
        assert_eq!(
            hists[0].buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 1), (127, 1)]
        );
        assert_eq!(hists[0].total, 6);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_panic() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("dup");
        reg.counter("dup");
    }

    #[test]
    fn chrome_trace_is_parseable_json() {
        let tel = KernelTelemetry {
            kernel: "k".into(),
            cycles: 10,
            sample_interval: 2,
            series: vec![MetricSeries {
                name: "g".into(),
                kind: MetricKind::Gauge,
                points: vec![(0, 1.0), (2, 3.0)],
                total: 3.0,
            }],
            histograms: Vec::new(),
            warp_spans: vec![WarpSpan {
                warp: 0,
                sm: 1,
                subcore: 0,
                start: 0,
                end: 9,
            }],
            dropped_spans: 0,
        };
        let json = tel.chrome_trace();
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v.field("traceEvents").expect("traceEvents");
        match events {
            serde::Value::Array(items) => assert!(items.len() >= 4),
            _ => panic!("traceEvents must be an array"),
        }

        // The engine-annotated export adds the coordinator track without
        // disturbing the plain trace (which conformance byte-compares).
        let engine = crate::stats::EngineStats {
            cycles_simulated: 10,
            cycles_stepped: 8,
            epochs: 2,
            epoch_cycles: 6,
            epoch_len_max: 4,
            barrier_waits_avoided: 8,
            boundary_flits: 12,
            lane_steps_total: 80,
            lane_steps_skipped: 20,
        };
        let with = tel.chrome_trace_with_engine(&engine);
        assert!(with.contains("coordinator"));
        assert!(with.contains("engine.barrier_waits_avoided"));
        assert!(!json.contains("coordinator"));
        serde_json::from_str::<serde::Value>(&with).expect("valid JSON with engine track");
    }

    #[test]
    fn summary_exposes_rop_peak() {
        let tel = KernelTelemetry {
            kernel: "k".into(),
            cycles: 100,
            sample_interval: 10,
            series: vec![
                MetricSeries {
                    name: "rop.queue".into(),
                    kind: MetricKind::Gauge,
                    points: vec![(0, 1.0), (50, 9.0), (90, 2.0)],
                    total: 2.0,
                },
                MetricSeries {
                    name: "icnt.flits".into(),
                    kind: MetricKind::Counter,
                    points: vec![(0, 10.0), (50, 40.0)],
                    total: 50.0,
                },
            ],
            histograms: Vec::new(),
            warp_spans: Vec::new(),
            dropped_spans: 0,
        };
        let s = tel.summary();
        assert_eq!(s.rop_queue_peak, 9.0);
        assert_eq!(s.rop_queue_peak_cycle, 50);
        assert!((s.icnt_flits_per_cycle - 0.5).abs() < 1e-12);
        assert_eq!(s.metric("rop.queue").unwrap().peak, 9.0);
    }
}

//! Simulation statistics: stall breakdowns (paper Figs. 8, 20, 21, 24)
//! and event counters feeding the energy model (Figs. 27, 28).

use serde::{Deserialize, Serialize};
use warp_trace::KernelKind;

use crate::energy::EnergyReport;

/// Why sub-cores failed to issue, in sub-core-cycles.
///
/// Categories follow NVIDIA Nsight's stall taxonomy as used in the
/// paper's Fig. 8: `lsu_full` is the "LSU/LG throttle" class (the
/// dominant one in baseline gradient computation), `long_scoreboard` is
/// waiting on load data, `no_warp` is the idle tail when a sub-core has
/// run out of work, and `other` is everything else.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// A warp wanted to issue a memory instruction but the LDST port,
    /// LSU queue, or reduction-unit queue had no room.
    pub lsu_full: u64,
    /// All issueable warps were waiting for outstanding load data.
    pub long_scoreboard: u64,
    /// No resident warp had work left.
    pub no_warp: u64,
    /// Miscellaneous (e.g. transient conditions not otherwise classified).
    pub other: u64,
}

impl StallBreakdown {
    /// Total stalled sub-core-cycles (excluding the idle `no_warp` tail).
    pub fn total_active(&self) -> u64 {
        self.lsu_full + self.long_scoreboard + self.other
    }

    /// Fraction of active stalls attributable to the LSU.
    pub fn lsu_fraction(&self) -> f64 {
        let t = self.total_active();
        if t == 0 {
            0.0
        } else {
            self.lsu_full as f64 / t as f64
        }
    }

    /// Adds another breakdown into this one (used to combine per-SM
    /// accounting after a sharded run).
    pub fn merge(&mut self, other: &StallBreakdown) {
        let StallBreakdown {
            lsu_full,
            long_scoreboard,
            no_warp,
            other: misc,
        } = *other;
        self.lsu_full += lsu_full;
        self.long_scoreboard += long_scoreboard;
        self.no_warp += no_warp;
        self.other += misc;
    }
}

/// Raw event counters accumulated over one kernel run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimCounters {
    /// Warp instructions issued (compute + memory + atomic params).
    pub instructions_issued: u64,
    /// Compute instructions that were shuffles (`Shfl`) — ARC-SW's cost.
    pub shfl_instructions: u64,
    /// Lane-value/sector units accepted into LSU queues.
    pub lsu_accepted: u64,
    /// Lane-value/sector units that crossed the interconnect to a
    /// memory partition.
    pub icnt_flits: u64,
    /// Atomic lane-values retired by ROP units.
    pub rop_lane_ops: u64,
    /// Atomic lane-values folded by ARC-HW reduction units.
    pub redunit_lane_ops: u64,
    /// Atomic transactions routed to sub-core reduction units.
    pub redunit_transactions: u64,
    /// Atomic transactions the greedy scheduler sent straight to ROPs.
    pub rop_routed_transactions: u64,
    /// Load sectors serviced by the L2/DRAM.
    pub load_sectors: u64,
    /// Store sectors serviced.
    pub store_sectors: u64,
    /// Lane-values merged into an existing LAB/PHI buffer entry.
    pub buffer_merges: u64,
    /// LAB/PHI entries evicted before the kernel finished.
    pub buffer_evictions: u64,
    /// LAB/PHI entries flushed at kernel end.
    pub buffer_flushes: u64,
    /// Cycles in which a warp could not issue an *atomic* because of
    /// memory-path back-pressure — the paper's "shader atomic stalls"
    /// (Figs. 20/21).
    pub atomic_stall_cycles: u64,
    /// Cycles a reduction unit spent blocked on a full LSU while trying
    /// to emit its reduced atomic.
    pub redunit_blocked_cycles: u64,
}

impl SimCounters {
    /// Adds another counter set into this one (used to combine per-SM
    /// accounting after a sharded run). Destructures `other` so a new
    /// counter field cannot be silently dropped from the merge.
    pub fn merge(&mut self, other: &SimCounters) {
        let SimCounters {
            instructions_issued,
            shfl_instructions,
            lsu_accepted,
            icnt_flits,
            rop_lane_ops,
            redunit_lane_ops,
            redunit_transactions,
            rop_routed_transactions,
            load_sectors,
            store_sectors,
            buffer_merges,
            buffer_evictions,
            buffer_flushes,
            atomic_stall_cycles,
            redunit_blocked_cycles,
        } = *other;
        self.instructions_issued += instructions_issued;
        self.shfl_instructions += shfl_instructions;
        self.lsu_accepted += lsu_accepted;
        self.icnt_flits += icnt_flits;
        self.rop_lane_ops += rop_lane_ops;
        self.redunit_lane_ops += redunit_lane_ops;
        self.redunit_transactions += redunit_transactions;
        self.rop_routed_transactions += rop_routed_transactions;
        self.load_sectors += load_sectors;
        self.store_sectors += store_sectors;
        self.buffer_merges += buffer_merges;
        self.buffer_evictions += buffer_evictions;
        self.buffer_flushes += buffer_flushes;
        self.atomic_stall_cycles += atomic_stall_cycles;
        self.redunit_blocked_cycles += redunit_blocked_cycles;
    }
}

/// How the cycle loop itself ran: simulated cycles vs. cycles that were
/// actually stepped one at a time. The difference is the span covered by
/// event-driven fast-forward jumps (see `sim.rs`). Deliberately kept out
/// of [`KernelReport`] so reports stay bit-identical whether fast-forward
/// is on or off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Total simulated cycles (equals [`KernelReport::cycles`]).
    pub cycles_simulated: u64,
    /// Cycles executed by the naive per-cycle loop (every cycle when
    /// fast-forward is disabled).
    pub cycles_stepped: u64,
    /// Multi-cycle epochs executed by the epoch-synchronized loop
    /// (see `sim.rs`; 0 under `ARC_SIM_EPOCH=1`).
    #[serde(default)]
    pub epochs: u64,
    /// Cycles covered by those epochs (each also counts in
    /// `cycles_stepped`: epochs step every cycle, they just skip the
    /// per-cycle coordination).
    #[serde(default)]
    pub epoch_cycles: u64,
    /// Longest single epoch.
    #[serde(default)]
    pub epoch_len_max: u64,
    /// Barrier round-trips the per-cycle loop would have paid that the
    /// epoch loop did not: `2 * (len - 1)` per epoch, counted
    /// identically regardless of worker count.
    #[serde(default)]
    pub barrier_waits_avoided: u64,
    /// Cross-SM requests delivered at epoch boundaries (units buffered
    /// privately during epochs and merged by the coordinator replay).
    #[serde(default)]
    pub boundary_flits: u64,
    /// SM-cycle step opportunities within the stepped cycles
    /// (`cycles_stepped × SMs`). Denominator for
    /// [`EngineStats::lane_skip_ratio`].
    #[serde(default)]
    pub lane_steps_total: u64,
    /// SM-cycle steps skipped because the SM sat outside the active
    /// set (all warps quiescent) — the second fast-forward mechanism,
    /// invisible to [`EngineStats::skip_ratio`]. This is why workloads
    /// like hot-storm report `skip_ratio: 0` yet large fast-forward
    /// speedups: whole-trace jumps never fire, but most SMs are asleep
    /// most cycles.
    #[serde(default)]
    pub lane_steps_skipped: u64,
}

impl EngineStats {
    /// Fraction of simulated cycles skipped by fast-forward jumps
    /// (0.0 when every cycle was stepped).
    pub fn skip_ratio(&self) -> f64 {
        if self.cycles_simulated == 0 {
            0.0
        } else {
            1.0 - self.cycles_stepped as f64 / self.cycles_simulated as f64
        }
    }

    /// Fraction of SM-step opportunities skipped via the active set
    /// during stepped cycles (0.0 when every SM stepped every cycle).
    pub fn lane_skip_ratio(&self) -> f64 {
        if self.lane_steps_total == 0 {
            0.0
        } else {
            self.lane_steps_skipped as f64 / self.lane_steps_total as f64
        }
    }

    /// Mean epoch length in cycles (0.0 when no epochs ran).
    pub fn mean_epoch_len(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.epoch_cycles as f64 / self.epochs as f64
        }
    }
}

/// The outcome of simulating one kernel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name (from the trace).
    pub name: String,
    /// Training-stage classification.
    pub kind: KernelKind,
    /// Simulated cycles from launch to full drain.
    pub cycles: u64,
    /// Wall-clock milliseconds at the configured core clock.
    pub time_ms: f64,
    /// Event counters.
    pub counters: SimCounters,
    /// Stall breakdown in sub-core-cycles.
    pub stalls: StallBreakdown,
    /// Energy estimate.
    pub energy: EnergyReport,
    /// Fraction of available ROP lane-value slots used.
    pub rop_utilization: f64,
    /// Fraction of available reduction-unit fold slots used.
    pub redunit_utilization: f64,
    /// Issued instructions per available issue slot.
    pub issue_utilization: f64,
}

impl KernelReport {
    /// Mean stall cycles per issued instruction (the Fig. 8 / Fig. 24
    /// y-axis).
    pub fn stalls_per_instruction(&self) -> f64 {
        if self.counters.instructions_issued == 0 {
            0.0
        } else {
            self.stalls.total_active() as f64 / self.counters.instructions_issued as f64
        }
    }
}

/// The outcome of simulating a whole training iteration (forward + loss +
/// gradient computation), used for end-to-end numbers (Figs. 4 and 22).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Per-kernel reports in execution order.
    pub kernels: Vec<KernelReport>,
}

impl IterationReport {
    /// Total cycles across all kernels.
    pub fn total_cycles(&self) -> u64 {
        self.kernels.iter().map(|k| k.cycles).sum()
    }

    /// Total time in milliseconds.
    pub fn total_time_ms(&self) -> f64 {
        self.kernels.iter().map(|k| k.time_ms).sum()
    }

    /// Total energy in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.kernels.iter().map(|k| k.energy.total_mj).sum()
    }

    /// Sum of cycles for kernels of the given kind.
    pub fn cycles_of(&self, kind: KernelKind) -> u64 {
        self.kernels
            .iter()
            .filter(|k| k.kind == kind)
            .map(|k| k.cycles)
            .sum()
    }

    /// Fraction of total cycles spent in kernels of the given kind
    /// (paper Fig. 4's breakdown).
    pub fn fraction_of(&self, kind: KernelKind) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.cycles_of(kind) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_ratio_bounds() {
        assert_eq!(EngineStats::default().skip_ratio(), 0.0);
        let full = EngineStats {
            cycles_simulated: 100,
            cycles_stepped: 100,
            ..EngineStats::default()
        };
        assert_eq!(full.skip_ratio(), 0.0);
        let half = EngineStats {
            cycles_simulated: 100,
            cycles_stepped: 50,
            ..EngineStats::default()
        };
        assert!((half.skip_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_epoch_len() {
        assert_eq!(EngineStats::default().mean_epoch_len(), 0.0);
        let s = EngineStats {
            epochs: 4,
            epoch_cycles: 40,
            ..EngineStats::default()
        };
        assert!((s.mean_epoch_len() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn engine_stats_deserialize_old_format() {
        // Pre-epoch history files carry only the two original fields;
        // they must still parse (epoch counters default to zero).
        let old = r#"{"cycles_simulated": 10, "cycles_stepped": 7}"#;
        let s: EngineStats = serde_json::from_str(old).expect("old format parses");
        assert_eq!(s.cycles_simulated, 10);
        assert_eq!(s.epochs, 0);
        assert_eq!(s.lane_steps_skipped, 0);
        assert_eq!(s.lane_skip_ratio(), 0.0);
    }

    #[test]
    fn lane_skip_ratio_bounds() {
        assert_eq!(EngineStats::default().lane_skip_ratio(), 0.0);
        let s = EngineStats {
            cycles_stepped: 100,
            lane_steps_total: 400,
            lane_steps_skipped: 300,
            ..EngineStats::default()
        };
        assert!((s.lane_skip_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stall_fractions() {
        let s = StallBreakdown {
            lsu_full: 60,
            long_scoreboard: 30,
            no_warp: 500,
            other: 10,
        };
        assert_eq!(s.total_active(), 100);
        assert!((s.lsu_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_stall_fraction_is_zero() {
        assert_eq!(StallBreakdown::default().lsu_fraction(), 0.0);
    }

    #[test]
    fn iteration_fractions_sum_to_one() {
        let mk = |kind, cycles| KernelReport {
            name: "k".into(),
            kind,
            cycles,
            time_ms: 0.0,
            counters: SimCounters::default(),
            stalls: StallBreakdown::default(),
            energy: EnergyReport::default(),
            rop_utilization: 0.0,
            redunit_utilization: 0.0,
            issue_utilization: 0.0,
        };
        let it = IterationReport {
            kernels: vec![
                mk(KernelKind::Forward, 300),
                mk(KernelKind::Loss, 100),
                mk(KernelKind::GradCompute, 600),
            ],
        };
        assert_eq!(it.total_cycles(), 1000);
        let f = it.fraction_of(KernelKind::Forward)
            + it.fraction_of(KernelKind::Loss)
            + it.fraction_of(KernelKind::GradCompute);
        assert!((f - 1.0).abs() < 1e-12);
        assert!((it.fraction_of(KernelKind::GradCompute) - 0.6).abs() < 1e-12);
    }
}

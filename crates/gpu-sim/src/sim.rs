//! The cycle-level simulator: warp scheduling, instruction issue, and the
//! memory-system pipeline tying [`crate::machine`] components together.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};
use warp_trace::{ComputeKind, Instr, KernelTrace};

use arc_core::coalesce_atomic;

use crate::config::GpuConfig;
use crate::energy::EnergyModel;
use crate::machine::{AggBuffer, LsuQueue, MemPartition, MemReq, RedUnit, ReqKind};
use crate::stats::{IterationReport, KernelReport, SimCounters, StallBreakdown};

/// How the GPU handles atomic traffic — the paper's evaluated designs.
///
/// ARC-SW and CCCL are not separate paths: they are trace *rewrites*
/// (see `arc_core::sw` / `arc_core::cccl`) executed on [`Baseline`].
///
/// [`Baseline`]: AtomicPath::Baseline
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomicPath {
    /// All atomics go to the L2 ROP units (`atomicAdd` semantics).
    Baseline,
    /// ARC-HW: greedy scheduling between per-sub-core reduction units
    /// and the ROPs for `AtomRed` instructions (paper §4.3/§5.1).
    ArcHw,
    /// LAB: atomics aggregate in a partition of the L1/shared-memory
    /// SRAM (Dalmia et al., HPCA'22), contending with normal loads.
    Lab,
    /// LAB-ideal: a dedicated same-capacity SRAM with no tag/L1
    /// contention overheads (the paper's idealized comparator).
    LabIdeal,
    /// PHI: commutative atomics aggregate in L1 cache lines (Mukkara et
    /// al., MICRO'19); every request still traverses the LSU first.
    Phi,
}

impl AtomicPath {
    /// Figure-label name.
    pub fn label(self) -> &'static str {
        match self {
            AtomicPath::Baseline => "Baseline",
            AtomicPath::ArcHw => "ARC-HW",
            AtomicPath::Lab => "LAB",
            AtomicPath::LabIdeal => "LAB-ideal",
            AtomicPath::Phi => "PHI",
        }
    }

    /// All evaluated hardware paths.
    pub const ALL: [AtomicPath; 5] = [
        AtomicPath::Baseline,
        AtomicPath::ArcHw,
        AtomicPath::Lab,
        AtomicPath::LabIdeal,
        AtomicPath::Phi,
    ];
}

/// Errors from constructing or running a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The [`GpuConfig`] violated an invariant.
    InvalidConfig(String),
    /// The kernel did not drain within `max_cycles` (deadlock guard).
    ExceededMaxCycles {
        /// Kernel name.
        kernel: String,
        /// The configured cycle cap.
        max_cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid GPU configuration: {msg}"),
            SimError::ExceededMaxCycles { kernel, max_cycles } => write!(
                f,
                "kernel `{kernel}` did not finish within {max_cycles} cycles"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// A configured GPU simulator.
///
/// # Example
///
/// ```
/// use gpu_sim::{AtomicPath, GpuConfig, Simulator};
/// use warp_trace::{AtomicInstr, KernelKind, KernelTrace, WarpTraceBuilder};
///
/// # fn main() -> Result<(), gpu_sim::SimError> {
/// let mut w = WarpTraceBuilder::new();
/// w.compute_fp32(16).atomic(AtomicInstr::same_address(0x100, &[1.0; 32]));
/// let trace = KernelTrace::new("g", KernelKind::GradCompute, vec![w.finish()]);
/// let sim = Simulator::new(GpuConfig::tiny(), AtomicPath::Baseline)?;
/// let report = sim.run(&trace)?;
/// assert!(report.cycles > 0);
/// assert_eq!(report.counters.rop_lane_ops, 32);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    cfg: GpuConfig,
    path: AtomicPath,
    energy: EnergyModel,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(cfg: GpuConfig, path: AtomicPath) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::InvalidConfig)?;
        Ok(Simulator {
            cfg,
            path,
            energy: EnergyModel::default(),
        })
    }

    /// Replaces the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The atomic path in use.
    pub fn path(&self) -> AtomicPath {
        self.path
    }

    /// Simulates one kernel to completion (all warps retired and every
    /// queue/buffer drained).
    ///
    /// # Errors
    ///
    /// [`SimError::ExceededMaxCycles`] if the kernel fails to drain.
    pub fn run(&self, trace: &KernelTrace) -> Result<KernelReport, SimError> {
        let mut m = Machine::new(&self.cfg, self.path, trace);
        let cycles = m.run(trace)?;
        let energy = self.energy.evaluate(&self.cfg, &m.counters, cycles);
        let slots = cycles.max(1) as f64;
        let rop_utilization =
            m.counters.rop_lane_ops as f64 / (slots * f64::from(self.cfg.total_rops()));
        let redunit_slots = slots
            * f64::from(self.cfg.total_subcores())
            * f64::from(self.cfg.redunit_throughput);
        let redunit_utilization = m.counters.redunit_lane_ops as f64 / redunit_slots;
        let issue_utilization =
            m.counters.instructions_issued as f64 / (slots * f64::from(self.cfg.total_subcores()));
        Ok(KernelReport {
            name: trace.name().to_string(),
            kind: trace.kind(),
            cycles,
            time_ms: self.cfg.cycles_to_ms(cycles),
            counters: m.counters,
            stalls: m.stalls,
            energy,
            rop_utilization,
            redunit_utilization,
            issue_utilization,
        })
    }

    /// Simulates a training iteration: each kernel in order, reporting
    /// per-kernel and aggregate results.
    ///
    /// # Errors
    ///
    /// Propagates the first kernel failure.
    pub fn run_iteration(&self, traces: &[KernelTrace]) -> Result<IterationReport, SimError> {
        let kernels = traces
            .iter()
            .map(|t| self.run(t))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IterationReport { kernels })
    }
}

// ---------------------------------------------------------------------
// Internal per-run state.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct WarpRt {
    pc: u32,
    /// Progress within the current instruction: compute repeats issued,
    /// or bundle params issued.
    sub: u32,
    outstanding: u32,
    done: bool,
}

struct SubCoreRt {
    resident: Vec<u32>,
    /// Rotation start for greedy-then-oldest scheduling.
    rr: usize,
    ldst_free_at: u64,
    redunit: RedUnit,
}

struct SmRt {
    subcores: Vec<SubCoreRt>,
    lsu: LsuQueue,
    buffer: Option<AggBuffer>,
}

enum Outcome {
    Issued,
    Stall(StallClass),
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum StallClass {
    LsuAtomic,
    LsuData,
    Scoreboard,
    NoWarp,
    Other,
}

struct Machine<'a> {
    cfg: &'a GpuConfig,
    path: AtomicPath,
    sms: Vec<SmRt>,
    partitions: Vec<MemPartition>,
    warps: Vec<WarpRt>,
    /// Global work-dispatch queue: like the hardware block scheduler,
    /// warps are handed to whichever sub-core frees a resident slot.
    pending: VecDeque<u32>,
    completions: BinaryHeap<Reverse<(u64, u32)>>,
    counters: SimCounters,
    stalls: StallBreakdown,
    warps_remaining: u64,
    load_rr: u64,
}

impl<'a> Machine<'a> {
    fn new(cfg: &'a GpuConfig, path: AtomicPath, trace: &KernelTrace) -> Self {
        let buffer_for = |sm_path: AtomicPath| -> Option<AggBuffer> {
            match sm_path {
                AtomicPath::Lab => Some(AggBuffer::lab(
                    cfg.lab_entries as usize,
                    cfg.lab_l1_load_penalty,
                )),
                AtomicPath::LabIdeal => {
                    Some(AggBuffer::lab(cfg.lab_ideal_entries as usize, 0))
                }
                AtomicPath::Phi => Some(AggBuffer::phi(
                    cfg.phi_lines as usize,
                    cfg.phi_l1_load_penalty,
                )),
                _ => None,
            }
        };

        let sms: Vec<SmRt> = (0..cfg.num_sms)
            .map(|_| SmRt {
                subcores: (0..cfg.subcores_per_sm)
                    .map(|_| SubCoreRt {
                        resident: Vec::new(),
                        rr: 0,
                        ldst_free_at: 0,
                        redunit: RedUnit::default(),
                    })
                    .collect(),
                lsu: LsuQueue::new(cfg.lsu_queue_capacity),
                buffer: buffer_for(path),
            })
            .collect();

        let mut warps = Vec::with_capacity(trace.warps().len());
        let mut pending = VecDeque::with_capacity(trace.warps().len());
        let mut warps_remaining = 0u64;
        for (w, wt) in trace.warps().iter().enumerate() {
            let done = wt.instrs.is_empty();
            if !done {
                warps_remaining += 1;
                pending.push_back(w as u32);
            }
            warps.push(WarpRt {
                pc: 0,
                sub: 0,
                outstanding: 0,
                done,
            });
        }

        Machine {
            cfg,
            path,
            sms,
            pending,
            partitions: (0..cfg.num_mem_partitions)
                .map(|_| MemPartition::new(cfg))
                .collect(),
            warps,
            completions: BinaryHeap::new(),
            counters: SimCounters::default(),
            stalls: StallBreakdown::default(),
            warps_remaining,
            load_rr: 0,
        }
    }

    fn run(&mut self, trace: &KernelTrace) -> Result<u64, SimError> {
        let mut cycle: u64 = 0;
        loop {
            // 1. Memory partitions retire work.
            for p in &mut self.partitions {
                p.step(cycle, &mut self.completions, &mut self.counters);
            }

            // 2. Load completions wake warps.
            while let Some(&Reverse((done, w))) = self.completions.peek() {
                if done > cycle {
                    break;
                }
                self.completions.pop();
                let rt = &mut self.warps[w as usize];
                rt.outstanding -= 1;
                if rt.outstanding == 0 && rt.done_pc(trace, w) && !rt.done {
                    rt.done = true;
                    self.warps_remaining -= 1;
                }
            }

            let flushing = self.warps_remaining == 0;

            // 3. SMs: buffer flush/evictions, LSU drain, reduction units,
            //    then instruction issue.
            for sm in &mut self.sms {
                if let Some(buf) = sm.buffer.as_mut() {
                    if flushing {
                        buf.flush(&mut self.counters);
                    }
                    buf.drain_evictions(4, self.cfg, &mut self.partitions, &mut self.counters);
                }
                sm.lsu.drain(
                    self.cfg.lsu_drain_rate * 4,
                    &mut sm.buffer,
                    &mut self.partitions,
                    &mut self.counters,
                );
                for sc in &mut sm.subcores {
                    sc.redunit.step(
                        self.cfg.redunit_throughput,
                        self.cfg.redunit_emit_reserve,
                        &mut sm.lsu,
                        &mut self.partitions,
                        &mut self.counters,
                    );
                }
                // The SM-shared MIO port refreshes its shuffle budget
                // every cycle (quarter-units).
                let mut shfl_budget_q = self.cfg.shfl_throughput_q;
                for sc_idx in 0..sm.subcores.len() {
                    let outcome = issue_one(
                        self.cfg,
                        self.path,
                        trace,
                        cycle,
                        &mut sm.subcores[sc_idx],
                        &mut self.pending,
                        &mut sm.lsu,
                        &mut shfl_budget_q,
                        sm.buffer.as_ref().map_or(0, |b| b.load_penalty),
                        &mut self.warps,
                        &mut self.counters,
                        &mut self.warps_remaining,
                        &mut self.load_rr,
                    );
                    match outcome {
                        Outcome::Issued => {}
                        Outcome::Stall(StallClass::LsuAtomic) => {
                            self.stalls.lsu_full += 1;
                            self.counters.atomic_stall_cycles += 1;
                        }
                        Outcome::Stall(StallClass::LsuData) => self.stalls.lsu_full += 1,
                        Outcome::Stall(StallClass::Scoreboard) => {
                            self.stalls.long_scoreboard += 1
                        }
                        Outcome::Stall(StallClass::NoWarp) => self.stalls.no_warp += 1,
                        Outcome::Stall(StallClass::Other) => self.stalls.other += 1,
                    }
                }
            }

            cycle += 1;
            if self.drained() {
                return Ok(cycle);
            }
            if std::env::var_os("GPU_SIM_DEBUG").is_some() && cycle.is_multiple_of(10_000) {
                let red_pending: usize = self
                    .sms
                    .iter()
                    .flat_map(|s| s.subcores.iter())
                    .map(|sc| sc.redunit.pending())
                    .sum();
                let red_empty: usize = self
                    .sms
                    .iter()
                    .flat_map(|s| s.subcores.iter())
                    .filter(|sc| sc.redunit.pending() == 0)
                    .count();
                eprintln!(
                    "[dbg] cycle={cycle} warps_left={} red_pending={red_pending} red_empty_units={red_empty} lsu0={} part0={} issued={}",
                    self.warps_remaining,
                    self.sms[0].lsu.occupancy(),
                    self.partitions[0].occupancy(),
                    self.counters.instructions_issued
                );
            }
            if std::env::var_os("GPU_SIM_DEBUG").is_some() && cycle.is_multiple_of(20_000) {
                let lsu: u32 = self.sms.iter().map(|s| s.lsu.occupancy()).sum();
                let part: u32 = self.partitions.iter().map(|p| p.occupancy()).sum();
                let buf: usize = self
                    .sms
                    .iter()
                    .filter_map(|s| s.buffer.as_ref())
                    .map(|b| b.len() + b.evict_backlog())
                    .sum();
                eprintln!(
                    "[gpu-sim] cycle={cycle} warps_remaining={} lsu={lsu} part={part} buf={buf} completions={}",
                    self.warps_remaining,
                    self.completions.len()
                );
            }
            if cycle >= self.cfg.max_cycles {
                return Err(SimError::ExceededMaxCycles {
                    kernel: trace.name().to_string(),
                    max_cycles: self.cfg.max_cycles,
                });
            }
        }
    }

    fn drained(&self) -> bool {
        if self.warps_remaining > 0 || !self.completions.is_empty() {
            return false;
        }
        if self.partitions.iter().any(|p| p.occupancy() > 0) {
            return false;
        }
        self.sms.iter().all(|sm| {
            sm.lsu.is_empty()
                && sm.subcores.iter().all(|sc| sc.redunit.pending() == 0)
                && sm
                    .buffer
                    .as_ref()
                    .is_none_or(|b| b.len() == 0 && b.evict_backlog() == 0)
        })
    }
}

impl WarpRt {
    fn done_pc(&self, trace: &KernelTrace, w: u32) -> bool {
        self.pc as usize >= trace.warps()[w as usize].instrs.len()
    }
}

/// Cycles the LDST port stays busy dispatching `units` lane-values.
fn ldst_busy(units: u32, width: u32) -> u64 {
    u64::from(units.div_ceil(width).max(1))
}

#[allow(clippy::too_many_arguments)]
fn issue_one(
    cfg: &GpuConfig,
    path: AtomicPath,
    trace: &KernelTrace,
    cycle: u64,
    sc: &mut SubCoreRt,
    pending: &mut VecDeque<u32>,
    lsu: &mut LsuQueue,
    shfl_budget_q: &mut u32,
    load_penalty: u32,
    warps: &mut [WarpRt],
    counters: &mut SimCounters,
    warps_remaining: &mut u64,
    load_rr: &mut u64,
) -> Outcome {
    // Retire finished warps and pull in new ones from the global
    // dispatch queue (work-conserving, like the hardware block
    // scheduler handing CTAs to whichever SM has room).
    sc.resident.retain(|&w| !warps[w as usize].done);
    // At most one new warp per cycle, so launch work spreads evenly
    // across all sub-cores instead of flooding the first ones scanned.
    if sc.resident.len() < cfg.max_warps_per_subcore as usize {
        if let Some(w) = pending.pop_front() {
            sc.resident.push(w);
        }
    }
    if sc.resident.is_empty() {
        return Outcome::Stall(StallClass::NoWarp);
    }

    let n = sc.resident.len();
    let mut saw_scoreboard = false;
    let mut saw_lsu_atomic = false;
    let mut saw_lsu_data = false;

    'scan: for k in 0..n {
        let pos = (sc.rr + k) % n;
        let w = sc.resident[pos];
        let rt = &mut warps[w as usize];
        if rt.done {
            continue;
        }
        if rt.outstanding > 0 {
            saw_scoreboard = true;
            continue;
        }
        let instrs = &trace.warps()[w as usize].instrs;
        if rt.pc as usize >= instrs.len() {
            // Retired warp that is only waiting on loads — handled above.
            continue;
        }
        let instr = &instrs[rt.pc as usize];
        match instr {
            Instr::Compute { kind, repeat } => {
                if *kind == ComputeKind::Shfl {
                    // Shuffles contend for the SM-shared MIO port.
                    if *shfl_budget_q < 4 {
                        saw_lsu_data = true;
                        continue;
                    }
                    *shfl_budget_q -= 4;
                    counters.shfl_instructions += 1;
                }
                counters.instructions_issued += 1;
                rt.sub += 1;
                if rt.sub >= u32::from(*repeat) {
                    advance(rt, warps_remaining, instrs.len());
                }
                sc.rr = pos;
                return Outcome::Issued;
            }
            Instr::Load { sectors } => {
                let sectors = u32::from(*sectors).max(1);
                if cycle < sc.ldst_free_at || !lsu.can_accept(sectors) {
                    saw_lsu_data = true;
                    continue;
                }
                *load_rr += 1;
                let h = load_rr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let partition = (h % u64::from(cfg.num_mem_partitions)) as u32;
                let miss = ((h >> 33) % 1000) as f64 >= cfg.l2_hit_rate * 1000.0;
                let extra = if miss { cfg.dram_extra_latency } else { 0 } + load_penalty;
                lsu.push(
                    MemReq {
                        size: sectors,
                        partition,
                        addr: h,
                        kind: ReqKind::Load {
                            warp: w,
                            extra_latency: extra,
                        },
                    },
                    counters,
                );
                rt.outstanding += 1;
                sc.ldst_free_at = cycle + ldst_busy(sectors, cfg.ldst_dispatch_width);
                counters.instructions_issued += 1;
                advance(rt, warps_remaining, instrs.len());
                sc.rr = pos;
                return Outcome::Issued;
            }
            Instr::Store { sectors } => {
                let sectors = u32::from(*sectors).max(1);
                if cycle < sc.ldst_free_at || !lsu.can_accept(sectors) {
                    saw_lsu_data = true;
                    continue;
                }
                *load_rr += 1;
                let h = load_rr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let partition = (h % u64::from(cfg.num_mem_partitions)) as u32;
                lsu.push(
                    MemReq {
                        size: sectors,
                        partition,
                        addr: h,
                        kind: ReqKind::Store,
                    },
                    counters,
                );
                sc.ldst_free_at = cycle + ldst_busy(sectors, cfg.ldst_dispatch_width);
                counters.instructions_issued += 1;
                advance(rt, warps_remaining, instrs.len());
                sc.rr = pos;
                return Outcome::Issued;
            }
            Instr::Atomic(bundle) => {
                match issue_plain_atomic(
                    cfg, cycle, sc, lsu, bundle, rt, counters, warps_remaining, instrs.len(),
                ) {
                    AtomicIssue::Issued => {
                        sc.rr = pos;
                        return Outcome::Issued;
                    }
                    AtomicIssue::Blocked => {
                        saw_lsu_atomic = true;
                        continue;
                    }
                }
            }
            Instr::AtomRed(bundle) if path != AtomicPath::ArcHw => {
                // `atomred` on a GPU without ARC-HW behaves as a plain
                // atomic ("the ARC reduction unit is bypassed", §5.6).
                match issue_plain_atomic(
                    cfg, cycle, sc, lsu, bundle, rt, counters, warps_remaining, instrs.len(),
                ) {
                    AtomicIssue::Issued => {
                        sc.rr = pos;
                        return Outcome::Issued;
                    }
                    AtomicIssue::Blocked => {
                        saw_lsu_atomic = true;
                        continue;
                    }
                }
            }
            Instr::AtomRed(bundle) => {
                // ARC-HW path: greedy scheduling between reduction unit
                // and ROPs, decided per transaction (paper §4.3).
                if bundle.params.is_empty() {
                    counters.instructions_issued += 1;
                    advance(rt, warps_remaining, instrs.len());
                    sc.rr = pos;
                    return Outcome::Issued;
                }
                let param = &bundle.params[rt.sub as usize];
                if param.active_count() == 0 {
                    counters.instructions_issued += 1;
                    advance_bundle(rt, warps_remaining, instrs.len(), bundle.params.len());
                    sc.rr = pos;
                    return Outcome::Issued;
                }
                if cycle < sc.ldst_free_at {
                    saw_lsu_atomic = true;
                    continue;
                }
                // Cheap pre-check before paying for coalescing: if
                // neither a reduction-unit slot nor a single LSU slot is
                // available, nothing can be scheduled this cycle.
                if sc.redunit.space(cfg.redunit_queue_capacity) == 0 && !lsu.can_accept(1) {
                    saw_lsu_atomic = true;
                    continue;
                }
                let txs = coalesce_atomic(param);
                // Greedy scheduling "depending on which queue is free"
                // (paper §4.3): each transaction goes to whichever of
                // the reduction-unit queue and the LSU/ROP path is
                // relatively emptier, overflowing to the other side.
                // The LDST-stall signal is folded in: a stalled LSU
                // reads as fully occupied.
                let mut red_pending = sc.redunit.pending() as u32;
                let mut rop_total = 0u32;
                let mut plan: Vec<bool> = Vec::with_capacity(txs.len()); // true = reduce
                for tx in &txs {
                    let size = tx.request_count();
                    let red_space = cfg.redunit_queue_capacity.saturating_sub(red_pending);
                    let red_frac =
                        f64::from(red_pending) / f64::from(cfg.redunit_queue_capacity.max(1));
                    let lsu_frac = if lsu.stalled(cfg.lsu_stall_threshold) {
                        1.0
                    } else {
                        (lsu.occupancy_fraction()
                            + f64::from(rop_total) / f64::from(cfg.lsu_queue_capacity))
                        .min(1.0)
                    };
                    if red_space > 0 && red_frac <= lsu_frac {
                        plan.push(true);
                        red_pending += 1;
                    } else if lsu.can_accept(rop_total + size) {
                        plan.push(false);
                        rop_total += size;
                    } else if red_space > 0 {
                        plan.push(true);
                        red_pending += 1;
                    } else {
                        saw_lsu_atomic = true;
                        continue 'scan;
                    }
                }
                let mut red_count = 0u64;
                for (tx, &reduce) in txs.iter().zip(&plan) {
                    let partition = cfg.partition_of(tx.addr) as u32;
                    if reduce {
                        sc.redunit.push(tx.request_count(), tx.addr, partition);
                        counters.redunit_transactions += 1;
                        red_count += 1;
                    } else {
                        counters.rop_routed_transactions += 1;
                        lsu.push(
                            MemReq {
                                size: tx.request_count(),
                                partition,
                                addr: tx.addr,
                                kind: ReqKind::Atomic,
                            },
                            counters,
                        );
                    }
                }
                let busy = if rop_total > 0 {
                    ldst_busy(rop_total, cfg.ldst_dispatch_width)
                } else {
                    0
                } + red_count;
                sc.ldst_free_at = cycle + busy.max(1);
                counters.instructions_issued += 1;
                advance_bundle(rt, warps_remaining, instrs.len(), bundle.params.len());
                sc.rr = pos;
                return Outcome::Issued;
            }
        }
    }

    if saw_lsu_atomic {
        Outcome::Stall(StallClass::LsuAtomic)
    } else if saw_lsu_data {
        Outcome::Stall(StallClass::LsuData)
    } else if saw_scoreboard {
        Outcome::Stall(StallClass::Scoreboard)
    } else {
        Outcome::Stall(StallClass::Other)
    }
}

enum AtomicIssue {
    Issued,
    Blocked,
}

/// Issues one parameter of a plain atomic bundle to the LSU → ROP path.
#[allow(clippy::too_many_arguments)]
fn issue_plain_atomic(
    cfg: &GpuConfig,
    cycle: u64,
    sc: &mut SubCoreRt,
    lsu: &mut LsuQueue,
    bundle: &warp_trace::AtomicBundle,
    rt: &mut WarpRt,
    counters: &mut SimCounters,
    warps_remaining: &mut u64,
    len: usize,
) -> AtomicIssue {
    if bundle.params.is_empty() {
        counters.instructions_issued += 1;
        advance(rt, warps_remaining, len);
        return AtomicIssue::Issued;
    }
    let param = &bundle.params[rt.sub as usize];
    // Cheap pre-check (no allocation): the total lane-value size equals
    // the active-lane count regardless of how the coalescer groups it.
    let total = param.active_count();
    if total == 0 {
        counters.instructions_issued += 1;
        advance_bundle(rt, warps_remaining, len, bundle.params.len());
        return AtomicIssue::Issued;
    }
    if cycle < sc.ldst_free_at || !lsu.can_accept(total) {
        return AtomicIssue::Blocked;
    }
    let txs = coalesce_atomic(param);
    for tx in &txs {
        lsu.push(
            MemReq {
                size: tx.request_count(),
                partition: cfg.partition_of(tx.addr) as u32,
                addr: tx.addr,
                kind: ReqKind::Atomic,
            },
            counters,
        );
    }
    sc.ldst_free_at = cycle + ldst_busy(total, cfg.ldst_dispatch_width);
    counters.instructions_issued += 1;
    advance_bundle(rt, warps_remaining, len, bundle.params.len());
    AtomicIssue::Issued
}

/// Advances past a single-slot instruction (or the last repeat).
fn advance(rt: &mut WarpRt, warps_remaining: &mut u64, len: usize) {
    rt.pc += 1;
    rt.sub = 0;
    if rt.pc as usize >= len && rt.outstanding == 0 && !rt.done {
        rt.done = true;
        *warps_remaining -= 1;
    }
}

/// Advances within a multi-parameter atomic bundle.
fn advance_bundle(rt: &mut WarpRt, warps_remaining: &mut u64, len: usize, params: usize) {
    rt.sub += 1;
    if rt.sub as usize >= params {
        advance(rt, warps_remaining, len);
    }
}

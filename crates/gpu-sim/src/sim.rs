//! The cycle-level simulator: warp scheduling, instruction issue, and the
//! memory-system pipeline tying [`crate::machine`] components together.
//!
//! # Execution model
//!
//! Every cycle runs in four phases:
//!
//! 1. **Memory (serial)** — partitions retire ROP/L2 work, load
//!    completions wake their warps (routed to the owning SM).
//! 2. **Dispatch (serial)** — finished warps leave their sub-core slots
//!    and the global block scheduler hands out pending warps in fixed
//!    (SM, sub-core) order; partition occupancies are snapshotted.
//! 3. **SM step (parallel)** — each SM independently drains its
//!    aggregation buffer and LSU, folds reduction-unit work, and issues
//!    from its sub-cores. SMs talk to the memory system only through an
//!    [`SmPort`]: admission is judged against the phase-2 snapshot plus
//!    the SM's own traffic, and accepted requests land in a per-SM
//!    outbox.
//! 4. **Delivery (serial)** — outboxes drain into the partitions in
//!    SM-index order and retirement counts are folded in.
//!
//! Because a phase-3 SM step is a pure function of that SM's state and
//! the frozen snapshot, sharding SMs across worker threads (see
//! [`Simulator::with_sm_workers`] / the `ARC_SIM_WORKERS` environment
//! variable) produces **bit-identical** results to the serial engine —
//! cycles, stall breakdowns, counters, and energy all match exactly
//! regardless of worker count or OS scheduling.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use warp_trace::{ComputeKind, Instr, KernelTrace};

use crate::config::GpuConfig;
use crate::energy::EnergyModel;
use crate::machine::{
    AggBuffer, LsuQueue, MemPartition, MemReq, PortMode, RedUnit, ReqKind, SmPort,
};
use crate::parallel::{
    default_epoch_mode, default_fast_forward, default_sim_workers, EpochMode, HybridBarrier,
};
use crate::paths::{issue_plain_atomic, AtomicIssue, AtomicIssueCtx, AtomicPath};
use crate::stats::{EngineStats, IterationReport, KernelReport, SimCounters, StallBreakdown};
use crate::telemetry::{KernelTelemetry, SampleSnapshot, TelemetryConfig, TelemetryState};

/// Errors from constructing or running a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The [`GpuConfig`] violated an invariant.
    InvalidConfig(String),
    /// The kernel did not drain within `max_cycles` (deadlock guard).
    ExceededMaxCycles {
        /// Kernel name.
        kernel: String,
        /// The configured cycle cap.
        max_cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid GPU configuration: {msg}"),
            SimError::ExceededMaxCycles { kernel, max_cycles } => write!(
                f,
                "kernel `{kernel}` did not finish within {max_cycles} cycles"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// A configured GPU simulator.
///
/// # Example
///
/// ```
/// use gpu_sim::{AtomicPath, GpuConfig, Simulator};
/// use warp_trace::{AtomicInstr, KernelKind, KernelTrace, WarpTraceBuilder};
///
/// # fn main() -> Result<(), gpu_sim::SimError> {
/// let mut w = WarpTraceBuilder::new();
/// w.compute_fp32(16).atomic(AtomicInstr::same_address(0x100, &[1.0; 32]));
/// let trace = KernelTrace::new("g", KernelKind::GradCompute, vec![w.finish()]);
/// let sim = Simulator::new(GpuConfig::tiny(), AtomicPath::Baseline)?;
/// let report = sim.run(&trace)?;
/// assert!(report.cycles > 0);
/// assert_eq!(report.counters.rop_lane_ops, 32);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    cfg: GpuConfig,
    path: AtomicPath,
    energy: EnergyModel,
    sm_workers: usize,
    fast_forward: bool,
    epoch: EpochMode,
    telemetry: Option<TelemetryConfig>,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// The number of SM worker threads defaults to the `ARC_SIM_WORKERS`
    /// environment variable (1 — serial — if unset). Worker count never
    /// affects simulation results, only wall-clock time; that is why it
    /// is not part of [`GpuConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(cfg: GpuConfig, path: AtomicPath) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::InvalidConfig)?;
        Ok(Simulator {
            cfg,
            path,
            energy: EnergyModel::default(),
            sm_workers: default_sim_workers(),
            fast_forward: default_fast_forward(),
            epoch: default_epoch_mode(),
            telemetry: None,
        })
    }

    /// Replaces the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Sets the number of worker threads that shard SMs inside each
    /// [`Simulator::run`]. `1` runs serially on the calling thread;
    /// higher values are clamped to the number of SMs. Results are
    /// bit-identical for every value.
    pub fn with_sm_workers(mut self, workers: usize) -> Self {
        self.sm_workers = workers.max(1);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The atomic path in use.
    pub fn path(&self) -> AtomicPath {
        self.path
    }

    /// The configured number of SM worker threads.
    pub fn sm_workers(&self) -> usize {
        self.sm_workers
    }

    /// Enables or disables the event-driven fast-forward engine: when no
    /// SM can issue and every queue is idle, the cycle loop jumps
    /// straight to the next event (load completion, LDST port release,
    /// telemetry boundary) and bulk-credits the skipped stall cycles.
    /// Defaults to the `ARC_FF` environment variable (on unless set to
    /// `0`/`false`/`off`). Results are bit-identical either way — reports,
    /// stall breakdowns, telemetry, and chrome traces all match the naive
    /// loop exactly; only wall-clock time changes.
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Whether the fast-forward engine is enabled.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Sets the epoch synchronization mode (see [`EpochMode`]): how many
    /// cycles SM shards may run privately between coordinator phases.
    /// Defaults to the `ARC_SIM_EPOCH` environment variable
    /// ([`EpochMode::Auto`] if unset). Like the worker-count knob, the
    /// epoch mode never changes simulation results — the conservative
    /// epoch-safety analysis (see `plan_epoch` in this module) clamps
    /// every epoch to a span it can prove observationally equivalent to
    /// the per-cycle loop, and [`EpochMode::PerCycle`] reproduces that
    /// loop exactly.
    pub fn with_epoch(mut self, mode: EpochMode) -> Self {
        self.epoch = mode;
        self
    }

    /// The epoch synchronization mode in use.
    pub fn epoch(&self) -> EpochMode {
        self.epoch
    }

    /// Enables telemetry collection (see [`crate::telemetry`]). Runs
    /// started by [`Simulator::run_with_telemetry`] will sample queue
    /// occupancies, stall/issue rates, and warp residency spans on the
    /// configured cadence. Telemetry never changes simulation results:
    /// samples are taken from the serial coordinator phases only, so
    /// reports stay bit-identical with telemetry on or off and for any
    /// worker count.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The telemetry configuration, if enabled.
    pub fn telemetry_config(&self) -> Option<&TelemetryConfig> {
        self.telemetry.as_ref()
    }

    /// Simulates one kernel to completion (all warps retired and every
    /// queue/buffer drained).
    ///
    /// # Errors
    ///
    /// [`SimError::ExceededMaxCycles`] if the kernel fails to drain.
    pub fn run(&self, trace: &KernelTrace) -> Result<KernelReport, SimError> {
        self.run_with_telemetry(trace).map(|(report, _)| report)
    }

    /// Simulates one kernel like [`Simulator::run`] and additionally
    /// returns the collected [`KernelTelemetry`] when telemetry was
    /// enabled with [`Simulator::with_telemetry`] (`None` otherwise).
    ///
    /// # Errors
    ///
    /// [`SimError::ExceededMaxCycles`] if the kernel fails to drain.
    pub fn run_with_telemetry(
        &self,
        trace: &KernelTrace,
    ) -> Result<(KernelReport, Option<KernelTelemetry>), SimError> {
        self.run_detailed(trace).map(|(r, t, _)| (r, t))
    }

    /// Simulates one kernel like [`Simulator::run_with_telemetry`] and
    /// additionally returns [`EngineStats`] describing how the cycle
    /// loop ran (simulated vs. stepped cycles — the fast-forward skip
    /// ratio). Engine stats are observability only and never feed back
    /// into the report.
    ///
    /// # Errors
    ///
    /// [`SimError::ExceededMaxCycles`] if the kernel fails to drain.
    pub fn run_detailed(
        &self,
        trace: &KernelTrace,
    ) -> Result<(KernelReport, Option<KernelTelemetry>, EngineStats), SimError> {
        let mut m = Machine::new(
            &self.cfg,
            self.path,
            trace,
            self.sm_workers,
            self.fast_forward,
            self.epoch,
            self.telemetry.as_ref(),
        );
        let cycles = m.run(trace)?;
        let engine = EngineStats {
            cycles_simulated: cycles,
            cycles_stepped: m.cycles_stepped,
            epochs: m.epoch_stats.epochs,
            epoch_cycles: m.epoch_stats.cycles,
            epoch_len_max: m.epoch_stats.len_max,
            // Two barrier crossings bracket each SM phase; an epoch of
            // `len` cycles pays them once instead of `len` times.
            barrier_waits_avoided: 2 * (m.epoch_stats.cycles - m.epoch_stats.epochs),
            boundary_flits: m.epoch_stats.flits,
            lane_steps_total: m.cycles_stepped * u64::from(self.cfg.num_sms),
            lane_steps_skipped: m.lane_steps_skipped,
        };
        let telemetry = m.telemetry.take().map(|t| t.finish(trace.name(), cycles));
        let counters = m.hub.counters;
        let stalls = m.hub.stalls;
        let energy = self.energy.evaluate(&self.cfg, &counters, cycles);
        let slots = cycles.max(1) as f64;
        let rop_utilization =
            counters.rop_lane_ops as f64 / (slots * f64::from(self.cfg.total_rops()));
        let redunit_slots =
            slots * f64::from(self.cfg.total_subcores()) * f64::from(self.cfg.redunit_throughput);
        let redunit_utilization = counters.redunit_lane_ops as f64 / redunit_slots;
        let issue_utilization =
            counters.instructions_issued as f64 / (slots * f64::from(self.cfg.total_subcores()));
        Ok((
            KernelReport {
                name: trace.name().to_string(),
                kind: trace.kind(),
                cycles,
                time_ms: self.cfg.cycles_to_ms(cycles),
                counters,
                stalls,
                energy,
                rop_utilization,
                redunit_utilization,
                issue_utilization,
            },
            telemetry,
            engine,
        ))
    }

    /// Simulates a training iteration: each kernel in order, reporting
    /// per-kernel and aggregate results.
    ///
    /// # Errors
    ///
    /// Propagates the first kernel failure.
    pub fn run_iteration(&self, traces: &[KernelTrace]) -> Result<IterationReport, SimError> {
        let kernels = traces
            .iter()
            .map(|t| self.run(t))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IterationReport { kernels })
    }
}

// ---------------------------------------------------------------------
// Internal per-run state.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WarpRt {
    pub(crate) pc: u32,
    /// Progress within the current instruction: compute repeats issued,
    /// or bundle params issued.
    pub(crate) sub: u32,
    pub(crate) outstanding: u32,
    pub(crate) done: bool,
}

/// A warp resident in a sub-core slot. Warp state lives *inside* the
/// owning sub-core (not a global array) so the parallel SM phase never
/// touches another SM's warps.
#[derive(Debug)]
struct Warp {
    id: u32,
    rt: WarpRt,
}

struct SubCoreRt {
    resident: Vec<Warp>,
    /// Rotation start for greedy-then-oldest scheduling.
    rr: usize,
    ldst_free_at: u64,
    redunit: RedUnit,
    /// Reusable coalescing buffer: (addr, lane-values) per transaction.
    tx_scratch: Vec<(u64, u32)>,
    /// Reusable ARC-HW greedy plan (true = reduce).
    plan_scratch: Vec<bool>,
}

struct SmRt {
    subcores: Vec<SubCoreRt>,
    lsu: LsuQueue,
    buffer: Option<AggBuffer>,
}

/// Everything one SM owns exclusively during the parallel phase.
struct SmLane {
    sm: SmRt,
    /// Requests admitted this cycle, delivered to partitions in phase 4.
    outbox: Vec<MemReq>,
    /// Per-partition units admitted this cycle (reset each cycle).
    sent: Vec<u32>,
    /// SM-local event counters, merged into the hub after the run.
    counters: SimCounters,
    /// SM-local stall accounting, merged after the run.
    stalls: StallBreakdown,
    /// Per-SM hash stream for load/store partition + hit/miss draws
    /// (seeded from the SM index so streams differ across SMs).
    load_rr: u64,
    /// Warps retired during this cycle's SM phase; folded into the hub's
    /// `warps_remaining` in phase 4.
    retired: u64,
    /// Load completions pre-routed to this lane for the current epoch,
    /// in global heap-pop order: `(due_cycle, warp)`.
    epoch_wakes: VecDeque<(u64, u32)>,
    /// Telemetry retire events recorded during the epoch: `(cycle, warp)`
    /// in the exact order the serial pre-phase would have emitted them.
    epoch_events: Vec<(u64, u32)>,
    /// Outbox length after each private epoch cycle, so the coordinator
    /// replay can deliver per-cycle slices in the serial interleaving.
    epoch_marks: Vec<u32>,
    /// Active-set departure decided during the epoch (fast-forward only):
    /// the first cycle the lane is owed idle credit for.
    epoch_deact: Option<u64>,
}

enum Outcome {
    Issued,
    Stall(StallClass),
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum StallClass {
    LsuAtomic,
    LsuData,
    Scoreboard,
    NoWarp,
    Other,
}

/// State shareable with worker threads during the SM phase: each lane is
/// behind its own (uncontended) mutex, and the occupancy snapshot is
/// atomics so the coordinator can refresh it through a shared reference.
struct Shared<'a> {
    cfg: &'a GpuConfig,
    path: AtomicPath,
    lanes: Vec<Mutex<SmLane>>,
    occ: Vec<AtomicU32>,
    /// Active-set membership per lane (fast-forward engine only). A lane
    /// leaves the set in phase 4 when it is fully quiescent — no resident
    /// warps, empty LSU/reduction units/buffer — and re-enters in phase 2
    /// when dispatch is about to refill it. Workers read these flags
    /// during the SM phase; only the coordinator writes them, and only in
    /// serial phases, so the barriers order every access.
    active: Vec<AtomicBool>,
}

/// State only the coordinator thread touches (serial phases).
struct Hub {
    partitions: Vec<MemPartition>,
    /// Global work-dispatch queue: like the hardware block scheduler,
    /// warps are handed to whichever sub-core frees a resident slot.
    pending: VecDeque<u32>,
    completions: BinaryHeap<Reverse<(u64, u32)>>,
    /// warp id → owning SM index, written at dispatch (routes load
    /// completions without scanning every SM).
    owner: Vec<u32>,
    counters: SimCounters,
    stalls: StallBreakdown,
    warps_remaining: u64,
    /// First cycle each inactive lane has not yet been credited for
    /// (fast-forward engine only). While a lane sits outside the active
    /// set its `no_warp` stalls are owed but not yet booked; they are
    /// settled lazily — at reactivation, at telemetry samples, and at end
    /// of run — so quiescent lanes cost nothing per cycle.
    idle_from: Vec<u64>,
}

/// Per-lane stall classification for one fast-forward span: how many
/// sub-cores sit in each stall class while the span is skipped.
#[derive(Clone, Copy, Default)]
struct FfCredit {
    lane: usize,
    lsu_atomic: u32,
    lsu_data: u32,
    scoreboard: u32,
    no_warp: u32,
}

/// Maximum epoch length [`EpochMode::Auto`] will attempt. Long enough to
/// amortize coordination, short enough that the conservative occupancy
/// bounds in `plan_epoch` still have a chance to hold.
const MAX_EPOCH: u64 = 64;

/// After `plan_epoch` declines, skip re-analysis for this many cycles.
/// The analysis scans every active lane, so retrying it every cycle in a
/// regime where it keeps failing would tax the per-cycle path.
const EPOCH_RETRY_COOLDOWN: u64 = 32;

/// One lane's epoch products, moved out under a single lock so the
/// coordinator replay can run without touching lane mutexes per cycle.
#[derive(Default)]
struct EpochTake {
    outbox: Vec<MemReq>,
    marks: Vec<u32>,
    events: Vec<(u64, u32)>,
    /// Next unreplayed entry of `events`.
    cursor: usize,
    /// Outbox units already delivered (index into `outbox`).
    delivered: usize,
    retired: u64,
    deact: Option<u64>,
}

/// Engine-stat accumulators for the epoch loop (observability only —
/// never part of reports or telemetry, so artifacts stay byte-identical
/// across `ARC_SIM_EPOCH` values).
#[derive(Default)]
struct EpochStatsAcc {
    epochs: u64,
    cycles: u64,
    len_max: u64,
    flits: u64,
}

struct Machine<'a> {
    shared: Shared<'a>,
    hub: Hub,
    sm_workers: usize,
    /// Event-driven fast-forward enabled? Forced off under
    /// `GPU_SIM_DEBUG` (the per-cycle debug trace must observe every
    /// cycle).
    ff: bool,
    /// Epoch-length cap from [`EpochMode`]: 0 disables epochs entirely
    /// (`PerCycle`, or `GPU_SIM_DEBUG` — the debug trace must observe
    /// every cycle from the coordinator).
    epoch_cap: u64,
    /// Largest single request the trace can produce (sectors per
    /// load/store, capped lane-values per atomic transaction) — the size
    /// margin `plan_epoch`'s accept-certainty bound must leave.
    max_req_size: u32,
    /// Cycles executed by the naive per-cycle loop (vs. skipped by
    /// fast-forward jumps). Feeds [`EngineStats`].
    cycles_stepped: u64,
    /// SM-cycle steps skipped because the SM was outside the active
    /// set — lane-level fast-forward, counted per stepped round from
    /// the serial coordinator so the total is identical for any worker
    /// count. Feeds [`EngineStats::lane_steps_skipped`].
    lane_steps_skipped: u64,
    /// Reused scratch for fast-forward span credits — no per-cycle
    /// allocation.
    ff_credits: Vec<FfCredit>,
    /// Reused per-lane scratch for epoch boundary replay.
    epoch_takes: Vec<EpochTake>,
    epoch_stats: EpochStatsAcc,
    /// Telemetry collection state, driven exclusively from the serial
    /// coordinator phases so artifacts are identical for any worker
    /// count. `None` when telemetry is disabled — the per-cycle cost is
    /// then a single branch.
    telemetry: Option<TelemetryState>,
}

fn lock<'m>(lane: &'m Mutex<SmLane>) -> MutexGuard<'m, SmLane> {
    lane.lock().expect("SM lane lock poisoned")
}

impl<'a> Machine<'a> {
    fn new(
        cfg: &'a GpuConfig,
        path: AtomicPath,
        trace: &KernelTrace,
        sm_workers: usize,
        fast_forward: bool,
        epoch: EpochMode,
        telemetry: Option<&TelemetryConfig>,
    ) -> Self {
        let lanes: Vec<Mutex<SmLane>> = (0..cfg.num_sms)
            .map(|sm_idx| {
                Mutex::new(SmLane {
                    sm: SmRt {
                        subcores: (0..cfg.subcores_per_sm)
                            .map(|_| SubCoreRt {
                                resident: Vec::new(),
                                rr: 0,
                                ldst_free_at: 0,
                                redunit: RedUnit::default(),
                                tx_scratch: Vec::new(),
                                plan_scratch: Vec::new(),
                            })
                            .collect(),
                        lsu: LsuQueue::new(cfg.lsu_queue_capacity),
                        buffer: path.backend().agg_buffer(cfg),
                    },
                    outbox: Vec::new(),
                    sent: vec![0; cfg.num_mem_partitions as usize],
                    counters: SimCounters::default(),
                    stalls: StallBreakdown::default(),
                    load_rr: u64::from(sm_idx).wrapping_mul(0x517C_C1B7_2722_0A95),
                    retired: 0,
                    epoch_wakes: VecDeque::new(),
                    epoch_events: Vec::new(),
                    epoch_marks: Vec::new(),
                    epoch_deact: None,
                })
            })
            .collect();

        let mut pending = VecDeque::with_capacity(trace.warps().len());
        let mut warps_remaining = 0u64;
        for (w, wt) in trace.warps().iter().enumerate() {
            if !wt.instrs.is_empty() {
                warps_remaining += 1;
                pending.push_back(w as u32);
            }
        }

        // Largest single request this trace can put on the interconnect:
        // load/store sector counts straight from the trace; atomics
        // coalesce into transactions of at most one warp's 32 lane-values
        // (eviction and reduction-unit emissions are size 1).
        let mut max_req_size = 1u32;
        for wt in trace.warps() {
            for instr in &wt.instrs {
                match instr {
                    Instr::Load { sectors } | Instr::Store { sectors } => {
                        max_req_size = max_req_size.max(u32::from(*sectors).max(1));
                    }
                    Instr::Atomic(_) | Instr::AtomRed(_) => {
                        max_req_size = max_req_size.max(32);
                    }
                    Instr::Compute { .. } => {}
                }
            }
        }

        let debug = std::env::var_os("GPU_SIM_DEBUG").is_some();
        let epoch_cap = if debug {
            0
        } else {
            match epoch {
                EpochMode::PerCycle => 0,
                EpochMode::Fixed(n) => n.max(2),
                EpochMode::Auto => MAX_EPOCH,
            }
        };

        let num_sms = cfg.num_sms as usize;
        Machine {
            shared: Shared {
                cfg,
                path,
                lanes,
                occ: (0..cfg.num_mem_partitions)
                    .map(|_| AtomicU32::new(0))
                    .collect(),
                active: (0..num_sms).map(|_| AtomicBool::new(true)).collect(),
            },
            hub: Hub {
                partitions: (0..cfg.num_mem_partitions)
                    .map(|_| MemPartition::new(cfg))
                    .collect(),
                pending,
                completions: BinaryHeap::new(),
                owner: vec![u32::MAX; trace.warps().len()],
                counters: SimCounters::default(),
                stalls: StallBreakdown::default(),
                warps_remaining,
                idle_from: vec![0; num_sms],
            },
            sm_workers,
            // The debug trace prints live state every N cycles; skipping
            // cycles would change what it sees, so debugging forces the
            // naive loop.
            ff: fast_forward && !debug,
            epoch_cap,
            max_req_size,
            cycles_stepped: 0,
            lane_steps_skipped: 0,
            ff_credits: Vec::new(),
            epoch_takes: (0..num_sms).map(|_| EpochTake::default()).collect(),
            epoch_stats: EpochStatsAcc::default(),
            telemetry: telemetry.map(|t| TelemetryState::new(t, trace.warps().len())),
        }
    }

    fn run(&mut self, trace: &KernelTrace) -> Result<u64, SimError> {
        let workers = self.sm_workers.min(self.shared.lanes.len()).max(1);
        let result = if workers <= 1 {
            self.run_serial(trace)
        } else {
            self.run_parallel(trace, workers)
        };
        if result.is_ok() {
            // Book the idle spans of lanes that left the active set —
            // their `no_warp` stalls were deferred while they were
            // skipped. The run finished after simulating cycles
            // 0..cycles-1, so settle through the last simulated cycle.
            if let (true, Ok(cycles)) = (self.ff, &result) {
                settle_idle_lanes(&self.shared, &mut self.hub, cycles.saturating_sub(1));
            }
            // Final telemetry sample at the drained end state, taken
            // while counters still live split across hub and lanes —
            // `telemetry_snapshot` performs the same merge itself, so
            // it must run before the fold below to avoid double counts.
            if let (Some(tel), Ok(cycles)) = (self.telemetry.as_mut(), &result) {
                let snap = telemetry_snapshot(&self.shared, &self.hub);
                tel.record_sample(*cycles, &snap);
            }
            // Fold per-SM accounting into the hub totals (SM-index order,
            // so merged counters are identical for any worker count).
            for lane in &self.shared.lanes {
                let lane = lock(lane);
                self.hub.counters.merge(&lane.counters);
                self.hub.stalls.merge(&lane.stalls);
            }
        }
        result
    }

    fn run_serial(&mut self, trace: &KernelTrace) -> Result<u64, SimError> {
        let ff = self.ff;
        let epoch_cap = self.epoch_cap;
        let max_req = self.max_req_size;
        let shared = &self.shared;
        let hub = &mut self.hub;
        let tel = &mut self.telemetry;
        let credits = &mut self.ff_credits;
        let takes = &mut self.epoch_takes;
        let warp_events = tel.as_ref().is_some_and(TelemetryState::wants_warp_events);
        let mut cooldown_until = 0u64;
        let mut cycle: u64 = 0;
        loop {
            if ff {
                if let Some(j) = fast_forward_jump(shared, hub, tel, trace, cycle, credits) {
                    cycle = j;
                    if cycle >= shared.cfg.max_cycles {
                        return Err(SimError::ExceededMaxCycles {
                            kernel: trace.name().to_string(),
                            max_cycles: shared.cfg.max_cycles,
                        });
                    }
                    continue;
                }
            }
            if epoch_cap >= 2 && cycle >= cooldown_until {
                if let Some((len, mode)) =
                    plan_epoch(shared, hub, tel.as_ref(), trace, cycle, epoch_cap, max_req)
                {
                    preroute_wakes(shared, hub, cycle, len);
                    if ff {
                        self.lane_steps_skipped += count_inactive(shared) * len;
                    }
                    for (i, lane) in shared.lanes.iter().enumerate() {
                        if ff && !shared.active[i].load(Ordering::Relaxed) {
                            continue;
                        }
                        step_lane_epoch(
                            shared,
                            trace,
                            &mut lock(lane),
                            cycle,
                            len,
                            mode,
                            ff,
                            warp_events,
                        );
                    }
                    let flits = finish_epoch(shared, hub, tel, takes, cycle, len, ff);
                    self.cycles_stepped += len;
                    self.epoch_stats.epochs += 1;
                    self.epoch_stats.cycles += len;
                    self.epoch_stats.len_max = self.epoch_stats.len_max.max(len);
                    self.epoch_stats.flits += flits;
                    cycle += len;
                    debug_assert!(hub.warps_remaining > 0, "epoch retire-safety violated");
                    if cycle >= shared.cfg.max_cycles {
                        return Err(SimError::ExceededMaxCycles {
                            kernel: trace.name().to_string(),
                            max_cycles: shared.cfg.max_cycles,
                        });
                    }
                    continue;
                }
                cooldown_until = cycle + EPOCH_RETRY_COOLDOWN;
            }
            let flushing = phase_pre(shared, hub, tel, trace, cycle, ff);
            if ff {
                self.lane_steps_skipped += count_inactive(shared);
            }
            for (i, lane) in shared.lanes.iter().enumerate() {
                if ff && !shared.active[i].load(Ordering::Relaxed) {
                    continue;
                }
                step_sm(
                    shared,
                    trace,
                    cycle,
                    flushing,
                    &mut lock(lane),
                    PortMode::Live,
                );
            }
            phase_post(shared, hub, cycle, ff);
            sample_if_due(shared, hub, tel, cycle, ff);
            self.cycles_stepped += 1;
            cycle += 1;
            if drained(shared, hub, ff) {
                return Ok(cycle);
            }
            debug_trace(shared, hub, cycle);
            if cycle >= shared.cfg.max_cycles {
                return Err(SimError::ExceededMaxCycles {
                    kernel: trace.name().to_string(),
                    max_cycles: shared.cfg.max_cycles,
                });
            }
        }
    }

    fn run_parallel(&mut self, trace: &KernelTrace, workers: usize) -> Result<u64, SimError> {
        let ff = self.ff;
        let epoch_cap = self.epoch_cap;
        let max_req = self.max_req_size;
        let shared = &self.shared;
        let hub = &mut self.hub;
        let tel = &mut self.telemetry;
        let credits = &mut self.ff_credits;
        let stepped = &mut self.cycles_stepped;
        let lane_skips = &mut self.lane_steps_skipped;
        let takes = &mut self.epoch_takes;
        let estats = &mut self.epoch_stats;
        let warp_events = tel.as_ref().is_some_and(TelemetryState::wants_warp_events);
        // Two waits per round bracket the SM phase (a round is one cycle,
        // or one multi-cycle epoch); `stop` (checked right after the
        // first wait) shuts the pool down. The barrier also provides the
        // happens-before edges that make Relaxed loads of the
        // cycle/flushing/cursor/epoch cells sound.
        let barrier = HybridBarrier::new(workers + 1);
        let stop = AtomicBool::new(false);
        let cursor = AtomicUsize::new(0);
        let cycle_now = AtomicU64::new(0);
        let flush_now = AtomicBool::new(false);
        // Epoch opened this round: length (1 = plain cycle) and port
        // mode (see `PortMode`; only read when length > 1).
        let epoch_len_now = AtomicU64::new(1);
        let epoch_accept_now = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    barrier.wait();
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let cycle = cycle_now.load(Ordering::Relaxed);
                    let elen = epoch_len_now.load(Ordering::Relaxed);
                    let flushing = flush_now.load(Ordering::Relaxed);
                    let mode = if elen > 1 {
                        if epoch_accept_now.load(Ordering::Relaxed) {
                            PortMode::AllAccept
                        } else {
                            PortMode::AllReject
                        }
                    } else {
                        PortMode::Live
                    };
                    // Work-stealing over SM indices: claim order varies
                    // run to run, results do not (each step touches only
                    // its own lane plus the frozen snapshot).
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= shared.lanes.len() {
                            break;
                        }
                        if ff && !shared.active[i].load(Ordering::Relaxed) {
                            continue;
                        }
                        let lane = &mut lock(&shared.lanes[i]);
                        if elen > 1 {
                            step_lane_epoch(
                                shared,
                                trace,
                                lane,
                                cycle,
                                elen,
                                mode,
                                ff,
                                warp_events,
                            );
                        } else {
                            step_sm(shared, trace, cycle, flushing, lane, mode);
                        }
                    }
                    barrier.wait();
                });
            }

            let result = (|| {
                let mut cooldown_until = 0u64;
                let mut cycle: u64 = 0;
                loop {
                    // The jump happens entirely between barrier rounds:
                    // workers stay parked at their first `wait`, so
                    // barrier symmetry is preserved.
                    if ff {
                        if let Some(j) = fast_forward_jump(shared, hub, tel, trace, cycle, credits)
                        {
                            cycle = j;
                            if cycle >= shared.cfg.max_cycles {
                                return Err(SimError::ExceededMaxCycles {
                                    kernel: trace.name().to_string(),
                                    max_cycles: shared.cfg.max_cycles,
                                });
                            }
                            continue;
                        }
                    }
                    if epoch_cap >= 2 && cycle >= cooldown_until {
                        if let Some((len, mode)) =
                            plan_epoch(shared, hub, tel.as_ref(), trace, cycle, epoch_cap, max_req)
                        {
                            preroute_wakes(shared, hub, cycle, len);
                            if ff {
                                *lane_skips += count_inactive(shared) * len;
                            }
                            epoch_len_now.store(len, Ordering::Relaxed);
                            epoch_accept_now.store(mode == PortMode::AllAccept, Ordering::Relaxed);
                            cycle_now.store(cycle, Ordering::Relaxed);
                            cursor.store(0, Ordering::Relaxed);
                            barrier.wait(); // open the epoch
                            barrier.wait(); // all lanes ran their epoch
                            let flits = finish_epoch(shared, hub, tel, takes, cycle, len, ff);
                            *stepped += len;
                            estats.epochs += 1;
                            estats.cycles += len;
                            estats.len_max = estats.len_max.max(len);
                            estats.flits += flits;
                            cycle += len;
                            debug_assert!(hub.warps_remaining > 0, "epoch retire-safety violated");
                            if cycle >= shared.cfg.max_cycles {
                                return Err(SimError::ExceededMaxCycles {
                                    kernel: trace.name().to_string(),
                                    max_cycles: shared.cfg.max_cycles,
                                });
                            }
                            continue;
                        }
                        cooldown_until = cycle + EPOCH_RETRY_COOLDOWN;
                    }
                    let flushing = phase_pre(shared, hub, tel, trace, cycle, ff);
                    if ff {
                        *lane_skips += count_inactive(shared);
                    }
                    flush_now.store(flushing, Ordering::Relaxed);
                    epoch_len_now.store(1, Ordering::Relaxed);
                    cycle_now.store(cycle, Ordering::Relaxed);
                    cursor.store(0, Ordering::Relaxed);
                    barrier.wait(); // open the SM phase
                    barrier.wait(); // all SMs stepped
                    phase_post(shared, hub, cycle, ff);
                    sample_if_due(shared, hub, tel, cycle, ff);
                    *stepped += 1;
                    cycle += 1;
                    if drained(shared, hub, ff) {
                        return Ok(cycle);
                    }
                    debug_trace(shared, hub, cycle);
                    if cycle >= shared.cfg.max_cycles {
                        return Err(SimError::ExceededMaxCycles {
                            kernel: trace.name().to_string(),
                            max_cycles: shared.cfg.max_cycles,
                        });
                    }
                }
            })();
            stop.store(true, Ordering::Relaxed);
            barrier.wait(); // release workers to observe `stop`
            result
        })
    }
}

/// Phases 1–2: memory retirement, completion wake-up, retire/dispatch,
/// and the occupancy snapshot. Returns whether buffers should flush.
///
/// Telemetry warp events (dispatch/retire) are recorded here — this
/// phase is always serial and walks SMs in index order, so the event
/// stream is identical for any worker count.
fn phase_pre(
    shared: &Shared<'_>,
    hub: &mut Hub,
    tel: &mut Option<TelemetryState>,
    trace: &KernelTrace,
    cycle: u64,
    ff: bool,
) -> bool {
    for p in &mut hub.partitions {
        p.step(cycle, &mut hub.completions, &mut hub.counters);
    }

    while let Some(&Reverse((done, w))) = hub.completions.peek() {
        if done > cycle {
            break;
        }
        hub.completions.pop();
        let sm = hub.owner[w as usize] as usize;
        let len = trace.warps()[w as usize].instrs.len();
        if wake_warp(&mut lock(&shared.lanes[sm]).sm, w, len) {
            hub.warps_remaining -= 1;
        }
    }

    let flushing = hub.warps_remaining == 0;

    // Retire finished warps and hand out new ones in fixed (SM,
    // sub-core) order — at most one new warp per sub-core per cycle, so
    // launch work spreads evenly instead of flooding the first SMs.
    for (sm_idx, lane) in shared.lanes.iter().enumerate() {
        if ff && !shared.active[sm_idx].load(Ordering::Relaxed) {
            // A quiescent lane has nothing to retire and cannot be the
            // target of a completion, so it only matters here when
            // dispatch is about to refill it.
            if hub.pending.is_empty() {
                continue;
            }
            // Settle the deferred idle span before the lane rejoins the
            // active set: the naive loop would have booked one `no_warp`
            // per sub-core for every skipped cycle.
            let from = hub.idle_from[sm_idx];
            if cycle > from {
                lock(lane).stalls.no_warp += (cycle - from) * u64::from(shared.cfg.subcores_per_sm);
            }
            shared.active[sm_idx].store(true, Ordering::Relaxed);
        }
        let mut lane = lock(lane);
        for (sc_idx, sc) in lane.sm.subcores.iter_mut().enumerate() {
            if let Some(t) = tel.as_mut() {
                if t.wants_warp_events() {
                    for warp in &sc.resident {
                        if warp.rt.done {
                            t.warp_retired(warp.id, cycle);
                        }
                    }
                }
            }
            sc.resident.retain(|warp| !warp.rt.done);
            if sc.resident.len() < shared.cfg.max_warps_per_subcore as usize {
                if let Some(w) = hub.pending.pop_front() {
                    hub.owner[w as usize] = sm_idx as u32;
                    if let Some(t) = tel.as_mut() {
                        t.warp_dispatched(w, sm_idx as u32, sc_idx as u32, cycle);
                    }
                    sc.resident.push(Warp {
                        id: w,
                        rt: WarpRt::default(),
                    });
                }
            }
        }
    }

    for (cell, p) in shared.occ.iter().zip(&hub.partitions) {
        cell.store(p.occupancy(), Ordering::Relaxed);
    }
    flushing
}

/// Decrements the woken warp's outstanding-load count; true if that
/// retired it.
fn wake_warp(sm: &mut SmRt, w: u32, instr_len: usize) -> bool {
    for sc in &mut sm.subcores {
        for warp in &mut sc.resident {
            if warp.id != w {
                continue;
            }
            let rt = &mut warp.rt;
            rt.outstanding -= 1;
            if rt.outstanding == 0 && rt.pc as usize >= instr_len && !rt.done {
                rt.done = true;
                return true;
            }
            return false;
        }
    }
    panic!("load completion for warp {w} not resident in its owner SM");
}

/// Phase 3 for one SM: buffer flush/evictions, LSU drain, reduction
/// units, then instruction issue — all against this SM's [`SmPort`].
fn step_sm(
    shared: &Shared<'_>,
    trace: &KernelTrace,
    cycle: u64,
    flushing: bool,
    lane: &mut SmLane,
    mode: PortMode,
) {
    let SmLane {
        sm,
        outbox,
        sent,
        counters,
        stalls,
        load_rr,
        retired,
        ..
    } = lane;
    sent.iter_mut().for_each(|s| *s = 0);
    let mut port = SmPort {
        occ: &shared.occ,
        sent,
        outbox,
        capacity: shared.cfg.partition_queue_capacity,
        mode,
    };
    let SmRt {
        subcores,
        lsu,
        buffer,
    } = sm;

    if let Some(buf) = buffer.as_mut() {
        if flushing {
            buf.flush(counters);
        }
        buf.drain_evictions(4, shared.cfg, &mut port, counters);
    }
    lsu.drain(shared.cfg.lsu_drain_rate * 4, buffer, &mut port, counters);
    for sc in subcores.iter_mut() {
        sc.redunit.step(
            shared.cfg.redunit_throughput,
            shared.cfg.redunit_emit_reserve,
            lsu,
            &mut port,
            counters,
        );
    }

    let load_penalty = buffer.as_ref().map_or(0, |b| b.load_penalty);
    // The SM-shared MIO port refreshes its shuffle budget every cycle
    // (quarter-units).
    let mut shfl_budget_q = shared.cfg.shfl_throughput_q;
    for sc in subcores.iter_mut() {
        let outcome = issue_one(
            shared.cfg,
            shared.path,
            trace,
            cycle,
            sc,
            lsu,
            &mut shfl_budget_q,
            load_penalty,
            counters,
            retired,
            load_rr,
        );
        match outcome {
            Outcome::Issued => {}
            Outcome::Stall(StallClass::LsuAtomic) => {
                stalls.lsu_full += 1;
                counters.atomic_stall_cycles += 1;
            }
            Outcome::Stall(StallClass::LsuData) => stalls.lsu_full += 1,
            Outcome::Stall(StallClass::Scoreboard) => stalls.long_scoreboard += 1,
            Outcome::Stall(StallClass::NoWarp) => stalls.no_warp += 1,
            Outcome::Stall(StallClass::Other) => stalls.other += 1,
        }
    }
}

/// Phase 4: deliver every SM's outbox in SM-index order and fold in
/// retirements. Delivery is unconditional — [`SmPort`] admission may
/// overshoot a partition's capacity by at most one cycle's issue across
/// SMs, modeling interconnect credit slack (see `machine::SmPort`).
///
/// With fast-forward on, this is also where lanes leave the active set:
/// a lane that ends the cycle fully quiescent (no resident warps, empty
/// LSU, idle reduction units, empty aggregation buffer) can only be
/// re-engaged by warp dispatch, which phase 2 detects — so it is skipped
/// entirely (no lock, no step) until then, with its pure `no_warp` idle
/// span credited lazily via `Hub::idle_from`.
fn phase_post(shared: &Shared<'_>, hub: &mut Hub, cycle: u64, ff: bool) {
    for (idx, lane) in shared.lanes.iter().enumerate() {
        if ff && !shared.active[idx].load(Ordering::Relaxed) {
            continue;
        }
        let mut lane = lock(lane);
        let lane = &mut *lane;
        for req in lane.outbox.drain(..) {
            hub.partitions[req.partition as usize].push(req);
        }
        hub.warps_remaining -= std::mem::take(&mut lane.retired);
        if ff && lane_quiescent(lane) {
            shared.active[idx].store(false, Ordering::Relaxed);
            hub.idle_from[idx] = cycle + 1;
        }
    }
}

/// Whether a lane can safely leave the active set: stepping it could
/// only ever produce `no_warp` stalls. Resident warps, queued LSU work,
/// pending reductions, or a non-empty aggregation buffer (its entries
/// must flush once the kernel drains) all keep the lane active.
fn lane_quiescent(lane: &SmLane) -> bool {
    lane.sm
        .subcores
        .iter()
        .all(|sc| sc.resident.is_empty() && sc.redunit.pending() == 0)
        && lane.sm.lsu.is_empty()
        && lane
            .sm
            .buffer
            .as_ref()
            .is_none_or(|b| b.len() == 0 && b.evict_backlog() == 0)
}

/// The epoch-safety analysis: decides whether the next `>= 2` cycles can
/// run with every SM stepping privately (no per-cycle coordination) and
/// still produce state byte-identical to the per-cycle loop.
///
/// The per-cycle loop's serial phases touch cross-SM state in four ways,
/// and each is either provably a no-op for the span or handled exactly:
///
/// * **Load completions** are pre-routed: every completion due inside
///   the epoch is handed to its owner lane up front (possible because
///   completions scheduled *during* the epoch land at least
///   `l2_load_latency` cycles out, and epochs never exceed that).
/// * **Dispatch** is a no-op: the epoch only opens while the pending
///   queue is empty, and retired warps never re-enter it.
/// * **Partition steps and outbox delivery** are replayed afterwards in
///   the exact serial interleaving (see `finish_epoch`) — sound because
///   no SM *observes* partition state mid-epoch, which is what the two
///   port-certainty modes guarantee:
///   - [`PortMode::AllAccept`]: even if every producer aims every cycle
///     at the fullest partition, occupancy stays under capacity with a
///     full-size margin, so every live admission check would pass. The
///     inflow bound sums each lane's LSU drain rate and banked credit,
///     eviction budget, and (ARC-HW) reduction-unit emissions; drains
///     are ignored, so occupancy is over- never under-estimated.
///   - [`PortMode::AllReject`]: every active lane is either *idle* (no
///     residents, empty LSU/reduction units, no eviction backlog —
///     nothing ever reaches the port) or *sealed*: its head-blocking
///     LSU head targets a partition that stays both non-empty and too
///     full throughout the span even at maximum drain rate, so the head
///     bounces every cycle exactly as it would live. Lanes with an
///     aggregation buffer (atomic heads bypass the port into the
///     buffer) or under ARC-HW (reduction units could emit to *other*,
///     unsaturated partitions) cannot be sealed.
/// * **Retires** fold at the boundary: the epoch only opens when the
///   warps that could possibly retire within it (pc within reach of the
///   end, or already past it and waiting on loads) number strictly
///   fewer than `warps_remaining`, so the kernel can neither drain nor
///   start flushing mid-epoch and `flushing` stays `false` throughout.
///
/// The returned length also respects the telemetry cadence (the
/// boundary lands exactly on the next due sample, never past it), the
/// `max_cycles` guard, and the [`EpochMode`] cap. Telemetry warp-retire
/// events are recorded per lane with cycle stamps and replayed in the
/// serial order at the boundary.
fn plan_epoch(
    shared: &Shared<'_>,
    hub: &Hub,
    tel: Option<&TelemetryState>,
    trace: &KernelTrace,
    cycle: u64,
    cap: u64,
    max_req: u32,
) -> Option<(u64, PortMode)> {
    let cfg = shared.cfg;
    if hub.warps_remaining == 0 || !hub.pending.is_empty() {
        return None;
    }
    let mut e_max = cap
        .min(u64::from(cfg.l2_load_latency))
        .min(cfg.max_cycles.saturating_sub(cycle));
    if let Some(t) = tel {
        e_max = e_max.min(t.next_due(cycle) + 1 - cycle);
    }
    if e_max < 2 {
        return None;
    }

    let arc_hw = shared.path == AtomicPath::ArcHw;
    let mut retire_risk = 0u64;
    // Accept-certainty inflow bound: one-time banked LSU credit plus
    // per-cycle producer rates, summed over active lanes.
    let mut inflow_bank = 0u64;
    let mut inflow_rate = 0u64;
    // Reject-certainty: every active lane idle or sealed, and the
    // tightest sealed span.
    let mut reject_ok = true;
    let mut e_reject = e_max;
    for (idx, lane_mx) in shared.lanes.iter().enumerate() {
        if !shared.active[idx].load(Ordering::Relaxed) {
            continue;
        }
        let lane = lock(lane_mx);
        for sc in &lane.sm.subcores {
            for warp in &sc.resident {
                if warp.rt.done {
                    // Already counted out of `warps_remaining`.
                    continue;
                }
                let len = trace.warps()[warp.id as usize].instrs.len() as u64;
                if u64::from(warp.rt.pc) + e_max >= len {
                    retire_risk += 1;
                }
            }
        }
        let has_buffer = lane.sm.buffer.is_some();
        inflow_bank += u64::from(lane.sm.lsu.banked_q().div_ceil(4));
        inflow_rate += u64::from(cfg.lsu_drain_rate);
        if has_buffer {
            inflow_rate += 4;
        }
        if arc_hw {
            inflow_rate += u64::from(cfg.subcores_per_sm) * u64::from(cfg.redunit_throughput);
        }
        if reject_ok {
            let idle = lane
                .sm
                .subcores
                .iter()
                .all(|sc| sc.resident.is_empty() && sc.redunit.pending() == 0)
                && lane.sm.lsu.is_empty()
                && lane
                    .sm
                    .buffer
                    .as_ref()
                    .is_none_or(|b| b.evict_backlog() == 0);
            if !idle {
                match lane.sm.lsu.head() {
                    Some(head) if !has_buffer && !arc_hw => {
                        debug_assert!(
                            lane.sm.subcores.iter().all(|sc| sc.redunit.pending() == 0),
                            "non-ARC-HW paths never queue reduction-unit work"
                        );
                        let p = &hub.partitions[head.partition as usize];
                        e_reject = e_reject.min(reject_span(p, head.size, cfg));
                    }
                    _ => reject_ok = false,
                }
            }
        }
    }
    if retire_risk >= hub.warps_remaining {
        return None;
    }

    let cap_units = u64::from(cfg.partition_queue_capacity);
    let max_occ = hub
        .partitions
        .iter()
        .map(|p| u64::from(p.occupancy()))
        .max()
        .unwrap_or(0);
    let head = max_occ + inflow_bank + u64::from(max_req);
    let e_accept = if head > cap_units {
        0
    } else {
        (cap_units - head)
            .checked_div(inflow_rate)
            .unwrap_or(e_max)
            .min(e_max)
    };
    if e_accept >= 2 {
        return Some((e_accept, PortMode::AllAccept));
    }
    if reject_ok && e_reject >= 2 {
        return Some((e_reject, PortMode::AllReject));
    }
    None
}

/// How many cycles a head request of `size` units aimed at partition `p`
/// is *certain* to keep bouncing: even draining at full rate (plus its
/// currently banked pipeline credit), the partition stays non-empty (so
/// the store-and-forward clause cannot admit it) and too full for the
/// headroom check. Returns 0 when no cycle is certain.
fn reject_span(p: &MemPartition, size: u32, cfg: &GpuConfig) -> u64 {
    let occ = u64::from(p.occupancy());
    let bank = u64::from(p.banked_progress());
    let rate = u64::from(p.drain_rate());
    let size = u64::from(size);
    let cap = u64::from(cfg.partition_queue_capacity);
    // After k steps at most `bank + k*rate` units have drained. Require
    // for every k <= E:  occ - drained >= 1  and  occ + size - drained > cap.
    if occ < bank + 1 || occ + size < bank + cap + 1 {
        return 0;
    }
    if rate == 0 {
        return u64::MAX;
    }
    ((occ - bank - 1) / rate).min((occ + size - bank - cap - 1) / rate)
}

/// Hands every load completion due inside the epoch `[start, start+len)`
/// to its owner lane, preserving the global heap-pop order the serial
/// pre-phase would have used. Completions scheduled during the epoch
/// replay land `l2_load_latency` or more cycles out, so this list is
/// complete by construction.
fn preroute_wakes(shared: &Shared<'_>, hub: &mut Hub, start: u64, len: u64) {
    let end = start + len;
    while let Some(&Reverse((done, w))) = hub.completions.peek() {
        if done >= end {
            break;
        }
        hub.completions.pop();
        debug_assert!(done >= start, "stale completion predates the epoch");
        let sm = hub.owner[w as usize] as usize;
        debug_assert!(
            shared.active[sm].load(Ordering::Relaxed),
            "completion targets an inactive lane"
        );
        lock(&shared.lanes[sm]).epoch_wakes.push_back((done, w));
    }
}

/// Runs one lane privately through the epoch `[start, start+len)`: per
/// cycle, due pre-routed wake-ups, the retire scan (with telemetry
/// events recorded for boundary replay), and the normal SM step under
/// the certified port mode. Outbox growth is marked per cycle so the
/// coordinator can replay deliveries in the serial interleaving. With
/// fast-forward on, a lane that goes fully quiescent stops early and
/// records its active-set departure (it cannot have pending wake-ups:
/// an outstanding load keeps its warp resident).
#[allow(clippy::too_many_arguments)]
fn step_lane_epoch(
    shared: &Shared<'_>,
    trace: &KernelTrace,
    lane: &mut SmLane,
    start: u64,
    len: u64,
    mode: PortMode,
    ff: bool,
    warp_events: bool,
) {
    debug_assert!(lane.epoch_events.is_empty() && lane.epoch_marks.is_empty());
    lane.epoch_deact = None;
    for t in start..start + len {
        while let Some(&(due, w)) = lane.epoch_wakes.front() {
            if due > t {
                break;
            }
            lane.epoch_wakes.pop_front();
            let instr_len = trace.warps()[w as usize].instrs.len();
            if wake_warp(&mut lane.sm, w, instr_len) {
                lane.retired += 1;
            }
        }
        {
            let SmLane {
                sm, epoch_events, ..
            } = &mut *lane;
            for sc in &mut sm.subcores {
                if warp_events {
                    for warp in &sc.resident {
                        if warp.rt.done {
                            epoch_events.push((t, warp.id));
                        }
                    }
                }
                sc.resident.retain(|warp| !warp.rt.done);
            }
        }
        // Mid-epoch cycles never flush: retire safety keeps warps in
        // flight through the whole span.
        step_sm(shared, trace, t, false, lane, mode);
        lane.epoch_marks.push(lane.outbox.len() as u32);
        if ff && lane_quiescent(lane) {
            lane.epoch_deact = Some(t + 1);
            break;
        }
    }
    debug_assert!(lane.epoch_wakes.is_empty());
}

/// The serial boundary phase closing an epoch: collects every lane's
/// epoch products, replays partition steps and outbox deliveries in the
/// exact per-cycle interleaving (partitions step at `t`, then cycle-`t`
/// outboxes land in SM-index order), replays telemetry retire events in
/// serial order, folds retirements and active-set departures, and takes
/// the boundary telemetry sample. Returns the units delivered (the
/// epoch-boundary flush size).
fn finish_epoch(
    shared: &Shared<'_>,
    hub: &mut Hub,
    tel: &mut Option<TelemetryState>,
    takes: &mut [EpochTake],
    start: u64,
    len: u64,
    ff: bool,
) -> u64 {
    // One short lock per lane; the replay below then runs lock-free.
    // Vec capacities migrate between lane and scratch each epoch, so
    // the steady state allocates nothing.
    for (lane_mx, take) in shared.lanes.iter().zip(takes.iter_mut()) {
        let mut lane = lock(lane_mx);
        std::mem::swap(&mut lane.outbox, &mut take.outbox);
        std::mem::swap(&mut lane.epoch_marks, &mut take.marks);
        std::mem::swap(&mut lane.epoch_events, &mut take.events);
        take.retired = std::mem::take(&mut lane.retired);
        take.deact = lane.epoch_deact.take();
        take.cursor = 0;
        take.delivered = 0;
    }

    let mut flits = 0u64;
    for k in 0..len {
        let t = start + k;
        for p in &mut hub.partitions {
            p.step(t, &mut hub.completions, &mut hub.counters);
        }
        for take in takes.iter_mut() {
            // Lanes that stopped early (quiescent) have short mark
            // lists; their outbox stopped growing at the same point.
            let end = take
                .marks
                .get(k as usize)
                .map_or(take.outbox.len(), |&m| m as usize);
            for req in &take.outbox[take.delivered..end] {
                flits += u64::from(req.size);
                hub.partitions[req.partition as usize].push(req.clone());
            }
            take.delivered = end;
        }
        if let Some(ts) = tel.as_mut() {
            for take in takes.iter_mut() {
                while let Some(&(et, w)) = take.events.get(take.cursor) {
                    if et != t {
                        break;
                    }
                    ts.warp_retired(w, et);
                    take.cursor += 1;
                }
            }
        }
    }

    for (idx, take) in takes.iter_mut().enumerate() {
        hub.warps_remaining -= std::mem::take(&mut take.retired);
        if let Some(from) = take.deact.take() {
            shared.active[idx].store(false, Ordering::Relaxed);
            hub.idle_from[idx] = from;
        }
        take.outbox.clear();
        take.marks.clear();
        take.events.clear();
        take.cursor = 0;
        take.delivered = 0;
    }
    sample_if_due(shared, hub, tel, start + len - 1, ff);
    flits
}

/// Books the deferred `no_warp` idle spans of every inactive lane
/// through the end of cycle `through` — called before any state
/// observation (telemetry samples, the end-of-run fold) so observers
/// see exactly the stall totals the naive loop would have accumulated.
fn settle_idle_lanes(shared: &Shared<'_>, hub: &mut Hub, through: u64) {
    for (idx, lane) in shared.lanes.iter().enumerate() {
        if shared.active[idx].load(Ordering::Relaxed) {
            continue;
        }
        let from = hub.idle_from[idx];
        if through + 1 > from {
            lock(lane).stalls.no_warp +=
                (through + 1 - from) * u64::from(shared.cfg.subcores_per_sm);
            hub.idle_from[idx] = through + 1;
        }
    }
}

/// Takes a telemetry sample at the end of `cycle` when one is due.
/// Called from the serial coordinator only (after phase 4), so lane
/// locks are uncontended and reads happen in SM-index order.
fn sample_if_due(
    shared: &Shared<'_>,
    hub: &mut Hub,
    tel: &mut Option<TelemetryState>,
    cycle: u64,
    ff: bool,
) {
    if let Some(t) = tel.as_mut() {
        if t.due(cycle) {
            if ff {
                settle_idle_lanes(shared, hub, cycle);
            }
            let snap = telemetry_snapshot(shared, hub);
            t.record_sample(cycle, &snap);
        }
    }
}

/// Assembles a point-in-time machine view for telemetry: hub state plus
/// every SM shard, merged in SM-index order. Read-only with respect to
/// simulation state.
fn telemetry_snapshot(shared: &Shared<'_>, hub: &Hub) -> SampleSnapshot {
    let mut counters = hub.counters;
    let mut stalls = hub.stalls;
    let mut lsu_occupancy = 0u64;
    let mut lsu_occupancy_max = 0u32;
    let mut redunit_pending = 0u64;
    let mut aggbuf_entries = 0u64;
    let mut aggbuf_backlog = 0u64;
    for lane in &shared.lanes {
        let lane = lock(lane);
        counters.merge(&lane.counters);
        stalls.merge(&lane.stalls);
        let occ = lane.sm.lsu.occupancy();
        lsu_occupancy += u64::from(occ);
        lsu_occupancy_max = lsu_occupancy_max.max(occ);
        for sc in &lane.sm.subcores {
            redunit_pending += sc.redunit.pending() as u64;
        }
        if let Some(b) = lane.sm.buffer.as_ref() {
            aggbuf_entries += b.len() as u64;
            aggbuf_backlog += b.evict_backlog() as u64;
        }
    }
    let mut partition_occupancy = 0u64;
    let mut rop_queue = 0u64;
    let mut rop_queue_max = 0u32;
    for p in &hub.partitions {
        partition_occupancy += u64::from(p.occupancy());
        let rop = p.rop_occupancy();
        rop_queue += u64::from(rop);
        rop_queue_max = rop_queue_max.max(rop);
    }
    SampleSnapshot {
        counters,
        stalls,
        lsu_occupancy,
        lsu_occupancy_max,
        partition_occupancy,
        rop_queue,
        rop_queue_max,
        redunit_pending,
        aggbuf_entries,
        aggbuf_backlog,
        warps_remaining: hub.warps_remaining,
    }
}

/// Lanes currently outside the active set. Called by the coordinator
/// between rounds (the only writer of the flags runs in serial phases),
/// so the count is exactly the set the next SM phase will skip — and
/// identical for any worker count.
fn count_inactive(shared: &Shared<'_>) -> u64 {
    shared
        .active
        .iter()
        .filter(|a| !a.load(Ordering::Relaxed))
        .count() as u64
}

fn drained(shared: &Shared<'_>, hub: &Hub, ff: bool) -> bool {
    if hub.warps_remaining > 0 || !hub.completions.is_empty() {
        return false;
    }
    if hub.partitions.iter().any(|p| p.occupancy() > 0) {
        return false;
    }
    shared.lanes.iter().enumerate().all(|(i, lane)| {
        // Inactive lanes satisfy the drain conditions by construction
        // (see `lane_quiescent`) — skip the lock.
        if ff && !shared.active[i].load(Ordering::Relaxed) {
            return true;
        }
        let lane = lock(lane);
        lane.sm.lsu.is_empty()
            && lane.sm.subcores.iter().all(|sc| sc.redunit.pending() == 0)
            && lane
                .sm
                .buffer
                .as_ref()
                .is_none_or(|b| b.len() == 0 && b.evict_backlog() == 0)
    })
}

/// The event-driven fast-forward check, run at the top of every cycle.
///
/// Decides whether simulating cycle `cycle` (and possibly many after it)
/// would change any machine state besides stall counters — and if so
/// returns `None` so the caller runs the naive cycle. Otherwise every
/// phase is provably a no-op for a span of cycles:
///
/// * partitions are empty, so `MemPartition::step` does nothing;
/// * no load completion is due, so no warp wakes or retires;
/// * no lane has queued LSU work, pending reductions, buffer backlog, or
///   a retire in flight, so `step_sm` only books stall counters;
/// * every resident warp is either waiting on a load (`long_scoreboard`)
///   or blocked on its sub-core's LDST port (`lsu_full`), and both wake
///   conditions — the earliest completion and the earliest
///   `ldst_free_at` — are known in advance;
/// * dispatch cannot place a warp (nothing pending, or no free slot).
///
/// The jump target is the minimum over those wake-up cycles, clamped to
/// the next telemetry sample boundary (the sample at the boundary must
/// observe exactly the state the naive loop would have shown it) and to
/// `max_cycles`. The skipped span's stalls are bulk-credited per lane
/// with the same per-sub-core classification `issue_one` would have
/// produced each cycle, so reports are bit-identical to the naive loop.
fn fast_forward_jump(
    shared: &Shared<'_>,
    hub: &mut Hub,
    tel: &mut Option<TelemetryState>,
    trace: &KernelTrace,
    cycle: u64,
    credits: &mut Vec<FfCredit>,
) -> Option<u64> {
    // Hub-side gates: any due/ongoing memory-system work means real
    // state changes this cycle.
    if hub.warps_remaining == 0 {
        return None;
    }
    let mut next = u64::MAX;
    if let Some(&Reverse((done, _))) = hub.completions.peek() {
        if done <= cycle {
            return None;
        }
        next = done;
    }
    if hub.partitions.iter().any(|p| p.occupancy() > 0) {
        return None;
    }
    let pending = !hub.pending.is_empty();

    credits.clear();
    for (idx, lane_mx) in shared.lanes.iter().enumerate() {
        if !shared.active[idx].load(Ordering::Relaxed) {
            // An inactive lane has free slots; if dispatch could refill
            // it this cycle the span is not dead.
            if pending {
                return None;
            }
            continue;
        }
        let lane = lock(lane_mx);
        if !lane.sm.lsu.is_empty() {
            return None;
        }
        if let Some(b) = lane.sm.buffer.as_ref() {
            // `warps_remaining > 0` means no flush happens this cycle,
            // so resident entries are inert — but a queued eviction
            // would still drain.
            if b.evict_backlog() > 0 {
                return None;
            }
        }
        let mut credit = FfCredit {
            lane: idx,
            ..FfCredit::default()
        };
        for sc in &lane.sm.subcores {
            if sc.redunit.pending() > 0 {
                return None;
            }
            if pending && sc.resident.len() < shared.cfg.max_warps_per_subcore as usize {
                return None;
            }
            if sc.resident.is_empty() {
                credit.no_warp += 1;
                continue;
            }
            let mut saw_scoreboard = false;
            let mut blocked_atomic = false;
            let mut blocked_data = false;
            for warp in &sc.resident {
                let rt = &warp.rt;
                if rt.done {
                    // A retire is pending in the next phase 2.
                    return None;
                }
                if rt.outstanding > 0 {
                    saw_scoreboard = true;
                    continue;
                }
                let instrs = &trace.warps()[warp.id as usize].instrs;
                let Some(instr) = instrs.get(rt.pc as usize) else {
                    continue;
                };
                match instr {
                    // A ready compute issues this cycle (a starved
                    // shuffle could stall, but bailing out is merely
                    // conservative — the naive cycle handles it).
                    Instr::Compute { .. } => return None,
                    Instr::Load { .. } | Instr::Store { .. } => {
                        if cycle >= sc.ldst_free_at {
                            // The LSU is empty, so `can_accept` holds
                            // and the instruction issues this cycle.
                            return None;
                        }
                        blocked_data = true;
                    }
                    Instr::Atomic(bundle) | Instr::AtomRed(bundle) => {
                        // Degenerate bundles (no params / no active
                        // lanes) issue unconditionally; otherwise — with
                        // the LSU and reduction units empty — every
                        // atomic path issues exactly when the LDST port
                        // is free.
                        let trivial = match bundle.params.get(rt.sub as usize) {
                            None => true,
                            Some(p) => p.active_count() == 0,
                        };
                        if trivial || cycle >= sc.ldst_free_at {
                            return None;
                        }
                        blocked_atomic = true;
                    }
                }
            }
            // Mirror `issue_one`'s fall-through priority exactly:
            // LsuAtomic > LsuData > Scoreboard > Other.
            if blocked_atomic || blocked_data {
                next = next.min(sc.ldst_free_at);
            }
            if blocked_atomic {
                credit.lsu_atomic += 1;
            } else if blocked_data {
                credit.lsu_data += 1;
            } else if saw_scoreboard {
                credit.scoreboard += 1;
            } else {
                // Every resident warp was drained past its last
                // instruction without an outstanding load — an `Other`
                // stall the naive loop should classify itself.
                return None;
            }
        }
        credits.push(credit);
    }

    // Never jump across a telemetry boundary: the sample at the end of
    // cycle `b` must see the stall totals of cycles `..=b` and nothing
    // more, so the span is clamped to land just past the boundary.
    if let Some(t) = tel.as_ref() {
        next = next.min(t.next_due(cycle) + 1);
    }
    // No wake-up event at all (warps deadlocked with nothing in flight):
    // run straight to the deadlock guard.
    let j = next.min(shared.cfg.max_cycles);
    if j <= cycle {
        return None;
    }
    let span = j - cycle;
    for c in credits.iter() {
        let mut lane = lock(&shared.lanes[c.lane]);
        lane.stalls.lsu_full += u64::from(c.lsu_atomic + c.lsu_data) * span;
        lane.counters.atomic_stall_cycles += u64::from(c.lsu_atomic) * span;
        lane.stalls.long_scoreboard += u64::from(c.scoreboard) * span;
        lane.stalls.no_warp += u64::from(c.no_warp) * span;
    }
    if let Some(t) = tel.as_mut() {
        if t.due(j - 1) {
            settle_idle_lanes(shared, hub, j - 1);
            let snap = telemetry_snapshot(shared, hub);
            t.record_sample(j - 1, &snap);
        }
    }
    Some(j)
}

fn debug_trace(shared: &Shared<'_>, hub: &Hub, cycle: u64) {
    if std::env::var_os("GPU_SIM_DEBUG").is_none() {
        return;
    }
    if cycle.is_multiple_of(10_000) {
        let mut red_pending = 0usize;
        let mut red_empty = 0usize;
        let mut issued = 0u64;
        for lane in &shared.lanes {
            let lane = lock(lane);
            for sc in &lane.sm.subcores {
                red_pending += sc.redunit.pending();
                red_empty += usize::from(sc.redunit.pending() == 0);
            }
            issued += lane.counters.instructions_issued;
        }
        eprintln!(
            "[dbg] cycle={cycle} warps_left={} red_pending={red_pending} red_empty_units={red_empty} lsu0={} part0={} issued={issued}",
            hub.warps_remaining,
            lock(&shared.lanes[0]).sm.lsu.occupancy(),
            hub.partitions[0].occupancy(),
        );
    }
    if cycle.is_multiple_of(20_000) {
        let mut lsu = 0u32;
        let mut buf = 0usize;
        for lane in &shared.lanes {
            let lane = lock(lane);
            lsu += lane.sm.lsu.occupancy();
            if let Some(b) = lane.sm.buffer.as_ref() {
                buf += b.len() + b.evict_backlog();
            }
        }
        let part: u32 = hub.partitions.iter().map(|p| p.occupancy()).sum();
        eprintln!(
            "[gpu-sim] cycle={cycle} warps_remaining={} lsu={lsu} part={part} buf={buf} completions={}",
            hub.warps_remaining,
            hub.completions.len()
        );
    }
}

/// Cycles the LDST port stays busy dispatching `units` lane-values.
pub(crate) fn ldst_busy(units: u32, width: u32) -> u64 {
    u64::from(units.div_ceil(width).max(1))
}

#[allow(clippy::too_many_arguments)]
fn issue_one(
    cfg: &GpuConfig,
    path: AtomicPath,
    trace: &KernelTrace,
    cycle: u64,
    sc: &mut SubCoreRt,
    lsu: &mut LsuQueue,
    shfl_budget_q: &mut u32,
    load_penalty: u32,
    counters: &mut SimCounters,
    retired: &mut u64,
    load_rr: &mut u64,
) -> Outcome {
    // Retire/dispatch happened in the serial pre-phase; an empty
    // sub-core simply idles.
    let SubCoreRt {
        resident,
        rr,
        ldst_free_at,
        redunit,
        tx_scratch,
        plan_scratch,
    } = sc;
    if resident.is_empty() {
        return Outcome::Stall(StallClass::NoWarp);
    }

    let n = resident.len();
    let mut saw_scoreboard = false;
    let mut saw_lsu_atomic = false;
    let mut saw_lsu_data = false;

    for k in 0..n {
        let pos = (*rr + k) % n;
        let warp = &mut resident[pos];
        let w = warp.id;
        let rt = &mut warp.rt;
        if rt.done {
            continue;
        }
        if rt.outstanding > 0 {
            saw_scoreboard = true;
            continue;
        }
        let instrs = &trace.warps()[w as usize].instrs;
        if rt.pc as usize >= instrs.len() {
            // Retired warp that is only waiting on loads — handled above.
            continue;
        }
        let instr = &instrs[rt.pc as usize];
        match instr {
            Instr::Compute { kind, repeat } => {
                if *kind == ComputeKind::Shfl {
                    // Shuffles contend for the SM-shared MIO port.
                    if *shfl_budget_q < 4 {
                        saw_lsu_data = true;
                        continue;
                    }
                    *shfl_budget_q -= 4;
                    counters.shfl_instructions += 1;
                }
                counters.instructions_issued += 1;
                rt.sub += 1;
                if rt.sub >= u32::from(*repeat) {
                    advance(rt, retired, instrs.len());
                }
                *rr = pos;
                return Outcome::Issued;
            }
            Instr::Load { sectors } => {
                let sectors = u32::from(*sectors).max(1);
                if cycle < *ldst_free_at || !lsu.can_accept(sectors) {
                    saw_lsu_data = true;
                    continue;
                }
                *load_rr += 1;
                let h = load_rr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let partition = (h % u64::from(cfg.num_mem_partitions)) as u32;
                let miss = ((h >> 33) % 1000) as f64 >= cfg.l2_hit_rate * 1000.0;
                let extra = if miss { cfg.dram_extra_latency } else { 0 } + load_penalty;
                lsu.push(
                    MemReq {
                        size: sectors,
                        partition,
                        addr: h,
                        kind: ReqKind::Load {
                            warp: w,
                            extra_latency: extra,
                        },
                    },
                    counters,
                );
                rt.outstanding += 1;
                *ldst_free_at = cycle + ldst_busy(sectors, cfg.ldst_dispatch_width);
                counters.instructions_issued += 1;
                advance(rt, retired, instrs.len());
                *rr = pos;
                return Outcome::Issued;
            }
            Instr::Store { sectors } => {
                let sectors = u32::from(*sectors).max(1);
                if cycle < *ldst_free_at || !lsu.can_accept(sectors) {
                    saw_lsu_data = true;
                    continue;
                }
                *load_rr += 1;
                let h = load_rr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let partition = (h % u64::from(cfg.num_mem_partitions)) as u32;
                lsu.push(
                    MemReq {
                        size: sectors,
                        partition,
                        addr: h,
                        kind: ReqKind::Store,
                    },
                    counters,
                );
                *ldst_free_at = cycle + ldst_busy(sectors, cfg.ldst_dispatch_width);
                counters.instructions_issued += 1;
                advance(rt, retired, instrs.len());
                *rr = pos;
                return Outcome::Issued;
            }
            Instr::Atomic(bundle) => {
                let mut ctx = AtomicIssueCtx {
                    cfg,
                    cycle,
                    instr_len: instrs.len(),
                    ldst_free_at: &mut *ldst_free_at,
                    redunit: &mut *redunit,
                    tx_scratch: &mut *tx_scratch,
                    plan_scratch: &mut *plan_scratch,
                    lsu: &mut *lsu,
                    counters: &mut *counters,
                    retired: &mut *retired,
                };
                match issue_plain_atomic(&mut ctx, bundle, rt) {
                    AtomicIssue::Issued => {
                        *rr = pos;
                        return Outcome::Issued;
                    }
                    AtomicIssue::Blocked => {
                        saw_lsu_atomic = true;
                        continue;
                    }
                }
            }
            Instr::AtomRed(bundle) => {
                // Path-specific: ARC-HW schedules greedily between its
                // reduction units and the ROPs; every other backend
                // bypasses the (absent) reduction unit and issues a
                // plain atomic (§5.6).
                let mut ctx = AtomicIssueCtx {
                    cfg,
                    cycle,
                    instr_len: instrs.len(),
                    ldst_free_at: &mut *ldst_free_at,
                    redunit: &mut *redunit,
                    tx_scratch: &mut *tx_scratch,
                    plan_scratch: &mut *plan_scratch,
                    lsu: &mut *lsu,
                    counters: &mut *counters,
                    retired: &mut *retired,
                };
                match path.backend().issue_atomred(&mut ctx, bundle, rt) {
                    AtomicIssue::Issued => {
                        *rr = pos;
                        return Outcome::Issued;
                    }
                    AtomicIssue::Blocked => {
                        saw_lsu_atomic = true;
                        continue;
                    }
                }
            }
        }
    }

    if saw_lsu_atomic {
        Outcome::Stall(StallClass::LsuAtomic)
    } else if saw_lsu_data {
        Outcome::Stall(StallClass::LsuData)
    } else if saw_scoreboard {
        Outcome::Stall(StallClass::Scoreboard)
    } else {
        Outcome::Stall(StallClass::Other)
    }
}

/// Advances past a single-slot instruction (or the last repeat).
pub(crate) fn advance(rt: &mut WarpRt, retired: &mut u64, len: usize) {
    rt.pc += 1;
    rt.sub = 0;
    if rt.pc as usize >= len && rt.outstanding == 0 && !rt.done {
        rt.done = true;
        *retired += 1;
    }
}

/// Advances within a multi-parameter atomic bundle.
pub(crate) fn advance_bundle(rt: &mut WarpRt, retired: &mut u64, len: usize, params: usize) {
    rt.sub += 1;
    if rt.sub as usize >= params {
        advance(rt, retired, len);
    }
}

//! A dependency-free work-stealing job pool built on `std::thread::scope`.
//!
//! Two layers of the engine use it:
//!
//! * **job-level** fan-out — the bench harness and experiment binaries map
//!   independent (config, technique, workload) simulation cells across
//!   cores with [`par_map`];
//! * **intra-sim** sharding — `Simulator` splits SMs across worker
//!   threads (see `sim.rs`), sized by [`default_sim_workers`].
//!
//! Both knobs deliberately live *outside* [`crate::GpuConfig`]: thread
//! counts must never influence simulation results, only wall-clock time.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;

use arc_core::{Pass, PassPipeline, PassStats};
use warp_trace::KernelTrace;

/// Default job-level parallelism: the `ARC_JOBS` environment variable if
/// set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
pub fn default_jobs() -> usize {
    env_count("ARC_JOBS").unwrap_or_else(|| {
        thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Default number of worker threads sharding SMs inside one simulation:
/// the `ARC_SIM_WORKERS` environment variable if set to a positive
/// integer, otherwise 1 (serial). Kept conservative by default because
/// job-level parallelism usually saturates the machine first; raise it
/// for single large simulations.
pub fn default_sim_workers() -> usize {
    env_count("ARC_SIM_WORKERS").unwrap_or(1)
}

/// Default for the event-driven fast-forward engine (see `sim.rs`):
/// enabled unless the `ARC_FF` environment variable is set to `0`,
/// `false`, or `off`. Fast-forward never changes simulation results —
/// only wall-clock time — so, like the worker knobs above, it lives
/// outside [`crate::GpuConfig`].
pub fn default_fast_forward() -> bool {
    match std::env::var("ARC_FF") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

/// How the cycle loop synchronizes SM shards (see `sim.rs`).
///
/// Like the worker-count and fast-forward knobs, the epoch mode can only
/// change wall-clock time, never simulation results: the conservative
/// epoch-safety analysis clamps every epoch to a span it can prove is
/// observationally equivalent to the per-cycle loop, and the knob merely
/// *caps* the length that analysis may pick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochMode {
    /// Synchronize every cycle — reproduces the historical loop exactly.
    PerCycle,
    /// Cap epochs at a fixed length (>= 2); the safety analysis may still
    /// choose shorter epochs (or none) where it cannot prove isolation.
    Fixed(u64),
    /// Cap epochs at the engine's built-in maximum (the default).
    Auto,
}

/// Default epoch mode: parsed from the `ARC_SIM_EPOCH` environment
/// variable (`auto` / `1` / fixed-N); unset means [`EpochMode::Auto`].
pub fn default_epoch_mode() -> EpochMode {
    match std::env::var("ARC_SIM_EPOCH") {
        Ok(v) => parse_epoch_mode(&v),
        Err(_) => EpochMode::Auto,
    }
}

/// Parses an `ARC_SIM_EPOCH` value: `0`/`1`/`off` force the per-cycle
/// loop, an integer N >= 2 caps epochs at N cycles, and `auto`, the empty
/// string, or anything unrecognized selects [`EpochMode::Auto`].
pub fn parse_epoch_mode(v: &str) -> EpochMode {
    let v = v.trim();
    match v {
        "0" | "1" | "off" => EpochMode::PerCycle,
        "" | "auto" => EpochMode::Auto,
        _ => match v.parse::<u64>() {
            Ok(n) if n >= 2 => EpochMode::Fixed(n),
            _ => EpochMode::Auto,
        },
    }
}

fn env_count(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n >= 1)
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads, returning
/// results in input order.
///
/// Workers steal the next unclaimed index from a shared atomic cursor, so
/// long and short items interleave without static partitioning. With
/// `jobs <= 1` (or fewer than two items) this degrades to a plain serial
/// map on the calling thread — same results, no thread overhead.
///
/// Panics in `f` propagate to the caller when the scope unwinds.
pub fn par_map<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = jobs.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Per-slot mutexes hand each item to exactly one worker and carry its
    // result back without any unsafe code; the cursor guarantees an index
    // is claimed once, so every lock is uncontended.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("par_map: slot lock poisoned")
                    .take()
                    .expect("par_map: item claimed twice");
                let out = f(item);
                *results[i].lock().expect("par_map: result lock poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("par_map: result lock poisoned")
                .expect("par_map: worker skipped an item")
        })
        .collect()
}

/// Applies an optimizer pipeline with its fused per-warp traversal
/// fanned out over [`par_map`] — warps are independent, so any job
/// count produces output byte-identical to `pipeline.run(trace)`.
///
/// This is the cold-path optimizer the bench harness hands to
/// `arc_core::PassCache::apply_with`; size `jobs` with
/// [`default_jobs`].
pub fn apply_passes<'t>(
    pipeline: &PassPipeline,
    trace: &'t KernelTrace,
    jobs: usize,
) -> (Cow<'t, KernelTrace>, Vec<(Pass, PassStats)>) {
    pipeline.run_mapped(trace, |fuse, n| par_map(jobs, (0..n).collect(), fuse))
}

/// A reusable rendezvous barrier that spins briefly before parking.
///
/// The sharded cycle loop crosses a barrier twice per epoch, and with
/// per-cycle epochs the wait is usually sub-microsecond — far shorter
/// than a futex sleep/wake round-trip. `std::sync::Barrier` parks
/// immediately; this one spins for a bounded number of iterations first
/// and only then falls back to a condvar, which is the difference
/// between the sharded loop beating serial and trailing it.
///
/// The spin budget is sized at construction: when the host has fewer
/// cores than barrier participants, spinning only steals time from the
/// thread we are waiting for, so the budget collapses to near zero.
pub struct HybridBarrier {
    parties: usize,
    spin: u32,
    count: AtomicUsize,
    generation: AtomicU64,
    lock: Mutex<()>,
    cvar: Condvar,
}

impl HybridBarrier {
    /// Creates a barrier for `parties` participants.
    pub fn new(parties: usize) -> Self {
        let cores = thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        // Oversubscribed hosts get a token spin; otherwise ~16k
        // spin-loop hints comfortably covers a few microseconds of skew.
        let spin = if cores < parties { 64 } else { 16_384 };
        HybridBarrier {
            parties,
            spin,
            count: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            lock: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Blocks until all `parties` threads have called `wait` for this
    /// generation. The last arriver releases everyone; the release/acquire
    /// pair on `generation` (plus the release sequence on `count`)
    /// publishes all pre-barrier writes to every post-barrier reader.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.count.store(0, Ordering::Relaxed);
            // Bump the generation under the lock so a parker that saw the
            // old generation cannot miss the notification.
            let _guard = self.lock.lock().expect("barrier lock poisoned");
            self.generation.store(gen + 1, Ordering::Release);
            drop(_guard);
            self.cvar.notify_all();
            return;
        }
        for _ in 0..self.spin {
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().expect("barrier lock poisoned");
        while self.generation.load(Ordering::Acquire) == gen {
            guard = self.cvar.wait(guard).expect("barrier lock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_forward_env_parsing() {
        // `default_fast_forward` reads the live environment, so pin the
        // parsing logic on the match arms directly.
        let parse = |v: Option<&str>| match v {
            Some(v) => !matches!(v.trim(), "0" | "false" | "off"),
            None => true,
        };
        assert!(parse(None));
        assert!(parse(Some("1")));
        assert!(parse(Some("on")));
        assert!(!parse(Some("0")));
        assert!(!parse(Some(" 0 ")));
        assert!(!parse(Some("false")));
        assert!(!parse(Some("off")));
    }

    #[test]
    fn epoch_mode_parsing() {
        // `default_epoch_mode` reads the live environment, so pin the
        // parser directly.
        assert_eq!(parse_epoch_mode("0"), EpochMode::PerCycle);
        assert_eq!(parse_epoch_mode("1"), EpochMode::PerCycle);
        assert_eq!(parse_epoch_mode("off"), EpochMode::PerCycle);
        assert_eq!(parse_epoch_mode(" 1 "), EpochMode::PerCycle);
        assert_eq!(parse_epoch_mode(""), EpochMode::Auto);
        assert_eq!(parse_epoch_mode("auto"), EpochMode::Auto);
        assert_eq!(parse_epoch_mode("bogus"), EpochMode::Auto);
        assert_eq!(parse_epoch_mode("2"), EpochMode::Fixed(2));
        assert_eq!(parse_epoch_mode("64"), EpochMode::Fixed(64));
        assert_eq!(parse_epoch_mode(" 4 "), EpochMode::Fixed(4));
    }

    #[test]
    fn hybrid_barrier_synchronizes() {
        use std::sync::atomic::AtomicU64;
        let rounds = 200u64;
        let parties = 4usize;
        let barrier = HybridBarrier::new(parties);
        let counter = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..parties {
                s.spawn(|| {
                    for r in 0..rounds {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Every thread must observe all increments for
                        // this round before anyone starts the next one.
                        assert!(counter.load(Ordering::Relaxed) >= (r + 1) * parties as u64);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), rounds * parties as u64);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(8, items.clone(), |x| x * x);
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u32> = (0..37).collect();
        let serial = par_map(1, items.clone(), |x| x.wrapping_mul(2654435761));
        let parallel = par_map(4, items, |x| x.wrapping_mul(2654435761));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(4, vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(par_map(64, vec![1, 2, 3], |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn apply_passes_matches_serial_for_any_job_count() {
        use warp_trace::{AtomicInstr, KernelKind, WarpTraceBuilder, WARP_SIZE};
        let warps = (0..24)
            .map(|w| {
                let mut b = WarpTraceBuilder::new();
                for i in 0..4 {
                    b.compute_fp32(1 + (w + i) % 3);
                    b.atomic(AtomicInstr::same_address(
                        0x40 * (1 + w as u64 % 5),
                        &[0.5; WARP_SIZE],
                    ));
                    b.load(2);
                }
                b.finish()
            })
            .collect();
        let trace = KernelTrace::new("fanout", KernelKind::GradCompute, warps);
        let pipeline = PassPipeline::all();
        let (serial, serial_stats) = pipeline.run(&trace);
        for jobs in [1usize, 2, 8] {
            let (t, stats) = apply_passes(&pipeline, &trace, jobs);
            assert_eq!(t.as_ref(), serial.as_ref(), "{jobs} jobs");
            assert_eq!(stats, serial_stats, "{jobs} jobs");
        }
    }
}

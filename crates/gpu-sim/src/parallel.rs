//! A dependency-free work-stealing job pool built on `std::thread::scope`.
//!
//! Two layers of the engine use it:
//!
//! * **job-level** fan-out — the bench harness and experiment binaries map
//!   independent (config, technique, workload) simulation cells across
//!   cores with [`par_map`];
//! * **intra-sim** sharding — `Simulator` splits SMs across worker
//!   threads (see `sim.rs`), sized by [`default_sim_workers`].
//!
//! Both knobs deliberately live *outside* [`crate::GpuConfig`]: thread
//! counts must never influence simulation results, only wall-clock time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Default job-level parallelism: the `ARC_JOBS` environment variable if
/// set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
pub fn default_jobs() -> usize {
    env_count("ARC_JOBS").unwrap_or_else(|| {
        thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Default number of worker threads sharding SMs inside one simulation:
/// the `ARC_SIM_WORKERS` environment variable if set to a positive
/// integer, otherwise 1 (serial). Kept conservative by default because
/// job-level parallelism usually saturates the machine first; raise it
/// for single large simulations.
pub fn default_sim_workers() -> usize {
    env_count("ARC_SIM_WORKERS").unwrap_or(1)
}

/// Default for the event-driven fast-forward engine (see `sim.rs`):
/// enabled unless the `ARC_FF` environment variable is set to `0`,
/// `false`, or `off`. Fast-forward never changes simulation results —
/// only wall-clock time — so, like the worker knobs above, it lives
/// outside [`crate::GpuConfig`].
pub fn default_fast_forward() -> bool {
    match std::env::var("ARC_FF") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

fn env_count(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n >= 1)
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads, returning
/// results in input order.
///
/// Workers steal the next unclaimed index from a shared atomic cursor, so
/// long and short items interleave without static partitioning. With
/// `jobs <= 1` (or fewer than two items) this degrades to a plain serial
/// map on the calling thread — same results, no thread overhead.
///
/// Panics in `f` propagate to the caller when the scope unwinds.
pub fn par_map<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = jobs.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Per-slot mutexes hand each item to exactly one worker and carry its
    // result back without any unsafe code; the cursor guarantees an index
    // is claimed once, so every lock is uncontended.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("par_map: slot lock poisoned")
                    .take()
                    .expect("par_map: item claimed twice");
                let out = f(item);
                *results[i].lock().expect("par_map: result lock poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("par_map: result lock poisoned")
                .expect("par_map: worker skipped an item")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_forward_env_parsing() {
        // `default_fast_forward` reads the live environment, so pin the
        // parsing logic on the match arms directly.
        let parse = |v: Option<&str>| match v {
            Some(v) => !matches!(v.trim(), "0" | "false" | "off"),
            None => true,
        };
        assert!(parse(None));
        assert!(parse(Some("1")));
        assert!(parse(Some("on")));
        assert!(!parse(Some("0")));
        assert!(!parse(Some(" 0 ")));
        assert!(!parse(Some("false")));
        assert!(!parse(Some("off")));
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(8, items.clone(), |x| x * x);
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u32> = (0..37).collect();
        let serial = par_map(1, items.clone(), |x| x.wrapping_mul(2654435761));
        let parallel = par_map(4, items, |x| x.wrapping_mul(2654435761));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(4, vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(par_map(64, vec![1, 2, 3], |x| x * 10), vec![10, 20, 30]);
    }
}

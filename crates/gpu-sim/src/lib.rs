//! A from-scratch cycle-level GPU simulator — the GPGPU-Sim substitute
//! for the ARC reproduction.
//!
//! The model captures exactly the machinery the paper's results hinge on:
//!
//! * SMs with four sub-cores, each issuing at most one warp instruction
//!   per cycle under a greedy-then-oldest scheduler;
//! * an LDST dispatch port and a per-SM LSU/MIO queue with finite
//!   capacity and drain rate — the place the paper's dominant "LSU full"
//!   stalls arise;
//! * an interconnect delivering lane-value flits to L2 memory
//!   subpartitions, whose ROP units retire one atomic lane-value per
//!   ROP per cycle (176 total on the 4090 model vs 48 on the 3060);
//! * back-pressure all the way up: full ROP queues fill the LSU, which
//!   stalls sub-core issue — reproducing Fig. 8;
//! * pluggable atomic paths ([`AtomicPath`]): baseline, ARC-HW with
//!   per-sub-core reduction units and greedy scheduling, LAB, LAB-ideal,
//!   and PHI;
//! * stall accounting ([`StallBreakdown`]) and an event-based energy
//!   model ([`EnergyModel`]).
//!
//! ARC-SW and CCCL run as *trace rewrites* (see `arc_core`) executed on
//! the baseline path — no hardware support, exactly like the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Semantic fingerprint of the simulator, mixed into every persistent
/// result-store key (see the `sim-service` crate).
///
/// Bump this string whenever a change to `gpu-sim` (or to the trace
/// rewrites it consumes) can alter the *output* of a simulation for the
/// same inputs — a different [`KernelReport`], telemetry series, or
/// chrome-trace byte stream. Pure wall-clock optimisations that are
/// pinned byte-identical by the conformance determinism invariants
/// (worker sharding, fast-forward, epoch synchronization) do NOT
/// require a bump. Stale entries carrying an old version are treated as
/// store misses and recomputed, so forgetting a bump is a correctness
/// bug while bumping spuriously only costs warm-cache hits.
pub const SIM_VERSION: &str = "arc-sim-2026.07-pr7";

mod config;
mod energy;
mod machine;
pub mod parallel;
pub mod paths;
mod sim;
mod stats;
pub mod telemetry;

pub use config::GpuConfig;
pub use energy::{EnergyModel, EnergyReport};
pub use parallel::{
    apply_passes, default_epoch_mode, default_fast_forward, default_jobs, par_map,
    parse_epoch_mode, EpochMode,
};
pub use paths::{AtomicPath, TechniquePath};
pub use sim::{SimError, Simulator};
pub use stats::{EngineStats, IterationReport, KernelReport, SimCounters, StallBreakdown};
pub use telemetry::{
    HistogramReport, KernelTelemetry, MetricKind, MetricSeries, MetricsRegistry, TelemetryConfig,
    TelemetrySummary, WarpSpan,
};

//! Internal micro-architectural components: memory requests, L2/ROP
//! partitions, LSU queues, sub-cores, ARC-HW reduction units, and
//! LAB/PHI aggregation buffers.
//!
//! Units: atomic traffic is measured in *lane-values* (one lane's atomic
//! request); loads/stores in 32-byte sectors. Drain bandwidths are
//! tracked internally in quarter-units per cycle so fractional rates
//! (e.g. PHI's 1.5 lane-values/cycle tag-lookup port) stay integral.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, Ordering};

use crate::config::GpuConfig;
use crate::stats::SimCounters;

/// One SM's cycle-local window onto the memory partitions.
///
/// During the (possibly multi-threaded) SM phase no SM may touch the
/// shared [`MemPartition`]s directly, so each SM sees a start-of-cycle
/// occupancy *snapshot* plus its own `sent` tally, and buffers accepted
/// requests in an `outbox` the coordinator delivers in SM-index order at
/// the end of the cycle. Admission is therefore conservative per SM but
/// *soft* across SMs: two SMs may each fit within the snapshot yet
/// overshoot a partition's capacity together. The overshoot is bounded
/// by one cycle's issue and models interconnect credit slack; crucially
/// the decision depends only on the snapshot and this SM's own traffic,
/// never on worker scheduling — the root of the engine's bit-for-bit
/// determinism (see `sim.rs`).
pub(crate) struct SmPort<'a> {
    /// Start-of-cycle partition occupancies, written by the coordinator
    /// before the SM phase begins (atomics only so the snapshot can be
    /// shared with worker threads without `unsafe`).
    pub occ: &'a [AtomicU32],
    /// Units this SM has admitted per partition this cycle.
    pub sent: &'a mut [u32],
    /// Requests admitted this cycle, delivered after the barrier.
    pub outbox: &'a mut Vec<MemReq>,
    /// Partition input-buffer capacity.
    pub capacity: u32,
    /// How admission decisions are made this cycle.
    pub mode: PortMode,
}

/// How an [`SmPort`] answers admission checks.
///
/// During an epoch (see `sim.rs`) the occupancy snapshot goes stale, so
/// SMs may only run detached from it when the coordinator has *proved*
/// every admission decision in advance: either that all of them would
/// succeed ([`PortMode::AllAccept`]) or that all of them would fail
/// ([`PortMode::AllReject`]). Outside epochs the live snapshot governs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PortMode {
    /// Judge against the start-of-cycle occupancy snapshot (the
    /// historical per-cycle behavior).
    Live,
    /// Epoch-certified: every admission this epoch is known to fit.
    AllAccept,
    /// Epoch-certified: every admission this epoch is known to bounce.
    AllReject,
}

impl SmPort<'_> {
    /// Whether a request of `size` units fits in `partition`'s input
    /// buffer, judging by the snapshot plus this SM's own traffic.
    ///
    /// A request larger than the whole buffer is admitted once the
    /// buffer is empty (store-and-forward of an oversized packet);
    /// otherwise a 32-lane transaction aimed at a sub-warp-sized buffer
    /// could never be accepted and the machine would livelock against
    /// an *empty* queue. For every size within capacity the plain
    /// headroom check governs, so timing on realistic configurations is
    /// unchanged.
    pub fn can_accept(&self, partition: u32, size: u32) -> bool {
        match self.mode {
            PortMode::AllAccept => true,
            PortMode::AllReject => false,
            PortMode::Live => {
                let p = partition as usize;
                let used = self.occ[p].load(Ordering::Relaxed) + self.sent[p];
                used + size <= self.capacity || used == 0
            }
        }
    }

    /// Admits a request (caller must have checked [`Self::can_accept`]).
    pub fn push(&mut self, req: MemReq) {
        self.sent[req.partition as usize] += req.size;
        self.outbox.push(req);
    }
}

/// A memory request traveling from an SM toward the memory partitions.
#[derive(Clone, Debug)]
pub(crate) struct MemReq {
    /// Lane-values (atomics) or sectors (loads/stores).
    pub size: u32,
    /// Destination memory partition.
    pub partition: u32,
    /// Representative address (used by LAB/PHI keying).
    pub addr: u64,
    pub kind: ReqKind,
}

#[derive(Clone, Debug)]
pub(crate) enum ReqKind {
    /// A load sector; completion wakes `warp`.
    Load {
        warp: u32,
        /// Extra latency (DRAM miss, LAB/PHI L1 contention penalties).
        extra_latency: u32,
    },
    Store,
    Atomic,
}

/// An L2 memory subpartition: a shared input buffer feeding a ROP atomic
/// pipeline and an L2 load/store pipeline.
#[derive(Debug)]
pub(crate) struct MemPartition {
    atomics: VecDeque<MemReq>,
    data: VecDeque<MemReq>,
    occupancy: u32,
    /// The atomic (ROP-queue) share of `occupancy`, tracked separately
    /// so telemetry can distinguish ROP back-pressure from load/store
    /// buffering.
    atomic_occupancy: u32,
    rop_rate: u32,
    data_rate: u32,
    load_latency: u32,
    rop_progress: u32,
    data_progress: u32,
}

impl MemPartition {
    pub fn new(cfg: &GpuConfig) -> Self {
        MemPartition {
            atomics: VecDeque::new(),
            data: VecDeque::new(),
            occupancy: 0,
            atomic_occupancy: 0,
            rop_rate: cfg.rops_per_partition,
            data_rate: cfg.l2_load_throughput,
            load_latency: cfg.l2_load_latency,
            rop_progress: 0,
            data_progress: 0,
        }
    }

    /// Enqueues a request. Admission control lives in [`SmPort`] (the
    /// snapshot-based check SMs run against this partition's capacity);
    /// the partition itself accepts whatever the interconnect delivers.
    pub fn push(&mut self, req: MemReq) {
        self.occupancy += req.size;
        match req.kind {
            ReqKind::Atomic => {
                self.atomic_occupancy += req.size;
                self.atomics.push_back(req);
            }
            _ => self.data.push_back(req),
        }
    }

    /// Units currently buffered.
    pub fn occupancy(&self) -> u32 {
        self.occupancy
    }

    /// Atomic lane-values currently waiting for the ROP pipeline — the
    /// "ROP queue" occupancy telemetry samples.
    pub fn rop_occupancy(&self) -> u32 {
        self.atomic_occupancy
    }

    /// Maximum units this partition can retire per cycle from steady
    /// state (ROP plus L2 data pipelines), excluding banked progress.
    /// Used by the epoch-safety analysis in `sim.rs`.
    pub fn drain_rate(&self) -> u32 {
        self.rop_rate + self.data_rate
    }

    /// Partial-progress credit currently banked on the two pipeline
    /// heads. Over `E` cycles the partition can retire at most
    /// `banked_progress() + E * drain_rate()` units — the bound the
    /// epoch-safety analysis leans on.
    pub fn banked_progress(&self) -> u32 {
        self.rop_progress + self.data_progress
    }

    /// Advances one cycle: ROP units retire atomic lane-values, the L2
    /// services load/store sectors and schedules load completions.
    pub fn step(
        &mut self,
        cycle: u64,
        completions: &mut BinaryHeap<Reverse<(u64, u32)>>,
        counters: &mut SimCounters,
    ) {
        // ROP pipeline: `rop_rate` lane-values per cycle, with partial
        // progress on the head transaction.
        let mut budget = self.rop_rate + self.rop_progress;
        self.rop_progress = 0;
        while let Some(head) = self.atomics.front() {
            if budget >= head.size {
                budget -= head.size;
                self.occupancy -= head.size;
                self.atomic_occupancy -= head.size;
                counters.rop_lane_ops += u64::from(head.size);
                self.atomics.pop_front();
            } else {
                self.rop_progress = budget;
                break;
            }
        }

        // L2 data pipeline.
        let mut budget = self.data_rate + self.data_progress;
        self.data_progress = 0;
        while let Some(head) = self.data.front() {
            if budget >= head.size {
                budget -= head.size;
                self.occupancy -= head.size;
                match head.kind {
                    ReqKind::Load {
                        warp,
                        extra_latency,
                    } => {
                        counters.load_sectors += u64::from(head.size);
                        let done = cycle + u64::from(self.load_latency + extra_latency);
                        completions.push(Reverse((done, warp)));
                    }
                    ReqKind::Store => counters.store_sectors += u64::from(head.size),
                    ReqKind::Atomic => unreachable!("atomics live in the ROP queue"),
                }
                self.data.pop_front();
            } else {
                self.data_progress = budget;
                break;
            }
        }
    }
}

/// ARC-HW's per-sub-core reduction unit: a small queue of atomic
/// transactions folded serially by a dedicated FPU (paper §5.1, Fig. 12).
#[derive(Debug, Default)]
pub(crate) struct RedUnit {
    queue: VecDeque<RedEntry>,
}

#[derive(Debug)]
struct RedEntry {
    remaining: u32,
    size: u32,
    addr: u64,
    partition: u32,
}

impl RedUnit {
    /// Free transaction slots.
    pub fn space(&self, capacity: u32) -> u32 {
        capacity.saturating_sub(self.queue.len() as u32)
    }

    /// Transactions pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a transaction of `size` lane-values targeting `addr`.
    pub fn push(&mut self, size: u32, addr: u64, partition: u32) {
        self.queue.push_back(RedEntry {
            remaining: size,
            size,
            addr,
            partition,
        });
    }

    /// Folds up to `throughput` lane-values; finished transactions emit
    /// a single-lane atomic directly to the memory interface (the
    /// reduction unit has its own tiny port — one value every ~k cycles
    /// is negligible bandwidth), falling back to reserved LSU headroom
    /// when the target partition is full.
    pub fn step(
        &mut self,
        throughput: u32,
        emit_reserve: u32,
        lsu: &mut LsuQueue,
        port: &mut SmPort<'_>,
        counters: &mut SimCounters,
    ) {
        let mut budget = throughput;
        while budget > 0 {
            let Some(head) = self.queue.front_mut() else {
                break;
            };
            if head.remaining > budget {
                head.remaining -= budget;
                break;
            }
            let req = MemReq {
                size: 1,
                partition: head.partition,
                addr: head.addr,
                kind: ReqKind::Atomic,
            };
            if port.can_accept(head.partition, 1) {
                budget -= head.remaining;
                counters.redunit_lane_ops += u64::from(head.size);
                counters.icnt_flits += 1;
                port.push(req);
                self.queue.pop_front();
            } else if lsu.can_accept_reserved(1, emit_reserve) {
                budget -= head.remaining;
                counters.redunit_lane_ops += u64::from(head.size);
                self.queue.pop_front();
                lsu.push(req, counters);
            } else {
                counters.redunit_blocked_cycles += 1;
                break;
            }
        }
    }
}

/// The per-SM LSU/MIO queue between the sub-cores and the memory system.
#[derive(Debug)]
pub(crate) struct LsuQueue {
    queue: VecDeque<MemReq>,
    occupancy: u32,
    capacity: u32,
    drain_progress_q: u32,
}

impl LsuQueue {
    pub fn new(capacity: u32) -> Self {
        LsuQueue {
            queue: VecDeque::new(),
            occupancy: 0,
            capacity,
            drain_progress_q: 0,
        }
    }

    /// Like the partition port, an empty queue accepts even a request
    /// larger than its whole capacity (store-and-forward), otherwise a
    /// full-warp memory instruction could never issue against a
    /// sub-warp-sized queue and the warp would stall forever.
    pub fn can_accept(&self, size: u32) -> bool {
        self.occupancy + size <= self.capacity || self.occupancy == 0
    }

    /// Acceptance check with extra reserved headroom (used by the ARC
    /// reduction units, whose single-value emissions must not deadlock
    /// behind the bulk traffic they replace).
    pub fn can_accept_reserved(&self, size: u32, reserve: u32) -> bool {
        self.occupancy + size <= self.capacity + reserve || self.occupancy == 0
    }

    pub fn occupancy(&self) -> u32 {
        self.occupancy
    }

    /// Occupancy as a fraction of capacity (the "how free is the ROP
    /// path" signal the ARC scheduler compares against the reduction
    /// unit's).
    pub fn occupancy_fraction(&self) -> f64 {
        f64::from(self.occupancy) / f64::from(self.capacity)
    }

    /// Occupancy fraction — the LDST stall signal read by the greedy
    /// ARC-HW scheduler.
    pub fn stalled(&self, threshold: f64) -> bool {
        f64::from(self.occupancy) >= threshold * f64::from(self.capacity)
    }

    pub fn push(&mut self, req: MemReq, counters: &mut SimCounters) {
        counters.lsu_accepted += u64::from(req.size);
        self.occupancy += req.size;
        self.queue.push_back(req);
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The request at the drain head, if any (epoch-safety analysis).
    pub fn head(&self) -> Option<&MemReq> {
        self.queue.front()
    }

    /// Banked drain credit in quarter-units. Bounded by the head's own
    /// need whenever the head is back-pressured, so over `E` cycles at
    /// most `banked_q()/4 + E * rate` units can leave the queue — the
    /// inflow bound the epoch-safety analysis uses.
    pub fn banked_q(&self) -> u32 {
        self.drain_progress_q
    }

    /// Drains head requests toward the memory partitions (or, for
    /// atomics under LAB/PHI, into the SM-local aggregation buffer).
    /// `base_rate_q`/`buffer_rate_q` are quarter-units per cycle.
    pub fn drain(
        &mut self,
        base_rate_q: u32,
        buffer: &mut Option<AggBuffer>,
        port: &mut SmPort<'_>,
        counters: &mut SimCounters,
    ) {
        let rate_q = match (self.queue.front(), buffer.as_ref()) {
            (Some(head), Some(buf)) if matches!(head.kind, ReqKind::Atomic) => buf.bandwidth_q,
            _ => base_rate_q,
        };
        self.drain_progress_q += rate_q;
        loop {
            let Some(head) = self.queue.front() else {
                self.drain_progress_q = 0;
                break;
            };
            let need_q = head.size * 4;
            if self.drain_progress_q < need_q {
                break;
            }
            let to_buffer = matches!(head.kind, ReqKind::Atomic) && buffer.is_some();
            if to_buffer {
                let req = self.queue.pop_front().expect("head exists");
                self.occupancy -= req.size;
                self.drain_progress_q -= need_q;
                buffer
                    .as_mut()
                    .expect("buffer checked above")
                    .absorb(req, counters);
            } else {
                if !port.can_accept(head.partition, head.size) {
                    // Back-pressure: cap banked progress so it resumes
                    // instantly once the partition frees up, without
                    // accumulating unbounded credit.
                    self.drain_progress_q = self.drain_progress_q.min(need_q);
                    break;
                }
                let req = self.queue.pop_front().expect("head exists");
                self.occupancy -= req.size;
                self.drain_progress_q -= need_q;
                counters.icnt_flits += u64::from(req.size);
                port.push(req);
            }
        }
        if self.queue.is_empty() {
            self.drain_progress_q = 0;
        }
    }
}

/// A LAB / LAB-ideal / PHI-style SM-local atomic aggregation buffer.
///
/// LAB keys entries by word address; PHI by 128-byte cache line. The
/// buffer absorbs atomic requests at `bandwidth_q/4` lane-values per
/// cycle, merges same-key requests, evicts FIFO-oldest entries when full
/// (each eviction emits one aggregated lane-value to the L2 ROPs), and
/// flushes everything at kernel end.
#[derive(Debug)]
pub(crate) struct AggBuffer {
    entries: HashMap<u64, ()>,
    order: VecDeque<u64>,
    capacity: usize,
    key_shift: u32,
    /// Quarter lane-values absorbed per cycle.
    pub bandwidth_q: u32,
    /// Extra cycles added to every load while this buffer contends for
    /// the L1 SRAM.
    pub load_penalty: u32,
    evict_out: VecDeque<MemReq>,
}

impl AggBuffer {
    pub fn new(capacity: usize, key_shift: u32, bandwidth_q: u32, load_penalty: u32) -> Self {
        AggBuffer {
            entries: HashMap::with_capacity(capacity.min(1 << 16)),
            order: VecDeque::new(),
            capacity,
            key_shift,
            bandwidth_q,
            load_penalty,
            evict_out: VecDeque::new(),
        }
    }

    /// Word-keyed LAB buffer.
    pub fn lab(capacity: usize, load_penalty: u32) -> Self {
        // 2 lane-values/cycle: a single SM-level SRAM merge port — the
        // structural reason LAB trails ARC's four per-sub-core units.
        AggBuffer::new(capacity, 0, 8, load_penalty)
    }

    /// Line-keyed PHI buffer (128 B lines, slower tag-lookup port).
    pub fn phi(capacity: usize, load_penalty: u32) -> Self {
        AggBuffer::new(capacity, 7, 6, load_penalty)
    }

    fn key(&self, addr: u64) -> u64 {
        addr >> self.key_shift
    }

    /// Absorbs an atomic request: merge on key hit, allocate (and maybe
    /// evict) on miss.
    pub fn absorb(&mut self, req: MemReq, counters: &mut SimCounters) {
        let key = self.key(req.addr);
        if self.entries.contains_key(&key) {
            counters.buffer_merges += u64::from(req.size);
            return;
        }
        counters.buffer_merges += u64::from(req.size.saturating_sub(1));
        self.entries.insert(key, ());
        self.order.push_back(key);
        if self.entries.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
                counters.buffer_evictions += 1;
                self.evict_out.push_back(self.entry_req(old));
            }
        }
    }

    fn entry_req(&self, key: u64) -> MemReq {
        MemReq {
            size: 1,
            partition: 0, // fixed up by the caller via config mapping
            addr: key << self.key_shift,
            kind: ReqKind::Atomic,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Pending eviction/flush emissions.
    pub fn evict_backlog(&self) -> usize {
        self.evict_out.len()
    }

    /// Flushes all current entries (called every cycle once the kernel's
    /// warps have retired — late-arriving requests still in the LSU may
    /// be absorbed after a first flush and must be flushed again).
    pub fn flush(&mut self, counters: &mut SimCounters) {
        if self.entries.is_empty() {
            return;
        }
        counters.buffer_flushes += self.entries.len() as u64;
        while let Some(key) = self.order.pop_front() {
            if self.entries.remove(&key).is_some() {
                self.evict_out.push_back(self.entry_req(key));
            }
        }
    }

    /// Sends up to `budget` evicted/flushed entries to the partitions.
    pub fn drain_evictions(
        &mut self,
        budget: u32,
        cfg: &GpuConfig,
        port: &mut SmPort<'_>,
        counters: &mut SimCounters,
    ) {
        for _ in 0..budget {
            let Some(mut req) = self.evict_out.pop_front() else {
                break;
            };
            req.partition = cfg.partition_of(req.addr) as u32;
            if port.can_accept(req.partition, req.size) {
                counters.icnt_flits += u64::from(req.size);
                port.push(req);
            } else {
                self.evict_out.push_front(req);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> SimCounters {
        SimCounters::default()
    }

    /// Owns the snapshot/sent/outbox backing one [`SmPort`] for a single
    /// simulated cycle, mirroring what the coordinator does in `sim.rs`:
    /// snapshot partition occupancies, lend out a port, then deliver the
    /// outbox.
    struct TestPort {
        occ: Vec<AtomicU32>,
        sent: Vec<u32>,
        outbox: Vec<MemReq>,
        capacity: u32,
    }

    impl TestPort {
        fn new(parts: &[MemPartition], capacity: u32) -> Self {
            TestPort {
                occ: parts
                    .iter()
                    .map(|p| AtomicU32::new(p.occupancy()))
                    .collect(),
                sent: vec![0; parts.len()],
                outbox: Vec::new(),
                capacity,
            }
        }

        fn port(&mut self) -> SmPort<'_> {
            SmPort {
                occ: &self.occ,
                sent: &mut self.sent,
                outbox: &mut self.outbox,
                capacity: self.capacity,
                mode: PortMode::Live,
            }
        }

        fn deliver(self, parts: &mut [MemPartition]) {
            for req in self.outbox {
                parts[req.partition as usize].push(req);
            }
        }
    }

    #[test]
    fn partition_retires_at_rop_rate() {
        let cfg = GpuConfig::tiny(); // 1 ROP/partition
        let mut p = MemPartition::new(&cfg);
        let mut comp = BinaryHeap::new();
        let mut c = counters();
        p.push(MemReq {
            size: 4,
            partition: 0,
            addr: 0,
            kind: ReqKind::Atomic,
        });
        for cyc in 0..3 {
            p.step(cyc, &mut comp, &mut c);
            assert_eq!(c.rop_lane_ops, 0, "not done after {cyc} cycles");
        }
        p.step(3, &mut comp, &mut c);
        assert_eq!(c.rop_lane_ops, 4);
        assert_eq!(p.occupancy(), 0);
    }

    #[test]
    fn partition_schedules_load_completion() {
        let cfg = GpuConfig::tiny();
        let mut p = MemPartition::new(&cfg);
        let mut comp = BinaryHeap::new();
        let mut c = counters();
        p.push(MemReq {
            size: 1,
            partition: 0,
            addr: 0,
            kind: ReqKind::Load {
                warp: 7,
                extra_latency: 5,
            },
        });
        p.step(10, &mut comp, &mut c);
        let Reverse((done, warp)) = comp.pop().unwrap();
        assert_eq!(warp, 7);
        assert_eq!(done, 10 + u64::from(cfg.l2_load_latency) + 5);
        assert_eq!(c.load_sectors, 1);
    }

    #[test]
    fn port_respects_partition_capacity() {
        let cfg = GpuConfig::tiny();
        let parts = vec![MemPartition::new(&cfg)];
        let cap = cfg.partition_queue_capacity;
        let mut tp = TestPort::new(&parts, cap);
        let mut port = tp.port();
        assert!(port.can_accept(0, cap));
        assert!(
            port.can_accept(0, cap + 1),
            "an oversized packet streams through an empty buffer"
        );
        port.push(MemReq {
            size: 1,
            partition: 0,
            addr: 0,
            kind: ReqKind::Atomic,
        });
        assert!(
            !port.can_accept(0, cap),
            "once occupied, capacity governs again"
        );
    }

    #[test]
    fn port_counts_own_traffic_against_snapshot() {
        let cfg = GpuConfig::tiny();
        let parts = vec![MemPartition::new(&cfg)];
        let cap = cfg.partition_queue_capacity;
        let mut tp = TestPort::new(&parts, cap);
        let mut port = tp.port();
        port.push(MemReq {
            size: cap - 1,
            partition: 0,
            addr: 0,
            kind: ReqKind::Atomic,
        });
        assert!(port.can_accept(0, 1), "one unit of headroom left");
        assert!(!port.can_accept(0, 2), "own sent traffic must count");
    }

    #[test]
    fn port_modes_override_snapshot() {
        let cfg = GpuConfig::tiny();
        let parts = vec![MemPartition::new(&cfg)];
        let cap = cfg.partition_queue_capacity;
        let mut tp = TestPort::new(&parts, cap);
        let mut port = tp.port();
        port.push(MemReq {
            size: cap,
            partition: 0,
            addr: 0,
            kind: ReqKind::Atomic,
        });
        assert!(!port.can_accept(0, 1), "live mode: full");
        port.mode = PortMode::AllAccept;
        assert!(port.can_accept(0, 1), "certified accept ignores snapshot");
        port.mode = PortMode::AllReject;
        assert!(!port.can_accept(0, 0), "certified reject ignores snapshot");
    }

    #[test]
    fn redunit_folds_serially_and_emits_single_value() {
        let cfg = GpuConfig::tiny();
        let mut ru = RedUnit::default();
        let mut lsu = LsuQueue::new(16);
        let mut parts = vec![MemPartition::new(&cfg), MemPartition::new(&cfg)];
        let mut c = counters();
        ru.push(3, 0x100, 1);
        for expect_done in [false, false, true] {
            let mut tp = TestPort::new(&parts, cfg.partition_queue_capacity);
            ru.step(1, 0, &mut lsu, &mut tp.port(), &mut c);
            tp.deliver(&mut parts);
            if !expect_done {
                assert_eq!(c.redunit_lane_ops, 0);
            }
        }
        assert_eq!(c.redunit_lane_ops, 3);
        assert_eq!(
            parts[1].occupancy(),
            1,
            "reduced atomic goes straight to its partition"
        );
        assert_eq!(ru.pending(), 0);
    }

    #[test]
    fn redunit_blocks_when_partition_and_lsu_full() {
        let mut cfg = GpuConfig::tiny();
        cfg.partition_queue_capacity = 1;
        let mut ru = RedUnit::default();
        let mut lsu = LsuQueue::new(1);
        let mut parts = vec![MemPartition::new(&cfg)];
        let mut c = counters();
        parts[0].push(MemReq {
            size: 1,
            partition: 0,
            addr: 0,
            kind: ReqKind::Atomic,
        });
        lsu.push(
            MemReq {
                size: 1,
                partition: 0,
                addr: 0,
                kind: ReqKind::Atomic,
            },
            &mut c,
        );
        ru.push(1, 0x0, 0);
        let mut tp = TestPort::new(&parts, cfg.partition_queue_capacity);
        ru.step(4, 0, &mut lsu, &mut tp.port(), &mut c);
        tp.deliver(&mut parts);
        assert_eq!(ru.pending(), 1, "must wait for partition or LSU space");
        assert_eq!(c.redunit_blocked_cycles, 1);
    }

    #[test]
    fn lsu_drain_moves_head_when_partition_accepts() {
        let cfg = GpuConfig::tiny();
        let mut lsu = LsuQueue::new(64);
        let mut parts = vec![MemPartition::new(&cfg), MemPartition::new(&cfg)];
        let mut c = counters();
        lsu.push(
            MemReq {
                size: 2,
                partition: 1,
                addr: 0,
                kind: ReqKind::Atomic,
            },
            &mut c,
        );
        // rate 2/cycle (8 quarters): a size-2 req needs one cycle.
        let mut buf = None;
        let mut tp = TestPort::new(&parts, cfg.partition_queue_capacity);
        lsu.drain(8, &mut buf, &mut tp.port(), &mut c);
        tp.deliver(&mut parts);
        assert!(lsu.is_empty());
        assert_eq!(parts[1].occupancy(), 2);
        assert_eq!(c.icnt_flits, 2);
    }

    #[test]
    fn oversized_request_streams_through_tiny_partition_buffer() {
        // Found by the conformance fuzzer: a full-warp (size-32) atomic
        // aimed at a partition buffer of capacity 1 used to fail
        // admission forever and livelock the whole machine against an
        // empty queue.
        let mut cfg = GpuConfig::tiny();
        cfg.partition_queue_capacity = 1;
        let mut lsu = LsuQueue::new(64);
        let mut parts = vec![MemPartition::new(&cfg)];
        let mut c = counters();
        lsu.push(
            MemReq {
                size: 32,
                partition: 0,
                addr: 0,
                kind: ReqKind::Atomic,
            },
            &mut c,
        );
        let mut buf = None;
        let mut tp = TestPort::new(&parts, cfg.partition_queue_capacity);
        lsu.drain(32 * 4, &mut buf, &mut tp.port(), &mut c);
        tp.deliver(&mut parts);
        assert!(lsu.is_empty(), "oversized head must stream through");
        assert_eq!(parts[0].occupancy(), 32);
        // But it must still wait its turn behind queued traffic.
        let mut tp = TestPort::new(&parts, cfg.partition_queue_capacity);
        assert!(!tp.port().can_accept(0, 32));
    }

    #[test]
    fn lsu_partial_progress_accumulates() {
        let cfg = GpuConfig::tiny();
        let mut lsu = LsuQueue::new(64);
        let mut parts = vec![MemPartition::new(&cfg)];
        let mut c = counters();
        lsu.push(
            MemReq {
                size: 8,
                partition: 0,
                addr: 0,
                kind: ReqKind::Atomic,
            },
            &mut c,
        );
        let mut buf = None;
        for _ in 0..3 {
            let mut tp = TestPort::new(&parts, cfg.partition_queue_capacity);
            lsu.drain(8, &mut buf, &mut tp.port(), &mut c); // 2 units/cycle
            tp.deliver(&mut parts);
            assert!(!lsu.is_empty());
        }
        let mut tp = TestPort::new(&parts, cfg.partition_queue_capacity);
        lsu.drain(8, &mut buf, &mut tp.port(), &mut c);
        tp.deliver(&mut parts);
        assert!(lsu.is_empty());
    }

    #[test]
    fn lsu_stall_signal_uses_threshold() {
        let mut lsu = LsuQueue::new(10);
        let mut c = counters();
        assert!(!lsu.stalled(0.5));
        for _ in 0..5 {
            lsu.push(
                MemReq {
                    size: 1,
                    partition: 0,
                    addr: 0,
                    kind: ReqKind::Atomic,
                },
                &mut c,
            );
        }
        assert!(lsu.stalled(0.5));
    }

    #[test]
    fn agg_buffer_merges_same_key() {
        let mut buf = AggBuffer::lab(8, 0);
        let mut c = counters();
        let req = |addr| MemReq {
            size: 4,
            partition: 0,
            addr,
            kind: ReqKind::Atomic,
        };
        buf.absorb(req(0x40), &mut c);
        buf.absorb(req(0x40), &mut c);
        assert_eq!(buf.len(), 1);
        // First absorb merges 3 (4 values → 1 entry), second merges 4.
        assert_eq!(c.buffer_merges, 7);
    }

    #[test]
    fn agg_buffer_evicts_fifo_when_full() {
        let mut buf = AggBuffer::lab(2, 0);
        let mut c = counters();
        for i in 0..3u64 {
            buf.absorb(
                MemReq {
                    size: 1,
                    partition: 0,
                    addr: i * 4,
                    kind: ReqKind::Atomic,
                },
                &mut c,
            );
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(c.buffer_evictions, 1);
        assert_eq!(buf.evict_backlog(), 1);
    }

    #[test]
    fn phi_keys_by_line() {
        let mut buf = AggBuffer::phi(8, 0);
        let mut c = counters();
        // Two different words in the same 128 B line → one entry.
        for addr in [0x100u64, 0x140] {
            buf.absorb(
                MemReq {
                    size: 1,
                    partition: 0,
                    addr,
                    kind: ReqKind::Atomic,
                },
                &mut c,
            );
        }
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn flush_emits_all_entries_once() {
        let cfg = GpuConfig::tiny();
        let mut buf = AggBuffer::lab(8, 0);
        let mut parts = vec![MemPartition::new(&cfg), MemPartition::new(&cfg)];
        let mut c = counters();
        for i in 0..4u64 {
            buf.absorb(
                MemReq {
                    size: 1,
                    partition: 0,
                    addr: i * 4,
                    kind: ReqKind::Atomic,
                },
                &mut c,
            );
        }
        buf.flush(&mut c);
        buf.flush(&mut c); // idempotent
        assert_eq!(c.buffer_flushes, 4);
        assert_eq!(buf.len(), 0);
        let mut tp = TestPort::new(&parts, cfg.partition_queue_capacity);
        buf.drain_evictions(10, &cfg, &mut tp.port(), &mut c);
        tp.deliver(&mut parts);
        assert_eq!(buf.evict_backlog(), 0);
        let total: u32 = parts.iter().map(|p| p.occupancy()).sum();
        assert_eq!(total, 4);
    }
}

//! Event-based energy model (paper §7.3).
//!
//! The paper measures energy on real GPUs with pyNVML and in the
//! simulator; both attribute the savings to (i) shorter execution (static
//! energy ∝ cycles) and (ii) fewer atomic requests traversing the
//! interconnect and ROP units (dynamic energy ∝ event counts). We model
//! exactly those two terms: a static power proportional to SM-cycles and
//! per-event dynamic costs.

use serde::{Deserialize, Serialize};

use crate::config::GpuConfig;
use crate::stats::SimCounters;

/// Per-event energy costs in nanojoules (model units — the paper reports
/// normalized reductions, so only ratios matter).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Per issued warp instruction (fetch/decode/operand collect).
    pub issue_nj: f64,
    /// Extra per shuffle instruction (register crossbar).
    pub shfl_nj: f64,
    /// Per lane-value accepted by an LSU queue.
    pub lsu_nj: f64,
    /// Per lane-value flit crossing the interconnect.
    pub icnt_nj: f64,
    /// Per atomic lane-value retired at a ROP unit (L2 read-modify-write).
    pub rop_nj: f64,
    /// Per lane-value folded by a sub-core reduction-unit FPU.
    pub redunit_nj: f64,
    /// Per load/store sector serviced at L2.
    pub sector_nj: f64,
    /// Per LAB/PHI buffer lookup or merge.
    pub buffer_nj: f64,
    /// Static energy per SM per cycle (leakage + clocking).
    pub static_per_sm_cycle_nj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            issue_nj: 0.45,
            shfl_nj: 0.25,
            lsu_nj: 0.30,
            icnt_nj: 1.20,
            rop_nj: 0.90,
            redunit_nj: 0.20,
            sector_nj: 2.00,
            buffer_nj: 0.40,
            static_per_sm_cycle_nj: 0.40,
        }
    }
}

/// Energy totals for one kernel run, in millijoules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic energy from issue/compute events.
    pub compute_mj: f64,
    /// Dynamic energy from the memory path (LSU + interconnect + ROP +
    /// L2 sectors + buffers + reduction units).
    pub memory_mj: f64,
    /// Static energy (SM-cycles × leakage).
    pub static_mj: f64,
    /// Grand total.
    pub total_mj: f64,
}

impl EnergyModel {
    /// Evaluates the model over a kernel's counters and cycle count.
    pub fn evaluate(&self, cfg: &GpuConfig, counters: &SimCounters, cycles: u64) -> EnergyReport {
        let nj_to_mj = 1e-6;
        let compute = counters.instructions_issued as f64 * self.issue_nj
            + counters.shfl_instructions as f64 * self.shfl_nj;
        let memory = counters.lsu_accepted as f64 * self.lsu_nj
            + counters.icnt_flits as f64 * self.icnt_nj
            + counters.rop_lane_ops as f64 * self.rop_nj
            + counters.redunit_lane_ops as f64 * self.redunit_nj
            + (counters.load_sectors + counters.store_sectors) as f64 * self.sector_nj
            + (counters.buffer_merges + counters.buffer_evictions + counters.buffer_flushes) as f64
                * self.buffer_nj;
        let static_e = cycles as f64 * f64::from(cfg.num_sms) * self.static_per_sm_cycle_nj;
        let compute_mj = compute * nj_to_mj;
        let memory_mj = memory * nj_to_mj;
        let static_mj = static_e * nj_to_mj;
        EnergyReport {
            compute_mj,
            memory_mj,
            static_mj,
            total_mj: compute_mj + memory_mj + static_mj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_energy_scales_with_cycles_and_sms() {
        let model = EnergyModel::default();
        let cfg = GpuConfig::rtx4090();
        let counters = SimCounters::default();
        let a = model.evaluate(&cfg, &counters, 1_000);
        let b = model.evaluate(&cfg, &counters, 2_000);
        assert!((b.static_mj / a.static_mj - 2.0).abs() < 1e-9);
        assert_eq!(a.compute_mj, 0.0);
        assert_eq!(a.memory_mj, 0.0);
    }

    #[test]
    fn fewer_rop_ops_means_less_memory_energy() {
        let model = EnergyModel::default();
        let cfg = GpuConfig::rtx3060();
        let heavy = SimCounters {
            rop_lane_ops: 1_000_000,
            icnt_flits: 1_000_000,
            ..SimCounters::default()
        };
        let mut light = heavy;
        light.rop_lane_ops = 100_000;
        light.icnt_flits = 100_000;
        light.redunit_lane_ops = 900_000; // folded at the (cheaper) SM FPU
        let e_heavy = model.evaluate(&cfg, &heavy, 100);
        let e_light = model.evaluate(&cfg, &light, 100);
        assert!(e_light.memory_mj < e_heavy.memory_mj);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let model = EnergyModel::default();
        let cfg = GpuConfig::tiny();
        let c = SimCounters {
            instructions_issued: 10_000,
            load_sectors: 500,
            ..SimCounters::default()
        };
        let e = model.evaluate(&cfg, &c, 12_345);
        assert!((e.total_mj - (e.compute_mj + e.memory_mj + e.static_mj)).abs() < 1e-12);
        assert!(e.total_mj > 0.0);
    }
}

//! Targeted tests of the sub-core issue paths: the MIO shuffle port,
//! the LDST dispatch port, empty atomic parameters, store handling, and
//! the greedy-then-oldest scheduler's throughput behavior.

use gpu_sim::{AtomicPath, GpuConfig, Simulator};
use warp_trace::{
    AtomicBundle, AtomicInstr, ComputeKind, KernelKind, KernelTrace, WarpTraceBuilder,
};

fn one_sm_config() -> GpuConfig {
    let mut cfg = GpuConfig::tiny();
    cfg.num_sms = 1;
    cfg.subcores_per_sm = 4;
    cfg.max_warps_per_subcore = 8;
    cfg
}

fn run(cfg: &GpuConfig, trace: &KernelTrace) -> gpu_sim::KernelReport {
    Simulator::new(cfg.clone(), AtomicPath::Baseline)
        .expect("valid config")
        .run(trace)
        .expect("drains")
}

/// Shuffles contend for the SM-shared MIO port: 4 warps shuffling in
/// parallel cannot exceed `shfl_throughput_q / 4` per cycle.
#[test]
fn shfl_port_bounds_shuffle_throughput() {
    let cfg = one_sm_config(); // shfl_throughput_q = 8 ⇒ 2 shfl/cycle/SM
    let shfls_per_warp = 500u16;
    let warps = (0..4)
        .map(|_| {
            let mut b = WarpTraceBuilder::new();
            b.compute(ComputeKind::Shfl, shfls_per_warp);
            b.finish()
        })
        .collect();
    let trace = KernelTrace::new("shfl", KernelKind::GradCompute, warps);
    let report = run(&cfg, &trace);
    let total_shfl = 4 * u64::from(shfls_per_warp);
    let min_cycles = total_shfl / 2; // 2 per cycle per SM
    assert!(
        report.cycles >= min_cycles,
        "{} cycles for {} shuffles breaks the 2/cycle MIO port",
        report.cycles,
        total_shfl
    );
    assert!(report.cycles <= min_cycles + 50, "port should stay busy");
    assert_eq!(report.counters.shfl_instructions, total_shfl);
}

/// Plain ALU work has no such port: 4 sub-cores sustain 4 instr/cycle.
#[test]
fn alu_work_issues_at_full_width() {
    let cfg = one_sm_config();
    let per_warp = 500u16;
    let warps = (0..4)
        .map(|_| {
            let mut b = WarpTraceBuilder::new();
            b.compute(ComputeKind::Ffma, per_warp);
            b.finish()
        })
        .collect();
    let trace = KernelTrace::new("alu", KernelKind::GradCompute, warps);
    let report = run(&cfg, &trace);
    assert!(
        report.cycles <= u64::from(per_warp) + 20,
        "4 warps on 4 sub-cores should run near-perfectly parallel, got {}",
        report.cycles
    );
}

/// A wide atomic occupies the LDST port for several cycles, throttling
/// back-to-back atomics from one warp.
#[test]
fn ldst_dispatch_width_throttles_wide_atomics() {
    let mut cfg = one_sm_config();
    cfg.ldst_dispatch_width = 4;
    // Plenty of downstream capacity so only the port limits.
    cfg.num_mem_partitions = 8;
    cfg.rops_per_partition = 16;
    cfg.lsu_drain_rate = 32;
    cfg.lsu_queue_capacity = 4096;
    let mut b = WarpTraceBuilder::new();
    for i in 0..50u64 {
        b.atomic(AtomicInstr::same_address(i * 256, &[1.0; 32]));
    }
    let trace = KernelTrace::new("wide", KernelKind::GradCompute, vec![b.finish()]);
    let report = run(&cfg, &trace);
    // Each 32-lane atomic holds the port ceil(32/4) = 8 cycles; the
    // last one is fire-and-forget, so 49 full port occupancies bound
    // the issue phase from below.
    assert!(
        report.cycles >= 49 * 8,
        "dispatch width must throttle: {} cycles",
        report.cycles
    );
}

/// Bundles whose parameters have no active lanes still retire (and cost
/// issue slots) without generating memory traffic.
#[test]
fn empty_atomic_params_retire_without_traffic() {
    let cfg = one_sm_config();
    let mut b = WarpTraceBuilder::new();
    b.atomic_bundle(AtomicBundle::new(vec![AtomicInstr::new(vec![]); 4]));
    b.compute_ffma(3);
    let trace = KernelTrace::new("empty", KernelKind::GradCompute, vec![b.finish()]);
    let report = run(&cfg, &trace);
    assert_eq!(report.counters.rop_lane_ops, 0);
    assert_eq!(report.counters.lsu_accepted, 0);
    // 4 empty params + 3 FFMAs... empty bundles retire as one slot each.
    assert!(report.counters.instructions_issued >= 4);
}

/// Stores are fire-and-forget: they consume LSU/L2 bandwidth but never
/// block warp retirement on completion.
#[test]
fn stores_do_not_block_retirement() {
    let cfg = one_sm_config();
    let mut b = WarpTraceBuilder::new();
    for _ in 0..20 {
        b.store(4).compute_ffma(1);
    }
    let trace = KernelTrace::new("stores", KernelKind::GradCompute, vec![b.finish()]);
    let report = run(&cfg, &trace);
    assert_eq!(report.counters.store_sectors, 80);
    assert_eq!(report.stalls.long_scoreboard, 0, "stores never scoreboard");
}

/// Loads do block: a single warp ping-ponging on loads is latency-bound.
#[test]
fn loads_block_the_issuing_warp() {
    let cfg = one_sm_config(); // l2_load_latency = 20 in tiny
    let n = 30u64;
    let mut b = WarpTraceBuilder::new();
    for _ in 0..n {
        b.load(1).compute_ffma(1);
    }
    let trace = KernelTrace::new("loads", KernelKind::GradCompute, vec![b.finish()]);
    let report = run(&cfg, &trace);
    assert!(
        report.cycles >= n * u64::from(cfg.l2_load_latency),
        "single-warp loads must serialize on latency: {} cycles",
        report.cycles
    );
    assert!(report.stalls.long_scoreboard > 0);
}

/// With many warps, load latency hides: throughput approaches the issue
/// limit instead of the latency bound.
#[test]
fn many_warps_hide_load_latency() {
    let cfg = one_sm_config();
    let n = 30u64;
    let mk = || {
        let mut b = WarpTraceBuilder::new();
        for _ in 0..n {
            b.load(1).compute_ffma(1);
        }
        b.finish()
    };
    let warps: Vec<_> = (0..32).map(|_| mk()).collect();
    let trace = KernelTrace::new("hidden", KernelKind::GradCompute, warps);
    let report = run(&cfg, &trace);
    let latency_bound = 32 * n * u64::from(cfg.l2_load_latency);
    assert!(
        report.cycles * 4 < latency_bound,
        "32 warps should overlap load latency: {} vs serial {}",
        report.cycles,
        latency_bound
    );
}

/// ARC-HW consumes multi-address (coalescer-split) atomred bundles
/// correctly: every lane-value lands somewhere.
#[test]
fn atomred_multi_address_transactions_conserve_values() {
    let cfg = one_sm_config();
    let mut b = WarpTraceBuilder::new();
    for i in 0..40u64 {
        let ops = (0..32u8)
            .map(|lane| warp_trace::LaneOp {
                lane,
                addr: i * 1024 + u64::from(lane % 3) * 64, // 3 groups
                value: 1.0,
            })
            .collect();
        b.atomic(AtomicInstr::new(ops));
    }
    let trace = KernelTrace::new("multi", KernelKind::GradCompute, vec![b.finish()]).with_atomred();
    let report = Simulator::new(cfg, AtomicPath::ArcHw)
        .expect("valid config")
        .run(&trace)
        .expect("drains");
    let c = &report.counters;
    assert_eq!(
        c.redunit_lane_ops + c.rop_lane_ops - c.redunit_transactions,
        40 * 32,
        "value conservation across split transactions"
    );
    assert_eq!(c.redunit_transactions + c.rop_routed_transactions, 40 * 3);
}

/// Instruction accounting: issued instruction count equals the trace's
/// issue slots when nothing is skipped.
#[test]
fn issue_slot_accounting_matches_trace() {
    let cfg = one_sm_config();
    let mut b = WarpTraceBuilder::new();
    b.compute_ffma(17)
        .load(2)
        .store(1)
        .atomic(AtomicInstr::same_address(0, &[1.0; 32]));
    let trace = KernelTrace::new("acct", KernelKind::GradCompute, vec![b.finish()]);
    let expected = trace.total_issue_slots();
    let report = run(&cfg, &trace);
    assert_eq!(report.counters.instructions_issued, expected);
}

//! Telemetry integration tests: hand-computed gauge values on a tiny
//! synthetic trace, Chrome-trace well-formedness and stability across
//! worker counts, and the telemetry-never-changes-results guarantee.

use gpu_sim::{AtomicPath, GpuConfig, Simulator, TelemetryConfig};
use warp_trace::{AtomicInstr, KernelKind, KernelTrace, WarpTraceBuilder};

/// One warp, one 32-lane same-address atomic — every pipeline stage is
/// hand-computable on the tiny config (LSU drain 4 lane-values/cycle,
/// 1 ROP per partition).
fn one_atomic_trace() -> KernelTrace {
    let mut w = WarpTraceBuilder::new();
    w.atomic(AtomicInstr::same_address(0x100, &[1.0; 32]));
    KernelTrace::new("one_atomic", KernelKind::GradCompute, vec![w.finish()])
}

/// 64 warps × 4 same-address atomics: saturates the one target
/// partition's ROP (1 lane-value/cycle) until the back-pressure fills
/// the LSUs and stalls issue — the paper's Fig. 8 mechanism in
/// miniature.
fn saturating_trace() -> KernelTrace {
    let warps = (0..64)
        .map(|_| {
            let mut w = WarpTraceBuilder::new();
            for _ in 0..4 {
                w.atomic(AtomicInstr::same_address(0x100, &[1.0; 32]));
            }
            w.finish()
        })
        .collect();
    KernelTrace::new("saturating", KernelKind::GradCompute, warps)
}

fn sim(workers: usize, interval: u64) -> Simulator {
    Simulator::new(GpuConfig::tiny(), AtomicPath::Baseline)
        .expect("tiny config validates")
        .with_sm_workers(workers)
        .with_telemetry(TelemetryConfig::every(interval))
}

#[test]
fn gauges_match_hand_computed_timeline() {
    let trace = one_atomic_trace();
    let (report, tel) = sim(1, 1).run_with_telemetry(&trace).unwrap();
    let tel = tel.expect("telemetry enabled");

    // Issue at cycle 0 parks 32 lane-values in the LSU; the drain moves
    // 4/cycle starting cycle 1, so the whole transaction (drained as one
    // coalesced request) leaves at cycle 8. One ROP retires it at 1
    // lane-value/cycle: occupied through cycle 39, empty after the
    // cycle-40 step, run drains at cycle 41.
    assert_eq!(report.cycles, 41);

    let lsu = tel.series("lsu.occupancy").expect("lsu gauge");
    let rop = tel.series("rop.queue").expect("rop gauge");
    // Samples at end of cycles 0..=40 plus the final end-state sample.
    assert_eq!(lsu.points.len(), 42);
    for &(cycle, v) in &lsu.points {
        let expect = if cycle <= 7 { 32.0 } else { 0.0 };
        assert_eq!(v, expect, "lsu.occupancy at cycle {cycle}");
    }
    for &(cycle, v) in &rop.points {
        let expect = if (8..=39).contains(&cycle) { 32.0 } else { 0.0 };
        assert_eq!(v, expect, "rop.queue at cycle {cycle}");
    }
    assert_eq!(rop.peak(), (8, 32.0));

    // The single warp is dispatched at cycle 0 and observed retired by
    // the next cycle's dispatch scan.
    assert_eq!(tel.warp_spans.len(), 1);
    let span = tel.warp_spans[0];
    assert_eq!((span.warp, span.sm, span.subcore), (0, 0, 0));
    assert_eq!((span.start, span.end), (0, 1));

    // Counter totals agree with the end-of-run aggregate report.
    let total = |name: &str| tel.series(name).expect(name).total;
    assert_eq!(total("rop.lane_ops"), report.counters.rop_lane_ops as f64);
    assert_eq!(total("icnt.flits"), report.counters.icnt_flits as f64);
    assert_eq!(total("lsu.accepted"), report.counters.lsu_accepted as f64);
    assert_eq!(
        total("issue.instructions"),
        report.counters.instructions_issued as f64
    );
}

#[test]
fn rop_queue_peak_aligns_with_lsu_full_stalls() {
    let trace = saturating_trace();
    let (report, tel) = sim(1, 64).run_with_telemetry(&trace).unwrap();
    let tel = tel.expect("telemetry enabled");

    assert!(report.stalls.lsu_full > 0, "workload must saturate the LSU");
    let rop = tel.series("rop.queue").expect("rop gauge");
    let stall = tel.series("stall.lsu_full").expect("stall counter");
    let (peak_cycle, peak) = rop.peak();
    assert!(peak > 0.0);
    assert_eq!(tel.summary().rop_queue_peak_cycle, peak_cycle);

    // At the sample where the ROP queue peaks, issue must be stalling on
    // a full LSU: the queue only peaks because ROP service back-pressure
    // has propagated all the way up (paper Fig. 8).
    let idx = rop
        .points
        .iter()
        .position(|&(c, _)| c == peak_cycle)
        .expect("peak cycle is a sample");
    assert!(
        stall.points[idx].1 > 0.0,
        "lsu_full stalls in the interval ending at the rop.queue peak \
         (cycle {peak_cycle})"
    );

    // Stall-counter totals reconcile with the aggregate breakdown.
    assert_eq!(stall.total, report.stalls.lsu_full as f64);
    let total = |name: &str| tel.series(name).expect(name).total;
    assert_eq!(total("stall.no_warp"), report.stalls.no_warp as f64);
    assert_eq!(
        total("stall.long_scoreboard"),
        report.stalls.long_scoreboard as f64
    );
}

#[test]
fn telemetry_identical_across_worker_counts() {
    let trace = saturating_trace();
    let (base_report, base_tel) = sim(1, 32).run_with_telemetry(&trace).unwrap();
    let base_tel = base_tel.unwrap();
    let base_json = base_tel.chrome_trace();
    for workers in [2, 8] {
        let (report, tel) = sim(workers, 32).run_with_telemetry(&trace).unwrap();
        let tel = tel.unwrap();
        assert_eq!(report, base_report, "report with {workers} workers");
        assert_eq!(tel, base_tel, "telemetry with {workers} workers");
        assert_eq!(
            tel.chrome_trace(),
            base_json,
            "chrome trace bytes with {workers} workers"
        );
    }
}

#[test]
fn telemetry_does_not_change_results() {
    let trace = saturating_trace();
    for workers in [1, 2] {
        let plain = Simulator::new(GpuConfig::tiny(), AtomicPath::Baseline)
            .unwrap()
            .with_sm_workers(workers)
            .run(&trace)
            .unwrap();
        let (with_tel, tel) = sim(workers, 16).run_with_telemetry(&trace).unwrap();
        assert!(tel.is_some());
        assert_eq!(plain, with_tel, "telemetry must be invisible to results");
    }
}

#[test]
fn chrome_trace_is_well_formed() {
    let trace = one_atomic_trace();
    let (_, tel) = sim(1, 8).run_with_telemetry(&trace).unwrap();
    let json = tel.unwrap().chrome_trace();
    let v: serde::Value = serde_json::from_str(&json).expect("trace parses as JSON");
    let events = match v.field("traceEvents") {
        Ok(serde::Value::Array(items)) => items,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());
    for ev in events {
        let ph = match ev.field("ph") {
            Ok(serde::Value::Str(s)) => s.clone(),
            other => panic!("event missing ph: {other:?}"),
        };
        assert!(
            matches!(ph.as_str(), "C" | "X" | "M"),
            "unexpected phase {ph}"
        );
        assert!(ev.field("pid").is_ok());
        if ph != "M" {
            assert!(ev.field("ts").is_ok(), "timed event needs ts");
        }
        if ph == "X" {
            assert!(ev.field("dur").is_ok(), "complete event needs dur");
        }
    }
}

#[test]
fn run_iteration_and_all_paths_accept_telemetry() {
    // Telemetry must hold its determinism guarantee on every atomic
    // path, including the buffered (LAB/PHI) and reduction-unit paths.
    let trace = saturating_trace();
    for path in AtomicPath::ALL {
        let mk = |workers: usize| {
            Simulator::new(GpuConfig::tiny(), path)
                .unwrap()
                .with_sm_workers(workers)
                .with_telemetry(TelemetryConfig::every(32))
                .run_with_telemetry(&trace)
                .unwrap()
        };
        let (r1, t1) = mk(1);
        let (r2, t2) = mk(2);
        assert_eq!(r1, r2, "{path:?} report");
        assert_eq!(t1, t2, "{path:?} telemetry");
        let tel = t1.unwrap();
        assert_eq!(tel.summary().cycles, r1.cycles);
        assert!(tel.series("warps.remaining").unwrap().total == 0.0);
    }
}

//! Behavior of the event-driven fast-forward engine: the escape hatch,
//! the skip-ratio accounting in [`EngineStats`], and report/telemetry
//! equality against the naive loop (the exhaustive fuzz-shape sweep
//! lives in the conformance crate; this is the cheap in-crate pin).

use gpu_sim::{AtomicPath, EngineStats, GpuConfig, Simulator, TelemetryConfig};
use warp_trace::{AtomicInstr, KernelKind, KernelTrace, WarpTraceBuilder};

/// A latency-dominated workload: two warps chaining dependent loads
/// with a long L2 latency, so almost every cycle is dead time.
fn latency_trace() -> KernelTrace {
    let warps = (0..2)
        .map(|_| {
            let mut b = WarpTraceBuilder::new();
            for _ in 0..6 {
                b.load(1).compute_fp32(1);
            }
            b.finish()
        })
        .collect();
    KernelTrace::new("latency-chain", KernelKind::GradCompute, warps)
}

fn slow_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::tiny();
    cfg.l2_load_latency = 1000;
    cfg
}

/// A throughput-bound storm: contention keeps the issue stage busy, so
/// the fast-forward win comes from the drain tail, not the issue phase.
fn storm_trace() -> KernelTrace {
    let warps = (0..8)
        .map(|_| {
            let mut b = WarpTraceBuilder::new();
            for _ in 0..4 {
                b.compute_fp32(1)
                    .atomic(AtomicInstr::same_address(0x100, &[0.5; 32]));
            }
            b.finish()
        })
        .collect();
    KernelTrace::new("storm", KernelKind::GradCompute, warps)
}

#[test]
fn fast_forward_skips_latency_gaps() {
    let sim = Simulator::new(slow_cfg(), AtomicPath::Baseline)
        .unwrap()
        .with_fast_forward(true);
    let (report, _, stats) = sim.run_detailed(&latency_trace()).unwrap();
    assert_eq!(stats.cycles_simulated, report.cycles);
    assert!(
        stats.cycles_stepped < stats.cycles_simulated,
        "no cycles were skipped: stepped {} of {}",
        stats.cycles_stepped,
        stats.cycles_simulated
    );
    // Six kilocycle-long load gaps per warp: the loop should step only
    // a small fraction of the simulated cycles.
    assert!(
        stats.skip_ratio() > 0.9,
        "skip ratio {} too low on a latency chain",
        stats.skip_ratio()
    );
}

#[test]
fn escape_hatch_forces_the_naive_loop() {
    let sim = Simulator::new(slow_cfg(), AtomicPath::Baseline)
        .unwrap()
        .with_fast_forward(false);
    assert!(!sim.fast_forward());
    let (report, _, stats) = sim.run_detailed(&latency_trace()).unwrap();
    assert_eq!(stats.cycles_stepped, stats.cycles_simulated);
    assert_eq!(stats.cycles_simulated, report.cycles);
    assert_eq!(stats.skip_ratio(), 0.0);
}

#[test]
fn engine_stats_do_not_leak_into_the_report() {
    // EngineStats is the only FF-visible observable; the report and
    // telemetry must be bit-identical either way.
    for trace in [latency_trace(), storm_trace()] {
        let run = |ff: bool| {
            Simulator::new(slow_cfg(), AtomicPath::Baseline)
                .unwrap()
                .with_fast_forward(ff)
                .with_telemetry(TelemetryConfig::every(7))
                .run_with_telemetry(&trace)
                .unwrap()
        };
        assert_eq!(run(true), run(false), "trace {}", trace.name());
    }
}

#[test]
fn dense_storms_fall_back_to_the_naive_loop() {
    // A contended storm is throughput-bound: partitions hold queued
    // lane-values almost every cycle, so there are no dead spans to
    // jump over (the wall-clock win there comes from the active-set
    // skipping drained SM lanes, not from cycle jumps). The engine must
    // recognize this and never overcount.
    let sim = Simulator::new(GpuConfig::tiny(), AtomicPath::Baseline)
        .unwrap()
        .with_fast_forward(true);
    let (report, _, stats) = sim.run_detailed(&storm_trace()).unwrap();
    assert_eq!(stats.cycles_simulated, report.cycles);
    assert!(
        stats.cycles_stepped <= stats.cycles_simulated,
        "stepped {} of {}",
        stats.cycles_stepped,
        stats.cycles_simulated
    );
}

#[test]
fn lane_skipping_is_counted_even_when_cycles_do_not_jump() {
    // Dense storms report skip_ratio ≈ 0 (no dead spans to jump), yet
    // fast-forward still wins wall-clock by dropping quiescent SM lanes
    // from the step loop. `lane_steps_skipped` makes that win visible.
    let sim = Simulator::new(GpuConfig::tiny(), AtomicPath::Baseline)
        .unwrap()
        .with_fast_forward(true);
    let (_, _, stats) = sim.run_detailed(&storm_trace()).unwrap();
    assert!(
        stats.lane_steps_skipped > 0,
        "drain tail should skip quiescent lanes"
    );
    assert!(stats.lane_steps_skipped <= stats.lane_steps_total);
    assert!(stats.lane_skip_ratio() > 0.0);

    let sim = Simulator::new(GpuConfig::tiny(), AtomicPath::Baseline)
        .unwrap()
        .with_fast_forward(false);
    let (_, _, stats) = sim.run_detailed(&storm_trace()).unwrap();
    assert_eq!(stats.lane_steps_skipped, 0, "naive loop never skips lanes");
    assert_eq!(stats.lane_skip_ratio(), 0.0);
}

#[test]
fn stats_equal_under_any_worker_count() {
    // `cycles_stepped` is coordinator-side state: worker count must not
    // change how many cycles the loop fast-forwards over.
    let reference: Option<EngineStats> = None;
    let mut want = reference;
    for workers in [1usize, 2, 8] {
        let sim = Simulator::new(slow_cfg(), AtomicPath::Baseline)
            .unwrap()
            .with_sm_workers(workers)
            .with_fast_forward(true);
        let (_, _, stats) = sim.run_detailed(&latency_trace()).unwrap();
        match &want {
            None => want = Some(stats),
            Some(w) => assert_eq!(stats, *w, "{workers} workers"),
        }
    }
}

//! Energy-model accounting tests driven by real simulator runs: the
//! per-kernel energy report must be an exact function of the run's
//! counters and cycle count, on every atomic path.

use gpu_sim::{AtomicPath, EnergyModel, GpuConfig, Simulator};
use warp_trace::{AtomicInstr, KernelKind, KernelTrace, WarpTraceBuilder};

fn contended_trace() -> KernelTrace {
    let warps = (0..6)
        .map(|_| {
            let mut b = WarpTraceBuilder::new();
            for i in 0..4 {
                b.compute_fp32(2);
                b.load(1);
                b.atomic(AtomicInstr::same_address(
                    0x100 + (i % 2) * 0x40,
                    &[0.5; 32],
                ));
            }
            b.store(1);
            b.finish()
        })
        .collect();
    KernelTrace::new("energy-mix", KernelKind::GradCompute, warps)
}

#[test]
fn per_path_energy_sums_to_total_and_matches_the_model() {
    let cfg = GpuConfig::tiny();
    let trace = contended_trace();
    for path in AtomicPath::ALL {
        let report = Simulator::new(cfg.clone(), path)
            .unwrap()
            .run(&trace)
            .unwrap();
        let e = report.energy;
        assert!(
            (e.total_mj - (e.compute_mj + e.memory_mj + e.static_mj)).abs() < 1e-12,
            "{path:?}: total {} != compute {} + memory {} + static {}",
            e.total_mj,
            e.compute_mj,
            e.memory_mj,
            e.static_mj
        );
        // The report must be exactly the default model evaluated over
        // this run's counters — energy is a pure function of events,
        // not a separately accumulated ledger that can drift.
        let recomputed = EnergyModel::default().evaluate(&cfg, &report.counters, report.cycles);
        assert_eq!(e, recomputed, "{path:?}: energy drifted from its counters");
        assert!(
            e.compute_mj > 0.0,
            "{path:?}: issued instructions cost energy"
        );
        assert!(e.memory_mj > 0.0, "{path:?}: memory traffic costs energy");
        assert!(e.static_mj > 0.0, "{path:?}: cycles cost static energy");
    }
}

#[test]
fn adaptive_path_spends_less_memory_energy_on_contention() {
    // The paper's Fig. 27 direction: folding lane-values at the SM-side
    // reduction units (cheap FPU ops) replaces ROP read-modify-writes
    // and interconnect flits (expensive), so ARC-HW's memory energy
    // must come in below baseline on a contended workload.
    let cfg = GpuConfig::tiny();
    // Heavy single-address storm: enough back-pressure that the greedy
    // ARC scheduler actually routes transactions to the reduction units.
    let warps = (0..24)
        .map(|_| {
            let mut b = WarpTraceBuilder::new();
            for _ in 0..8 {
                b.compute_fp32(1);
                b.atomic(AtomicInstr::same_address(0x100, &[0.5; 32]));
            }
            b.finish()
        })
        .collect();
    let trace = KernelTrace::new("energy-storm", KernelKind::GradCompute, warps);
    let base = Simulator::new(cfg.clone(), AtomicPath::Baseline)
        .unwrap()
        .run(&trace)
        .unwrap();
    // ARC-HW's greedy scheduler only sees `atomred` instructions (plain
    // atomics bypass the reduction units, paper §5.6).
    let arc = Simulator::new(cfg, AtomicPath::ArcHw)
        .unwrap()
        .run(&trace.with_atomred())
        .unwrap();
    assert!(
        arc.counters.redunit_lane_ops > 0,
        "storm never engaged the reduction units"
    );
    assert!(
        arc.energy.memory_mj < base.energy.memory_mj,
        "ArcHw memory {} >= baseline {}",
        arc.energy.memory_mj,
        base.energy.memory_mj
    );
}

#[test]
fn zero_activity_kernel_reports_zero_dynamic_energy() {
    let cfg = GpuConfig::tiny();
    for trace in [
        KernelTrace::new("empty", KernelKind::GradCompute, vec![]),
        KernelTrace::new(
            "idle-warps",
            KernelKind::GradCompute,
            vec![
                WarpTraceBuilder::new().finish(),
                WarpTraceBuilder::new().finish(),
            ],
        ),
    ] {
        for path in AtomicPath::ALL {
            let report = Simulator::new(cfg.clone(), path)
                .unwrap()
                .run(&trace)
                .unwrap();
            let e = report.energy;
            assert_eq!(e.compute_mj, 0.0, "{path:?}/{}", trace.name());
            assert_eq!(e.memory_mj, 0.0, "{path:?}/{}", trace.name());
            assert_eq!(
                e.total_mj,
                e.static_mj,
                "{path:?}/{}: only static energy may remain",
                trace.name()
            );
        }
    }
}

//! Property-based tests over the simulator: for *any* generated kernel
//! trace, every atomic path drains without deadlock and conserves
//! atomic lane-values through its pipeline.

use gpu_sim::{AtomicPath, GpuConfig, Simulator};
use proptest::prelude::*;
use warp_trace::{
    AtomicBundle, AtomicInstr, ComputeKind, Instr, KernelKind, KernelTrace, LaneMask, LaneOp,
    WarpTraceBuilder,
};

fn arb_atomic() -> impl Strategy<Value = AtomicInstr> {
    (
        proptest::bits::u32::ANY,
        proptest::collection::vec(0u8..3, 32),
    )
        .prop_map(|(mask_bits, addr_pick)| {
            let mask = LaneMask::from_bits(mask_bits);
            let ops = mask
                .lanes()
                .map(|lane| LaneOp {
                    lane,
                    addr: 0x2000 + u64::from(addr_pick[lane as usize]) * 64,
                    value: 1.0,
                })
                .collect();
            AtomicInstr::new(ops)
        })
}

fn arb_warp() -> impl Strategy<Value = warp_trace::WarpTrace> {
    proptest::collection::vec(
        prop_oneof![
            (1u16..20).prop_map(|n| Instr::Compute {
                kind: ComputeKind::Ffma,
                repeat: n
            }),
            (1u16..6).prop_map(|sectors| Instr::Load { sectors }),
            (1u16..4).prop_map(|sectors| Instr::Store { sectors }),
            proptest::collection::vec(arb_atomic(), 1..3)
                .prop_map(|params| Instr::Atomic(AtomicBundle::new(params))),
        ],
        1..12,
    )
    .prop_map(|instrs| {
        let mut b = WarpTraceBuilder::new();
        for i in instrs {
            b.push(i);
        }
        b.finish()
    })
}

fn arb_trace() -> impl Strategy<Value = KernelTrace> {
    proptest::collection::vec(arb_warp(), 1..16)
        .prop_map(|warps| KernelTrace::new("prop", KernelKind::GradCompute, warps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every atomic path drains every trace, and atomic lane-values are
    /// conserved through each pipeline.
    #[test]
    fn all_paths_drain_and_conserve_values(trace in arb_trace()) {
        let total = trace.total_atomic_requests();
        for path in AtomicPath::ALL {
            let t = if path == AtomicPath::ArcHw {
                trace.clone().with_atomred()
            } else {
                trace.clone()
            };
            let sim = Simulator::new(GpuConfig::tiny(), path).expect("valid config");
            let report = sim.run(&t).expect("trace must drain");
            let c = &report.counters;
            match path {
                AtomicPath::Baseline => {
                    prop_assert_eq!(c.rop_lane_ops, total, "baseline: all values at ROPs");
                    prop_assert_eq!(c.redunit_lane_ops, 0u64);
                }
                AtomicPath::ArcHw => {
                    // Reduced transactions re-emit one value each.
                    prop_assert_eq!(
                        c.redunit_lane_ops + c.rop_lane_ops - c.redunit_transactions,
                        total,
                        "ARC-HW value conservation"
                    );
                }
                AtomicPath::Lab | AtomicPath::LabIdeal | AtomicPath::Phi => {
                    // Every value either merges into a buffer entry or
                    // allocates one; every entry is eventually evicted
                    // or flushed, producing exactly one ROP op.
                    prop_assert_eq!(
                        c.buffer_merges + c.buffer_evictions + c.buffer_flushes,
                        total,
                        "buffer value conservation"
                    );
                    prop_assert_eq!(
                        c.rop_lane_ops,
                        c.buffer_evictions + c.buffer_flushes,
                        "every buffer entry retires at a ROP"
                    );
                }
            }
            // Load sectors requested equal load sectors serviced.
            let requested: u64 = trace
                .warps()
                .iter()
                .flat_map(|w| w.instrs.iter())
                .map(|i| match i {
                    Instr::Load { sectors } => u64::from(*sectors),
                    _ => 0,
                })
                .sum();
            prop_assert_eq!(c.load_sectors, requested, "{} loads", path.label());
        }
    }

    /// The analytic roofline model brackets the simulator: its
    /// prediction is a lower bound (no queueing) within a bounded
    /// factor of the measured cycles for atomic-bound traces.
    #[test]
    fn analytic_model_lower_bounds_simulation(seed in 0u64..1000) {
        let warps = 24 + (seed % 8) as usize;
        let mut out = Vec::new();
        for w in 0..warps {
            let mut b = WarpTraceBuilder::new();
            for i in 0..10usize {
                b.compute_ffma(4);
                let addr = ((w / 8) * 10 + i) as u64 * 64;
                b.atomic(AtomicInstr::same_address(addr, &[1.0; 32]));
            }
            out.push(b.finish());
        }
        let trace = KernelTrace::new("an", KernelKind::GradCompute, out);
        let cfg = GpuConfig::tiny();
        let stats = warp_trace::TraceStats::compute(&trace);
        let profile = arc_core::analysis::KernelProfile::from_stats(&stats);
        let model = cfg.machine_model();
        let predicted = arc_core::analysis::baseline_cycles(&model, &profile);
        let sim = Simulator::new(cfg, AtomicPath::Baseline).expect("valid config");
        let measured = sim.run(&trace).expect("drains").cycles as f64;
        prop_assert!(
            measured >= predicted * 0.95,
            "simulation ({measured}) cannot beat the roofline ({predicted})"
        );
        prop_assert!(
            measured <= predicted * 4.0,
            "simulation ({measured}) should be within 4x of the roofline ({predicted})"
        );
    }
}

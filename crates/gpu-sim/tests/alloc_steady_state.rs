//! Pins the cycle loop's steady-state allocation behavior: per-cycle
//! work (`phase_pre`/`step_sm`/`phase_post`, the partition service
//! loop, and the fast-forward bookkeeping) reuses scratch buffers
//! (`tx_scratch`, `plan_scratch`, `ff_credits`), so the number of heap
//! allocations in a run must **not** scale with the number of simulated
//! cycles.
//!
//! The check: run the same trace under a short-latency and a 100×
//! longer-latency configuration. Cycle counts differ by well over an
//! order of magnitude; allocation counts must stay within a small
//! additive slack. A counting `#[global_allocator]` lives here (an
//! integration test is its own binary, so the simulator library's
//! `forbid(unsafe_code)` is not weakened).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gpu_sim::{AtomicPath, GpuConfig, Simulator};
use warp_trace::{AtomicInstr, KernelKind, KernelTrace, WarpTraceBuilder};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Loads, compute, and a few atomics — touches the LSU, the scratch
/// buffers in the atomic issue path, and the partition service loop.
fn trace() -> KernelTrace {
    let warps = (0..4)
        .map(|_| {
            let mut b = WarpTraceBuilder::new();
            for i in 0..5 {
                b.load(1).compute_fp32(1);
                b.atomic(AtomicInstr::same_address(
                    0x40 * (i as u64 % 3),
                    &[0.25; 32],
                ));
            }
            b.finish()
        })
        .collect();
    KernelTrace::new("alloc-probe", KernelKind::GradCompute, warps)
}

fn cfg(latency: u32) -> GpuConfig {
    let mut cfg = GpuConfig::tiny();
    cfg.l2_load_latency = latency;
    cfg
}

/// Runs the trace and returns (simulated cycles, allocations during the
/// run). The `Simulator` is built outside the measured window; one
/// machine construction per run is inside it (identical for both
/// configs — same trace, same machine geometry).
fn measure(latency: u32, ff: bool) -> (u64, u64) {
    let sim = Simulator::new(cfg(latency), AtomicPath::Baseline)
        .unwrap()
        .with_fast_forward(ff);
    let t = trace();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = sim.run(&t).unwrap();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (report.cycles, after - before)
}

fn assert_cycle_independent(ff: bool) {
    // Warm-up: take any one-time lazy initialization out of the
    // measured runs.
    let _ = measure(5, ff);
    let (short_cycles, short_allocs) = measure(5, ff);
    let (long_cycles, long_allocs) = measure(5000, ff);
    assert!(
        long_cycles > 10 * short_cycles,
        "latency sweep did not stretch the run: {short_cycles} -> {long_cycles} cycles"
    );
    // The long run must not pay per-cycle allocations for its extra
    // cycles. The slack absorbs amortized container growth (heaps,
    // queues) that can land on different cycles, not O(cycles) churn:
    // the cycle gap is tens of thousands.
    let slack = 32;
    assert!(
        long_allocs <= short_allocs + slack,
        "allocations scale with cycles (ff={ff}): {short_allocs} allocs over \
         {short_cycles} cycles vs {long_allocs} allocs over {long_cycles} cycles"
    );
}

/// The optimizer cache's warm path must be allocation-free: after the
/// cold fill, every `apply` is a lock, a pipeline compare, a borrowed
/// `HashMap` lookup, and an `Arc` clone. This is what makes memoized
/// pass application in the bench harness steady-state-free of churn
/// across its 16-cell grid.
fn assert_cache_warm_path_is_allocation_free() {
    use arc_core::{PassCache, PassPipeline};

    let cache = PassCache::new();
    let pipeline = PassPipeline::all();
    let t = trace();
    let cold = cache.apply(&pipeline, t.name(), &t);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..64 {
        let warm = cache.apply(&pipeline, t.name(), &t);
        assert!(std::sync::Arc::ptr_eq(&cold, &warm));
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "PassCache warm hits must not allocate");
}

#[test]
fn allocations_do_not_scale_with_cycles() {
    // Single test (not one per mode or subsystem) so the global counter
    // is never perturbed by a concurrently running sibling test.
    assert_cycle_independent(false);
    assert_cycle_independent(true);
    assert_cache_warm_path_is_allocation_free();
}

//! Golden-file round trip for [`KernelTelemetry::chrome_trace`]: the
//! rendered JSON is pinned byte-for-byte under `tests/golden/`, must
//! stay identical across `with_sm_workers` counts, and must satisfy the
//! Chrome-trace ordering contract (per-track timestamps never run
//! backwards).
//!
//! Re-bless with `CONFORMANCE_BLESS=1 cargo test -p gpu-sim --test
//! chrome_trace_golden` after an *intentional* format change.

use std::path::{Path, PathBuf};

use gpu_sim::{AtomicPath, GpuConfig, Simulator, TelemetryConfig};
use warp_trace::{AtomicInstr, KernelKind, KernelTrace, WarpTraceBuilder};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_trace.json")
}

/// Small but non-trivial: two warps of mixed compute/load/atomic work so
/// the trace has counter series, stall series, and warp spans on more
/// than one subcore.
fn golden_trace() -> KernelTrace {
    let warps = (0..2)
        .map(|wi| {
            let mut b = WarpTraceBuilder::new();
            for i in 0..3 {
                b.compute_fp32(1);
                b.load(1);
                b.atomic(AtomicInstr::same_address(
                    0x100 + (wi * 3 + i) % 2 * 0x40,
                    &[0.25; 32],
                ));
            }
            b.store(1);
            b.finish()
        })
        .collect();
    KernelTrace::new("chrome-golden", KernelKind::GradCompute, warps)
}

fn render(workers: usize) -> String {
    let (_, tel) = Simulator::new(GpuConfig::tiny(), AtomicPath::Baseline)
        .expect("tiny config validates")
        .with_sm_workers(workers)
        .with_telemetry(TelemetryConfig::every(4))
        .run_with_telemetry(&golden_trace())
        .expect("golden trace simulates");
    tel.expect("telemetry enabled").chrome_trace()
}

#[test]
fn chrome_trace_matches_golden_across_worker_counts() {
    let json = render(1);
    let path = golden_path();
    if std::env::var("CONFORMANCE_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (bless with CONFORMANCE_BLESS=1)", path.display()));
    assert_eq!(
        json, golden,
        "chrome_trace bytes drifted from the checked-in golden; \
         re-bless with CONFORMANCE_BLESS=1 if the change is intentional"
    );
    for workers in [2, 8] {
        assert_eq!(
            render(workers),
            golden,
            "chrome_trace must not depend on ARC_SIM_WORKERS ({workers} workers)"
        );
    }
}

#[test]
fn golden_round_trips_and_timestamps_never_run_backwards() {
    let json = std::fs::read_to_string(golden_path())
        .unwrap_or_else(|e| panic!("{e} (bless with CONFORMANCE_BLESS=1)"));
    let v: serde::Value = serde_json::from_str(&json).expect("golden parses as JSON");
    // Round trip: what the simulator renders now parses to the same
    // value tree as the checked-in bytes.
    let fresh: serde::Value = serde_json::from_str(&render(1)).unwrap();
    assert_eq!(v, fresh, "parsed golden diverged from a fresh render");

    let events = v
        .field("traceEvents")
        .and_then(serde::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let str_of = |ev: &serde::Value, k: &str| match ev.field(k) {
        Ok(serde::Value::Str(s)) => s.clone(),
        other => panic!("event field {k}: {other:?}"),
    };
    let uint_of = |ev: &serde::Value, k: &str| match ev.field(k) {
        Ok(&serde::Value::UInt(n)) => n,
        Ok(&serde::Value::Int(n)) if n >= 0 => n as u64,
        other => panic!("event field {k}: {other:?}"),
    };

    // Chrome-trace contract: within one track — a (pid, tid, name)
    // triple for counter samples, a (pid, tid) pair for duration events
    // — timestamps must be monotonically non-decreasing.
    let mut last_ts: std::collections::BTreeMap<(u64, u64, String), u64> =
        std::collections::BTreeMap::new();
    let mut counters = 0u32;
    let mut spans = 0u32;
    for ev in events {
        let ph = str_of(ev, "ph");
        let key = match ph.as_str() {
            "C" => {
                counters += 1;
                (uint_of(ev, "pid"), uint_of(ev, "tid"), str_of(ev, "name"))
            }
            "X" => {
                spans += 1;
                (uint_of(ev, "pid"), uint_of(ev, "tid"), String::new())
            }
            _ => continue,
        };
        let ts = uint_of(ev, "ts");
        if let Some(&prev) = last_ts.get(&key) {
            assert!(
                ts >= prev,
                "track {key:?}: ts {ts} after ts {prev} runs backwards"
            );
        }
        last_ts.insert(key, ts);
    }
    assert!(counters > 0, "golden must carry counter samples");
    assert!(spans > 0, "golden must carry warp spans");
}

//! Behavioral tests: the simulator must reproduce the *qualitative*
//! phenomena the paper's evaluation rests on, using synthetic traces.

use gpu_sim::{AtomicPath, GpuConfig, SimError, Simulator};
use warp_trace::{AtomicInstr, KernelKind, KernelTrace, LaneOp, WarpTraceBuilder};

/// An atomic-heavy gradient-computation-like trace: every warp updates
/// `bundles` primitives × `params` parameters with full-warp locality.
fn atomic_heavy_trace(warps: usize, bundles: usize, params: usize) -> KernelTrace {
    let mut out = Vec::with_capacity(warps);
    for w in 0..warps {
        let mut b = WarpTraceBuilder::new();
        for i in 0..bundles {
            b.compute_ffma(4);
            let prim = ((w / 8) * bundles + i) as u64; // warps share primitives
            let instrs = (0..params)
                .map(|p| AtomicInstr::same_address(prim * 64 + (p as u64) * 4, &[1.0; 32]))
                .collect();
            b.atomic_bundle(warp_trace::AtomicBundle::new(instrs));
        }
        out.push(b.finish());
    }
    KernelTrace::new("synthetic-grad", KernelKind::GradCompute, out)
}

/// A compute-heavy trace with no atomics (forward-pass-like).
fn compute_heavy_trace(warps: usize) -> KernelTrace {
    let mut out = Vec::with_capacity(warps);
    for _ in 0..warps {
        let mut b = WarpTraceBuilder::new();
        b.compute_ffma(200).load(4).compute_fp32(100);
        out.push(b.finish());
    }
    KernelTrace::new("synthetic-fwd", KernelKind::Forward, out)
}

fn run(cfg: &GpuConfig, path: AtomicPath, trace: &KernelTrace) -> gpu_sim::KernelReport {
    Simulator::new(cfg.clone(), path)
        .expect("valid config")
        .run(trace)
        .expect("kernel drains")
}

#[test]
fn baseline_gradcomp_is_lsu_stall_dominated() {
    let cfg = GpuConfig::tiny();
    let trace = atomic_heavy_trace(32, 12, 4);
    let report = run(&cfg, AtomicPath::Baseline, &trace);
    // Paper Fig. 8: LSU stalls contribute over 60% of all (active) stalls.
    assert!(
        report.stalls.lsu_fraction() > 0.6,
        "expected LSU-dominated stalls, got {:?}",
        report.stalls
    );
    assert_eq!(report.counters.rop_lane_ops, 32 * 12 * 4 * 32);
}

#[test]
fn arc_hw_beats_baseline_on_atomic_heavy_kernels() {
    let cfg = GpuConfig::tiny();
    let trace = atomic_heavy_trace(32, 12, 4);
    let base = run(&cfg, AtomicPath::Baseline, &trace);
    let hw = run(&cfg, AtomicPath::ArcHw, &trace.clone().with_atomred());
    let speedup = base.cycles as f64 / hw.cycles as f64;
    assert!(
        speedup > 1.3,
        "ARC-HW should speed up atomic-heavy kernels, got {speedup:.2}x"
    );
    // Reduction units absorbed a large share of lane-values.
    assert!(hw.counters.redunit_lane_ops > 0);
    // All lane-values are accounted for between the two paths.
    assert_eq!(
        hw.counters.redunit_lane_ops + hw.counters.rop_lane_ops - hw.counters.redunit_transactions, // reduced txs re-emit 1 value each
        base.counters.rop_lane_ops,
    );
}

#[test]
fn arc_hw_reduces_atomic_stalls() {
    let cfg = GpuConfig::tiny();
    let trace = atomic_heavy_trace(32, 12, 4);
    let base = run(&cfg, AtomicPath::Baseline, &trace);
    let hw = run(&cfg, AtomicPath::ArcHw, &trace.clone().with_atomred());
    // Paper Figs. 20/21: large reduction in shader atomic stalls.
    assert!(
        hw.counters.atomic_stall_cycles * 3 < base.counters.atomic_stall_cycles * 2,
        "atomic stalls: base={} hw={}",
        base.counters.atomic_stall_cycles,
        hw.counters.atomic_stall_cycles
    );
}

#[test]
fn lab_ideal_between_baseline_and_arc_hw() {
    let cfg = GpuConfig::tiny();
    let trace = atomic_heavy_trace(32, 16, 4);
    let base = run(&cfg, AtomicPath::Baseline, &trace);
    let lab_ideal = run(&cfg, AtomicPath::LabIdeal, &trace);
    let hw = run(&cfg, AtomicPath::ArcHw, &trace.clone().with_atomred());
    assert!(
        lab_ideal.cycles < base.cycles,
        "LAB-ideal should beat baseline: {} vs {}",
        lab_ideal.cycles,
        base.cycles
    );
    assert!(
        hw.cycles < lab_ideal.cycles,
        "ARC-HW should beat LAB-ideal: {} vs {}",
        hw.cycles,
        lab_ideal.cycles
    );
}

#[test]
fn lab_ideal_at_least_as_good_as_lab() {
    let cfg = GpuConfig::tiny();
    let trace = atomic_heavy_trace(32, 16, 4);
    let lab = run(&cfg, AtomicPath::Lab, &trace);
    let lab_ideal = run(&cfg, AtomicPath::LabIdeal, &trace);
    // Paper §7.1: LAB-ideal only marginally outperforms LAB (1.05×);
    // at this tiny scale allow a few percent of queueing noise.
    assert!(
        lab_ideal.cycles as f64 <= lab.cycles as f64 * 1.05,
        "LAB-ideal {} vs LAB {}",
        lab_ideal.cycles,
        lab.cycles
    );
}

#[test]
fn phi_gains_less_than_lab_and_arc() {
    let cfg = GpuConfig::tiny();
    let trace = atomic_heavy_trace(32, 16, 4);
    let base = run(&cfg, AtomicPath::Baseline, &trace);
    let phi = run(&cfg, AtomicPath::Phi, &trace);
    let lab = run(&cfg, AtomicPath::LabIdeal, &trace);
    let hw = run(&cfg, AtomicPath::ArcHw, &trace.clone().with_atomred());
    let speedup = |r: &gpu_sim::KernelReport| base.cycles as f64 / r.cycles as f64;
    // Paper §7.1's ordering: PHI gives the smallest improvement, below
    // LAB-ideal, which is below ARC-HW. (This synthetic trace has
    // perfect temporal locality, so absolute PHI gains exceed the
    // paper's 1.01–1.03×; the full workloads in `arc-workloads`
    // reproduce the near-neutral numbers.)
    assert!(
        speedup(&phi) < speedup(&lab),
        "PHI {:.2}x should trail LAB-ideal {:.2}x",
        speedup(&phi),
        speedup(&lab)
    );
    assert!(
        speedup(&lab) < speedup(&hw),
        "LAB-ideal {:.2}x should trail ARC-HW {:.2}x",
        speedup(&lab),
        speedup(&hw)
    );
}

#[test]
fn compute_heavy_kernels_are_unaffected_by_path() {
    let cfg = GpuConfig::tiny();
    let trace = compute_heavy_trace(64);
    let base = run(&cfg, AtomicPath::Baseline, &trace);
    let hw = run(&cfg, AtomicPath::ArcHw, &trace);
    // No atomics ⇒ no difference (paper §5.6: ARC bypassed, no overhead).
    assert_eq!(base.cycles, hw.cycles);
    assert_eq!(base.counters.rop_lane_ops, 0);
}

#[test]
fn atomred_bypassed_on_non_arc_hardware() {
    let cfg = GpuConfig::tiny();
    let trace = atomic_heavy_trace(8, 4, 2).with_atomred();
    let base = run(&cfg, AtomicPath::Baseline, &trace);
    // Every lane-value went to the ROPs; nothing was reduced.
    assert_eq!(base.counters.redunit_lane_ops, 0);
    assert_eq!(base.counters.rop_lane_ops, 8 * 4 * 2 * 32);
}

#[test]
fn partial_warps_and_multi_address_bundles_drain() {
    // Mixed divergence: 5 active lanes on one address, 3 on another.
    let mut b = WarpTraceBuilder::new();
    let mut ops: Vec<LaneOp> = (0..5)
        .map(|lane| LaneOp {
            lane,
            addr: 0x80,
            value: 1.0,
        })
        .collect();
    ops.extend((8..11).map(|lane| LaneOp {
        lane,
        addr: 0x40,
        value: 2.0,
    }));
    b.atomic(AtomicInstr::new(ops)).load(2).compute_fp32(5);
    let trace = KernelTrace::new("mixed", KernelKind::GradCompute, vec![b.finish()]);
    for path in AtomicPath::ALL {
        let t = if path == AtomicPath::ArcHw {
            trace.clone().with_atomred()
        } else {
            trace.clone()
        };
        let report = run(&GpuConfig::tiny(), path, &t);
        assert!(report.cycles > 0, "{}", path.label());
    }
}

#[test]
fn bigger_gpu_is_faster_in_absolute_time() {
    let trace = atomic_heavy_trace(64, 8, 4);
    let r4090 = run(&GpuConfig::rtx4090(), AtomicPath::Baseline, &trace);
    let r3060 = run(&GpuConfig::rtx3060(), AtomicPath::Baseline, &trace);
    assert!(r4090.time_ms < r3060.time_ms);
}

#[test]
fn arc_hw_speedup_larger_on_4090_than_3060() {
    // Paper §7.2: the 4090's lower ROP:SM ratio makes the atomic
    // bottleneck — and ARC's gain — bigger. Use a workload large enough
    // to saturate both GPUs.
    let trace = atomic_heavy_trace(1024, 6, 4);
    let speedup = |cfg: &GpuConfig| {
        let base = run(cfg, AtomicPath::Baseline, &trace);
        let hw = run(cfg, AtomicPath::ArcHw, &trace.clone().with_atomred());
        base.cycles as f64 / hw.cycles as f64
    };
    let s4090 = speedup(&GpuConfig::rtx4090());
    let s3060 = speedup(&GpuConfig::rtx3060());
    assert!(
        s4090 > s3060,
        "expected bigger ARC-HW gain on 4090: {s4090:.2}x vs {s3060:.2}x"
    );
}

#[test]
fn empty_trace_finishes_immediately() {
    let trace = KernelTrace::new("empty", KernelKind::Other, vec![]);
    let report = run(&GpuConfig::tiny(), AtomicPath::Baseline, &trace);
    assert_eq!(report.counters.instructions_issued, 0);
    assert!(report.cycles <= 2);
}

#[test]
fn invalid_config_is_rejected() {
    let mut cfg = GpuConfig::tiny();
    cfg.num_sms = 0;
    assert!(matches!(
        Simulator::new(cfg, AtomicPath::Baseline),
        Err(SimError::InvalidConfig(_))
    ));
}

#[test]
fn max_cycles_guard_fires() {
    let mut cfg = GpuConfig::tiny();
    cfg.max_cycles = 10;
    let trace = atomic_heavy_trace(32, 12, 4);
    let sim = Simulator::new(cfg, AtomicPath::Baseline).unwrap();
    assert!(matches!(
        sim.run(&trace),
        Err(SimError::ExceededMaxCycles { .. })
    ));
}

#[test]
fn reports_are_deterministic() {
    let cfg = GpuConfig::tiny();
    let trace = atomic_heavy_trace(16, 6, 3);
    let a = run(&cfg, AtomicPath::ArcHw, &trace.clone().with_atomred());
    let b = run(&cfg, AtomicPath::ArcHw, &trace.with_atomred());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn energy_tracks_runtime_and_traffic() {
    let cfg = GpuConfig::tiny();
    let trace = atomic_heavy_trace(32, 12, 4);
    let base = run(&cfg, AtomicPath::Baseline, &trace);
    let hw = run(&cfg, AtomicPath::ArcHw, &trace.clone().with_atomred());
    // Paper §7.3: ARC reduces energy via faster execution and fewer
    // memory requests.
    assert!(hw.energy.total_mj < base.energy.total_mj);
}

//! Property tests for the job pool behind the experiment harness:
//! `par_map` must behave like a plain `map` regardless of worker count,
//! and a panicking job must not corrupt or discard its siblings' work.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use gpu_sim::par_map;

/// Order and values match a serial map for every worker count, even when
/// item runtimes vary enough that workers finish out of order.
#[test]
fn result_order_matches_input_order_for_any_worker_count() {
    let items: Vec<usize> = (0..64).collect();
    let expected: Vec<usize> = items.iter().map(|&x| x.wrapping_mul(0x9E37_79B9)).collect();
    for jobs in [1, 2, 8] {
        let out = par_map(jobs, items.clone(), |x| {
            // Stagger runtimes so later indices routinely *complete*
            // before earlier ones on multi-worker runs.
            if x % 7 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            x.wrapping_mul(0x9E37_79B9)
        });
        assert_eq!(out, expected, "jobs={jobs}: order or values diverged");
    }
}

/// A panic in one job propagates to the caller (no silent loss), but the
/// surviving workers still drain every other item: exactly `n - 1` jobs
/// run to completion.
#[test]
fn panicking_job_does_not_poison_sibling_results() {
    const N: usize = 16;
    const BAD: usize = 7;
    let completed = AtomicUsize::new(0);
    // The worker thread's panic is expected; keep it out of test output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| {
        par_map(4, (0..N).collect::<Vec<_>>(), |i| {
            if i == BAD {
                panic!("job {i} exploded");
            }
            completed.fetch_add(1, Ordering::SeqCst);
            i
        })
    }));
    std::panic::set_hook(prev_hook);
    assert!(result.is_err(), "the job's panic must reach the caller");
    assert_eq!(
        completed.load(Ordering::SeqCst),
        N - 1,
        "every job except the panicking one must still complete"
    );
}

//! Integration: the degree-1 SH appearance model composed with the 3D
//! projection pipeline — view-dependent colors must reconstruct a
//! view-dependent scene better than per-Gaussian constant colors.

use diffrender::gaussian::{backward_scene, render_scene, NoopRecorder};
use diffrender::image::{psnr, Image};
use diffrender::loss::l2_loss;
use diffrender::math::Vec3;
use diffrender::optim::Adam;
use diffrender::projection::{
    project, project_backward, Camera, Gaussian3DModel, PARAMS_PER_GAUSSIAN_3D,
};
use diffrender::sh::{Sh1Bank, PARAMS_PER_SH1};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZE: usize = 40;

fn cameras() -> Vec<Camera> {
    [
        Vec3::new(0.0, 0.0, -4.0),
        Vec3::new(3.5, 0.5, -2.0),
        Vec3::new(-3.5, -0.5, -2.0),
        Vec3::new(0.5, 3.5, -2.0),
    ]
    .into_iter()
    .map(|pos| {
        Camera::look_at(
            pos,
            Vec3::default(),
            Vec3::new(0.0, 1.0, 0.0),
            0.9,
            SIZE,
            SIZE,
        )
    })
    .collect()
}

/// Renders a model whose colors come from an SH bank, per view.
fn render_sh(
    model: &Gaussian3DModel,
    bank: &Sh1Bank,
    cam: &Camera,
    bg: Vec3,
) -> (
    diffrender::gaussian::RenderOutput,
    diffrender::projection::Projection,
) {
    let mut view_model = model.clone();
    view_model.color = bank.view_colors(&model.mean, cam.position);
    let proj = project(&view_model, cam);
    let out = render_scene(&proj.splats, cam.width, cam.height, bg);
    (out, proj)
}

fn make_targets(
    gt_model: &Gaussian3DModel,
    gt_bank: &Sh1Bank,
    cams: &[Camera],
    bg: Vec3,
) -> Vec<Image> {
    cams.iter()
        .map(|c| render_sh(gt_model, gt_bank, c, bg).0.image)
        .collect()
}

/// One training step of the SH-enabled pipeline; returns the loss.
#[allow(clippy::too_many_arguments)]
fn sh_step(
    model: &mut Gaussian3DModel,
    bank: &mut Sh1Bank,
    opt_geo: &mut Adam,
    opt_sh: &mut Adam,
    cam: &Camera,
    target: &Image,
    bg: Vec3,
) -> f32 {
    let mut view_model = model.clone();
    view_model.color = bank.view_colors(&model.mean, cam.position);
    let proj = project(&view_model, cam);
    let out = render_scene(&proj.splats, cam.width, cam.height, bg);
    let (loss, pixel_grads) = l2_loss(&out.image, target);
    let raster = backward_scene(&proj.splats, &out, &pixel_grads, &mut NoopRecorder);

    // Geometry gradients through the projection (uses the view-colored
    // model so opacity/color bookkeeping lines up).
    let mut geo_grads = project_backward(&view_model, cam, &proj, &raster);

    // SH gradients from the raster color gradients, including the
    // through-direction term folded into the mean gradients.
    let mut mean_grads = vec![Vec3::default(); model.len()];
    let sh_grads =
        bank.view_colors_backward(&model.mean, cam.position, &raster.color, &mut mean_grads);
    for i in 0..model.len() {
        geo_grads[i * PARAMS_PER_GAUSSIAN_3D] += mean_grads[i].x;
        geo_grads[i * PARAMS_PER_GAUSSIAN_3D + 1] += mean_grads[i].y;
        geo_grads[i * PARAMS_PER_GAUSSIAN_3D + 2] += mean_grads[i].z;
        // The model's constant-color slots are SH-driven: zero their
        // direct gradients so the optimizer does not fight the bank.
        for p in 11..14 {
            geo_grads[i * PARAMS_PER_GAUSSIAN_3D + p] = 0.0;
        }
    }

    let mut params = model.to_params();
    opt_geo.step(&mut params, &geo_grads);
    model.set_params(&params);
    let mut sh_params = bank.to_params();
    opt_sh.step(&mut sh_params, &sh_grads);
    bank.set_params(&sh_params);
    loss
}

#[test]
fn sh_model_fits_view_dependent_scenes_better_than_constant_color() {
    let mut rng = StdRng::seed_from_u64(61);
    let bg = Vec3::splat(0.05);
    let cams = cameras();

    // Ground truth has strong view dependence.
    let gt_model = Gaussian3DModel::random(14, 0.8, &mut rng);
    let gt_bank = Sh1Bank::random(14, &mut rng);
    let targets = make_targets(&gt_model, &gt_bank, &cams, bg);

    // (a) SH-enabled training.
    let mut sh_model = gt_model.clone(); // geometry fixed to isolate appearance
    let mut sh_bank = Sh1Bank::new(14);
    let mut opt_geo = Adam::new(sh_model.len() * PARAMS_PER_GAUSSIAN_3D, 1e-6); // frozen-ish
    let mut opt_sh = Adam::new(sh_bank.len() * PARAMS_PER_SH1, 0.05);
    for iter in 0..120 {
        let k = iter % cams.len();
        let _ = sh_step(
            &mut sh_model,
            &mut sh_bank,
            &mut opt_geo,
            &mut opt_sh,
            &cams[k],
            &targets[k],
            bg,
        );
    }

    // (b) Constant-color training with the same budget: only the
    // model's color parameters learn.
    let mut cc_model = gt_model.clone();
    cc_model.color = vec![Vec3::splat(0.5); cc_model.len()];
    let mut opt = Adam::new(cc_model.len() * PARAMS_PER_GAUSSIAN_3D, 0.05);
    for iter in 0..120 {
        let k = iter % cams.len();
        let cam = &cams[k];
        let proj = project(&cc_model, cam);
        let out = render_scene(&proj.splats, cam.width, cam.height, bg);
        let (_, pixel_grads) = l2_loss(&out.image, &targets[k]);
        let raster = backward_scene(&proj.splats, &out, &pixel_grads, &mut NoopRecorder);
        let mut grads = project_backward(&cc_model, cam, &proj, &raster);
        // Freeze geometry, learn colors only — the fair comparison.
        for i in 0..cc_model.len() {
            for p in 0..11 {
                grads[i * PARAMS_PER_GAUSSIAN_3D + p] = 0.0;
            }
        }
        let mut params = cc_model.to_params();
        opt.step(&mut params, &grads);
        cc_model.set_params(&params);
    }

    // Compare on every view.
    let mut sh_total = 0.0f32;
    let mut cc_total = 0.0f32;
    for (k, cam) in cams.iter().enumerate() {
        let sh_img = render_sh(&sh_model, &sh_bank, cam, bg).0.image;
        let cc_img = render_scene(&project(&cc_model, cam).splats, SIZE, SIZE, bg).image;
        sh_total += psnr(&sh_img, &targets[k]);
        cc_total += psnr(&cc_img, &targets[k]);
    }
    assert!(
        sh_total > cc_total + 1.0,
        "SH should win on view-dependent targets: SH {:.2} dB avg vs constant {:.2} dB avg",
        sh_total / cams.len() as f32,
        cc_total / cams.len() as f32
    );
}

#[test]
fn sh_training_loss_decreases() {
    let mut rng = StdRng::seed_from_u64(62);
    let bg = Vec3::splat(0.0);
    let cams = cameras();
    let gt_model = Gaussian3DModel::random(10, 0.8, &mut rng);
    let gt_bank = Sh1Bank::random(10, &mut rng);
    let targets = make_targets(&gt_model, &gt_bank, &cams, bg);

    let mut model = Gaussian3DModel::random(10, 0.8, &mut rng);
    let mut bank = Sh1Bank::new(10);
    let mut opt_geo = Adam::new(model.len() * PARAMS_PER_GAUSSIAN_3D, 0.02);
    let mut opt_sh = Adam::new(bank.len() * PARAMS_PER_SH1, 0.05);
    let mut first = None;
    let mut last = 0.0;
    for iter in 0..60 {
        let k = iter % cams.len();
        let loss = sh_step(
            &mut model,
            &mut bank,
            &mut opt_geo,
            &mut opt_sh,
            &cams[k],
            &targets[k],
            bg,
        );
        first.get_or_insert(loss);
        last = loss;
    }
    assert!(
        last < first.unwrap(),
        "joint geometry+appearance training should converge: {first:?} -> {last}"
    );
}

//! Full 3D Gaussian-splatting projection: a pinhole camera projects 3D
//! Gaussians (mean, per-axis scale, rotation quaternion) into the 2D
//! screen-space splats the rasterizer consumes, with the analytic
//! backward pass — the 3DGS "preprocess" kernel pair.
//!
//! Forward (per Gaussian, as in EWA splatting):
//!
//! ```text
//! t      = W (p − c)                      camera-space mean
//! mean2D = (fx·tx/tz + cx, fy·ty/tz + cy)
//! J      = ∂(image)/∂t                    2×3 perspective Jacobian
//! Σ3     = R(q) diag(s)² R(q)ᵀ
//! Σ2     = (J W) Σ3 (J W)ᵀ + λ I          λ = dilation (low-pass)
//! ```
//!
//! Backward: given `dL/dmean2D` and `dL/dΣ2` from the rasterizer, chain
//! to `dL/dp`, `dL/d log s`, `dL/dq` (through quaternion normalization),
//! `dL/d logit`, `dL/d color`. Verified against finite differences over
//! the whole render pipeline in this module's tests.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::gaussian::{conic_grad_to_cov, RasterGrads, SplatScene};
use crate::math::{Mat2Sym, Vec2, Vec3};
use crate::math3d::{Mat3, Quat};

/// Trainable floats per 3D Gaussian: mean (3) + log-scale (3) +
/// quaternion (4) + opacity logit (1) + RGB (3).
pub const PARAMS_PER_GAUSSIAN_3D: usize = 14;

/// Gaussians closer than this camera-space depth are culled.
pub const NEAR_PLANE: f32 = 0.2;

/// Screen-space covariance dilation (3DGS adds 0.3 px² for antialiasing).
pub const COV_DILATION: f32 = 0.3;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A pinhole camera.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// World→camera rotation (rows are the camera's x/y/z axes).
    pub rotation: Mat3,
    /// Camera center in world coordinates.
    pub position: Vec3,
    /// Focal length in pixels (x).
    pub fx: f32,
    /// Focal length in pixels (y).
    pub fy: f32,
    /// Principal point x.
    pub cx: f32,
    /// Principal point y.
    pub cy: f32,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
}

impl Camera {
    /// A camera at `position` looking at `target` (with `up` roughly
    /// up), with a vertical field of view of `fov_y` radians.
    ///
    /// # Panics
    ///
    /// Panics if `position == target`, `fov_y` is not in (0, π), or the
    /// viewing direction is parallel to `up`.
    pub fn look_at(
        position: Vec3,
        target: Vec3,
        up: Vec3,
        fov_y: f32,
        width: usize,
        height: usize,
    ) -> Self {
        assert!(fov_y > 0.0 && fov_y < std::f32::consts::PI, "bad fov");
        let forward = (target - position).normalized();
        assert!(forward.norm() > 0.5, "camera position equals target");
        let right = up.cross(forward).normalized();
        assert!(
            right.norm() > 0.5,
            "viewing direction parallel to the up vector"
        );
        let down = forward.cross(right);
        let fy = 0.5 * height as f32 / (fov_y / 2.0).tan();
        Camera {
            rotation: Mat3::from_rows(
                [right.x, right.y, right.z],
                [down.x, down.y, down.z],
                [forward.x, forward.y, forward.z],
            ),
            position,
            fx: fy,
            fy,
            cx: width as f32 / 2.0,
            cy: height as f32 / 2.0,
            width,
            height,
        }
    }

    /// World point → camera coordinates (z is depth along the view).
    pub fn to_camera(&self, p: Vec3) -> Vec3 {
        self.rotation.mul_vec(p - self.position)
    }
}

/// A trainable 3D Gaussian scene (struct-of-arrays).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Gaussian3DModel {
    /// World-space means.
    pub mean: Vec<Vec3>,
    /// Per-axis log standard deviations (world units).
    pub log_scale: Vec<Vec3>,
    /// Rotation quaternions (normalized on use).
    pub quat: Vec<Quat>,
    /// Opacity logits.
    pub opacity_logit: Vec<f32>,
    /// RGB colors.
    pub color: Vec<Vec3>,
}

impl Gaussian3DModel {
    /// An empty model.
    pub fn new() -> Self {
        Gaussian3DModel::default()
    }

    /// Number of Gaussians.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Appends a Gaussian.
    pub fn push(
        &mut self,
        mean: Vec3,
        log_scale: Vec3,
        quat: Quat,
        opacity_logit: f32,
        color: Vec3,
    ) {
        self.mean.push(mean);
        self.log_scale.push(log_scale);
        self.quat.push(quat);
        self.opacity_logit.push(opacity_logit);
        self.color.push(color);
    }

    /// Random initialization inside a centered cube of half-extent
    /// `extent`.
    pub fn random<R: Rng>(n: usize, extent: f32, rng: &mut R) -> Self {
        let mut model = Gaussian3DModel::new();
        for _ in 0..n {
            model.push(
                Vec3::new(
                    rng.gen_range(-extent..extent),
                    rng.gen_range(-extent..extent),
                    rng.gen_range(-extent..extent),
                ),
                Vec3::new(
                    rng.gen_range(-2.5..-1.0),
                    rng.gen_range(-2.5..-1.0),
                    rng.gen_range(-2.5..-1.0),
                ),
                Quat::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ),
                rng.gen_range(-0.5..1.5),
                Vec3::new(rng.gen(), rng.gen(), rng.gen()),
            );
        }
        model
    }

    /// Flattens trainable parameters ([`PARAMS_PER_GAUSSIAN_3D`] per
    /// Gaussian).
    pub fn to_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len() * PARAMS_PER_GAUSSIAN_3D);
        for i in 0..self.len() {
            let q = self.quat[i];
            out.extend_from_slice(&[
                self.mean[i].x,
                self.mean[i].y,
                self.mean[i].z,
                self.log_scale[i].x,
                self.log_scale[i].y,
                self.log_scale[i].z,
                q.w,
                q.x,
                q.y,
                q.z,
                self.opacity_logit[i],
                self.color[i].x,
                self.color[i].y,
                self.color[i].z,
            ]);
        }
        out
    }

    /// Loads parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.len() * PARAMS_PER_GAUSSIAN_3D,
            "parameter vector length mismatch"
        );
        for (i, c) in params.chunks_exact(PARAMS_PER_GAUSSIAN_3D).enumerate() {
            self.mean[i] = Vec3::new(c[0], c[1], c[2]);
            self.log_scale[i] = Vec3::new(c[3], c[4], c[5]);
            self.quat[i] = Quat::new(c[6], c[7], c[8], c[9]);
            self.opacity_logit[i] = c[10];
            self.color[i] = Vec3::new(c[11], c[12], c[13]);
        }
    }
}

/// Per-Gaussian intermediates kept for the backward pass.
#[derive(Clone, Debug)]
struct ProjEntry {
    /// Camera-space mean.
    t: Vec3,
    /// R(q̂) (normalized-quaternion rotation).
    rot: Mat3,
    /// diag(exp(log_scale)).
    s: Vec3,
}

/// The forward projection result: screen-space splats (culled Gaussians
/// become invisible placeholders so indices line up) plus the cache the
/// backward pass needs.
#[derive(Clone, Debug)]
pub struct Projection {
    /// Rasterizer input; `splats.len() == model.len()`.
    pub splats: SplatScene,
    entries: Vec<Option<ProjEntry>>,
}

impl Projection {
    /// Whether Gaussian `i` survived near-plane culling.
    pub fn visible(&self, i: usize) -> bool {
        self.entries[i].is_some()
    }

    /// Number of visible Gaussians.
    pub fn visible_count(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

/// Projects a 3D model through `camera` into screen-space splats.
pub fn project(model: &Gaussian3DModel, camera: &Camera) -> Projection {
    let n = model.len();
    let mut splats = SplatScene::with_capacity(n);
    let mut entries = Vec::with_capacity(n);
    let w = camera.rotation;
    for i in 0..n {
        let t = camera.to_camera(model.mean[i]);
        if t.z < NEAR_PLANE {
            // Culled: keep index alignment with an invisible splat far
            // off-screen.
            splats.push(
                Vec2::new(-1e7, -1e7),
                Mat2Sym::new(1.0, 0.0, 1.0),
                0.0,
                Vec3::default(),
            );
            entries.push(None);
            continue;
        }
        let mean2 = Vec2::new(
            camera.fx * t.x / t.z + camera.cx,
            camera.fy * t.y / t.z + camera.cy,
        );
        let rot = model.quat[i].to_matrix();
        let s = Vec3::new(
            model.log_scale[i].x.exp(),
            model.log_scale[i].y.exp(),
            model.log_scale[i].z.exp(),
        );
        // Σ3 = (R S)(R S)ᵀ.
        let m = rot.mul(&Mat3::diag(s));
        let sigma3 = m.mul(&m.transpose());
        // T = J W (2×3).
        let tm = jw(camera, t, &w);
        // Σ2 = T Σ3 Tᵀ + λI.
        let mut cov = [[0.0f32; 2]; 2];
        for (r, cov_row) in cov.iter_mut().enumerate() {
            for (c, cell) in cov_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for a in 0..3 {
                    for b in 0..3 {
                        acc += tm[r][a] * sigma3.m[a][b] * tm[c][b];
                    }
                }
                *cell = acc;
            }
        }
        let cov2 = Mat2Sym::new(
            cov[0][0] + COV_DILATION,
            cov[0][1],
            cov[1][1] + COV_DILATION,
        );
        splats.push(mean2, cov2, sigmoid(model.opacity_logit[i]), model.color[i]);
        entries.push(Some(ProjEntry { t, rot, s }));
    }
    Projection { splats, entries }
}

/// The 2×3 matrix `T = J·W` for camera-space mean `t`.
fn jw(camera: &Camera, t: Vec3, w: &Mat3) -> [[f32; 3]; 2] {
    let j = j_of(camera, t);
    let mut tm = [[0.0f32; 3]; 2];
    for (r, tm_row) in tm.iter_mut().enumerate() {
        for (c, cell) in tm_row.iter_mut().enumerate() {
            *cell = (0..3).map(|k| j[r][k] * w.m[k][c]).sum();
        }
    }
    tm
}

/// The perspective Jacobian `J = ∂(u,v)/∂t` (2×3).
fn j_of(camera: &Camera, t: Vec3) -> [[f32; 3]; 2] {
    let tz = t.z;
    [
        [camera.fx / tz, 0.0, -camera.fx * t.x / (tz * tz)],
        [0.0, camera.fy / tz, -camera.fy * t.y / (tz * tz)],
    ]
}

/// Gradients w.r.t. the 3D model, aligned with
/// [`Gaussian3DModel::to_params`].
pub fn project_backward(
    model: &Gaussian3DModel,
    camera: &Camera,
    projection: &Projection,
    raster: &RasterGrads,
) -> Vec<f32> {
    let n = model.len();
    assert_eq!(raster.mean.len(), n, "raster gradient length mismatch");
    let w = camera.rotation;
    let wt = w.transpose();
    let mut out = Vec::with_capacity(n * PARAMS_PER_GAUSSIAN_3D);

    for i in 0..n {
        let Some(entry) = &projection.entries[i] else {
            out.extend_from_slice(&[0.0; PARAMS_PER_GAUSSIAN_3D]);
            continue;
        };
        let t = entry.t;
        let tz = t.z;

        // dL/dΣ2 (full-matrix form); the dilation is an additive
        // constant so the gradient passes through unchanged.
        let conic = projection.splats.cov[i].inverse();
        let dcov_sym = conic_grad_to_cov(conic, raster.conic[i]);
        let g2 = [
            [dcov_sym.a, 0.5 * dcov_sym.b],
            [0.5 * dcov_sym.b, dcov_sym.c],
        ];

        let tm = jw(camera, t, &w);
        // Σ3 = M Mᵀ with M = R S.
        let m = entry.rot.mul(&Mat3::diag(entry.s));
        let sigma3 = m.mul(&m.transpose());

        // dL/dΣ3 = Tᵀ G2 T  (3×3 symmetric).
        let mut g3 = Mat3::default();
        for a in 0..3 {
            for b in 0..3 {
                let mut acc = 0.0;
                for r in 0..2 {
                    for c in 0..2 {
                        acc += tm[r][a] * g2[r][c] * tm[c][b];
                    }
                }
                g3.m[a][b] = acc;
            }
        }

        // dL/dT = 2 G2 T Σ3   (2×3).
        let mut dt_mat = [[0.0f32; 3]; 2];
        for (r, dt_row) in dt_mat.iter_mut().enumerate() {
            for (c, cell) in dt_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (k, tm_row) in tm.iter().enumerate() {
                    for (l, &tm_kl) in tm_row.iter().enumerate() {
                        acc += 2.0 * g2[r][k] * tm_kl * sigma3.m[l][c];
                    }
                }
                *cell = acc;
            }
        }

        // dL/dJ = dL/dT · Wᵀ  (2×3).
        let mut dj = [[0.0f32; 3]; 2];
        for (r, dj_row) in dj.iter_mut().enumerate() {
            for (c, cell) in dj_row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| dt_mat[r][k] * wt.m[k][c]).sum();
            }
        }

        // Camera-space mean gradient: through J and through mean2D.
        let dmean2 = raster.mean[i];
        let tz2 = tz * tz;
        let mut dl_dt = Vec3::new(
            // ∂u/∂tx = fx/tz ; ∂J[0][2]/∂tx = −fx/tz².
            dmean2.x * camera.fx / tz + dj[0][2] * (-camera.fx / tz2),
            dmean2.y * camera.fy / tz + dj[1][2] * (-camera.fy / tz2),
            0.0,
        );
        dl_dt.z = dmean2.x * (-camera.fx * t.x / tz2)
            + dmean2.y * (-camera.fy * t.y / tz2)
            + dj[0][0] * (-camera.fx / tz2)
            + dj[1][1] * (-camera.fy / tz2)
            + dj[0][2] * (2.0 * camera.fx * t.x / (tz2 * tz))
            + dj[1][2] * (2.0 * camera.fy * t.y / (tz2 * tz));

        // World-space mean: t = W (p − c) ⇒ dL/dp = Wᵀ dL/dt.
        let dl_dp = wt.mul_vec(dl_dt);

        // dL/dM = 2 G3 M; then split into rotation and scale parts.
        let dm = g3.mul(&m).scale(2.0);
        // dL/dR = dM · Sᵀ (S diagonal).
        let mut dr = Mat3::default();
        for r in 0..3 {
            dr.m[r][0] = dm.m[r][0] * entry.s.x;
            dr.m[r][1] = dm.m[r][1] * entry.s.y;
            dr.m[r][2] = dm.m[r][2] * entry.s.z;
        }
        let dq = model.quat[i].matrix_backward(&dr);
        // dL/ds_j = Σ_r R[r][j] dM[r][j]; chain exp(log_scale).
        let rot = entry.rot;
        let ds = Vec3::new(
            (0..3).map(|r| rot.m[r][0] * dm.m[r][0]).sum::<f32>() * entry.s.x,
            (0..3).map(|r| rot.m[r][1] * dm.m[r][1]).sum::<f32>() * entry.s.y,
            (0..3).map(|r| rot.m[r][2] * dm.m[r][2]).sum::<f32>() * entry.s.z,
        );

        let op = projection.splats.opacity[i];
        let d_logit = raster.opacity[i] * op * (1.0 - op);

        out.extend_from_slice(&[
            dl_dp.x,
            dl_dp.y,
            dl_dp.z,
            ds.x,
            ds.y,
            ds.z,
            dq.w,
            dq.x,
            dq.y,
            dq.z,
            d_logit,
            raster.color[i].x,
            raster.color[i].y,
            raster.color[i].z,
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{backward_scene, render_scene, NoopRecorder};
    use crate::loss::l2_loss;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_camera(width: usize, height: usize) -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            0.9,
            width,
            height,
        )
    }

    fn small_scene() -> Gaussian3DModel {
        let mut m = Gaussian3DModel::new();
        m.push(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(-1.2, -1.6, -1.4),
            Quat::from_axis_angle(Vec3::new(0.3, 1.0, 0.2), 0.8),
            1.0,
            Vec3::new(0.9, 0.2, 0.1),
        );
        m.push(
            Vec3::new(0.5, -0.3, 0.4),
            Vec3::new(-1.5, -1.1, -1.8),
            Quat::from_axis_angle(Vec3::new(1.0, 0.1, -0.4), -0.5),
            0.4,
            Vec3::new(0.1, 0.7, 0.5),
        );
        m.push(
            Vec3::new(-0.6, 0.4, -0.2),
            Vec3::new(-1.8, -1.3, -1.2),
            Quat::IDENTITY,
            0.0,
            Vec3::new(0.2, 0.3, 0.9),
        );
        m
    }

    #[test]
    fn camera_projects_center_to_principal_point() {
        let cam = test_camera(64, 48);
        let t = cam.to_camera(Vec3::new(0.0, 0.0, 0.0));
        assert!((t.z - 4.0).abs() < 1e-5, "depth should be 4, got {}", t.z);
        assert!(t.x.abs() < 1e-5 && t.y.abs() < 1e-5);
    }

    #[test]
    fn projection_culls_behind_camera() {
        let mut m = Gaussian3DModel::new();
        m.push(
            Vec3::new(0.0, 0.0, -10.0), // behind the camera at z=-4
            Vec3::splat(-1.0),
            Quat::IDENTITY,
            0.0,
            Vec3::splat(1.0),
        );
        let proj = project(&m, &test_camera(32, 32));
        assert!(!proj.visible(0));
        assert_eq!(proj.visible_count(), 0);
        // The placeholder never rasterizes.
        let out = render_scene(&proj.splats, 32, 32, Vec3::splat(0.0));
        assert_eq!(out.image.get(16, 16), Vec3::splat(0.0));
    }

    #[test]
    fn projected_center_gaussian_renders_in_frame_middle() {
        let m = small_scene();
        let cam = test_camera(64, 64);
        let proj = project(&m, &cam);
        assert_eq!(proj.visible_count(), 3);
        let out = render_scene(&proj.splats, 64, 64, Vec3::splat(0.0));
        // Gaussian 0 sits at the world origin = image center, red-ish.
        let c = out.image.get(32, 32);
        assert!(c.x > 0.2, "center pixel {c:?}");
    }

    #[test]
    fn closer_gaussians_project_larger() {
        let mut m = Gaussian3DModel::new();
        for z in [0.0f32, 2.0] {
            m.push(
                Vec3::new(0.0, 0.0, z),
                Vec3::splat(-1.0),
                Quat::IDENTITY,
                2.0,
                Vec3::splat(1.0),
            );
        }
        let proj = project(&m, &test_camera(64, 64));
        // Camera at z=-4: the z=0 Gaussian is nearer than z=2.
        let area = |c: Mat2Sym| c.det().sqrt();
        assert!(area(proj.splats.cov[0]) > area(proj.splats.cov[1]));
    }

    #[test]
    fn params_roundtrip() {
        let m = small_scene();
        let mut m2 = small_scene();
        m2.set_params(&m.to_params());
        assert_eq!(m, m2);
        assert_eq!(m.to_params().len(), 3 * PARAMS_PER_GAUSSIAN_3D);
    }

    /// The decisive test: analytic 3D gradients through projection +
    /// rasterization + loss match finite differences for every
    /// parameter class.
    #[test]
    fn full_3d_pipeline_gradients_match_finite_differences() {
        let mut model = small_scene();
        let cam = test_camera(48, 48);
        let mut rng = StdRng::seed_from_u64(21);
        let target = {
            let gt = Gaussian3DModel::random(4, 0.8, &mut rng);
            render_scene(&project(&gt, &cam).splats, 48, 48, Vec3::splat(0.1)).image
        };
        let bg = Vec3::splat(0.1);

        let loss_of = |m: &Gaussian3DModel| {
            l2_loss(
                &render_scene(&project(m, &cam).splats, 48, 48, bg).image,
                &target,
            )
            .0
        };

        let proj = project(&model, &cam);
        let out = render_scene(&proj.splats, 48, 48, bg);
        let (_, pixel_grads) = l2_loss(&out.image, &target);
        let raster = backward_scene(&proj.splats, &out, &pixel_grads, &mut NoopRecorder);
        let analytic = project_backward(&model, &cam, &proj, &raster);

        let mut params = model.to_params();
        let h = 2e-3f32;
        let mut checked = 0;
        for idx in 0..params.len() {
            let orig = params[idx];
            params[idx] = orig + h;
            model.set_params(&params);
            let lp = loss_of(&model);
            params[idx] = orig - h;
            model.set_params(&params);
            let lm = loss_of(&model);
            params[idx] = orig;
            model.set_params(&params);
            let fd = (lp - lm) / (2.0 * h);
            let an = analytic[idx];
            if fd.abs() < 1e-6 && an.abs() < 1e-6 {
                continue;
            }
            let tol = 1e-3f32.max(0.2 * fd.abs().max(an.abs()));
            assert!(
                (fd - an).abs() <= tol,
                "param {idx} (class {}): analytic {an} vs finite-diff {fd}",
                idx % PARAMS_PER_GAUSSIAN_3D
            );
            checked += 1;
        }
        assert!(checked > 20, "too few parameters checked ({checked})");
    }

    #[test]
    fn multiview_training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(22);
        let cams: Vec<Camera> = [
            Vec3::new(0.0, 0.0, -4.0),
            Vec3::new(3.0, 0.5, -2.5),
            Vec3::new(-3.0, -0.5, -2.5),
        ]
        .into_iter()
        .map(|pos| Camera::look_at(pos, Vec3::default(), Vec3::new(0.0, 1.0, 0.0), 0.9, 48, 48))
        .collect();
        let gt = Gaussian3DModel::random(12, 0.8, &mut rng);
        let bg = Vec3::splat(0.0);
        let targets: Vec<_> = cams
            .iter()
            .map(|c| render_scene(&project(&gt, c).splats, 48, 48, bg).image)
            .collect();

        let mut model = Gaussian3DModel::random(12, 0.8, &mut rng);
        let mut opt = crate::optim::Adam::new(model.len() * PARAMS_PER_GAUSSIAN_3D, 0.02);
        let mut first = None;
        let mut last = 0.0;
        for iter in 0..45 {
            let cam = &cams[iter % cams.len()];
            let target = &targets[iter % cams.len()];
            let proj = project(&model, cam);
            let out = render_scene(&proj.splats, 48, 48, bg);
            let (loss, pg) = l2_loss(&out.image, target);
            first.get_or_insert(loss);
            last = loss;
            let raster = backward_scene(&proj.splats, &out, &pg, &mut NoopRecorder);
            let grads = project_backward(&model, cam, &proj, &raster);
            let mut params = model.to_params();
            opt.step(&mut params, &grads);
            model.set_params(&params);
        }
        assert!(
            last < first.unwrap(),
            "multi-view loss should drop: {first:?} → {last}"
        );
    }

    #[test]
    #[should_panic(expected = "parallel to the up vector")]
    fn degenerate_up_vector_panics() {
        let _ = Camera::look_at(
            Vec3::new(0.0, 5.0, 0.0),
            Vec3::default(),
            Vec3::new(0.0, 1.0, 0.0),
            0.9,
            32,
            32,
        );
    }
}

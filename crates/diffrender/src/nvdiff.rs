//! NvDiffRec-style differentiable rendering: learning a specular cubemap
//! texture from rendered images of a fixed object (paper §6: "we use
//! differentiable rendering to learn the parameters of specular cubemap
//! texture from a set of mesh images").
//!
//! The geometry is a synthetic sphere G-buffer: pixels covered by the
//! sphere compute a reflection direction and sample the cubemap; pixels
//! off the sphere are inactive — reproducing the heavy control
//! divergence that makes CCCL ineffective on NV workloads (paper §7.2)
//! and the low active-lane counts of Fig. 7.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::image::Image;
use crate::loss::PixelGrads;
use crate::math::Vec3;

/// A learnable cubemap: 6 faces of `res`×`res` RGB texels.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cubemap {
    res: usize,
    texels: Vec<Vec3>,
}

impl Cubemap {
    /// Creates a black cubemap of the given face resolution.
    ///
    /// # Panics
    ///
    /// Panics if `res` is zero.
    pub fn new(res: usize) -> Self {
        assert!(res > 0, "cubemap resolution must be positive");
        Cubemap {
            res,
            texels: vec![Vec3::default(); 6 * res * res],
        }
    }

    /// Randomly initialized cubemap (uniform \[0,1\] channels).
    pub fn random<R: Rng>(res: usize, rng: &mut R) -> Self {
        let mut map = Cubemap::new(res);
        for t in &mut map.texels {
            *t = Vec3::new(rng.gen(), rng.gen(), rng.gen());
        }
        map
    }

    /// Face resolution.
    pub fn res(&self) -> usize {
        self.res
    }

    /// Total texel count (6 · res²).
    pub fn len(&self) -> usize {
        self.texels.len()
    }

    /// Whether the map has no texels (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.texels.is_empty()
    }

    /// Texel color by linear index.
    pub fn texel(&self, idx: usize) -> Vec3 {
        self.texels[idx]
    }

    /// Flat parameter view (3 floats per texel).
    pub fn to_params(&self) -> Vec<f32> {
        self.texels.iter().flat_map(|t| [t.x, t.y, t.z]).collect()
    }

    /// Loads parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.len() * 3, "parameter length mismatch");
        for (t, c) in self.texels.iter_mut().zip(params.chunks_exact(3)) {
            *t = Vec3::new(c[0], c[1], c[2]);
        }
    }

    /// Maps a direction to its nearest texel's linear index (standard
    /// major-axis cubemap addressing).
    pub fn texel_index(&self, dir: Vec3) -> usize {
        let (ax, ay, az) = (dir.x.abs(), dir.y.abs(), dir.z.abs());
        let (face, ma, sc, tc) = if ax >= ay && ax >= az {
            if dir.x > 0.0 {
                (0, ax, -dir.z, -dir.y)
            } else {
                (1, ax, dir.z, -dir.y)
            }
        } else if ay >= ax && ay >= az {
            if dir.y > 0.0 {
                (2, ay, dir.x, dir.z)
            } else {
                (3, ay, dir.x, -dir.z)
            }
        } else if dir.z > 0.0 {
            (4, az, dir.x, -dir.y)
        } else {
            (5, az, -dir.x, -dir.y)
        };
        let ma = ma.max(1e-6);
        let u = 0.5 * (sc / ma + 1.0);
        let v = 0.5 * (tc / ma + 1.0);
        let x = ((u * self.res as f32) as usize).min(self.res - 1);
        let y = ((v * self.res as f32) as usize).min(self.res - 1);
        face * self.res * self.res + y * self.res + x
    }
}

/// The fixed scene geometry: a sphere filling most of the frame, viewed
/// head-on, plus jittered reflection samples per pixel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NvScene {
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Sphere radius as a fraction of the half-extent (default 0.75).
    pub sphere_radius: f32,
    /// Reflection samples per covered pixel (NvDiffRec supersamples).
    pub samples: usize,
    /// Background color for uncovered pixels.
    pub background: Vec3,
}

impl NvScene {
    /// A scene with the given frame size, radius fraction 0.75 and 4
    /// reflection samples.
    pub fn new(width: usize, height: usize) -> Self {
        NvScene {
            width,
            height,
            sphere_radius: 0.75,
            samples: 4,
            background: Vec3::splat(0.0),
        }
    }

    /// The sphere-surface normal under pixel `(x, y)`, or `None` if the
    /// pixel misses the sphere.
    pub fn normal_at(&self, x: usize, y: usize) -> Option<Vec3> {
        let hx = self.width as f32 / 2.0;
        let hy = self.height as f32 / 2.0;
        let nx = (x as f32 + 0.5 - hx) / hx.min(hy);
        let ny = (y as f32 + 0.5 - hy) / hx.min(hy);
        let r2 = self.sphere_radius * self.sphere_radius;
        let d2 = nx * nx + ny * ny;
        if d2 > r2 {
            return None;
        }
        let nz = (r2 - d2).sqrt() / self.sphere_radius;
        Some(Vec3::new(nx / self.sphere_radius, ny / self.sphere_radius, nz).normalized())
    }

    /// The `s`-th jittered reflection direction for pixel `(x, y)`, or
    /// `None` off-sphere. View direction is `-z`; the jitter is a small
    /// deterministic tangent perturbation (stand-in for rough-specular
    /// sampling).
    pub fn reflection(&self, x: usize, y: usize, s: usize) -> Option<Vec3> {
        let n = self.normal_at(x, y)?;
        // reflect(view = (0,0,-1)) = v − 2(v·n)n
        let v = Vec3::new(0.0, 0.0, -1.0);
        let r = v - n * (2.0 * v.dot(n));
        // Deterministic jitter per sample.
        let a = (s as f32 + 1.0) * 0.13;
        let jitter = Vec3::new(a.sin(), a.cos(), 0.0) * 0.05;
        Some((r + jitter).normalized())
    }
}

/// Forward render: average the cubemap samples per covered pixel.
pub fn render(scene: &NvScene, map: &Cubemap) -> Image {
    let mut img = Image::new(scene.width, scene.height);
    for y in 0..scene.height {
        for x in 0..scene.width {
            let mut c = scene.background;
            if scene.normal_at(x, y).is_some() {
                let mut acc = Vec3::default();
                for s in 0..scene.samples {
                    let dir = scene.reflection(x, y, s).expect("covered pixel");
                    acc += map.texel(map.texel_index(dir));
                }
                c = acc * (1.0 / scene.samples as f32);
            }
            img.set(x, y, c);
        }
    }
    img
}

/// The gradient-computation pass: scatters `dL/dpixel / samples` into
/// each sampled texel — the atomic accumulation the GPU kernel performs.
/// Returns per-texel RGB gradients.
pub fn backward(scene: &NvScene, map: &Cubemap, pixel_grads: &PixelGrads) -> Vec<Vec3> {
    let mut grads = vec![Vec3::default(); map.len()];
    let w = 1.0 / scene.samples as f32;
    for y in 0..scene.height {
        for x in 0..scene.width {
            if scene.normal_at(x, y).is_none() {
                continue;
            }
            let g = pixel_grads.get(x, y) * w;
            for s in 0..scene.samples {
                let dir = scene.reflection(x, y, s).expect("covered pixel");
                grads[map.texel_index(dir)] += g;
            }
        }
    }
    grads
}

/// Flattens texel gradients to align with [`Cubemap::to_params`].
pub fn flatten_grads(grads: &[Vec3]) -> Vec<f32> {
    grads.iter().flat_map(|g| [g.x, g.y, g.z]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::l2_loss;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn texel_index_in_range_for_any_direction() {
        let map = Cubemap::new(8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = Vec3::new(
                rng.gen_range(-1.0..1.0f32),
                rng.gen_range(-1.0..1.0f32),
                rng.gen_range(-1.0..1.0f32),
            );
            if d.norm() < 1e-3 {
                continue;
            }
            assert!(map.texel_index(d.normalized()) < map.len());
        }
    }

    #[test]
    fn principal_axes_hit_distinct_faces() {
        let map = Cubemap::new(4);
        let face_of = |d: Vec3| map.texel_index(d) / 16;
        let faces: Vec<usize> = [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.0, 0.0, -1.0),
        ]
        .into_iter()
        .map(face_of)
        .collect();
        assert_eq!(faces, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn sphere_covers_center_not_corners() {
        let scene = NvScene::new(64, 64);
        assert!(scene.normal_at(32, 32).is_some());
        assert!(scene.normal_at(0, 0).is_none());
        // Center normal faces the camera.
        let n = scene.normal_at(32, 32).unwrap();
        assert!(n.z > 0.9);
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let map = Cubemap::random(4, &mut rng);
        let mut map2 = Cubemap::new(4);
        map2.set_params(&map.to_params());
        assert_eq!(map, map2);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let scene = NvScene::new(16, 16);
        let mut rng = StdRng::seed_from_u64(3);
        let mut map = Cubemap::random(4, &mut rng);
        let target = render(&scene, &Cubemap::random(4, &mut rng));

        let out = render(&scene, &map);
        let (_, pg) = l2_loss(&out, &target);
        let analytic = flatten_grads(&backward(&scene, &map, &pg));

        let mut params = map.to_params();
        let h = 1e-2f32;
        let mut checked = 0;
        for idx in (0..params.len()).step_by(7) {
            let orig = params[idx];
            params[idx] = orig + h;
            map.set_params(&params);
            let lp = l2_loss(&render(&scene, &map), &target).0;
            params[idx] = orig - h;
            map.set_params(&params);
            let lm = l2_loss(&render(&scene, &map), &target).0;
            params[idx] = orig;
            map.set_params(&params);
            let fd = (lp - lm) / (2.0 * h);
            if fd.abs() < 1e-7 && analytic[idx].abs() < 1e-7 {
                continue;
            }
            assert!(
                (fd - analytic[idx]).abs() <= 1e-3 + 0.1 * fd.abs(),
                "param {idx}: analytic {} vs fd {fd}",
                analytic[idx]
            );
            checked += 1;
        }
        assert!(checked > 3);
    }

    #[test]
    fn training_converges() {
        let scene = NvScene::new(32, 32);
        let mut rng = StdRng::seed_from_u64(4);
        let target_map = Cubemap::random(4, &mut rng);
        let target = render(&scene, &target_map);
        let mut map = Cubemap::new(4);
        let mut opt = Adam::new(map.len() * 3, 0.05);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let out = render(&scene, &map);
            let (loss, pg) = l2_loss(&out, &target);
            first.get_or_insert(loss);
            last = loss;
            let g = flatten_grads(&backward(&scene, &map, &pg));
            let mut params = map.to_params();
            opt.step(&mut params, &g);
            map.set_params(&params);
        }
        assert!(
            last < first.unwrap() * 0.2,
            "loss should drop 5×: {first:?} → {last}"
        );
    }
}

//! Training loops for the 2D and 3D Gaussian models — the full paper
//! Fig. 2 pipeline (render → loss → gradient computation → parameter
//! update) with the artifact's quality metrics (PSNR↑, L1↓).

use serde::{Deserialize, Serialize};

use crate::gaussian::{self, GaussianModel, NoopRecorder};
use crate::image::{l1, psnr, Image};
use crate::loss::{l1_loss, l2_loss, PixelGrads};
use crate::math::Vec3;
use crate::optim::Adam;
use crate::projection::{self, Camera, Gaussian3DModel, PARAMS_PER_GAUSSIAN_3D};
use crate::ssim::dssim_l1_loss;

/// Which training loss to use.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LossKind {
    /// Mean absolute error.
    L1,
    /// Mean squared error.
    L2,
    /// The 3DGS loss `(1−λ)·L1 + λ·(1−SSIM)` (requires images ≥ 11×11).
    DssimL1(f32),
}

impl LossKind {
    fn evaluate(self, render: &Image, target: &Image) -> (f32, PixelGrads) {
        match self {
            LossKind::L1 => l1_loss(render, target),
            LossKind::L2 => l2_loss(render, target),
            LossKind::DssimL1(lambda) => dssim_l1_loss(render, target, lambda),
        }
    }
}

/// Training-loop configuration.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Optimization steps.
    pub iters: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Loss function.
    pub loss: LossKind,
    /// Background color composited behind the splats.
    pub background: Vec3,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            iters: 200,
            lr: 0.02,
            loss: LossKind::L2,
            background: Vec3::splat(0.0),
        }
    }
}

/// Metrics collected over a training run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// `(iteration, loss)` samples, one per step.
    pub history: Vec<(usize, f32)>,
    /// PSNR against the (first) target after training.
    pub final_psnr: f32,
    /// L1 against the (first) target after training.
    pub final_l1: f32,
}

impl TrainStats {
    /// The first recorded loss.
    pub fn initial_loss(&self) -> f32 {
        self.history.first().map_or(0.0, |&(_, l)| l)
    }

    /// The last recorded loss.
    pub fn final_loss(&self) -> f32 {
        self.history.last().map_or(0.0, |&(_, l)| l)
    }
}

/// Trains a 2D Gaussian model against a single target image.
///
/// # Panics
///
/// Panics if the target size is incompatible with the chosen loss.
pub fn train_2d(model: &mut GaussianModel, target: &Image, cfg: &TrainConfig) -> TrainStats {
    let width = target.width();
    let height = target.height();
    let mut opt = Adam::new(model.len() * gaussian::PARAMS_PER_GAUSSIAN, cfg.lr);
    let mut history = Vec::with_capacity(cfg.iters);
    for iter in 0..cfg.iters {
        let out = gaussian::render(model, width, height, cfg.background);
        let (loss, pixel_grads) = cfg.loss.evaluate(&out.image, target);
        history.push((iter, loss));
        let raster = gaussian::backward(model, &out, &pixel_grads, &mut NoopRecorder);
        let grads = gaussian::param_grads(model, &raster);
        let mut params = model.to_params();
        opt.step(&mut params, &grads);
        model.set_params(&params);
    }
    let final_img = gaussian::render(model, width, height, cfg.background).image;
    TrainStats {
        history,
        final_psnr: psnr(&final_img, target),
        final_l1: l1(&final_img, target),
    }
}

/// Trains a 3D Gaussian model from multiple posed views (scene
/// reconstruction), cycling through the views round-robin.
///
/// # Panics
///
/// Panics if `views` is empty or a target size mismatches its camera.
pub fn train_3d(
    model: &mut Gaussian3DModel,
    views: &[(Camera, Image)],
    cfg: &TrainConfig,
) -> TrainStats {
    assert!(!views.is_empty(), "need at least one training view");
    for (cam, img) in views {
        assert_eq!(
            (cam.width, cam.height),
            (img.width(), img.height()),
            "camera/target size mismatch"
        );
    }
    let mut opt = Adam::new(model.len() * PARAMS_PER_GAUSSIAN_3D, cfg.lr);
    let mut history = Vec::with_capacity(cfg.iters);
    for iter in 0..cfg.iters {
        let (cam, target) = &views[iter % views.len()];
        let proj = projection::project(model, cam);
        let out = gaussian::render_scene(&proj.splats, cam.width, cam.height, cfg.background);
        let (loss, pixel_grads) = cfg.loss.evaluate(&out.image, target);
        history.push((iter, loss));
        let raster = gaussian::backward_scene(&proj.splats, &out, &pixel_grads, &mut NoopRecorder);
        let grads = projection::project_backward(model, cam, &proj, &raster);
        let mut params = model.to_params();
        opt.step(&mut params, &grads);
        model.set_params(&params);
    }
    let (cam0, target0) = &views[0];
    let proj = projection::project(model, cam0);
    let final_img =
        gaussian::render_scene(&proj.splats, cam0.width, cam0.height, cfg.background).image;
    TrainStats {
        history,
        final_psnr: psnr(&final_img, target0),
        final_l1: l1(&final_img, target0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math3d::Quat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_2d_improves_psnr() {
        let mut rng = StdRng::seed_from_u64(31);
        let target = gaussian::render(
            &GaussianModel::random(30, 48, 48, &mut rng),
            48,
            48,
            Vec3::splat(0.0),
        )
        .image;
        let mut model = GaussianModel::random(30, 48, 48, &mut rng);
        let before = psnr(
            &gaussian::render(&model, 48, 48, Vec3::splat(0.0)).image,
            &target,
        );
        let stats = train_2d(
            &mut model,
            &target,
            &TrainConfig {
                iters: 40,
                ..TrainConfig::default()
            },
        );
        assert!(
            stats.final_psnr > before,
            "{} -> {}",
            before,
            stats.final_psnr
        );
        assert!(stats.final_loss() < stats.initial_loss());
    }

    #[test]
    fn train_2d_with_dssim_loss_converges() {
        let mut rng = StdRng::seed_from_u64(32);
        let target = gaussian::render(
            &GaussianModel::random(20, 32, 32, &mut rng),
            32,
            32,
            Vec3::splat(0.1),
        )
        .image;
        let mut model = GaussianModel::random(20, 32, 32, &mut rng);
        let stats = train_2d(
            &mut model,
            &target,
            &TrainConfig {
                iters: 25,
                loss: LossKind::DssimL1(0.2),
                background: Vec3::splat(0.1),
                ..TrainConfig::default()
            },
        );
        assert!(stats.final_loss() < stats.initial_loss());
    }

    #[test]
    fn train_3d_multiview_improves() {
        let mut rng = StdRng::seed_from_u64(33);
        let gt = Gaussian3DModel::random(10, 0.7, &mut rng);
        let views: Vec<(Camera, Image)> = [Vec3::new(0.0, 0.0, -4.0), Vec3::new(3.0, 1.0, -2.0)]
            .into_iter()
            .map(|pos| {
                let cam =
                    Camera::look_at(pos, Vec3::default(), Vec3::new(0.0, 1.0, 0.0), 0.9, 40, 40);
                let img = gaussian::render_scene(
                    &projection::project(&gt, &cam).splats,
                    40,
                    40,
                    Vec3::splat(0.0),
                )
                .image;
                (cam, img)
            })
            .collect();

        let mut model = Gaussian3DModel::random(10, 0.7, &mut rng);
        let stats = train_3d(
            &mut model,
            &views,
            &TrainConfig {
                iters: 30,
                ..TrainConfig::default()
            },
        );
        assert!(stats.final_loss() < stats.initial_loss());
        let _ = Quat::IDENTITY;
    }

    #[test]
    #[should_panic(expected = "at least one training view")]
    fn train_3d_without_views_panics() {
        let mut model = Gaussian3DModel::new();
        let _ = train_3d(&mut model, &[], &TrainConfig::default());
    }
}

//! Loss functions and their pixel gradients.
//!
//! The training pipeline (paper Fig. 2) computes a loss between the
//! rendered and reference images and backpropagates per-pixel gradients
//! `dL/dC` into the gradient-computation kernel.

use crate::image::Image;
use crate::math::Vec3;

/// The per-pixel gradient field `dL/dC` produced by a loss.
#[derive(Clone, Debug, PartialEq)]
pub struct PixelGrads {
    grads: Vec<Vec3>,
    width: usize,
    height: usize,
}

impl PixelGrads {
    /// Builds a gradient field from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != width * height`.
    pub fn from_raw(grads: Vec<Vec3>, width: usize, height: usize) -> Self {
        assert_eq!(grads.len(), width * height, "gradient field size mismatch");
        PixelGrads {
            grads,
            width,
            height,
        }
    }

    /// Gradient at pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> Vec3 {
        assert!(x < self.width && y < self.height);
        self.grads[y * self.width + x]
    }

    /// Field width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Field height.
    pub fn height(&self) -> usize {
        self.height
    }
}

/// L1 loss: `L = mean |render − target|`, returning `(loss, dL/dC)`.
///
/// The gradient of `|x|` at 0 is taken as 0.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn l1_loss(render: &Image, target: &Image) -> (f32, PixelGrads) {
    assert_eq!(
        (render.width(), render.height()),
        (target.width(), target.height()),
        "image dimensions must match"
    );
    let n = (render.pixels().len() * 3) as f32;
    let scale = 1.0 / n;
    let mut total = 0.0f64;
    let grads = render
        .pixels()
        .iter()
        .zip(target.pixels())
        .map(|(r, t)| {
            let d = *r - *t;
            total += f64::from(d.x.abs() + d.y.abs() + d.z.abs());
            Vec3::new(
                signum_or_zero(d.x) * scale,
                signum_or_zero(d.y) * scale,
                signum_or_zero(d.z) * scale,
            )
        })
        .collect();
    (
        (total / f64::from(n)) as f32,
        PixelGrads {
            grads,
            width: render.width(),
            height: render.height(),
        },
    )
}

/// L2 (MSE) loss: `L = mean (render − target)²`, returning `(loss, dL/dC)`.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn l2_loss(render: &Image, target: &Image) -> (f32, PixelGrads) {
    assert_eq!(
        (render.width(), render.height()),
        (target.width(), target.height()),
        "image dimensions must match"
    );
    let n = (render.pixels().len() * 3) as f32;
    let scale = 2.0 / n;
    let mut total = 0.0f64;
    let grads = render
        .pixels()
        .iter()
        .zip(target.pixels())
        .map(|(r, t)| {
            let d = *r - *t;
            total += f64::from(d.x * d.x + d.y * d.y + d.z * d.z);
            d * scale
        })
        .collect();
    (
        (total / f64::from(n)) as f32,
        PixelGrads {
            grads,
            width: render.width(),
            height: render.height(),
        },
    )
}

fn signum_or_zero(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_loss_value_and_grad_sign() {
        let render = Image::filled(2, 2, Vec3::splat(0.8));
        let target = Image::filled(2, 2, Vec3::splat(0.5));
        let (loss, grads) = l1_loss(&render, &target);
        assert!((loss - 0.3).abs() < 1e-6);
        // Render too bright ⇒ positive gradient (decrease).
        assert!(grads.get(0, 0).x > 0.0);
    }

    #[test]
    fn l2_matches_finite_difference() {
        let mut render = Image::filled(1, 1, Vec3::new(0.4, 0.6, 0.2));
        let target = Image::filled(1, 1, Vec3::new(0.5, 0.5, 0.5));
        let (_, grads) = l2_loss(&render, &target);
        let h = 1e-3f32;
        let base = |img: &Image| l2_loss(img, &target).0;
        let l0 = base(&render);
        render.pixels_mut()[0].x += h;
        let l1v = base(&render);
        let fd = (l1v - l0) / h;
        assert!(
            (grads.get(0, 0).x - fd).abs() < 1e-3,
            "{} vs {fd}",
            grads.get(0, 0).x
        );
    }

    #[test]
    fn zero_difference_gives_zero_grad() {
        let img = Image::filled(2, 2, Vec3::splat(0.5));
        let (loss, grads) = l1_loss(&img, &img);
        assert_eq!(loss, 0.0);
        assert_eq!(grads.get(1, 1), Vec3::default());
    }
}

//! 3D math for the full Gaussian-splatting projection pipeline:
//! 3×3 matrices and unit quaternions, with the derivative helpers the
//! projection backward pass needs.

use serde::{Deserialize, Serialize};

use crate::math::Vec3;

/// A row-major 3×3 matrix.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub m: [[f32; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Builds a matrix from rows.
    pub const fn from_rows(r0: [f32; 3], r1: [f32; 3], r2: [f32; 3]) -> Self {
        Mat3 { m: [r0, r1, r2] }
    }

    /// A diagonal matrix.
    pub fn diag(d: Vec3) -> Self {
        Mat3::from_rows([d.x, 0.0, 0.0], [0.0, d.y, 0.0], [0.0, 0.0, d.z])
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3::from_rows(
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        )
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &Mat3) -> Mat3 {
        let mut out = Mat3::default();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = (0..3).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// `self + rhs`.
    pub fn add(&self, rhs: &Mat3) -> Mat3 {
        let mut out = *self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] += rhs.m[i][j];
            }
        }
        out
    }

    /// `self` scaled by `s`.
    pub fn scale(&self, s: f32) -> Mat3 {
        let mut out = *self;
        for row in &mut out.m {
            for v in row {
                *v *= s;
            }
        }
        out
    }
}

/// A quaternion `(w, x, y, z)` used as a rotation (normalized on use,
/// exactly as the 3DGS CUDA kernels do).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f32,
    /// i component.
    pub x: f32,
    /// j component.
    pub y: f32,
    /// k component.
    pub z: f32,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion.
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Self {
        Quat { w, x, y, z }
    }

    /// Quaternion for a rotation of `angle` radians about `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Self {
        let a = axis.normalized();
        let (s, c) = (angle / 2.0).sin_cos();
        Quat::new(c, a.x * s, a.y * s, a.z * s)
    }

    /// Squared norm.
    pub fn norm_sq(&self) -> f32 {
        self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Normalized copy (identity if the norm is ~zero).
    pub fn normalized(&self) -> Quat {
        let n = self.norm_sq().sqrt();
        if n < 1e-12 {
            Quat::IDENTITY
        } else {
            Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
        }
    }

    /// The rotation matrix of the *normalized* quaternion.
    pub fn to_matrix(&self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_rows(
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        )
    }

    /// Backpropagates a gradient w.r.t. the rotation-matrix entries to
    /// the *raw* (unnormalized) quaternion components, including the
    /// normalization Jacobian — mirroring the 3DGS backward kernel.
    pub fn matrix_backward(&self, grad_r: &Mat3) -> Quat {
        let n = self.norm_sq().sqrt().max(1e-12);
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        let g = &grad_r.m;

        // dR/d(normalized components) — from the matrix entries above.
        let dw = 2.0
            * (-z * g[0][1] + y * g[0][2] + z * g[1][0] - x * g[1][2] - y * g[2][0] + x * g[2][1]);
        let dx = 2.0
            * (y * g[0][1] + z * g[0][2] + y * g[1][0] - 2.0 * x * g[1][1] - w * g[1][2]
                + z * g[2][0]
                + w * g[2][1]
                - 2.0 * x * g[2][2]);
        let dy = 2.0
            * (-2.0 * y * g[0][0] + x * g[0][1] + w * g[0][2] + x * g[1][0] + z * g[1][2]
                - w * g[2][0]
                + z * g[2][1]
                - 2.0 * y * g[2][2]);
        let dz = 2.0
            * (-2.0 * z * g[0][0] - w * g[0][1] + x * g[0][2] + w * g[1][0] - 2.0 * z * g[1][1]
                + y * g[1][2]
                + x * g[2][0]
                + y * g[2][1]);

        // Through normalization: d(q/|q|)/dq = (I − q̂ q̂ᵀ) / |q|.
        let dot = dw * w + dx * x + dy * y + dz * z;
        Quat::new(
            (dw - w * dot) / n,
            (dx - x * dot) / n,
            (dy - y * dot) / n,
            (dz - z * dot) / n,
        )
    }
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn mat3_identity_and_mul() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(a.mul(&Mat3::IDENTITY), a);
        assert_eq!(Mat3::IDENTITY.mul(&a), a);
        let v = Vec3::new(1.0, 0.0, -1.0);
        let av = a.mul_vec(v);
        assert_eq!(av, Vec3::new(-2.0, -2.0, -2.0));
    }

    #[test]
    fn mat3_transpose_involution() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mat3_diag_scale_add() {
        let d = Mat3::diag(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(d.mul_vec(Vec3::splat(1.0)), Vec3::new(2.0, 3.0, 4.0));
        let s = d.scale(0.5);
        assert_eq!(s.m[0][0], 1.0);
        let sum = d.add(&Mat3::IDENTITY);
        assert_eq!(sum.m[2][2], 5.0);
    }

    #[test]
    fn quat_identity_matrix() {
        assert_eq!(Quat::IDENTITY.to_matrix(), Mat3::IDENTITY);
    }

    #[test]
    fn quat_rotation_matrix_is_orthonormal() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 1.1);
        let r = q.to_matrix();
        let rrt = r.mul(&r.transpose());
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(rrt.m[i][j], expect, 1e-5);
            }
        }
    }

    #[test]
    fn quat_z_rotation_matches_2d() {
        let angle = 0.7f32;
        let q = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), angle);
        let r = q.to_matrix();
        assert_close(r.m[0][0], angle.cos(), 1e-6);
        assert_close(r.m[0][1], -angle.sin(), 1e-6);
        assert_close(r.m[1][0], angle.sin(), 1e-6);
    }

    #[test]
    fn unnormalized_quat_rotates_like_normalized() {
        let q = Quat::new(2.0, 0.4, -0.8, 1.0);
        assert_eq!(q.to_matrix(), q.normalized().to_matrix());
    }

    /// The matrix backward must match finite differences on the raw
    /// (unnormalized) quaternion, including the normalization Jacobian.
    #[test]
    fn matrix_backward_matches_finite_differences() {
        let q = Quat::new(0.9, 0.3, -0.4, 0.2);
        // Loss = Σ w_ij R_ij with fixed arbitrary weights.
        let weights = Mat3::from_rows([0.3, -1.2, 0.7], [0.9, 0.1, -0.4], [-0.6, 0.8, 1.1]);
        let loss = |q: &Quat| {
            let r = q.to_matrix();
            let mut sum = 0.0f32;
            for i in 0..3 {
                for j in 0..3 {
                    sum += weights.m[i][j] * r.m[i][j];
                }
            }
            sum
        };
        let analytic = q.matrix_backward(&weights);
        let h = 1e-3f32;
        type Setter = fn(&mut Quat, f32);
        let comps: [(f32, Setter, f32); 4] = [
            (analytic.w, |q, v| q.w = v, q.w),
            (analytic.x, |q, v| q.x = v, q.x),
            (analytic.y, |q, v| q.y = v, q.y),
            (analytic.z, |q, v| q.z = v, q.z),
        ];
        for (an, set, orig) in comps {
            let mut qp = q;
            set(&mut qp, orig + h);
            let mut qm = q;
            set(&mut qm, orig - h);
            let fd = (loss(&qp) - loss(&qm)) / (2.0 * h);
            assert_close(an, fd, 2e-2);
        }
    }
}

//! RGB float images and the quality metrics used by the paper's artifact
//! (PSNR↑, L1↓).

use serde::{Deserialize, Serialize};

use crate::math::Vec3;

/// A row-major RGB f32 image.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<Vec3>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            pixels: vec![Vec3::default(); width * height],
        }
    }

    /// Creates an image filled with `color`.
    pub fn filled(width: usize, height: usize, color: Vec3) -> Self {
        let mut img = Image::new(width, height);
        img.pixels.fill(color);
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> Vec3 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, color: Vec3) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[y * self.width + x] = color;
    }

    /// All pixels, row-major.
    pub fn pixels(&self) -> &[Vec3] {
        &self.pixels
    }

    /// Mutable pixels, row-major.
    pub fn pixels_mut(&mut self) -> &mut [Vec3] {
        &mut self.pixels
    }
}

/// Mean absolute error between two images (the artifact's `L1↓`).
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn l1(a: &Image, b: &Image) -> f32 {
    assert_eq!(
        (a.width, a.height),
        (b.width, b.height),
        "image dimensions must match"
    );
    let mut sum = 0.0f64;
    for (pa, pb) in a.pixels.iter().zip(&b.pixels) {
        sum += f64::from((pa.x - pb.x).abs())
            + f64::from((pa.y - pb.y).abs())
            + f64::from((pa.z - pb.z).abs());
    }
    (sum / (a.pixels.len() as f64 * 3.0)) as f32
}

/// Mean squared error between two images.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn mse(a: &Image, b: &Image) -> f32 {
    assert_eq!(
        (a.width, a.height),
        (b.width, b.height),
        "image dimensions must match"
    );
    let mut sum = 0.0f64;
    for (pa, pb) in a.pixels.iter().zip(&b.pixels) {
        let d = *pa - *pb;
        sum += f64::from(d.x * d.x) + f64::from(d.y * d.y) + f64::from(d.z * d.z);
    }
    (sum / (a.pixels.len() as f64 * 3.0)) as f32
}

/// Peak signal-to-noise ratio in dB for \[0,1\]-range images (the
/// artifact's `PSNR↑`). Returns `f32::INFINITY` for identical images.
pub fn psnr(a: &Image, b: &Image) -> f32 {
    let err = mse(a, b);
    if err <= 0.0 {
        f32::INFINITY
    } else {
        -10.0 * err.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        img.set(3, 2, Vec3::new(1.0, 0.5, 0.25));
        assert_eq!(img.get(3, 2), Vec3::new(1.0, 0.5, 0.25));
        assert_eq!(img.get(0, 0), Vec3::default());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let _ = Image::new(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = Image::new(0, 4);
    }

    #[test]
    fn identical_images_have_infinite_psnr_and_zero_l1() {
        let img = Image::filled(8, 8, Vec3::splat(0.3));
        assert_eq!(l1(&img, &img), 0.0);
        assert_eq!(psnr(&img, &img), f32::INFINITY);
    }

    #[test]
    fn uniform_error_metrics() {
        let a = Image::filled(8, 8, Vec3::splat(0.5));
        let b = Image::filled(8, 8, Vec3::splat(0.6));
        assert!((l1(&a, &b) - 0.1).abs() < 1e-6);
        // MSE = 0.01 ⇒ PSNR = 20 dB.
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-3);
    }

    #[test]
    fn psnr_improves_as_images_converge() {
        let target = Image::filled(4, 4, Vec3::splat(0.5));
        let far = Image::filled(4, 4, Vec3::splat(0.9));
        let near = Image::filled(4, 4, Vec3::splat(0.55));
        assert!(psnr(&near, &target) > psnr(&far, &target));
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn mismatched_dims_panic() {
        let _ = l1(&Image::new(2, 2), &Image::new(3, 2));
    }
}

//! Kernel-trace generation: converts the functional forward/backward
//! passes into warp-level [`KernelTrace`]s for the GPU simulator.
//!
//! The gradient-computation traces carry the *actual* per-lane gradient
//! values and parameter addresses produced by the backward passes, so
//! applying a trace's atomics to a [`warp_trace::GlobalMemory`] exactly
//! reproduces the CPU-computed gradient arrays (tested in this module) —
//! and any ARC-SW/CCCL rewrite of the trace must preserve them.

use warp_trace::{
    AtomicBundle, AtomicInstr, ComputeKind, KernelKind, KernelTrace, LaneOp, WarpTrace,
    WarpTraceBuilder,
};

use crate::gaussian::{self, GaussianModel, GradRecorder, LaneGrad, RenderOutput};
use crate::loss::PixelGrads;
use crate::nvdiff::{Cubemap, NvScene};
use crate::pulsar::{self, SphereGradObserver, SphereLaneGrad, SphereModel, SphereRenderOutput};

/// Address layout for per-primitive gradient arrays: parameter array `p`
/// lives at base `(p + 1) << 28`, element `id` at `base + 4·id`.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamLayout {
    bases: Vec<u64>,
}

impl ParamLayout {
    /// A layout of `n` scalar gradient arrays.
    pub fn scalar_arrays(n: usize) -> Self {
        ParamLayout {
            bases: (0..n).map(|p| ((p as u64) + 1) << 28).collect(),
        }
    }

    /// Number of parameter arrays.
    pub fn num_params(&self) -> usize {
        self.bases.len()
    }

    /// The address of primitive `id`'s gradient in array `param`.
    ///
    /// # Panics
    ///
    /// Panics if `param` is out of range.
    pub fn addr(&self, param: usize, id: u32) -> u64 {
        self.bases[param] + u64::from(id) * 4
    }
}

/// Instruction-cost knobs for the generated gradient kernels. The
/// defaults approximate the arithmetic of the 3DGS backward kernel.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TraceCosts {
    /// Integer/branch instructions per list iteration (`COND` checks).
    pub cond_cost: u16,
    /// FFMA instructions per iteration with at least one active lane.
    pub grad_cost: u16,
    /// Iterations between primitive-data loads.
    pub load_every: u16,
    /// Sectors per primitive-data load.
    pub load_sectors: u16,
}

impl Default for TraceCosts {
    fn default() -> Self {
        TraceCosts {
            cond_cost: 2,
            grad_cost: 20,
            load_every: 8,
            load_sectors: 4,
        }
    }
}

// ---------------------------------------------------------------------
// Gaussian splatting (3DGS-style) traces.
// ---------------------------------------------------------------------

/// Scalar order of the Gaussian raster gradients:
/// `[mean.x, mean.y, conic.a, conic.b, conic.c, opacity, r, g, b]`.
pub const GAUSSIAN_PARAM_COUNT: usize = 9;

fn gaussian_scalars(g: &LaneGrad) -> [f32; GAUSSIAN_PARAM_COUNT] {
    [
        g.mean.x, g.mean.y, g.conic.a, g.conic.b, g.conic.c, g.opacity, g.color.x, g.color.y,
        g.color.z,
    ]
}

/// The standard layout for Gaussian raster-gradient arrays.
pub fn gaussian_layout() -> ParamLayout {
    ParamLayout::scalar_arrays(GAUSSIAN_PARAM_COUNT)
}

struct GaussianTraceRecorder {
    costs: TraceCosts,
    layout: ParamLayout,
    builder: WarpTraceBuilder,
    warps: Vec<WarpTrace>,
    iter_in_warp: u16,
}

impl GradRecorder for GaussianTraceRecorder {
    fn begin_warp(&mut self, _tile: usize, _lanes: &[Option<(usize, usize)>; 32]) {
        self.iter_in_warp = 0;
    }

    fn record(&mut self, gid: u32, grads: &[Option<LaneGrad>; 32]) {
        // Periodic collective load of primitive data (3DGS stages
        // Gaussians through shared memory in batches).
        if self.iter_in_warp.is_multiple_of(self.costs.load_every) {
            self.builder.load(self.costs.load_sectors);
        }
        self.iter_in_warp = self.iter_in_warp.wrapping_add(1);
        // COND evaluation happens for every lane, every iteration.
        self.builder
            .compute(ComputeKind::IntAlu, self.costs.cond_cost);

        let mut params: Vec<Vec<LaneOp>> = vec![Vec::new(); GAUSSIAN_PARAM_COUNT];
        for (lane, grad) in grads.iter().enumerate() {
            let Some(g) = grad else { continue };
            for (p, &value) in gaussian_scalars(g).iter().enumerate() {
                params[p].push(LaneOp {
                    lane: lane as u8,
                    addr: self.layout.addr(p, gid),
                    value,
                });
            }
        }
        if params[0].is_empty() {
            return; // whole warp skipped this Gaussian
        }
        self.builder
            .compute(ComputeKind::Ffma, self.costs.grad_cost);
        let instrs = params.into_iter().map(AtomicInstr::new).collect();
        // Tile loops are warp-uniform: SW-B's Fig. 17 transform applies.
        self.builder.atomic_bundle(AtomicBundle::new(instrs));
    }

    fn end_warp(&mut self) {
        let warp = self.builder.finish();
        if !warp.instrs.is_empty() {
            self.warps.push(warp);
        }
    }
}

/// Runs the Gaussian backward pass and emits its gradient-computation
/// kernel trace along with the accumulated raster gradients.
pub fn gaussian_gradcomp_trace(
    model: &GaussianModel,
    out: &RenderOutput,
    pixel_grads: &PixelGrads,
    costs: TraceCosts,
) -> (KernelTrace, gaussian::RasterGrads) {
    splat_gradcomp_trace(&model.to_splats(), out, pixel_grads, costs)
}

/// The splat-scene form of [`gaussian_gradcomp_trace`], usable with the
/// 3D projection pipeline (`projection::project` → `render_scene` →
/// this).
pub fn splat_gradcomp_trace(
    scene: &gaussian::SplatScene,
    out: &RenderOutput,
    pixel_grads: &PixelGrads,
    costs: TraceCosts,
) -> (KernelTrace, gaussian::RasterGrads) {
    let mut recorder = GaussianTraceRecorder {
        costs,
        layout: gaussian_layout(),
        builder: WarpTraceBuilder::new(),
        warps: Vec::new(),
        iter_in_warp: 0,
    };
    let grads = gaussian::backward_scene(scene, out, pixel_grads, &mut recorder);
    (
        KernelTrace::new("gaussian-gradcomp", KernelKind::GradCompute, recorder.warps),
        grads,
    )
}

/// Emits the forward (rasterization) kernel trace from the tile lists:
/// compute-dominated with periodic loads, no atomics.
pub fn gaussian_forward_trace(out: &RenderOutput, costs: TraceCosts) -> KernelTrace {
    let mut warps = Vec::new();
    let warps_per_tile = gaussian::TILE / gaussian::WARP_H;
    for list in &out.tiles.lists {
        if list.is_empty() {
            continue;
        }
        for _ in 0..warps_per_tile {
            let mut b = WarpTraceBuilder::new();
            for (k, _gid) in list.iter().enumerate() {
                if k % costs.load_every as usize == 0 {
                    b.load(costs.load_sectors);
                }
                // Forward blending: conic evaluation, exp, alpha test,
                // blend per channel.
                b.compute(ComputeKind::Ffma, 18)
                    .compute(ComputeKind::Sfu, 2);
            }
            b.store(2);
            warps.push(b.finish());
        }
    }
    KernelTrace::new("gaussian-forward", KernelKind::Forward, warps)
}

/// Emits the loss kernel trace: one warp per 32 pixels, two image loads,
/// elementwise math, one store.
pub fn loss_trace(width: usize, height: usize) -> KernelTrace {
    let warps = (width * height).div_ceil(32);
    let mut out = Vec::with_capacity(warps);
    for _ in 0..warps {
        let mut b = WarpTraceBuilder::new();
        b.load(4).load(4).compute(ComputeKind::Fp32, 10).store(4);
        out.push(b.finish());
    }
    KernelTrace::new("l1-loss", KernelKind::Loss, out)
}

// ---------------------------------------------------------------------
// NvDiffRec-style cubemap traces.
// ---------------------------------------------------------------------

/// NvDiff cubemap gradients use one interleaved array: texel `t`,
/// channel `c` lives at `NV_BASE + 4·(3t + c)`.
pub const NV_BASE: u64 = 0x4000_0000;

/// Address of a cubemap gradient word.
pub fn nv_addr(texel: usize, channel: usize) -> u64 {
    NV_BASE + 4 * (3 * texel as u64 + channel as u64)
}

/// Emits the NvDiff gradient-computation trace: each 16×2-pixel warp
/// loops over the reflection samples; covered lanes scatter RGB
/// gradients into their own texel (adjacent pixels often share one —
/// partial intra-warp locality), uncovered lanes are inactive.
/// Returns the trace and the per-texel gradients (for verification).
pub fn nvdiff_gradcomp_trace(
    scene: &NvScene,
    map: &Cubemap,
    pixel_grads: &PixelGrads,
) -> (KernelTrace, Vec<crate::math::Vec3>) {
    let grads = crate::nvdiff::backward(scene, map, pixel_grads);
    let w = 1.0 / scene.samples as f32;
    let mut warps = Vec::new();
    for y0 in (0..scene.height).step_by(2) {
        for x0 in (0..scene.width).step_by(16) {
            let mut b = WarpTraceBuilder::new();
            // G-buffer load + mask computation.
            b.load(4).compute(ComputeKind::IntAlu, 3);
            for s in 0..scene.samples {
                // Reflection math for the sample.
                b.compute(ComputeKind::Ffma, 10)
                    .compute(ComputeKind::Sfu, 2);
                let mut params: Vec<Vec<LaneOp>> = vec![Vec::new(); 3];
                for lane in 0..32usize {
                    let x = x0 + lane % 16;
                    let y = y0 + lane / 16;
                    if x >= scene.width || y >= scene.height {
                        continue;
                    }
                    let Some(dir) = scene.reflection(x, y, s) else {
                        continue; // off-sphere: inactive lane
                    };
                    let texel = map.texel_index(dir);
                    let g = pixel_grads.get(x, y) * w;
                    for (c, &value) in [g.x, g.y, g.z].iter().enumerate() {
                        params[c].push(LaneOp {
                            lane: lane as u8,
                            addr: nv_addr(texel, c),
                            value,
                        });
                    }
                }
                if params[0].is_empty() {
                    continue;
                }
                let instrs = params.into_iter().map(AtomicInstr::new).collect();
                b.atomic_bundle(AtomicBundle::new(instrs));
            }
            let warp = b.finish();
            if !warp.instrs.is_empty() {
                warps.push(warp);
            }
        }
    }
    (
        KernelTrace::new("nvdiff-gradcomp", KernelKind::GradCompute, warps),
        grads,
    )
}

/// Emits the NvDiff forward trace (shading each covered pixel).
pub fn nvdiff_forward_trace(scene: &NvScene) -> KernelTrace {
    let mut warps = Vec::new();
    for _y0 in (0..scene.height).step_by(2) {
        for _x0 in (0..scene.width).step_by(16) {
            let mut b = WarpTraceBuilder::new();
            b.load(4).compute(ComputeKind::IntAlu, 3);
            for _ in 0..scene.samples {
                b.compute(ComputeKind::Ffma, 12)
                    .compute(ComputeKind::Sfu, 2)
                    .load(2);
            }
            b.store(2);
            warps.push(b.finish());
        }
    }
    KernelTrace::new("nvdiff-forward", KernelKind::Forward, warps)
}

// ---------------------------------------------------------------------
// Pulsar-style sphere traces.
// ---------------------------------------------------------------------

/// Scalar order of the sphere gradients:
/// `[center.x, center.y, radius, opacity_logit, r, g, b]`.
pub const SPHERE_PARAM_COUNT: usize = 7;

/// The standard layout for sphere gradient arrays.
pub fn sphere_layout() -> ParamLayout {
    ParamLayout::scalar_arrays(SPHERE_PARAM_COUNT)
}

fn sphere_scalars(g: &SphereLaneGrad) -> [f32; SPHERE_PARAM_COUNT] {
    [
        g.center.x,
        g.center.y,
        g.radius,
        g.opacity_logit,
        g.color.x,
        g.color.y,
        g.color.z,
    ]
}

/// Per-lane contribution slot at one loop iteration: `(sphere id, grad)`.
type LaneSlots = [Option<(u32, SphereLaneGrad)>; 32];

struct PulsarCollector {
    width: usize,
    /// contributions[warp][k] → per-lane (sid, grad)
    contributions: Vec<Vec<LaneSlots>>,
    warps_x: usize,
}

impl PulsarCollector {
    fn warp_of(&self, x: usize, y: usize) -> (usize, usize) {
        let warp = (y / 2) * self.warps_x + x / 16;
        let lane = (y % 2) * 16 + x % 16;
        (warp, lane)
    }
}

impl SphereGradObserver for PulsarCollector {
    fn contribution(&mut self, x: usize, y: usize, k: usize, sid: u32, grad: &SphereLaneGrad) {
        let _ = self.width;
        let (warp, lane) = self.warp_of(x, y);
        let slots = &mut self.contributions[warp];
        if slots.len() <= k {
            slots.resize(k + 1, [None; 32]);
        }
        slots[k][lane] = Some((sid, *grad));
    }
}

/// Emits the Pulsar gradient-computation trace: per-thread cell lists
/// make the loop non-warp-uniform (bundles are `non_uniform`, so SW-B
/// is ineligible — paper Fig. 23), and lanes within a warp may target
/// different spheres at the same iteration.
/// Returns the trace and the accumulated sphere gradients.
pub fn pulsar_gradcomp_trace(
    model: &SphereModel,
    out: &SphereRenderOutput,
    pixel_grads: &PixelGrads,
    costs: TraceCosts,
) -> (KernelTrace, pulsar::SphereGrads) {
    let width = out.image.width();
    let height = out.image.height();
    let warps_x = width.div_ceil(16);
    let warps_y = height.div_ceil(2);
    let mut collector = PulsarCollector {
        width,
        contributions: vec![Vec::new(); warps_x * warps_y],
        warps_x,
    };
    let grads = pulsar::backward(model, out, pixel_grads, &mut collector);
    let layout = sphere_layout();

    let mut warps = Vec::new();
    for slots in collector.contributions {
        if slots.is_empty() {
            continue;
        }
        let mut b = WarpTraceBuilder::new();
        b.load(4);
        // Backward order: the collector keyed by forward list index k;
        // the kernel walks k descending.
        for lanes in slots.iter().rev() {
            b.compute(ComputeKind::IntAlu, costs.cond_cost);
            let mut params: Vec<Vec<LaneOp>> = vec![Vec::new(); SPHERE_PARAM_COUNT];
            for (lane, slot) in lanes.iter().enumerate() {
                let Some((sid, g)) = slot else { continue };
                for (p, &value) in sphere_scalars(g).iter().enumerate() {
                    params[p].push(LaneOp {
                        lane: lane as u8,
                        addr: layout.addr(p, *sid),
                        value,
                    });
                }
            }
            if params[0].is_empty() {
                continue;
            }
            b.compute(ComputeKind::Ffma, costs.grad_cost);
            let instrs = params.into_iter().map(AtomicInstr::new).collect();
            b.atomic_bundle(AtomicBundle::non_uniform(instrs));
        }
        let warp = b.finish();
        if !warp.instrs.is_empty() {
            warps.push(warp);
        }
    }
    (
        KernelTrace::new("pulsar-gradcomp", KernelKind::GradCompute, warps),
        grads,
    )
}

/// Emits the Pulsar forward trace.
pub fn pulsar_forward_trace(out: &SphereRenderOutput) -> KernelTrace {
    let width = out.image.width();
    let height = out.image.height();
    let mut warps = Vec::new();
    for y0 in (0..height).step_by(2) {
        for x0 in (0..width).step_by(16) {
            let max_len = (0..2)
                .flat_map(|dy| (0..16).map(move |dx| (x0 + dx, y0 + dy)))
                .filter(|&(x, y)| x < width && y < height)
                .map(|(x, y)| out.cells.list_at(x, y).len())
                .max()
                .unwrap_or(0);
            let mut b = WarpTraceBuilder::new();
            b.load(2);
            for k in 0..max_len {
                if k % 8 == 0 {
                    b.load(2);
                }
                b.compute(ComputeKind::Ffma, 6);
            }
            b.store(2);
            warps.push(b.finish());
        }
    }
    KernelTrace::new("pulsar-forward", KernelKind::Forward, warps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{render, PARAMS_PER_GAUSSIAN};
    use crate::loss::l2_loss;
    use crate::math::{Vec2, Vec3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use warp_trace::{GlobalMemory, TraceStats};

    #[test]
    fn layout_addresses_are_disjoint_across_params() {
        let layout = ParamLayout::scalar_arrays(9);
        let mut addrs = std::collections::HashSet::new();
        for p in 0..9 {
            for id in 0..1000u32 {
                assert!(addrs.insert(layout.addr(p, id)));
            }
        }
    }

    fn gaussian_fixture() -> (GaussianModel, RenderOutput, PixelGrads) {
        let mut rng = StdRng::seed_from_u64(11);
        let model = GaussianModel::random(20, 48, 32, &mut rng);
        let target = render(
            &GaussianModel::random(20, 48, 32, &mut rng),
            48,
            32,
            Vec3::splat(0.0),
        )
        .image;
        let out = render(&model, 48, 32, Vec3::splat(0.0));
        let (_, pg) = l2_loss(&out.image, &target);
        (model, out, pg)
    }

    /// The central fidelity test: executing the trace's atomics
    /// reproduces the backward pass's gradient arrays.
    #[test]
    fn gaussian_trace_atomics_reproduce_raster_grads() {
        let (model, out, pg) = gaussian_fixture();
        let (trace, grads) = gaussian_gradcomp_trace(&model, &out, &pg, TraceCosts::default());
        let mut mem = GlobalMemory::new();
        mem.apply_trace(&trace);
        let layout = gaussian_layout();
        for gid in 0..model.len() as u32 {
            let expect = [
                grads.mean[gid as usize].x,
                grads.mean[gid as usize].y,
                grads.conic[gid as usize].a,
                grads.conic[gid as usize].b,
                grads.conic[gid as usize].c,
                grads.opacity[gid as usize],
                grads.color[gid as usize].x,
                grads.color[gid as usize].y,
                grads.color[gid as usize].z,
            ];
            for (p, &e) in expect.iter().enumerate() {
                let got = mem.read(layout.addr(p, gid));
                assert!(
                    (got - e).abs() <= 1e-4 + 1e-3 * e.abs(),
                    "gaussian {gid} param {p}: trace {got} vs backward {e}"
                );
            }
        }
        let _ = PARAMS_PER_GAUSSIAN;
    }

    #[test]
    fn gaussian_trace_has_high_intra_warp_locality() {
        let (model, out, pg) = gaussian_fixture();
        let (trace, _) = gaussian_gradcomp_trace(&model, &out, &pg, TraceCosts::default());
        let stats = TraceStats::compute(&trace);
        // Paper §3.1 Observation 1: nearly all warps single-address.
        assert!(
            stats.same_address_fraction() > 0.99,
            "got {}",
            stats.same_address_fraction()
        );
        assert!(stats.atomic_requests > 0);
    }

    #[test]
    fn gaussian_forward_trace_is_compute_heavy_without_atomics() {
        let (_, out, _) = gaussian_fixture();
        let trace = gaussian_forward_trace(&out, TraceCosts::default());
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.atomic_requests, 0);
        assert!(stats.compute_slots > 0);
        assert!(stats.load_sectors > 0);
    }

    #[test]
    fn loss_trace_shape() {
        let trace = loss_trace(64, 64);
        assert_eq!(trace.warps().len(), 128);
        assert_eq!(TraceStats::compute(&trace).atomic_requests, 0);
    }

    #[test]
    fn nvdiff_trace_atomics_reproduce_texel_grads() {
        let scene = NvScene::new(48, 32);
        let mut rng = StdRng::seed_from_u64(13);
        let map = Cubemap::random(8, &mut rng);
        let target = crate::nvdiff::render(&scene, &Cubemap::random(8, &mut rng));
        let out = crate::nvdiff::render(&scene, &map);
        let (_, pg) = l2_loss(&out, &target);
        let (trace, grads) = nvdiff_gradcomp_trace(&scene, &map, &pg);
        let mut mem = GlobalMemory::new();
        mem.apply_trace(&trace);
        for (t, g) in grads.iter().enumerate() {
            for (c, &e) in [g.x, g.y, g.z].iter().enumerate() {
                let got = mem.read(nv_addr(t, c));
                assert!(
                    (got - e).abs() <= 1e-4 + 1e-3 * e.abs(),
                    "texel {t} ch {c}: {got} vs {e}"
                );
            }
        }
    }

    #[test]
    fn nvdiff_trace_has_many_inactive_lanes() {
        let scene = NvScene::new(64, 64);
        let mut rng = StdRng::seed_from_u64(14);
        let map = Cubemap::random(8, &mut rng);
        let out = crate::nvdiff::render(&scene, &map);
        let (_, pg) = l2_loss(&out, &crate::image::Image::new(64, 64));
        let (trace, _) = nvdiff_gradcomp_trace(&scene, &map, &pg);
        let stats = TraceStats::compute(&trace);
        // Paper Fig. 7: NV workloads skew toward few active lanes.
        assert!(
            stats.mean_active_lanes() < 28.0,
            "mean active = {}",
            stats.mean_active_lanes()
        );
        // And full-warp bundles are a minority compared to 3DGS.
        assert!(stats.active_lanes.full_warp_fraction() < 0.8);
    }

    #[test]
    fn pulsar_trace_atomics_reproduce_sphere_grads() {
        let mut rng = StdRng::seed_from_u64(15);
        let model = SphereModel::random(30, 48, 32, &mut rng);
        let target = pulsar::render(
            &SphereModel::random(30, 48, 32, &mut rng),
            48,
            32,
            Vec3::splat(0.0),
        )
        .image;
        let out = pulsar::render(&model, 48, 32, Vec3::splat(0.0));
        let (_, pg) = l2_loss(&out.image, &target);
        let (trace, grads) = pulsar_gradcomp_trace(&model, &out, &pg, TraceCosts::default());
        let mut mem = GlobalMemory::new();
        mem.apply_trace(&trace);
        let layout = sphere_layout();
        for sid in 0..model.len() {
            let expect = [
                grads.center[sid].x,
                grads.center[sid].y,
                grads.radius[sid],
                grads.opacity_logit[sid],
                grads.color[sid].x,
                grads.color[sid].y,
                grads.color[sid].z,
            ];
            for (p, &e) in expect.iter().enumerate() {
                let got = mem.read(layout.addr(p, sid as u32));
                assert!(
                    (got - e).abs() <= 1e-4 + 1e-3 * e.abs(),
                    "sphere {sid} param {p}: {got} vs {e}"
                );
            }
        }
    }

    #[test]
    fn pulsar_bundles_are_non_uniform() {
        let mut rng = StdRng::seed_from_u64(16);
        let model = SphereModel::random(20, 32, 32, &mut rng);
        let out = pulsar::render(&model, 32, 32, Vec3::splat(0.0));
        let (_, pg) = l2_loss(&out.image, &crate::image::Image::new(32, 32));
        let (trace, _) = pulsar_gradcomp_trace(&model, &out, &pg, TraceCosts::default());
        let mut bundles = 0;
        for b in trace.bundles() {
            assert!(!b.uniform_iteration, "pulsar loops are per-thread");
            bundles += 1;
        }
        assert!(bundles > 0);
    }

    #[test]
    fn warp_mapping_is_16x2() {
        let collector = PulsarCollector {
            width: 64,
            contributions: vec![Vec::new(); 64],
            warps_x: 4,
        };
        assert_eq!(collector.warp_of(0, 0), (0, 0));
        assert_eq!(collector.warp_of(15, 0), (0, 15));
        assert_eq!(collector.warp_of(0, 1), (0, 16));
        assert_eq!(collector.warp_of(16, 0), (1, 0));
        assert_eq!(collector.warp_of(0, 2), (4, 0));
    }

    #[test]
    fn forward_traces_nonempty() {
        let scene = NvScene::new(32, 32);
        assert!(!nvdiff_forward_trace(&scene).warps().is_empty());
        let mut rng = StdRng::seed_from_u64(17);
        let model = SphereModel::random(10, 32, 32, &mut rng);
        let out = pulsar::render(&model, 32, 32, Vec3::splat(0.0));
        assert!(!pulsar_forward_trace(&out).warps().is_empty());
    }

    #[test]
    fn empty_scene_produces_empty_gradcomp_trace() {
        let model = GaussianModel::new();
        let out = render(&model, 32, 32, Vec3::splat(0.0));
        let pg = l2_loss(&out.image, &crate::image::Image::new(32, 32)).1;
        let (trace, _) = gaussian_gradcomp_trace(&model, &out, &pg, TraceCosts::default());
        assert_eq!(trace.total_atomic_requests(), 0);
        let _ = Vec2::default();
    }
}

//! Adaptive density control for Gaussian models — the densify/clone/
//! split/prune scheme of 3DGS (Kerbl et al. §5): Gaussians whose
//! view-space positional gradients stay large are under-reconstructing
//! and get cloned (if small) or split (if large); near-transparent
//! Gaussians are pruned.
//!
//! This is the part of the training loop that *grows* the scene — the
//! reason the paper's large scenes (3D-PR/DR) end up with the huge
//! parameter counts that make the atomic bottleneck so pronounced.

use serde::{Deserialize, Serialize};

use crate::gaussian::{GaussianModel, RasterGrads};
use crate::math::Vec2;

/// Accumulates per-Gaussian view-space gradient magnitudes across
/// training iterations (3DGS averages ∥dL/dmean2D∥ between
/// densification rounds).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GradAccumulator {
    sum_norm: Vec<f32>,
    count: Vec<u32>,
}

impl GradAccumulator {
    /// An accumulator for `n` Gaussians.
    pub fn new(n: usize) -> Self {
        GradAccumulator {
            sum_norm: vec![0.0; n],
            count: vec![0; n],
        }
    }

    /// Number of tracked Gaussians.
    pub fn len(&self) -> usize {
        self.sum_norm.len()
    }

    /// Whether the accumulator tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.sum_norm.is_empty()
    }

    /// Records one iteration's raster gradients.
    ///
    /// # Panics
    ///
    /// Panics if the gradient count mismatches.
    pub fn record(&mut self, raster: &RasterGrads) {
        assert_eq!(raster.mean.len(), self.sum_norm.len(), "size mismatch");
        for (i, g) in raster.mean.iter().enumerate() {
            let norm = (g.x * g.x + g.y * g.y).sqrt();
            if norm > 0.0 {
                self.sum_norm[i] += norm;
                self.count[i] += 1;
            }
        }
    }

    /// Mean accumulated gradient norm for Gaussian `i` (0.0 if it never
    /// received gradient).
    pub fn mean_norm(&self, i: usize) -> f32 {
        if self.count[i] == 0 {
            0.0
        } else {
            self.sum_norm[i] / self.count[i] as f32
        }
    }

    /// Clears the accumulator (called after each densification round).
    pub fn reset(&mut self, n: usize) {
        self.sum_norm.clear();
        self.sum_norm.resize(n, 0.0);
        self.count.clear();
        self.count.resize(n, 0);
    }
}

/// Densification / pruning policy.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DensifyConfig {
    /// Mean view-space gradient norm above which a Gaussian densifies.
    pub grad_threshold: f32,
    /// Screen-space standard deviation (pixels) above which a
    /// densifying Gaussian is split rather than cloned.
    pub split_size: f32,
    /// Opacity below which a Gaussian is pruned.
    pub prune_opacity: f32,
    /// Hard cap on the model size (densification stops at the cap).
    pub max_gaussians: usize,
}

impl Default for DensifyConfig {
    fn default() -> Self {
        DensifyConfig {
            grad_threshold: 2e-6,
            split_size: 4.0,
            prune_opacity: 0.01,
            max_gaussians: 100_000,
        }
    }
}

/// What a densification round did.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DensifyStats {
    /// Small high-gradient Gaussians duplicated in place.
    pub cloned: usize,
    /// Large high-gradient Gaussians replaced by two smaller ones.
    pub split: usize,
    /// Near-transparent Gaussians removed.
    pub pruned: usize,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Runs one densify-and-prune round on a 2D Gaussian model, consuming
/// the accumulated gradients (the accumulator is reset to the new model
/// size).
///
/// # Panics
///
/// Panics if the accumulator size mismatches the model.
pub fn densify_and_prune(
    model: &mut GaussianModel,
    accum: &mut GradAccumulator,
    cfg: &DensifyConfig,
) -> DensifyStats {
    assert_eq!(accum.len(), model.len(), "accumulator/model size mismatch");
    let mut stats = DensifyStats::default();
    let n = model.len();

    // 1. Prune transparent Gaussians (compact in place).
    let keep: Vec<bool> = (0..n)
        .map(|i| sigmoid(model.opacity_logit[i]) >= cfg.prune_opacity)
        .collect();
    stats.pruned = keep.iter().filter(|&&k| !k).count();
    retain_by_mask(model, &keep);
    let norms: Vec<f32> = (0..n)
        .filter(|&i| keep[i])
        .map(|i| accum.mean_norm(i))
        .collect();

    // 2. Densify survivors with large accumulated gradients.
    let survivors = model.len();
    for (i, &norm) in norms.iter().enumerate().take(survivors) {
        if model.len() >= cfg.max_gaussians {
            break;
        }
        if norm < cfg.grad_threshold {
            continue;
        }
        let sx = model.log_scale[i].x.exp();
        let sy = model.log_scale[i].y.exp();
        let size = sx.max(sy);
        if size > cfg.split_size {
            // Split: shrink in place and add a sibling displaced along
            // the major axis.
            let dir = major_axis(model, i) * size;
            let shrink = 1.6f32.ln();
            model.log_scale[i] =
                Vec2::new(model.log_scale[i].x - shrink, model.log_scale[i].y - shrink);
            let new_mean = model.mean[i] + dir;
            model.mean[i] = model.mean[i] - dir * 0.5;
            model.push(
                new_mean,
                model.log_scale[i],
                model.theta[i],
                model.opacity_logit[i],
                model.color[i],
            );
            stats.split += 1;
        } else {
            // Clone: duplicate with a small deterministic offset (3DGS
            // samples within the Gaussian; a fixed sub-σ offset keeps
            // the pipeline reproducible).
            let offset = Vec2::new(0.2 * size, 0.1 * size);
            model.push(
                model.mean[i] + offset,
                model.log_scale[i],
                model.theta[i],
                model.opacity_logit[i],
                model.color[i],
            );
            stats.cloned += 1;
        }
    }

    accum.reset(model.len());
    stats
}

/// Unit vector along the Gaussian's larger principal axis.
fn major_axis(model: &GaussianModel, i: usize) -> Vec2 {
    let (sin, cos) = model.theta[i].sin_cos();
    if model.log_scale[i].x >= model.log_scale[i].y {
        Vec2::new(cos, sin)
    } else {
        Vec2::new(-sin, cos)
    }
}

fn retain_by_mask(model: &mut GaussianModel, keep: &[bool]) {
    let mut idx = 0;
    model.mean.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    let mut idx = 0;
    model.log_scale.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    let mut idx = 0;
    model.theta.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    let mut idx = 0;
    model.opacity_logit.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    let mut idx = 0;
    model.color.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{backward, param_grads, render, NoopRecorder, PARAMS_PER_GAUSSIAN};
    use crate::image::psnr;
    use crate::loss::l2_loss;
    use crate::math::Vec3;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model_with(entries: &[(Vec2, Vec2, f32)]) -> GaussianModel {
        let mut m = GaussianModel::new();
        for &(mean, log_scale, logit) in entries {
            m.push(mean, log_scale, 0.0, logit, Vec3::splat(0.5));
        }
        m
    }

    #[test]
    fn prunes_transparent_gaussians() {
        let mut model = model_with(&[
            (Vec2::new(5.0, 5.0), Vec2::new(0.0, 0.0), 2.0), // opaque
            (Vec2::new(9.0, 9.0), Vec2::new(0.0, 0.0), -10.0), // transparent
        ]);
        let mut accum = GradAccumulator::new(2);
        let stats = densify_and_prune(&mut model, &mut accum, &DensifyConfig::default());
        assert_eq!(stats.pruned, 1);
        assert_eq!(model.len(), 1);
        assert_eq!(model.mean[0], Vec2::new(5.0, 5.0));
        assert_eq!(accum.len(), 1);
    }

    #[test]
    fn clones_small_high_gradient_gaussians() {
        let mut model = model_with(&[(Vec2::new(5.0, 5.0), Vec2::new(0.0, 0.0), 2.0)]);
        let mut accum = GradAccumulator::new(1);
        accum.sum_norm[0] = 1.0;
        accum.count[0] = 1;
        let stats = densify_and_prune(&mut model, &mut accum, &DensifyConfig::default());
        assert_eq!(stats.cloned, 1);
        assert_eq!(stats.split, 0);
        assert_eq!(model.len(), 2);
    }

    #[test]
    fn splits_large_high_gradient_gaussians() {
        // exp(2.0) ≈ 7.4 px > split_size 4.0.
        let mut model = model_with(&[(Vec2::new(16.0, 16.0), Vec2::new(2.0, 1.0), 2.0)]);
        let mut accum = GradAccumulator::new(1);
        accum.sum_norm[0] = 1.0;
        accum.count[0] = 1;
        let stats = densify_and_prune(&mut model, &mut accum, &DensifyConfig::default());
        assert_eq!(stats.split, 1);
        assert_eq!(model.len(), 2);
        // Both children are smaller than the parent was.
        assert!(model.log_scale[0].x < 2.0);
        assert!(model.log_scale[1].x < 2.0);
        // And displaced apart.
        assert!((model.mean[0] - model.mean[1]).norm_sq() > 1.0);
    }

    #[test]
    fn respects_the_cap() {
        let mut model = model_with(&[
            (Vec2::new(4.0, 4.0), Vec2::new(0.0, 0.0), 2.0),
            (Vec2::new(8.0, 8.0), Vec2::new(0.0, 0.0), 2.0),
        ]);
        let mut accum = GradAccumulator::new(2);
        accum.sum_norm = vec![1.0, 1.0];
        accum.count = vec![1, 1];
        let cfg = DensifyConfig {
            max_gaussians: 3,
            ..DensifyConfig::default()
        };
        let _ = densify_and_prune(&mut model, &mut accum, &cfg);
        assert_eq!(model.len(), 3, "cap must hold");
    }

    #[test]
    fn low_gradient_gaussians_are_left_alone() {
        let mut model = model_with(&[(Vec2::new(5.0, 5.0), Vec2::new(0.0, 0.0), 2.0)]);
        let mut accum = GradAccumulator::new(1);
        let stats = densify_and_prune(&mut model, &mut accum, &DensifyConfig::default());
        assert_eq!(stats, DensifyStats::default());
        assert_eq!(model.len(), 1);
    }

    /// End-to-end: training *with* densification from an undersized
    /// model beats training without it.
    #[test]
    fn densification_improves_reconstruction() {
        let mut rng = StdRng::seed_from_u64(41);
        let bg = Vec3::splat(0.0);
        let target = render(&GaussianModel::random(40, 48, 48, &mut rng), 48, 48, bg).image;

        let train = |densify: bool, rng: &mut StdRng| {
            let mut model = GaussianModel::random(8, 48, 48, rng);
            let mut accum = GradAccumulator::new(model.len());
            let mut opt = Adam::new(model.len() * PARAMS_PER_GAUSSIAN, 0.03);
            for iter in 0..170 {
                let out = render(&model, 48, 48, bg);
                let (_, pg) = l2_loss(&out.image, &target);
                let raster = backward(&model, &out, &pg, &mut NoopRecorder);
                accum.record(&raster);
                let grads = param_grads(&model, &raster);
                let mut params = model.to_params();
                opt.step(&mut params, &grads);
                model.set_params(&params);
                if densify && (iter == 25 || iter == 50) {
                    let cfg = DensifyConfig {
                        grad_threshold: 0.0, // densify everything alive
                        max_gaussians: 64,
                        ..DensifyConfig::default()
                    };
                    let _ = densify_and_prune(&mut model, &mut accum, &cfg);
                    // Optimizer state is tied to the parameter count.
                    opt = Adam::new(model.len() * PARAMS_PER_GAUSSIAN, 0.03);
                }
            }
            (
                model.len(),
                psnr(&render(&model, 48, 48, bg).image, &target),
            )
        };

        let (n_plain, psnr_plain) = train(false, &mut rng);
        let (n_dense, psnr_dense) = train(true, &mut rng);
        assert!(n_dense > n_plain, "densification must grow the model");
        assert!(
            psnr_dense > psnr_plain,
            "the densified model has 8x the capacity and should reconstruct \
             better: densified {psnr_dense:.2} dB ({n_dense} Gaussians) vs \
             plain {psnr_plain:.2} dB ({n_plain})"
        );
    }
}

//! Differentiable SSIM and the 3DGS training loss
//! `L = (1−λ)·L1 + λ·(1−SSIM)` (Kerbl et al. 2023 use λ = 0.2).
//!
//! SSIM is computed per channel with an 11×11 Gaussian window over the
//! *valid* region (windows fully inside the image), and the backward
//! pass chains analytically through the window convolutions — verified
//! against finite differences in this module's tests.

use crate::image::Image;
use crate::loss::{l1_loss, PixelGrads};
use crate::math::Vec3;

/// Window edge (matches the standard SSIM implementation and 3DGS).
pub const WINDOW: usize = 11;
/// SSIM stabilization constant C1 = (0.01·L)² for L = 1.
pub const C1: f32 = 0.01 * 0.01;
/// SSIM stabilization constant C2 = (0.03·L)².
pub const C2: f32 = 0.03 * 0.03;
/// The 3DGS mixing weight for the D-SSIM term.
pub const LAMBDA_DSSIM: f32 = 0.2;

/// The 11-tap Gaussian window (σ = 1.5), normalized.
fn window_1d() -> [f32; WINDOW] {
    let sigma = 1.5f32;
    let mut w = [0.0f32; WINDOW];
    let mut sum = 0.0;
    for (i, v) in w.iter_mut().enumerate() {
        let x = i as f32 - (WINDOW as f32 - 1.0) / 2.0;
        *v = (-x * x / (2.0 * sigma * sigma)).exp();
        sum += *v;
    }
    for v in &mut w {
        *v /= sum;
    }
    w
}

/// One channel of an image as a flat plane.
fn channel(img: &Image, c: usize) -> Vec<f32> {
    img.pixels().iter().map(|p| p.get(c)).collect()
}

/// Windowed 2-D Gaussian filtering over the valid region: output has
/// dimensions `(w − 10) × (h − 10)`.
fn filter_valid(plane: &[f32], width: usize, height: usize) -> Vec<f32> {
    let k = window_1d();
    let ow = width - (WINDOW - 1);
    let oh = height - (WINDOW - 1);
    // Separable: rows then columns.
    let mut rows = vec![0.0f32; ow * height];
    for y in 0..height {
        for x in 0..ow {
            let mut acc = 0.0;
            for (i, &kv) in k.iter().enumerate() {
                acc += kv * plane[y * width + x + i];
            }
            rows[y * ow + x] = acc;
        }
    }
    let mut out = vec![0.0f32; ow * oh];
    for y in 0..oh {
        for x in 0..ow {
            let mut acc = 0.0;
            for (i, &kv) in k.iter().enumerate() {
                acc += kv * rows[(y + i) * ow + x];
            }
            out[y * ow + x] = acc;
        }
    }
    out
}

/// Scatters a valid-region gradient map back through the Gaussian
/// filter (the adjoint of [`filter_valid`]).
fn filter_adjoint(grad: &[f32], width: usize, height: usize) -> Vec<f32> {
    let k = window_1d();
    let ow = width - (WINDOW - 1);
    let oh = height - (WINDOW - 1);
    let mut out = vec![0.0f32; width * height];
    for y in 0..oh {
        for x in 0..ow {
            let g = grad[y * ow + x];
            if g == 0.0 {
                continue;
            }
            for (j, &kj) in k.iter().enumerate() {
                for (i, &ki) in k.iter().enumerate() {
                    out[(y + j) * width + (x + i)] += g * kj * ki;
                }
            }
        }
    }
    out
}

/// Mean SSIM between two \[0,1\]-range images over the valid region.
///
/// # Panics
///
/// Panics if dimensions differ or either side is smaller than the
/// 11×11 window.
pub fn ssim(a: &Image, b: &Image) -> f32 {
    ssim_with_grads(a, b).0
}

/// Mean SSIM plus `d(mean SSIM)/d a` as a pixel-gradient field.
///
/// # Panics
///
/// Panics if dimensions differ or either side is smaller than the
/// 11×11 window.
pub fn ssim_with_grads(a: &Image, b: &Image) -> (f32, PixelGrads) {
    let (width, height) = (a.width(), a.height());
    assert_eq!(
        (width, height),
        (b.width(), b.height()),
        "image dimensions must match"
    );
    assert!(
        width >= WINDOW && height >= WINDOW,
        "image must be at least {WINDOW}x{WINDOW}"
    );
    let ow = width - (WINDOW - 1);
    let oh = height - (WINDOW - 1);
    let n_valid = (ow * oh * 3) as f32;

    let mut total = 0.0f64;
    let mut grads = vec![Vec3::default(); width * height];

    for c in 0..3 {
        let x = channel(a, c);
        let y = channel(b, c);
        let x2: Vec<f32> = x.iter().map(|v| v * v).collect();
        let y2: Vec<f32> = y.iter().map(|v| v * v).collect();
        let xy: Vec<f32> = x.iter().zip(&y).map(|(u, v)| u * v).collect();

        let mu_x = filter_valid(&x, width, height);
        let mu_y = filter_valid(&y, width, height);
        let m_x2 = filter_valid(&x2, width, height);
        let m_y2 = filter_valid(&y2, width, height);
        let m_xy = filter_valid(&xy, width, height);

        // Per-valid-pixel SSIM and the gradients of mean-SSIM w.r.t.
        // the three x-dependent filtered maps.
        let mut g_mu = vec![0.0f32; ow * oh];
        let mut g_m_x2 = vec![0.0f32; ow * oh];
        let mut g_m_xy = vec![0.0f32; ow * oh];
        for i in 0..ow * oh {
            let (ux, uy) = (mu_x[i], mu_y[i]);
            let sx2 = m_x2[i] - ux * ux;
            let sy2 = m_y2[i] - uy * uy;
            let sxy = m_xy[i] - ux * uy;
            let a1 = 2.0 * ux * uy + C1;
            let a2 = 2.0 * sxy + C2;
            let b1 = ux * ux + uy * uy + C1;
            let b2 = sx2 + sy2 + C2;
            let denom = b1 * b2;
            let s = (a1 * a2) / denom;
            total += f64::from(s);

            let w = 1.0 / n_valid; // d(mean)/d(s)
            let ds_da1 = a2 / denom;
            let ds_da2 = a1 / denom;
            let ds_db1 = -s / b1;
            let ds_db2 = -s / b2;
            // σx² = m_x2 − μx²; σxy = m_xy − μx μy.
            let ds_dsx2 = ds_db2;
            let ds_dsxy = 2.0 * ds_da2;
            g_mu[i] = w
                * (ds_da1 * 2.0 * uy + ds_db1 * 2.0 * ux + ds_dsx2 * (-2.0 * ux) + ds_dsxy * (-uy));
            g_m_x2[i] = w * ds_dsx2;
            g_m_xy[i] = w * ds_dsxy;
        }

        // Back through the filters.
        let back_mu = filter_adjoint(&g_mu, width, height);
        let back_x2 = filter_adjoint(&g_m_x2, width, height);
        let back_xy = filter_adjoint(&g_m_xy, width, height);
        for p in 0..width * height {
            let g = back_mu[p] + back_x2[p] * 2.0 * x[p] + back_xy[p] * y[p];
            match c {
                0 => grads[p].x = g,
                1 => grads[p].y = g,
                _ => grads[p].z = g,
            }
        }
    }

    let mean = (total / f64::from(n_valid)) as f32 * 3.0 / 3.0;
    (mean, PixelGrads::from_raw(grads, width, height))
}

/// The 3DGS training loss `L = (1−λ)·L1 + λ·(1 − SSIM)` and its pixel
/// gradients.
///
/// # Panics
///
/// Panics if dimensions differ or the images are smaller than 11×11.
pub fn dssim_l1_loss(render: &Image, target: &Image, lambda: f32) -> (f32, PixelGrads) {
    let (l1v, g1) = l1_loss(render, target);
    let (ssim_v, gs) = ssim_with_grads(render, target);
    let loss = (1.0 - lambda) * l1v + lambda * (1.0 - ssim_v);
    let width = render.width();
    let height = render.height();
    let mut grads = vec![Vec3::default(); width * height];
    for (p, g) in grads.iter_mut().enumerate() {
        let (x, y) = (p % width, p / width);
        *g = g1.get(x, y) * (1.0 - lambda) + gs.get(x, y) * (-lambda);
    }
    (loss, PixelGrads::from_raw(grads, width, height))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Vec3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_image(w: usize, h: usize, seed: u64) -> Image {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut img = Image::new(w, h);
        for p in img.pixels_mut() {
            *p = Vec3::new(rng.gen(), rng.gen(), rng.gen());
        }
        img
    }

    #[test]
    fn identical_images_have_ssim_one() {
        let img = random_image(16, 16, 1);
        let s = ssim(&img, &img);
        assert!((s - 1.0).abs() < 1e-4, "SSIM of identical images: {s}");
    }

    #[test]
    fn ssim_decreases_with_noise() {
        let a = random_image(16, 16, 2);
        let mut near = a.clone();
        near.pixels_mut()[40].x += 0.05;
        let far = random_image(16, 16, 3);
        let s_near = ssim(&near, &a);
        let s_far = ssim(&far, &a);
        assert!(s_near > s_far, "{s_near} should exceed {s_far}");
        assert!(s_near < 1.0);
    }

    #[test]
    fn window_is_normalized() {
        let w = window_1d();
        let sum: f32 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // Symmetric.
        for i in 0..WINDOW / 2 {
            assert!((w[i] - w[WINDOW - 1 - i]).abs() < 1e-7);
        }
    }

    #[test]
    fn ssim_gradient_matches_finite_differences() {
        let mut a = random_image(14, 14, 4);
        let b = random_image(14, 14, 5);
        let (_, grads) = ssim_with_grads(&a, &b);
        let h = 1e-3f32;
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..12 {
            let x = rng.gen_range(0..14);
            let y = rng.gen_range(0..14);
            let c = rng.gen_range(0..3);
            let orig = a.get(x, y);
            let mut bump = |delta: f32| {
                let mut v = orig;
                match c {
                    0 => v.x += delta,
                    1 => v.y += delta,
                    _ => v.z += delta,
                }
                a.set(x, y, v);
                let s = ssim(&a, &b);
                a.set(x, y, orig);
                s
            };
            let fd = (bump(h) - bump(-h)) / (2.0 * h);
            let an = grads.get(x, y).get(c);
            assert!(
                (fd - an).abs() <= 1e-3 + 0.05 * fd.abs().max(an.abs()),
                "pixel ({x},{y}) ch {c}: analytic {an} vs fd {fd}"
            );
        }
    }

    #[test]
    fn dssim_l1_gradient_matches_finite_differences() {
        let mut a = random_image(13, 13, 7);
        let b = random_image(13, 13, 8);
        let (_, grads) = dssim_l1_loss(&a, &b, LAMBDA_DSSIM);
        let h = 1e-3f32;
        for (x, y, c) in [(3usize, 4usize, 0usize), (9, 9, 1), (6, 2, 2)] {
            let orig = a.get(x, y);
            let mut bump = |delta: f32| {
                let mut v = orig;
                match c {
                    0 => v.x += delta,
                    1 => v.y += delta,
                    _ => v.z += delta,
                }
                a.set(x, y, v);
                let l = dssim_l1_loss(&a, &b, LAMBDA_DSSIM).0;
                a.set(x, y, orig);
                l
            };
            let fd = (bump(h) - bump(-h)) / (2.0 * h);
            let an = grads.get(x, y).get(c);
            assert!(
                (fd - an).abs() <= 2e-3 + 0.1 * fd.abs().max(an.abs()),
                "pixel ({x},{y}) ch {c}: analytic {an} vs fd {fd}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_small_image_panics() {
        let img = Image::new(8, 8);
        let _ = ssim(&img, &img);
    }

    #[test]
    fn dssim_loss_is_zero_for_identical_images() {
        let img = random_image(16, 16, 9);
        let (loss, _) = dssim_l1_loss(&img, &img, LAMBDA_DSSIM);
        assert!(loss.abs() < 1e-4, "loss {loss}");
    }
}

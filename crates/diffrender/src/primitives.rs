//! Reusable GPU primitives for the tile-binned 3DGS front-end: 4-bit
//! LSD radix sort and a work-efficient exclusive scan, as **functional
//! models** (exact CPU reference results) paired with **trace
//! emitters** (the warp-level instruction streams the simulator runs).
//!
//! Production Gaussian-splatting renderers spend a large share of each
//! frame before the rasterizer ever fires:
//!
//! 1. `map_gaussians_to_intersect` — expand each splat into one
//!    `(tile, depth)` key per overlapped tile;
//! 2. an exclusive scan over per-splat tile counts sizes the key
//!    buffer;
//! 3. a radix sort by key groups each tile's splats contiguously in
//!    depth order — each 4-bit digit pass first builds a **digit
//!    histogram with global atomic adds** (every warp hammering the
//!    same 16 counters: the contention-heavy regime the ARC paths
//!    adaptively reduce), then scatters by scanned rank;
//! 4. `tile_bin_edges` — find each tile's `[start, end)` range in the
//!    sorted keys;
//! 5. tile-local rasterization walks each tile's range.
//!
//! [`tile_binned_pipeline`] runs all five against a [`SplatScene`] and
//! returns both the functional results (validated against the direct
//! rasterizer: same per-tile lists, same image) and one
//! [`KernelTrace`] per stage. Keys pack `(tile, depth-rank)` with the
//! splat id as the depth rank — scene order **is** compositing order
//! in this renderer (see [`TileLists`]) — so the sorted key stream
//! reproduces the reference binning exactly.

use warp_trace::{
    AtomicInstr, ComputeKind, KernelKind, KernelTrace, LaneOp, WarpTraceBuilder, WARP_SIZE,
};

use crate::gaussian::{self, RenderOutput, SplatScene, TileLists};
use crate::math::Vec3;
use crate::tracegen::{self, TraceCosts};

/// Radix-sort digit width in bits.
pub const RADIX_BITS: u32 = 4;
/// Buckets per digit pass (`1 << RADIX_BITS`).
pub const RADIX: usize = 1 << RADIX_BITS;
/// Bits reserved for the depth rank (splat id) in the low key half;
/// the tile index occupies the bits above.
pub const DEPTH_BITS: u32 = 20;
/// Base address of the digit-histogram counters (distinct from the
/// gradient parameter arrays of [`crate::tracegen`] and the loss /
/// image buffers, so frame stages never alias).
pub const HIST_BASE: u64 = 0x6000_0000;
/// Keys each histogram/scatter warp owns (4 full-warp iterations).
pub const KEYS_PER_WARP: usize = 4 * WARP_SIZE;

/// Packs a `(tile, depth-rank)` sort key.
pub fn pack_key(tile: u32, depth_rank: u32) -> u64 {
    debug_assert!(u64::from(depth_rank) < (1u64 << DEPTH_BITS));
    (u64::from(tile) << DEPTH_BITS) | u64::from(depth_rank)
}

/// The tile index of a packed key.
pub fn key_tile(key: u64) -> u32 {
    (key >> DEPTH_BITS) as u32
}

/// The depth rank (splat id) of a packed key.
pub fn key_depth(key: u64) -> u32 {
    (key & ((1u64 << DEPTH_BITS) - 1)) as u32
}

/// Work-efficient exclusive prefix sum (Blelloch up-sweep +
/// down-sweep reference semantics; computed serially here, emitted as
/// the traced kernel by [`scan_trace`]).
pub fn exclusive_scan(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0u32;
    for &x in xs {
        out.push(acc);
        acc += x;
    }
    out
}

/// Stable LSD radix sort over packed keys, 4 bits per pass. Returns
/// the sorted keys plus each pass's digit histogram (the values the
/// traced histogram kernel's atomics must reproduce).
pub fn radix_sort(keys: &[u64]) -> (Vec<u64>, Vec<[u32; RADIX]>) {
    let passes = sort_passes(keys);
    let mut cur = keys.to_vec();
    let mut histograms = Vec::with_capacity(passes as usize);
    for p in 0..passes {
        let shift = p * RADIX_BITS;
        let mut hist = [0u32; RADIX];
        for &k in &cur {
            hist[((k >> shift) as usize) & (RADIX - 1)] += 1;
        }
        let mut offsets = [0u32; RADIX];
        let mut acc = 0u32;
        for d in 0..RADIX {
            offsets[d] = acc;
            acc += hist[d];
        }
        let mut next = vec![0u64; cur.len()];
        for &k in &cur {
            let d = ((k >> shift) as usize) & (RADIX - 1);
            next[offsets[d] as usize] = k;
            offsets[d] += 1;
        }
        histograms.push(hist);
        cur = next;
    }
    (cur, histograms)
}

/// Digit passes needed to cover the widest key (at least one).
pub fn sort_passes(keys: &[u64]) -> u32 {
    let max = keys.iter().copied().max().unwrap_or(0);
    let bits = 64 - max.leading_zeros();
    bits.div_ceil(RADIX_BITS).max(1)
}

/// The key expansion stage's functional output.
#[derive(Clone, Debug)]
pub struct IntersectMap {
    /// One `(tile, depth-rank)` key per (splat, overlapped tile) pair,
    /// in splat order (unsorted).
    pub keys: Vec<u64>,
    /// Tiles each splat touches (zero when culled) — the scan input.
    pub tiles_touched: Vec<u32>,
    /// Tiles per row.
    pub tiles_x: usize,
    /// Tiles per column.
    pub tiles_y: usize,
}

/// Expands each splat into one key per overlapped tile, with exactly
/// the bounding-circle culling of [`gaussian::build_tile_lists`].
pub fn map_gaussians_to_intersect(scene: &SplatScene, width: usize, height: usize) -> IntersectMap {
    let prepared = scene.prepare();
    let tiles_x = width.div_ceil(gaussian::TILE);
    let tiles_y = height.div_ceil(gaussian::TILE);
    assert!(
        scene.len() < (1 << DEPTH_BITS) as usize,
        "depth rank must fit {DEPTH_BITS} bits, scene has {} splats",
        scene.len()
    );
    let mut keys = Vec::new();
    let mut tiles_touched = Vec::with_capacity(scene.len());
    for gid in 0..scene.len() {
        let span = gaussian::tile_span(scene.mean[gid], prepared.radius[gid], tiles_x, tiles_y);
        let Some((x0, x1, y0, y1)) = span else {
            tiles_touched.push(0);
            continue;
        };
        tiles_touched.push(((x1 - x0 + 1) * (y1 - y0 + 1)) as u32);
        for ty in y0..=y1 {
            for tx in x0..=x1 {
                keys.push(pack_key((ty * tiles_x + tx) as u32, gid as u32));
            }
        }
    }
    IntersectMap {
        keys,
        tiles_touched,
        tiles_x,
        tiles_y,
    }
}

/// Per-tile `[start, end)` ranges into the sorted key stream.
pub fn tile_bin_edges(sorted: &[u64], n_tiles: usize) -> Vec<(u32, u32)> {
    let mut edges = vec![(0u32, 0u32); n_tiles];
    for (i, &k) in sorted.iter().enumerate() {
        let t = key_tile(k) as usize;
        if i == 0 || key_tile(sorted[i - 1]) as usize != t {
            edges[t].0 = i as u32;
        }
        edges[t].1 = i as u32 + 1;
    }
    edges
}

/// Rebuilds [`TileLists`] from the sorted keys — the representation
/// the rasterizer consumes.
pub fn tile_lists_from_sorted(sorted: &[u64], tiles_x: usize, tiles_y: usize) -> TileLists {
    let edges = tile_bin_edges(sorted, tiles_x * tiles_y);
    let lists = edges
        .iter()
        .map(|&(s, e)| (s..e).map(|i| key_depth(sorted[i as usize])).collect())
        .collect();
    TileLists {
        tiles_x,
        tiles_y,
        lists,
    }
}

// ---------------------------------------------------------------------
// Trace emission.
// ---------------------------------------------------------------------

/// Address of one digit counter word.
fn hist_addr(pass: u32, digit: usize) -> u64 {
    HIST_BASE + u64::from(pass) * (RADIX as u64) * 4 + (digit as u64) * 4
}

/// The key-expansion kernel: one warp per 32 splats; each lane loads
/// its splat, computes the bounding-tile span, and stores its key
/// count and bbox. No atomics — purely bandwidth/ALU.
pub fn map_intersect_trace(map: &IntersectMap, costs: TraceCosts) -> KernelTrace {
    let n_warps = map.tiles_touched.len().div_ceil(WARP_SIZE);
    let warps = (0..n_warps)
        .map(|_| {
            let mut b = WarpTraceBuilder::new();
            b.load(costs.load_sectors) // mean + covariance
                .compute_ffma(6) // conic inverse, eigenvalue bound, radius
                .compute(ComputeKind::Sfu, 1) // sqrt
                .compute(ComputeKind::IntAlu, 4) // tile span clamps
                .store(2); // tiles_touched + span
            b.finish()
        })
        .collect();
    KernelTrace::new("map-intersect", KernelKind::Other, warps)
}

/// The exclusive-scan kernel over per-splat tile counts: a
/// work-efficient up-sweep/down-sweep tree, one warp per 32 active
/// tree slots per level.
pub fn scan_trace(n: usize) -> KernelTrace {
    let mut warps = Vec::new();
    let level_warps = |active: usize, warps: &mut Vec<_>| {
        for _ in 0..active.div_ceil(WARP_SIZE) {
            let mut b = WarpTraceBuilder::new();
            b.load(2) // both partial sums
                .compute(ComputeKind::IntAlu, 1)
                .store(1);
            warps.push(b.finish());
        }
    };
    // Up-sweep: halve the active slot count each level.
    let mut active = n / 2;
    while active > 0 {
        level_warps(active, &mut warps);
        active /= 2;
    }
    // Down-sweep mirrors the tree back down.
    let mut active = 1;
    while active <= n / 2 {
        level_warps(active, &mut warps);
        active *= 2;
    }
    KernelTrace::new("intersect-scan", KernelKind::Other, warps)
}

/// The radix digit-histogram kernel — the frame's rewritable stage.
///
/// For every 4-bit pass, each warp owns up to [`KEYS_PER_WARP`] keys
/// and, per 32-key iteration, atomically adds `1.0` to the global
/// counter of each lane's digit. All warps of a pass hammer the same
/// 16 words, and lanes with equal digits collide within the warp —
/// exactly the same-address-heavy profile the adaptive paths route to
/// warp-level reduction. Applying the trace's atomics to
/// [`warp_trace::GlobalMemory`] reproduces the functional histograms.
pub fn radix_histogram_trace(keys: &[u64], costs: TraceCosts) -> KernelTrace {
    let passes = sort_passes(keys);
    let mut warps = Vec::new();
    for p in 0..passes {
        let shift = p * RADIX_BITS;
        for chunk in keys.chunks(KEYS_PER_WARP) {
            let mut b = WarpTraceBuilder::new();
            for (i, iter_keys) in chunk.chunks(WARP_SIZE).enumerate() {
                if (i as u16).is_multiple_of(costs.load_every.max(1)) {
                    b.load(costs.load_sectors); // key block
                }
                b.compute(ComputeKind::IntAlu, 2); // shift + mask
                let ops = iter_keys
                    .iter()
                    .enumerate()
                    .map(|(lane, &k)| LaneOp {
                        lane: lane as u8,
                        addr: hist_addr(p, ((k >> shift) as usize) & (RADIX - 1)),
                        value: 1.0,
                    })
                    .collect();
                b.atomic(AtomicInstr::new(ops));
            }
            warps.push(b.finish());
        }
    }
    KernelTrace::new("radix-histogram", KernelKind::Other, warps)
}

/// The radix scatter kernel: per pass, each warp re-loads its keys,
/// computes each lane's destination from the scanned digit offsets,
/// and writes the reordered keys. Rank resolution is serial within a
/// digit, so stores stay ungrouped. No atomics.
pub fn radix_scatter_trace(keys: &[u64], costs: TraceCosts) -> KernelTrace {
    let passes = sort_passes(keys);
    let mut warps = Vec::new();
    for _ in 0..passes {
        for chunk in keys.chunks(KEYS_PER_WARP) {
            let mut b = WarpTraceBuilder::new();
            for (i, iter_keys) in chunk.chunks(WARP_SIZE).enumerate() {
                if (i as u16).is_multiple_of(costs.load_every.max(1)) {
                    b.load(costs.load_sectors); // key block
                }
                b.load(1) // scanned digit offset
                    .compute(ComputeKind::IntAlu, 3) // digit, rank, dest addr
                    .store(iter_keys.len().div_ceil(4) as u16); // scattered writes
            }
            warps.push(b.finish());
        }
    }
    KernelTrace::new("radix-scatter", KernelKind::Other, warps)
}

/// The bin-edges kernel: each warp compares 32 adjacent sorted keys
/// against their predecessors and stores a tile boundary when the tile
/// bits change — the store count is data-dependent on the actual
/// boundary density.
pub fn tile_bin_edges_trace(sorted: &[u64]) -> KernelTrace {
    let mut warps = Vec::new();
    for (w, chunk) in sorted.chunks(WARP_SIZE).enumerate() {
        let mut b = WarpTraceBuilder::new();
        b.load(2) // this key block + the preceding key
            .compute(ComputeKind::IntAlu, 2); // tile extract + compare
        let boundaries = chunk
            .iter()
            .enumerate()
            .filter(|&(i, &k)| {
                let global = w * WARP_SIZE + i;
                global == 0 || key_tile(sorted[global - 1]) != key_tile(k)
            })
            .count();
        if boundaries > 0 {
            b.store(boundaries.div_ceil(4) as u16);
        }
        warps.push(b.finish());
    }
    KernelTrace::new("tile-bin-edges", KernelKind::Other, warps)
}

/// Everything the tile-binned front-end produces: functional results
/// (sorted keys, per-tile lists, rendered image) and one trace per
/// stage, in frame order.
#[derive(Clone, Debug)]
pub struct TiledPipeline {
    /// Unsorted key expansion.
    pub map: IntersectMap,
    /// Keys after the radix sort (tile-major, depth order per tile).
    pub sorted_keys: Vec<u64>,
    /// The rasterizer output rendered from the binned lists.
    pub output: RenderOutput,
    /// Per-stage traces: map-intersect, intersect-scan,
    /// radix-histogram, radix-scatter, tile-bin-edges, tile-rasterize.
    pub traces: Vec<KernelTrace>,
}

/// Runs the full tile-binned pipeline: expand keys, sort, bin,
/// rasterize from the binned lists, and emit each stage's trace.
pub fn tile_binned_pipeline(
    scene: &SplatScene,
    width: usize,
    height: usize,
    background: Vec3,
    costs: TraceCosts,
) -> TiledPipeline {
    let map = map_gaussians_to_intersect(scene, width, height);
    let (sorted_keys, _histograms) = radix_sort(&map.keys);
    let tiles = tile_lists_from_sorted(&sorted_keys, map.tiles_x, map.tiles_y);
    let output = gaussian::render_with_lists(scene, tiles, width, height, background);

    let rasterize = tracegen::gaussian_forward_trace(&output, costs);
    let rasterize = KernelTrace::new(
        "tile-rasterize",
        rasterize.kind(),
        rasterize.warps().to_vec(),
    );
    let traces = vec![
        map_intersect_trace(&map, costs),
        scan_trace(map.tiles_touched.len()),
        radix_histogram_trace(&map.keys, costs),
        radix_scatter_trace(&map.keys, costs),
        tile_bin_edges_trace(&sorted_keys),
        rasterize,
    ];
    TiledPipeline {
        map,
        sorted_keys,
        output,
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::GaussianModel;
    use crate::math::Vec2;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use warp_trace::GlobalMemory;

    fn test_scene(n: usize, w: usize, h: usize) -> SplatScene {
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = GaussianModel::new();
        for _ in 0..n {
            model.push(
                Vec2::new(rng.gen_range(0.0..w as f32), rng.gen_range(0.0..h as f32)),
                Vec2::new(rng.gen_range(0.3..1.5), rng.gen_range(0.3..1.5)),
                rng.gen_range(0.0..std::f32::consts::PI),
                rng.gen_range(-0.5..1.5),
                Vec3::new(rng.gen(), rng.gen(), rng.gen()),
            );
        }
        model.to_splats()
    }

    #[test]
    fn exclusive_scan_matches_naive() {
        let xs = [3u32, 0, 7, 1, 0, 5];
        assert_eq!(exclusive_scan(&xs), vec![0, 3, 3, 10, 11, 11]);
        assert_eq!(exclusive_scan(&[]), Vec::<u32>::new());
    }

    #[test]
    fn radix_sort_matches_std_sort() {
        let mut rng = StdRng::seed_from_u64(11);
        let keys: Vec<u64> = (0..5000).map(|_| rng.gen_range(0..1u64 << 33)).collect();
        let (sorted, _) = radix_sort(&keys);
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(sorted, want);
    }

    #[test]
    fn radix_sort_is_stable_on_packed_keys() {
        // Equal tiles keep depth-rank order — required for compositing.
        let keys = vec![
            pack_key(2, 5),
            pack_key(1, 9),
            pack_key(2, 3),
            pack_key(1, 1),
        ];
        let (sorted, _) = radix_sort(&keys);
        assert_eq!(
            sorted,
            vec![
                pack_key(1, 1),
                pack_key(1, 9),
                pack_key(2, 3),
                pack_key(2, 5)
            ]
        );
    }

    #[test]
    fn sorted_keys_are_monotone() {
        let scene = test_scene(300, 96, 64);
        let map = map_gaussians_to_intersect(&scene, 96, 64);
        let (sorted, _) = radix_sort(&map.keys);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sorted.len(), map.keys.len());
        assert_eq!(
            map.keys.len(),
            map.tiles_touched.iter().map(|&c| c as usize).sum::<usize>()
        );
    }

    #[test]
    fn bin_edges_cross_check_scan_of_counts() {
        let scene = test_scene(300, 96, 64);
        let map = map_gaussians_to_intersect(&scene, 96, 64);
        let (sorted, _) = radix_sort(&map.keys);
        let n_tiles = map.tiles_x * map.tiles_y;
        let edges = tile_bin_edges(&sorted, n_tiles);
        // Per-tile counts from the keys themselves.
        let mut counts = vec![0u32; n_tiles];
        for &k in &sorted {
            counts[key_tile(k) as usize] += 1;
        }
        let starts = exclusive_scan(&counts);
        for t in 0..n_tiles {
            let (s, e) = edges[t];
            assert_eq!(e - s, counts[t], "tile {t} range width");
            if counts[t] > 0 {
                assert_eq!(s, starts[t], "tile {t} range start");
            }
        }
    }

    #[test]
    fn tile_lists_match_direct_binning() {
        let scene = test_scene(400, 128, 96);
        let direct = gaussian::build_tile_lists(&scene, 128, 96);
        let map = map_gaussians_to_intersect(&scene, 128, 96);
        let (sorted, _) = radix_sort(&map.keys);
        let binned = tile_lists_from_sorted(&sorted, map.tiles_x, map.tiles_y);
        assert_eq!(binned, direct);
    }

    #[test]
    fn pipeline_image_matches_functional_rasterizer() {
        let scene = test_scene(400, 128, 96);
        let bg = Vec3::splat(0.05);
        let direct = gaussian::render_scene(&scene, 128, 96, bg);
        let piped = tile_binned_pipeline(&scene, 128, 96, bg, TraceCosts::default());
        // Identical lists walked by identical compositing code: the
        // images agree to the last bit (documented tolerance 1e-6 in
        // case a future rasterizer reorders f32 math).
        let max_diff = direct
            .image
            .pixels()
            .iter()
            .zip(piped.output.image.pixels())
            .map(|(a, b)| {
                (a.x - b.x)
                    .abs()
                    .max((a.y - b.y).abs())
                    .max((a.z - b.z).abs())
            })
            .fold(0.0f32, f32::max);
        assert!(max_diff <= 1e-6, "image diverged by {max_diff}");
    }

    #[test]
    fn histogram_trace_reproduces_digit_counts() {
        let scene = test_scene(300, 96, 64);
        let map = map_gaussians_to_intersect(&scene, 96, 64);
        let (_, histograms) = radix_sort(&map.keys);
        let trace = radix_histogram_trace(&map.keys, TraceCosts::default());
        let mut mem = GlobalMemory::new();
        mem.apply_trace(&trace);
        for (p, hist) in histograms.iter().enumerate() {
            for (d, &count) in hist.iter().enumerate() {
                let got = mem.read(hist_addr(p as u32, d));
                assert_eq!(
                    got, count as f32,
                    "pass {p} digit {d}: trace atomics disagree with histogram"
                );
            }
        }
    }

    #[test]
    fn histogram_stage_is_contention_heavy() {
        let scene = test_scene(300, 96, 64);
        let map = map_gaussians_to_intersect(&scene, 96, 64);
        let trace = radix_histogram_trace(&map.keys, TraceCosts::default());
        let stats = warp_trace::TraceStats::compute(&trace);
        assert!(stats.atomic_requests > 0);
        // Every pass offers only 16 distinct counter words.
        assert!(
            stats.unique_addresses <= sort_passes(&map.keys) as u64 * RADIX as u64,
            "histogram addresses leak outside the counters"
        );
        // 32 lanes over at most 16 digit words: intra-warp collisions
        // are pervasive (the dominant pressure — every warp hammering
        // the same 16 counters — is inter-warp and invisible to
        // per-instruction stats).
        assert!(
            stats.same_address_multi_fraction() > 0.3,
            "digit collisions should be pervasive: {}",
            stats.same_address_multi_fraction()
        );
    }

    #[test]
    fn fixed_stages_have_no_atomics() {
        let scene = test_scene(200, 96, 64);
        let piped = tile_binned_pipeline(&scene, 96, 64, Vec3::splat(0.0), TraceCosts::default());
        for trace in &piped.traces {
            let atomics = trace.total_atomic_requests();
            if trace.name() == "radix-histogram" {
                assert!(atomics > 0);
            } else {
                assert_eq!(atomics, 0, "{} must not issue atomics", trace.name());
            }
        }
        assert_eq!(piped.traces.len(), 6);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let scene = test_scene(150, 64, 64);
        let a = tile_binned_pipeline(&scene, 64, 64, Vec3::splat(0.0), TraceCosts::default());
        let b = tile_binned_pipeline(&scene, 64, 64, Vec3::splat(0.0), TraceCosts::default());
        assert_eq!(a.sorted_keys, b.sorted_keys);
        assert_eq!(a.traces, b.traces);
    }
}

//! Small vector/matrix types for the differentiable renderers.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A 2-component f32 vector (pixel/screen coordinates).
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Vec2 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
}

impl Vec2 {
    /// Creates a vector.
    pub const fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec2) -> f32 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f32 {
        self.dot(self)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f32> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f32) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// A 3-component f32 vector (RGB colors, directions).
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Vec3 {
    /// x / red component.
    pub x: f32,
    /// y / green component.
    pub y: f32,
    /// z / blue component.
    pub z: f32,
}

impl Vec3 {
    /// Creates a vector.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// All components equal.
    pub const fn splat(v: f32) -> Self {
        Vec3::new(v, v, v)
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Euclidean norm.
    pub fn norm(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit-length copy. Returns `self` unchanged if the norm is ~zero.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n > 1e-12 {
            self * (1.0 / n)
        } else {
            self
        }
    }

    /// Cross product `self × rhs`.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Component access by index 0..3.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn get(self, i: usize) -> f32 {
        match i {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

/// A symmetric 2×2 matrix `[[a, b], [b, c]]` — 2D covariances and conics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Mat2Sym {
    /// Top-left entry.
    pub a: f32,
    /// Off-diagonal entry.
    pub b: f32,
    /// Bottom-right entry.
    pub c: f32,
}

impl Mat2Sym {
    /// Creates a symmetric matrix.
    pub const fn new(a: f32, b: f32, c: f32) -> Self {
        Mat2Sym { a, b, c }
    }

    /// Determinant `a·c − b²`.
    pub fn det(self) -> f32 {
        self.a * self.c - self.b * self.b
    }

    /// Inverse (also symmetric).
    ///
    /// # Panics
    ///
    /// Panics if the determinant magnitude is below `1e-12` (degenerate
    /// covariance).
    pub fn inverse(self) -> Mat2Sym {
        let det = self.det();
        assert!(det.abs() > 1e-12, "singular 2x2 matrix (det = {det})");
        let inv = 1.0 / det;
        Mat2Sym::new(self.c * inv, -self.b * inv, self.a * inv)
    }

    /// Quadratic form `vᵀ M v`.
    pub fn quad(self, v: Vec2) -> f32 {
        self.a * v.x * v.x + 2.0 * self.b * v.x * v.y + self.c * v.y * v.y
    }

    /// Whether the matrix is positive definite.
    pub fn is_positive_definite(self) -> bool {
        self.a > 0.0 && self.det() > 0.0
    }
}

/// The 2D covariance of a rotated anisotropic Gaussian:
/// `Σ = R(θ) diag(sx², sy²) R(θ)ᵀ`.
pub fn covariance_from_scale_rot(sx: f32, sy: f32, theta: f32) -> Mat2Sym {
    let (sin, cos) = theta.sin_cos();
    let (vx, vy) = (sx * sx, sy * sy);
    Mat2Sym::new(
        cos * cos * vx + sin * sin * vy,
        sin * cos * (vx - vy),
        sin * sin * vx + cos * cos * vy,
    )
}

/// Backpropagates a gradient w.r.t. the covariance entries `(a, b, c)` of
/// [`covariance_from_scale_rot`] to `(sx, sy, theta)`.
///
/// The off-diagonal entry `b` appears once in the symmetric storage but
/// twice in the matrix; `grad_cov.b` must be the derivative w.r.t. the
/// *stored* `b` (i.e. already accounting for both occurrences).
pub fn covariance_backward(sx: f32, sy: f32, theta: f32, grad_cov: Mat2Sym) -> (f32, f32, f32) {
    let (sin, cos) = theta.sin_cos();
    let (vx, vy) = (sx * sx, sy * sy);
    // d a / d vx = cos², d a / d vy = sin², etc.
    let d_vx = grad_cov.a * cos * cos + grad_cov.b * sin * cos + grad_cov.c * sin * sin;
    let d_vy = grad_cov.a * sin * sin - grad_cov.b * sin * cos + grad_cov.c * cos * cos;
    let d_sx = d_vx * 2.0 * sx;
    let d_sy = d_vy * 2.0 * sy;
    // dθ: da/dθ = -2 sin cos (vx - vy); db/dθ = (cos²−sin²)(vx−vy);
    //     dc/dθ = 2 sin cos (vx − vy).
    let diff = vx - vy;
    let d_theta = grad_cov.a * (-2.0 * sin * cos * diff)
        + grad_cov.b * ((cos * cos - sin * sin) * diff)
        + grad_cov.c * (2.0 * sin * cos * diff);
    (d_sx, d_sy, d_theta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn vec2_ops() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!((-a).x, -1.0);
        assert_eq!(a.norm_sq(), 5.0);
    }

    #[test]
    fn vec3_ops() {
        let v = Vec3::new(3.0, 0.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        let n = v.normalized();
        assert_close(n.norm(), 1.0, 1e-6);
        assert_eq!(Vec3::splat(2.0).dot(Vec3::splat(3.0)), 18.0);
        assert_eq!(v.get(2), 4.0);
        // Zero vector normalizes to itself.
        assert_eq!(Vec3::default().normalized(), Vec3::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vec3_bad_index_panics() {
        let _ = Vec3::default().get(3);
    }

    #[test]
    fn mat2_inverse_roundtrip() {
        let m = Mat2Sym::new(4.0, 1.0, 3.0);
        let inv = m.inverse();
        // M · M⁻¹ = I for symmetric matrices: check via quadratic forms.
        assert_close(m.a * inv.a + m.b * inv.b, 1.0, 1e-6);
        assert_close(m.a * inv.b + m.b * inv.c, 0.0, 1e-6);
        assert_close(m.b * inv.b + m.c * inv.c, 1.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn mat2_singular_panics() {
        let _ = Mat2Sym::new(1.0, 1.0, 1.0).inverse();
    }

    #[test]
    fn covariance_is_positive_definite() {
        let cov = covariance_from_scale_rot(2.0, 0.5, 0.7);
        assert!(cov.is_positive_definite());
        // Isotropic case: rotation irrelevant.
        let iso = covariance_from_scale_rot(1.5, 1.5, 1.2);
        assert_close(iso.a, 2.25, 1e-5);
        assert_close(iso.b, 0.0, 1e-5);
        assert_close(iso.c, 2.25, 1e-5);
    }

    #[test]
    fn covariance_backward_matches_finite_differences() {
        let (sx, sy, theta) = (1.7f32, 0.6f32, 0.35f32);
        // Loss L = 1·a + 2·b + 3·c  ⇒ grad_cov = (1, 2, 3).
        let grad_cov = Mat2Sym::new(1.0, 2.0, 3.0);
        let loss = |sx: f32, sy: f32, th: f32| {
            let c = covariance_from_scale_rot(sx, sy, th);
            c.a * grad_cov.a + c.b * grad_cov.b + c.c * grad_cov.c
        };
        let (d_sx, d_sy, d_theta) = covariance_backward(sx, sy, theta, grad_cov);
        let h = 1e-3;
        let fd_sx = (loss(sx + h, sy, theta) - loss(sx - h, sy, theta)) / (2.0 * h);
        let fd_sy = (loss(sx, sy + h, theta) - loss(sx, sy - h, theta)) / (2.0 * h);
        let fd_th = (loss(sx, sy, theta + h) - loss(sx, sy, theta - h)) / (2.0 * h);
        assert_close(d_sx, fd_sx, 2e-2);
        assert_close(d_sy, fd_sy, 2e-2);
        assert_close(d_theta, fd_th, 2e-2);
    }

    #[test]
    fn quad_form() {
        let m = Mat2Sym::new(2.0, 0.5, 1.0);
        let v = Vec2::new(1.0, 2.0);
        assert_close(m.quad(v), 2.0 + 2.0 * 0.5 * 2.0 + 4.0, 1e-6);
    }
}

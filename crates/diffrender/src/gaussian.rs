//! Tile-based differentiable Gaussian splatting — the 3DGS-style
//! rasterizer whose backward pass is the paper's headline workload.
//!
//! The renderer follows the structure of the 3DGS CUDA rasterizer
//! (Kerbl et al. 2023): screen is split into 16×16 tiles, each tile has
//! a list of overlapping Gaussians, each 16×2-pixel warp walks the
//! *same* per-tile list front-to-back with alpha compositing and early
//! termination, and the backward pass walks it back-to-front computing
//! per-Gaussian gradients for mean2D (2), conic (3), opacity (1), and
//! color (3) — the 9 atomically-accumulated parameters of paper Fig. 5.
//!
//! The substitution note (DESIGN.md): the paper's workloads project 3D
//! Gaussians per camera before rasterizing; we train screen-space 2D
//! Gaussians (mean, log-scale, rotation, opacity logit, color). The
//! rasterization forward/backward — the kernel the paper profiles and
//! accelerates — is implemented in full, and its gradients are verified
//! against finite differences.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::image::Image;
use crate::loss::PixelGrads;
use crate::math::{covariance_backward, covariance_from_scale_rot, Mat2Sym, Vec2, Vec3};

/// Tile edge in pixels (matches the 3DGS rasterizer).
pub const TILE: usize = 16;
/// Pixels covered by one warp: a 16×2 strip (CUDA linear thread order in
/// a 16×16 block).
pub const WARP_W: usize = 16;
/// Rows covered by one warp.
pub const WARP_H: usize = 2;
/// Minimum alpha for a Gaussian to contribute (the `1/255` of 3DGS —
/// paper Fig. 5's `COND2`).
pub const ALPHA_MIN: f32 = 1.0 / 255.0;
/// Transmittance early-termination threshold (`COND` in the loop).
pub const T_MIN: f32 = 1e-4;
/// Opacity × Gaussian clamp (3DGS clamps alpha at 0.99).
pub const ALPHA_MAX: f32 = 0.99;

/// Trainable floats per Gaussian: mean (2) + log-scale (2) + rotation
/// (1) + opacity logit (1) + RGB (3).
pub const PARAMS_PER_GAUSSIAN: usize = 9;
/// Atomically-accumulated raster gradients per Gaussian per pixel:
/// dmean2D (2) + dconic (3) + dopacity (1) + dcolor (3).
pub const RASTER_GRADS_PER_GAUSSIAN: usize = 9;

/// A screen-space Gaussian scene model (struct-of-arrays).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaussianModel {
    /// Screen-space means in pixels.
    pub mean: Vec<Vec2>,
    /// Per-axis log standard deviations in pixels.
    pub log_scale: Vec<Vec2>,
    /// Rotation angles in radians.
    pub theta: Vec<f32>,
    /// Opacity logits (`opacity = sigmoid(logit)`).
    pub opacity_logit: Vec<f32>,
    /// RGB colors (unconstrained; targets live in \[0,1\]).
    pub color: Vec<Vec3>,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl GaussianModel {
    /// An empty model.
    pub fn new() -> Self {
        GaussianModel {
            mean: Vec::new(),
            log_scale: Vec::new(),
            theta: Vec::new(),
            opacity_logit: Vec::new(),
            color: Vec::new(),
        }
    }

    /// Number of Gaussians.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Appends a Gaussian.
    pub fn push(
        &mut self,
        mean: Vec2,
        log_scale: Vec2,
        theta: f32,
        opacity_logit: f32,
        color: Vec3,
    ) {
        self.mean.push(mean);
        self.log_scale.push(log_scale);
        self.theta.push(theta);
        self.opacity_logit.push(opacity_logit);
        self.color.push(color);
    }

    /// Random initialization over a `width`×`height` canvas with
    /// mid-size, mid-opacity Gaussians — the usual training start.
    pub fn random<R: Rng>(n: usize, width: usize, height: usize, rng: &mut R) -> Self {
        let mut model = GaussianModel::new();
        for _ in 0..n {
            model.push(
                Vec2::new(
                    rng.gen_range(0.0..width as f32),
                    rng.gen_range(0.0..height as f32),
                ),
                Vec2::new(rng.gen_range(0.6..1.8), rng.gen_range(0.6..1.8)),
                rng.gen_range(0.0..std::f32::consts::PI),
                rng.gen_range(-1.0..1.0),
                Vec3::new(rng.gen(), rng.gen(), rng.gen()),
            );
        }
        model
    }

    /// Flattens the trainable parameters into one vector
    /// ([`PARAMS_PER_GAUSSIAN`] floats per Gaussian).
    pub fn to_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len() * PARAMS_PER_GAUSSIAN);
        for i in 0..self.len() {
            out.extend_from_slice(&[
                self.mean[i].x,
                self.mean[i].y,
                self.log_scale[i].x,
                self.log_scale[i].y,
                self.theta[i],
                self.opacity_logit[i],
                self.color[i].x,
                self.color[i].y,
                self.color[i].z,
            ]);
        }
        out
    }

    /// Loads trainable parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != len() * PARAMS_PER_GAUSSIAN`.
    pub fn set_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.len() * PARAMS_PER_GAUSSIAN,
            "parameter vector length mismatch"
        );
        for (i, chunk) in params.chunks_exact(PARAMS_PER_GAUSSIAN).enumerate() {
            self.mean[i] = Vec2::new(chunk[0], chunk[1]);
            self.log_scale[i] = Vec2::new(chunk[2], chunk[3]);
            self.theta[i] = chunk[4];
            self.opacity_logit[i] = chunk[5];
            self.color[i] = Vec3::new(chunk[6], chunk[7], chunk[8]);
        }
    }

    /// Lowers the parameterized model to explicit screen-space splats
    /// (covariances and post-sigmoid opacities) — the representation the
    /// rasterizer core consumes, and what the 3D projection pipeline
    /// produces per camera.
    pub fn to_splats(&self) -> SplatScene {
        let n = self.len();
        let mut scene = SplatScene::with_capacity(n);
        for i in 0..n {
            let sx = self.log_scale[i].x.exp();
            let sy = self.log_scale[i].y.exp();
            scene.push(
                self.mean[i],
                covariance_from_scale_rot(sx, sy, self.theta[i]),
                sigmoid(self.opacity_logit[i]),
                self.color[i],
            );
        }
        scene
    }
}

/// Explicit screen-space splats: mean, 2D covariance, opacity in
/// `[0, 1]`, and color per Gaussian. This is the rasterizer's native
/// input; [`GaussianModel::to_splats`] lowers the trainable 2D model to
/// it, and `projection::project` lowers a 3D model per camera.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SplatScene {
    /// Screen-space means in pixels.
    pub mean: Vec<Vec2>,
    /// 2D covariances (must be positive definite).
    pub cov: Vec<Mat2Sym>,
    /// Opacities in `[0, 1]`.
    pub opacity: Vec<f32>,
    /// RGB colors.
    pub color: Vec<Vec3>,
}

impl SplatScene {
    /// An empty scene.
    pub fn new() -> Self {
        SplatScene::default()
    }

    /// An empty scene with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        SplatScene {
            mean: Vec::with_capacity(n),
            cov: Vec::with_capacity(n),
            opacity: Vec::with_capacity(n),
            color: Vec::with_capacity(n),
        }
    }

    /// Number of splats.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// Whether the scene is empty.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Appends a splat.
    ///
    /// # Panics
    ///
    /// Panics if the covariance is not positive definite.
    pub fn push(&mut self, mean: Vec2, cov: Mat2Sym, opacity: f32, color: Vec3) {
        assert!(
            cov.is_positive_definite(),
            "splat covariance must be positive definite, got {cov:?}"
        );
        self.mean.push(mean);
        self.cov.push(cov);
        self.opacity.push(opacity);
        self.color.push(color);
    }

    /// Derived per-splat render quantities.
    pub(crate) fn prepare(&self) -> Prepared {
        let n = self.len();
        let mut conic = Vec::with_capacity(n);
        let mut radius = Vec::with_capacity(n);
        for i in 0..n {
            let cov = self.cov[i];
            conic.push(cov.inverse());
            let mid = 0.5 * (cov.a + cov.c);
            let lambda_max = mid + (mid * mid - cov.det()).max(0.01).sqrt();
            radius.push(3.0 * lambda_max.sqrt());
        }
        Prepared { conic, radius }
    }
}

impl Default for GaussianModel {
    fn default() -> Self {
        GaussianModel::new()
    }
}

pub(crate) struct Prepared {
    pub(crate) conic: Vec<Mat2Sym>,
    pub(crate) radius: Vec<f32>,
}

/// Per-tile Gaussian lists (the `prims_per_thread` input of paper
/// Fig. 5, shared by every pixel of a tile).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TileLists {
    /// Tiles per row.
    pub tiles_x: usize,
    /// Tiles per column.
    pub tiles_y: usize,
    /// Gaussian ids per tile, ascending (compositing order).
    pub lists: Vec<Vec<u32>>,
}

impl TileLists {
    /// Average list length (atomic work per pixel is proportional to it).
    pub fn mean_len(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        self.lists.iter().map(|l| l.len() as f64).sum::<f64>() / self.lists.len() as f64
    }
}

/// The forward pass result, carrying everything the backward pass needs.
#[derive(Clone, Debug)]
pub struct RenderOutput {
    /// The rendered image.
    pub image: Image,
    /// Per-tile Gaussian lists.
    pub tiles: TileLists,
    /// Per-pixel final transmittance.
    pub final_t: Vec<f32>,
    /// Per-pixel count of list entries processed before early
    /// termination.
    pub n_processed: Vec<u32>,
    /// Background color used.
    pub background: Vec3,
}

/// Per-lane raster gradients for one Gaussian iteration — what each
/// thread atomically adds in paper Fig. 5 lines 12–14.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct LaneGrad {
    /// d L / d mean2D.
    pub mean: Vec2,
    /// d L / d conic (symmetric storage; `b` counted once).
    pub conic: Mat2Sym,
    /// d L / d opacity (post-sigmoid).
    pub opacity: f32,
    /// d L / d color.
    pub color: Vec3,
}

/// Observer of the backward pass at warp granularity — how the trace
/// generator sees the gradient-computation kernel without duplicating
/// its logic.
pub trait GradRecorder {
    /// Called once per (tile, warp strip) before its list walk. `lanes`
    /// maps lane index → pixel coordinates (None if outside the image).
    fn begin_warp(&mut self, tile: usize, lanes: &[Option<(usize, usize)>; 32]) {
        let _ = (tile, lanes);
    }

    /// Called once per list iteration with each lane's gradient
    /// contribution for Gaussian `gid` (None = lane skipped via the
    /// paper's `COND`s or early termination).
    fn record(&mut self, gid: u32, grads: &[Option<LaneGrad>; 32]);

    /// Called after a warp finishes its list walk.
    fn end_warp(&mut self) {}
}

/// A recorder that ignores everything (plain training).
#[derive(Debug, Default)]
pub struct NoopRecorder;

impl GradRecorder for NoopRecorder {
    fn record(&mut self, _gid: u32, _grads: &[Option<LaneGrad>; 32]) {}
}

/// Accumulated raster-space gradients (the arrays the atomics target).
#[derive(Clone, Debug, PartialEq)]
pub struct RasterGrads {
    /// d L / d mean2D per Gaussian.
    pub mean: Vec<Vec2>,
    /// d L / d conic per Gaussian.
    pub conic: Vec<Mat2Sym>,
    /// d L / d opacity per Gaussian.
    pub opacity: Vec<f32>,
    /// d L / d color per Gaussian.
    pub color: Vec<Vec3>,
}

impl RasterGrads {
    fn zeros(n: usize) -> Self {
        RasterGrads {
            mean: vec![Vec2::default(); n],
            conic: vec![Mat2Sym::default(); n],
            opacity: vec![0.0; n],
            color: vec![Vec3::default(); n],
        }
    }
}

/// Builds the per-tile Gaussian lists by conservative bounding-circle
/// binning (the duplication + sort stage of 3DGS).
pub fn build_tile_lists(scene: &SplatScene, width: usize, height: usize) -> TileLists {
    let prepared = scene.prepare();
    build_tile_lists_prepared(scene, &prepared, width, height)
}

/// The inclusive tile-index span a splat's bounding circle covers, or
/// `None` if the splat is culled. Shared by the direct binning below
/// and the tile-binned pipeline's `map_gaussians_to_intersect`
/// ([`crate::primitives`]) so both cull identically.
pub(crate) fn tile_span(
    mean: Vec2,
    radius: f32,
    tiles_x: usize,
    tiles_y: usize,
) -> Option<(usize, usize, usize, usize)> {
    let (m, r) = (mean, radius);
    let x0 = (((m.x - r) / TILE as f32).floor().max(0.0)) as usize;
    let y0 = (((m.y - r) / TILE as f32).floor().max(0.0)) as usize;
    if m.x + r < 0.0 || m.y + r < 0.0 {
        return None;
    }
    let x1 = (((m.x + r) / TILE as f32).floor() as usize).min(tiles_x.saturating_sub(1));
    let y1 = (((m.y + r) / TILE as f32).floor() as usize).min(tiles_y.saturating_sub(1));
    if x0 > x1 || y0 > y1 || x0 >= tiles_x || y0 >= tiles_y {
        return None;
    }
    Some((x0, x1, y0, y1))
}

fn build_tile_lists_prepared(
    scene: &SplatScene,
    prepared: &Prepared,
    width: usize,
    height: usize,
) -> TileLists {
    let tiles_x = width.div_ceil(TILE);
    let tiles_y = height.div_ceil(TILE);
    let mut lists = vec![Vec::new(); tiles_x * tiles_y];
    for gid in 0..scene.len() {
        let Some((x0, x1, y0, y1)) =
            tile_span(scene.mean[gid], prepared.radius[gid], tiles_x, tiles_y)
        else {
            continue;
        };
        for ty in y0..=y1 {
            for tx in x0..=x1 {
                lists[ty * tiles_x + tx].push(gid as u32);
            }
        }
    }
    TileLists {
        tiles_x,
        tiles_y,
        lists,
    }
}

/// Evaluates one Gaussian at a pixel; `None` if it fails the paper's
/// `COND1`/`COND2` checks. Returns `(gauss_value, alpha, clamped)`.
fn eval_alpha(pix: Vec2, mean: Vec2, conic: Mat2Sym, opacity: f32) -> Option<(f32, f32, bool)> {
    let d = pix - mean;
    let power = -0.5 * conic.quad(d);
    if power > 0.0 {
        return None; // COND1: numerical guard, as in 3DGS
    }
    let g = power.exp();
    let raw = opacity * g;
    let clamped = raw > ALPHA_MAX;
    let alpha = if clamped { ALPHA_MAX } else { raw };
    if alpha < ALPHA_MIN {
        return None; // COND2: negligible contribution
    }
    Some((g, alpha, clamped))
}

/// Renders the model over a `width`×`height` canvas with alpha
/// compositing onto `background`.
///
/// # Example
///
/// ```
/// use diffrender::gaussian::{render, GaussianModel};
/// use diffrender::math::{Vec2, Vec3};
///
/// let mut model = GaussianModel::new();
/// model.push(Vec2::new(16.0, 16.0), Vec2::new(1.5, 1.5), 0.0, 2.0, Vec3::new(1.0, 0.0, 0.0));
/// let out = render(&model, 32, 32, Vec3::splat(0.0));
/// // The Gaussian's center pixel is strongly red.
/// assert!(out.image.get(16, 16).x > 0.5);
/// ```
pub fn render(
    model: &GaussianModel,
    width: usize,
    height: usize,
    background: Vec3,
) -> RenderOutput {
    render_scene(&model.to_splats(), width, height, background)
}

/// Renders explicit screen-space splats (the rasterizer core).
pub fn render_scene(
    scene: &SplatScene,
    width: usize,
    height: usize,
    background: Vec3,
) -> RenderOutput {
    let prepared = scene.prepare();
    let tiles = build_tile_lists_prepared(scene, &prepared, width, height);
    render_prepared_with_lists(scene, &prepared, tiles, width, height, background)
}

/// Rasterizes from externally supplied per-tile lists (the tail of the
/// tile-binned pipeline: `map_gaussians_to_intersect` → radix sort →
/// `tile_bin_edges` produce `tiles`, then this composites exactly like
/// [`render_scene`]). Lists must be in compositing order per tile.
pub fn render_with_lists(
    scene: &SplatScene,
    tiles: TileLists,
    width: usize,
    height: usize,
    background: Vec3,
) -> RenderOutput {
    let prepared = scene.prepare();
    render_prepared_with_lists(scene, &prepared, tiles, width, height, background)
}

fn render_prepared_with_lists(
    scene: &SplatScene,
    prepared: &Prepared,
    tiles: TileLists,
    width: usize,
    height: usize,
    background: Vec3,
) -> RenderOutput {
    let mut image = Image::new(width, height);
    let mut final_t = vec![1.0f32; width * height];
    let mut n_processed = vec![0u32; width * height];

    for ty in 0..tiles.tiles_y {
        for tx in 0..tiles.tiles_x {
            let list = &tiles.lists[ty * tiles.tiles_x + tx];
            for py in ty * TILE..((ty + 1) * TILE).min(height) {
                for px in tx * TILE..((tx + 1) * TILE).min(width) {
                    let pix = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
                    let mut t = 1.0f32;
                    let mut c = Vec3::default();
                    let mut processed = 0u32;
                    for &gid in list {
                        processed += 1;
                        let g = gid as usize;
                        let Some((_gauss, alpha, _)) =
                            eval_alpha(pix, scene.mean[g], prepared.conic[g], scene.opacity[g])
                        else {
                            continue;
                        };
                        let test_t = t * (1.0 - alpha);
                        if test_t < T_MIN {
                            // Early termination: this entry does NOT
                            // contribute (matches 3DGS, which breaks
                            // before blending).
                            processed -= 1;
                            break;
                        }
                        c += scene.color[g] * (alpha * t);
                        t = test_t;
                    }
                    let idx = py * width + px;
                    image.pixels_mut()[idx] = c + background * t;
                    final_t[idx] = t;
                    n_processed[idx] = processed;
                }
            }
        }
    }
    RenderOutput {
        image,
        tiles,
        final_t,
        n_processed,
        background,
    }
}

/// The gradient-computation kernel (paper Fig. 5): walks each tile's
/// list back-to-front per warp, producing raster-space gradients.
/// `recorder` observes every warp iteration for trace generation.
pub fn backward<R: GradRecorder>(
    model: &GaussianModel,
    out: &RenderOutput,
    pixel_grads: &PixelGrads,
    recorder: &mut R,
) -> RasterGrads {
    backward_scene(&model.to_splats(), out, pixel_grads, recorder)
}

/// The gradient-computation kernel over explicit splats, producing
/// gradients w.r.t. mean2D, conic, (direct) opacity, and color.
pub fn backward_scene<R: GradRecorder>(
    scene: &SplatScene,
    out: &RenderOutput,
    pixel_grads: &PixelGrads,
    recorder: &mut R,
) -> RasterGrads {
    let prepared = scene.prepare();
    let width = out.image.width();
    let height = out.image.height();
    assert_eq!(pixel_grads.width(), width, "gradient field width mismatch");
    assert_eq!(
        pixel_grads.height(),
        height,
        "gradient field height mismatch"
    );
    let mut grads = RasterGrads::zeros(scene.len());

    let warps_per_tile_y = TILE / WARP_H;
    for ty in 0..out.tiles.tiles_y {
        for tx in 0..out.tiles.tiles_x {
            let tile_idx = ty * out.tiles.tiles_x + tx;
            let list = &out.tiles.lists[tile_idx];
            if list.is_empty() {
                continue;
            }
            for warp_row in 0..warps_per_tile_y {
                backward_warp(
                    scene,
                    &prepared,
                    out,
                    pixel_grads,
                    list,
                    tile_idx,
                    tx * TILE,
                    ty * TILE + warp_row * WARP_H,
                    width,
                    height,
                    &mut grads,
                    recorder,
                );
            }
        }
    }
    grads
}

/// Per-lane backward state, mirroring the 3DGS backward kernel's
/// registers.
#[derive(Copy, Clone)]
struct LaneState {
    t: f32,
    accum: Vec3,
    last_alpha: f32,
    last_color: Vec3,
    dl_dpix: Vec3,
    pix: Vec2,
    /// Entries of the list this pixel processed in the forward pass.
    n_processed: u32,
}

#[allow(clippy::too_many_arguments)]
fn backward_warp<R: GradRecorder>(
    scene: &SplatScene,
    prepared: &Prepared,
    out: &RenderOutput,
    pixel_grads: &PixelGrads,
    list: &[u32],
    tile_idx: usize,
    x0: usize,
    y0: usize,
    width: usize,
    height: usize,
    grads: &mut RasterGrads,
    recorder: &mut R,
) {
    let mut lane_pix: [Option<(usize, usize)>; 32] = [None; 32];
    let mut state: [Option<LaneState>; 32] = [None; 32];
    for lane in 0..32usize {
        let px = x0 + lane % WARP_W;
        let py = y0 + lane / WARP_W;
        if px >= width || py >= height {
            continue;
        }
        lane_pix[lane] = Some((px, py));
        let idx = py * width + px;
        state[lane] = Some(LaneState {
            t: out.final_t[idx],
            accum: Vec3::default(),
            last_alpha: 0.0,
            last_color: Vec3::default(),
            dl_dpix: pixel_grads.get(px, py),
            pix: Vec2::new(px as f32 + 0.5, py as f32 + 0.5),
            n_processed: out.n_processed[idx],
        });
    }
    recorder.begin_warp(tile_idx, &lane_pix);

    // Walk the shared list back-to-front (3DGS backward order). Every
    // lane of the warp executes every iteration (warp-uniform loop);
    // lanes whose pixel skipped the Gaussian contribute nothing.
    for k in (0..list.len()).rev() {
        let gid = list[k];
        let g = gid as usize;
        let mut lane_grads: [Option<LaneGrad>; 32] = [None; 32];
        let mut any = false;
        for lane in 0..32usize {
            let Some(st) = state[lane].as_mut() else {
                continue;
            };
            if (k as u32) >= st.n_processed {
                continue; // this pixel never reached entry k (early stop)
            }
            let Some((gauss, alpha, clamped)) =
                eval_alpha(st.pix, scene.mean[g], prepared.conic[g], scene.opacity[g])
            else {
                continue; // COND1/COND2 skip, exactly as in the forward
            };

            // Transmittance in front of this Gaussian.
            st.t /= 1.0 - alpha;

            // Color gradient: dC/dcolor = alpha · T.
            let dchannel = alpha * st.t;
            let dl_dcolor = st.dl_dpix * dchannel;

            // Alpha gradient: colors behind this Gaussian.
            st.accum = st.last_color * st.last_alpha + st.accum * (1.0 - st.last_alpha);
            let diff = scene.color[g] - st.accum;
            let mut dl_dalpha = diff.dot(st.dl_dpix) * st.t;
            // Background term: C += bg · T_final, and T_final depends on
            // every alpha: dT_final/dalpha = -T_final / (1 − alpha).
            let t_final = out.final_t[lane_pix[lane]
                .map(|(px, py)| py * width + px)
                .expect("active lane has a pixel")];
            dl_dalpha += -(t_final / (1.0 - alpha)) * out.background.dot(st.dl_dpix);

            st.last_alpha = alpha;
            st.last_color = scene.color[g];

            // Through alpha = opacity · G (zero gradient if clamped).
            let (dl_dopacity, dl_dpower, d) = if clamped {
                (0.0, 0.0, st.pix - scene.mean[g])
            } else {
                let dl_dg = dl_dalpha * scene.opacity[g];
                let dl_dopacity = dl_dalpha * gauss;
                // dG/dpower = G; alpha = op·G ⇒ dalpha/dpower = alpha.
                (dl_dopacity, dl_dg * gauss, st.pix - scene.mean[g])
            };
            let conic = prepared.conic[g];
            // power = −½ (a dx² + 2 b dx dy + c dy²), d = pix − mean.
            let dl_dmean = Vec2::new(
                dl_dpower * (conic.a * d.x + conic.b * d.y),
                dl_dpower * (conic.b * d.x + conic.c * d.y),
            );
            let dl_dconic = Mat2Sym::new(
                dl_dpower * (-0.5 * d.x * d.x),
                dl_dpower * (-d.x * d.y),
                dl_dpower * (-0.5 * d.y * d.y),
            );

            let lg = LaneGrad {
                mean: dl_dmean,
                conic: dl_dconic,
                opacity: dl_dopacity,
                color: dl_dcolor,
            };
            lane_grads[lane] = Some(lg);
            any = true;

            // Accumulate (the functional effect of the atomics).
            grads.mean[g] += lg.mean;
            grads.conic[g].a += lg.conic.a;
            grads.conic[g].b += lg.conic.b;
            grads.conic[g].c += lg.conic.c;
            grads.opacity[g] += lg.opacity;
            grads.color[g] += lg.color;
        }
        let _ = any;
        recorder.record(gid, &lane_grads);
    }
    recorder.end_warp();
}

/// Backpropagates a gradient w.r.t. the conic (inverse covariance) to
/// the covariance itself: `dL/dΣ = −Σ⁻¹ · (dL/dΣ⁻¹) · Σ⁻¹`. Both
/// gradients use symmetric storage with the off-diagonal counted once.
pub fn conic_grad_to_cov(conic: Mat2Sym, grad_conic: Mat2Sym) -> Mat2Sym {
    let g = grad_conic;
    let gf = [[g.a, 0.5 * g.b], [0.5 * g.b, g.c]];
    let cf = [[conic.a, conic.b], [conic.b, conic.c]];
    let mut tmp = [[0.0f32; 2]; 2];
    for (r, tmp_row) in tmp.iter_mut().enumerate() {
        for (cc, cell) in tmp_row.iter_mut().enumerate() {
            *cell = cf[r][0] * gf[0][cc] + cf[r][1] * gf[1][cc];
        }
    }
    let mut dcov = [[0.0f32; 2]; 2];
    for (r, dcov_row) in dcov.iter_mut().enumerate() {
        for (cc, cell) in dcov_row.iter_mut().enumerate() {
            *cell = -(tmp[r][0] * cf[0][cc] + tmp[r][1] * cf[1][cc]);
        }
    }
    Mat2Sym::new(dcov[0][0], 2.0 * dcov[0][1], dcov[1][1])
}

/// Chains raster-space gradients back to the trainable parameters
/// (the 3DGS "preprocess backward": conic → covariance → scale/rotation,
/// opacity → logit), returning a flat gradient vector aligned with
/// [`GaussianModel::to_params`].
pub fn param_grads(model: &GaussianModel, raster: &RasterGrads) -> Vec<f32> {
    let n = model.len();
    let mut out = Vec::with_capacity(n * PARAMS_PER_GAUSSIAN);
    for i in 0..n {
        let sx = model.log_scale[i].x.exp();
        let sy = model.log_scale[i].y.exp();
        let cov = covariance_from_scale_rot(sx, sy, model.theta[i]);
        let conic = cov.inverse();

        // d L / d cov  =  −conic · (dL/dconic) · conic.
        let dcov_sym = conic_grad_to_cov(conic, raster.conic[i]);
        let (d_sx, d_sy, d_theta) = covariance_backward(sx, sy, model.theta[i], dcov_sym);

        let op = sigmoid(model.opacity_logit[i]);
        let d_logit = raster.opacity[i] * op * (1.0 - op);

        out.extend_from_slice(&[
            raster.mean[i].x,
            raster.mean[i].y,
            d_sx * sx, // chain through exp(log_scale)
            d_sy * sy,
            d_theta,
            d_logit,
            raster.color[i].x,
            raster.color[i].y,
            raster.color[i].z,
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::l2_loss;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_model() -> GaussianModel {
        let mut m = GaussianModel::new();
        m.push(
            Vec2::new(10.0, 12.0),
            Vec2::new(1.2, 0.9),
            0.4,
            0.8,
            Vec3::new(0.9, 0.2, 0.1),
        );
        m.push(
            Vec2::new(20.0, 18.0),
            Vec2::new(1.0, 1.4),
            -0.3,
            0.2,
            Vec3::new(0.1, 0.7, 0.6),
        );
        m.push(
            Vec2::new(14.0, 20.0),
            Vec2::new(0.8, 0.8),
            0.0,
            -0.5,
            Vec3::new(0.3, 0.3, 0.9),
        );
        m
    }

    #[test]
    fn params_roundtrip() {
        let m = small_model();
        let params = m.to_params();
        assert_eq!(params.len(), 3 * PARAMS_PER_GAUSSIAN);
        let mut m2 = small_model();
        m2.set_params(&params);
        assert_eq!(m, m2);
    }

    #[test]
    fn render_paints_gaussian_centers() {
        let m = small_model();
        let out = render(&m, 32, 32, Vec3::splat(0.0));
        let c = out.image.get(10, 12);
        assert!(c.x > 0.3, "center should be reddish, got {c:?}");
        // A far corner is background.
        assert_eq!(out.image.get(31, 0), Vec3::splat(0.0));
        assert!((out.final_t[31] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tile_lists_cover_gaussian_footprints() {
        let m = small_model();
        let tiles = build_tile_lists(&m.to_splats(), 32, 32);
        assert_eq!(tiles.tiles_x, 2);
        assert_eq!(tiles.tiles_y, 2);
        // Gaussian 0 at (10,12) overlaps tile (0,0).
        assert!(tiles.lists[0].contains(&0));
        assert!(tiles.mean_len() > 0.0);
    }

    #[test]
    fn offscreen_gaussians_are_culled() {
        let mut m = GaussianModel::new();
        m.push(
            Vec2::new(-100.0, -100.0),
            Vec2::new(0.5, 0.5),
            0.0,
            0.0,
            Vec3::splat(1.0),
        );
        let tiles = build_tile_lists(&m.to_splats(), 32, 32);
        assert!(tiles.lists.iter().all(|l| l.is_empty()));
    }

    #[test]
    fn background_shows_through_transparent_model() {
        let m = GaussianModel::new();
        let bg = Vec3::new(0.2, 0.4, 0.6);
        let out = render(&m, 16, 16, bg);
        assert_eq!(out.image.get(8, 8), bg);
    }

    /// The decisive test: analytic parameter gradients match finite
    /// differences of the full render→loss pipeline.
    #[test]
    fn full_pipeline_gradients_match_finite_differences() {
        let mut model = small_model();
        let mut rng = StdRng::seed_from_u64(7);
        let target = {
            let gt = GaussianModel::random(4, 32, 32, &mut rng);
            render(&gt, 32, 32, Vec3::splat(0.1)).image
        };
        let bg = Vec3::splat(0.1);

        let loss_of = |m: &GaussianModel| l2_loss(&render(m, 32, 32, bg).image, &target).0;

        let out = render(&model, 32, 32, bg);
        let (_, pixel_grads) = l2_loss(&out.image, &target);
        let raster = backward(&model, &out, &pixel_grads, &mut NoopRecorder);
        let analytic = param_grads(&model, &raster);

        let mut params = model.to_params();
        let h = 5e-3f32;
        let mut checked = 0;
        for idx in 0..params.len() {
            let orig = params[idx];
            params[idx] = orig + h;
            model.set_params(&params);
            let lp = loss_of(&model);
            params[idx] = orig - h;
            model.set_params(&params);
            let lm = loss_of(&model);
            params[idx] = orig;
            model.set_params(&params);
            let fd = (lp - lm) / (2.0 * h);
            let an = analytic[idx];
            let tol = 2e-3f32.max(0.15 * fd.abs().max(an.abs()));
            // Skip entries where FD itself is numerically void.
            if fd.abs() < 1e-7 && an.abs() < 1e-7 {
                continue;
            }
            assert!(
                (fd - an).abs() <= tol,
                "param {idx}: analytic {an} vs finite-diff {fd}"
            );
            checked += 1;
        }
        assert!(
            checked > 10,
            "finite-difference check exercised too few params"
        );
    }

    #[test]
    fn backward_reduces_loss_when_stepped() {
        let mut model = small_model();
        let mut rng = StdRng::seed_from_u64(3);
        let target = render(
            &GaussianModel::random(6, 32, 32, &mut rng),
            32,
            32,
            Vec3::splat(0.0),
        )
        .image;
        let bg = Vec3::splat(0.0);
        let mut last = f32::INFINITY;
        let mut opt = crate::optim::Adam::new(model.len() * PARAMS_PER_GAUSSIAN, 0.02);
        for _ in 0..30 {
            let out = render(&model, 32, 32, bg);
            let (loss, pixel_grads) = l2_loss(&out.image, &target);
            let raster = backward(&model, &out, &pixel_grads, &mut NoopRecorder);
            let g = param_grads(&model, &raster);
            let mut params = model.to_params();
            opt.step(&mut params, &g);
            model.set_params(&params);
            last = loss;
        }
        let out = render(&model, 32, 32, bg);
        let (final_loss, _) = l2_loss(&out.image, &target);
        assert!(
            final_loss <= last * 1.05,
            "training diverged: {final_loss} vs {last}"
        );
    }

    #[test]
    fn recorder_sees_every_tile_iteration() {
        struct Counter {
            warps: usize,
            records: usize,
            active_lanes: usize,
        }
        impl GradRecorder for Counter {
            fn begin_warp(&mut self, _tile: usize, _lanes: &[Option<(usize, usize)>; 32]) {
                self.warps += 1;
            }
            fn record(&mut self, _gid: u32, grads: &[Option<LaneGrad>; 32]) {
                self.records += 1;
                self.active_lanes += grads.iter().flatten().count();
            }
        }
        let model = small_model();
        let out = render(&model, 32, 32, Vec3::splat(0.0));
        let (_, pixel_grads) = l2_loss(&out.image, &Image::new(32, 32));
        let mut counter = Counter {
            warps: 0,
            records: 0,
            active_lanes: 0,
        };
        let _ = backward(&model, &out, &pixel_grads, &mut counter);
        // 4 tiles × 8 warp strips each, minus empty tiles skipped.
        assert!(counter.warps > 0 && counter.warps <= 32);
        assert!(counter.records > 0);
        assert!(counter.active_lanes > 0);
    }
}

//! Degree-1 spherical-harmonics color for 3D Gaussians — 3DGS's
//! view-dependent appearance model. Each Gaussian carries a DC RGB term
//! plus three linear RGB coefficients; the rendered color depends on
//! the viewing direction from the camera to the Gaussian:
//!
//! ```text
//! c(d) = max(0, 0.5 + SH_C0·c₀ − SH_C1·d.y·c₁ + SH_C1·d.z·c₂ − SH_C1·d.x·c₃)
//! ```
//!
//! The backward pass produces gradients for all four coefficient
//! vectors *and* for the Gaussian mean (the view direction depends on
//! it through normalization), matching the 3DGS `computeColorFromSH`
//! backward. Verified against finite differences.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::math::Vec3;

/// Y₀₀ normalization constant.
pub const SH_C0: f32 = 0.282_094_8;
/// Y₁ₘ normalization constant.
pub const SH_C1: f32 = 0.488_602_5;

/// Degree-1 SH coefficients for one Gaussian: `[c0, c1, c2, c3]` with
/// the 3DGS basis ordering (DC, then the −y/+z/−x linear terms).
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Sh1 {
    /// DC (view-independent) RGB term.
    pub c0: Vec3,
    /// Linear coefficient paired with −d.y.
    pub c1: Vec3,
    /// Linear coefficient paired with +d.z.
    pub c2: Vec3,
    /// Linear coefficient paired with −d.x.
    pub c3: Vec3,
}

/// Floats per Gaussian in an SH-1 bank.
pub const PARAMS_PER_SH1: usize = 12;

impl Sh1 {
    /// Coefficients reproducing a constant (view-independent) color.
    pub fn constant(color: Vec3) -> Self {
        Sh1 {
            c0: (color - Vec3::splat(0.5)) * (1.0 / SH_C0),
            ..Sh1::default()
        }
    }

    /// Random coefficients: moderate DC around gray, small linear terms.
    pub fn random<R: Rng>(rng: &mut R) -> Self {
        let mut v = || {
            Vec3::new(
                rng.gen::<f32>() - 0.5,
                rng.gen::<f32>() - 0.5,
                rng.gen::<f32>() - 0.5,
            )
        };
        Sh1 {
            c0: v() * 1.5,
            c1: v() * 0.8,
            c2: v() * 0.8,
            c3: v() * 0.8,
        }
    }
}

/// Forward SH-1 evaluation (pre-clamp value and the clamped color).
fn eval_raw(sh: &Sh1, dir: Vec3) -> Vec3 {
    Vec3::splat(0.5)
        + sh.c0 * SH_C0
        + sh.c1 * (-SH_C1 * dir.y)
        + sh.c2 * (SH_C1 * dir.z)
        + sh.c3 * (-SH_C1 * dir.x)
}

/// Evaluates the view-dependent color for direction `dir` (need not be
/// normalized; it is normalized internally, as 3DGS does).
pub fn eval_sh1(sh: &Sh1, dir: Vec3) -> Vec3 {
    let d = dir.normalized();
    let raw = eval_raw(sh, d);
    Vec3::new(raw.x.max(0.0), raw.y.max(0.0), raw.z.max(0.0))
}

/// Gradients of a scalar loss through [`eval_sh1`]: given `dL/dcolor`,
/// returns (`dL/dsh`, `dL/ddir`) where `dir` is the *unnormalized*
/// direction (mean − camera position). Channels clamped at zero pass no
/// gradient (3DGS's `clamped` flags).
pub fn backward_sh1(sh: &Sh1, dir: Vec3, dl_dcolor: Vec3) -> (Sh1, Vec3) {
    let n = dir.norm().max(1e-12);
    let d = dir * (1.0 / n);
    let raw = eval_raw(sh, d);
    let gate = Vec3::new(
        if raw.x > 0.0 { dl_dcolor.x } else { 0.0 },
        if raw.y > 0.0 { dl_dcolor.y } else { 0.0 },
        if raw.z > 0.0 { dl_dcolor.z } else { 0.0 },
    );

    let d_sh = Sh1 {
        c0: gate * SH_C0,
        c1: gate * (-SH_C1 * d.y),
        c2: gate * (SH_C1 * d.z),
        c3: gate * (-SH_C1 * d.x),
    };

    // dL/dd (normalized direction): color = ... + c1·(−C1·d.y) + ...
    let dl_dd = Vec3::new(
        -SH_C1 * gate.dot(sh.c3),
        -SH_C1 * gate.dot(sh.c1),
        SH_C1 * gate.dot(sh.c2),
    );
    // Through normalization: d = dir/|dir| ⇒ J = (I − d dᵀ)/|dir|.
    let dl_ddir = (dl_dd - d * d.dot(dl_dd)) * (1.0 / n);
    (d_sh, dl_ddir)
}

/// A bank of SH-1 coefficients, one per Gaussian, with the flat
/// parameter interface the optimizer consumes.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Sh1Bank {
    /// Per-Gaussian coefficients.
    pub coeffs: Vec<Sh1>,
}

impl Sh1Bank {
    /// A bank of `n` constant-gray coefficient sets.
    pub fn new(n: usize) -> Self {
        Sh1Bank {
            coeffs: vec![Sh1::constant(Vec3::splat(0.5)); n],
        }
    }

    /// A randomly initialized bank.
    pub fn random<R: Rng>(n: usize, rng: &mut R) -> Self {
        Sh1Bank {
            coeffs: (0..n).map(|_| Sh1::random(rng)).collect(),
        }
    }

    /// Number of Gaussians covered.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Flat parameters ([`PARAMS_PER_SH1`] per Gaussian).
    pub fn to_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len() * PARAMS_PER_SH1);
        for c in &self.coeffs {
            for v in [c.c0, c.c1, c.c2, c.c3] {
                out.extend_from_slice(&[v.x, v.y, v.z]);
            }
        }
        out
    }

    /// Loads parameters.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.len() * PARAMS_PER_SH1, "length mismatch");
        for (c, chunk) in self
            .coeffs
            .iter_mut()
            .zip(params.chunks_exact(PARAMS_PER_SH1))
        {
            c.c0 = Vec3::new(chunk[0], chunk[1], chunk[2]);
            c.c1 = Vec3::new(chunk[3], chunk[4], chunk[5]);
            c.c2 = Vec3::new(chunk[6], chunk[7], chunk[8]);
            c.c3 = Vec3::new(chunk[9], chunk[10], chunk[11]);
        }
    }

    /// Evaluates per-Gaussian colors as seen from `cam_pos` for the
    /// given means, writing them into `colors` (the per-view color
    /// injection step before projection).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch.
    pub fn view_colors(&self, means: &[Vec3], cam_pos: Vec3) -> Vec<Vec3> {
        assert_eq!(means.len(), self.len(), "mean/bank length mismatch");
        means
            .iter()
            .zip(&self.coeffs)
            .map(|(&m, sh)| eval_sh1(sh, m - cam_pos))
            .collect()
    }

    /// Backward of [`Sh1Bank::view_colors`]: given per-Gaussian color
    /// gradients, returns the flat SH gradient vector and adds the
    /// through-direction contribution onto `mean_grads`.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch.
    pub fn view_colors_backward(
        &self,
        means: &[Vec3],
        cam_pos: Vec3,
        color_grads: &[Vec3],
        mean_grads: &mut [Vec3],
    ) -> Vec<f32> {
        assert_eq!(means.len(), self.len(), "mean/bank length mismatch");
        assert_eq!(color_grads.len(), self.len(), "grad length mismatch");
        assert_eq!(mean_grads.len(), self.len(), "mean-grad length mismatch");
        let mut out = Vec::with_capacity(self.len() * PARAMS_PER_SH1);
        for i in 0..self.len() {
            let (d_sh, d_dir) = backward_sh1(&self.coeffs[i], means[i] - cam_pos, color_grads[i]);
            for v in [d_sh.c0, d_sh.c1, d_sh.c2, d_sh.c3] {
                out.extend_from_slice(&[v.x, v.y, v.z]);
            }
            mean_grads[i] += d_dir; // d(mean − cam)/d(mean) = I
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_coefficients_reproduce_the_color() {
        let sh = Sh1::constant(Vec3::new(0.8, 0.3, 0.6));
        for dir in [
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 2.0, -0.5),
            Vec3::new(-3.0, 0.2, 0.1),
        ] {
            let c = eval_sh1(&sh, dir);
            assert!((c.x - 0.8).abs() < 1e-5);
            assert!((c.y - 0.3).abs() < 1e-5);
            assert!((c.z - 0.6).abs() < 1e-5);
        }
    }

    #[test]
    fn linear_terms_make_color_view_dependent() {
        let mut sh = Sh1::constant(Vec3::splat(0.5));
        sh.c3 = Vec3::new(1.0, 0.0, 0.0); // pairs with −d.x
        let from_left = eval_sh1(&sh, Vec3::new(-1.0, 0.0, 0.0));
        let from_right = eval_sh1(&sh, Vec3::new(1.0, 0.0, 0.0));
        assert!(
            from_left.x > from_right.x,
            "{from_left:?} vs {from_right:?}"
        );
    }

    #[test]
    fn clamp_gates_negative_channels() {
        let mut sh = Sh1::constant(Vec3::new(-2.0, 0.5, 0.5));
        sh.c1 = Vec3::default();
        let c = eval_sh1(&sh, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(c.x, 0.0, "negative channel clamps to zero");
        // And the clamped channel passes no gradient.
        let (d_sh, _) = backward_sh1(&sh, Vec3::new(0.0, 0.0, 1.0), Vec3::splat(1.0));
        assert_eq!(d_sh.c0.x, 0.0);
        assert!(d_sh.c0.y > 0.0);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(51);
        let sh = Sh1::random(&mut rng);
        let dir = Vec3::new(0.7, -0.4, 1.2);
        let weight = Vec3::new(0.9, -0.3, 0.5); // L = weight · color
        let loss = |sh: &Sh1, dir: Vec3| eval_sh1(sh, dir).dot(weight);

        let (d_sh, d_dir) = backward_sh1(&sh, dir, weight);
        let h = 1e-3f32;

        // Coefficient gradients.
        let mut bank = Sh1Bank { coeffs: vec![sh] };
        let params = bank.to_params();
        let analytic = {
            let mut tmp = Sh1Bank::new(1);
            tmp.coeffs[0] = d_sh;
            tmp.to_params()
        };
        for idx in 0..PARAMS_PER_SH1 {
            let mut p = params.clone();
            p[idx] += h;
            bank.set_params(&p);
            let lp = loss(&bank.coeffs[0], dir);
            p[idx] -= 2.0 * h;
            bank.set_params(&p);
            let lm = loss(&bank.coeffs[0], dir);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - analytic[idx]).abs() < 2e-3,
                "sh param {idx}: analytic {} vs fd {fd}",
                analytic[idx]
            );
        }

        // Direction gradient (through normalization).
        for (axis, an) in [(0, d_dir.x), (1, d_dir.y), (2, d_dir.z)] {
            let mut dp = dir;
            let mut dm = dir;
            match axis {
                0 => {
                    dp.x += h;
                    dm.x -= h;
                }
                1 => {
                    dp.y += h;
                    dm.y -= h;
                }
                _ => {
                    dp.z += h;
                    dm.z -= h;
                }
            }
            let fd = (loss(&sh, dp) - loss(&sh, dm)) / (2.0 * h);
            assert!((fd - an).abs() < 2e-3, "dir axis {axis}: {an} vs {fd}");
        }
    }

    #[test]
    fn bank_roundtrip_and_view_colors() {
        let mut rng = StdRng::seed_from_u64(52);
        let bank = Sh1Bank::random(5, &mut rng);
        let mut bank2 = Sh1Bank::new(5);
        bank2.set_params(&bank.to_params());
        assert_eq!(bank, bank2);

        let means = vec![Vec3::new(0.0, 0.0, 2.0); 5];
        let colors = bank.view_colors(&means, Vec3::default());
        assert_eq!(colors.len(), 5);
        // Different viewpoints generally produce different colors.
        let colors_side = bank.view_colors(&means, Vec3::new(5.0, 0.0, 2.0));
        assert_ne!(colors, colors_side);
    }

    #[test]
    fn bank_backward_accumulates_mean_grads() {
        let mut rng = StdRng::seed_from_u64(53);
        let bank = Sh1Bank::random(3, &mut rng);
        let means = vec![
            Vec3::new(0.1, 0.2, 2.0),
            Vec3::new(-0.5, 0.0, 3.0),
            Vec3::new(0.3, -0.4, 1.5),
        ];
        let grads = vec![Vec3::splat(1.0); 3];
        let mut mean_grads = vec![Vec3::splat(10.0); 3];
        let sh_grads = bank.view_colors_backward(&means, Vec3::default(), &grads, &mut mean_grads);
        assert_eq!(sh_grads.len(), 3 * PARAMS_PER_SH1);
        // Accumulated on top of the existing 10.0, not overwritten.
        assert!(mean_grads.iter().all(|g| (g.x - 10.0).abs() < 1.0));
        assert!(mean_grads.iter().any(|g| g.x != 10.0));
    }
}

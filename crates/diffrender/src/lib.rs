//! Raster-based differentiable rendering substrates for the ARC
//! reproduction: a 3DGS-style tile-based Gaussian splatting renderer, an
//! NvDiffRec-style cubemap-texture learner, and a Pulsar-style sphere
//! renderer — each with a functional forward pass, an analytic backward
//! pass (verified against finite differences), and a generator that
//! turns the backward pass into a warp-level [`warp_trace::KernelTrace`]
//! for the GPU simulator. [`primitives`] adds the GPU building blocks
//! of a production tile-binned 3DGS frame — 4-bit radix sort (with its
//! atomic digit histogram), work-efficient exclusive scan, key
//! expansion, and bin-edge extraction — each as a functional model
//! plus a traced kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod densify;
pub mod gaussian;
pub mod image;
pub mod loss;
pub mod math;
pub mod math3d;
pub mod nvdiff;
pub mod optim;
pub mod primitives;
pub mod projection;
pub mod pulsar;
pub mod sh;
pub mod ssim;
pub mod tracegen;
pub mod train;

pub use image::{l1, mse, psnr, Image};
pub use loss::{l1_loss, l2_loss, PixelGrads};
pub use math::{Mat2Sym, Vec2, Vec3};
pub use optim::{Adam, Sgd};

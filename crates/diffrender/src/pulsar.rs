//! Pulsar-style differentiable sphere rendering (Lassner & Zollhöfer
//! 2021; the PyTorch3D implementation is the paper's PS workload).
//!
//! Spheres project to smooth screen-space disks composited by depth.
//! Unlike the tile-based Gaussian rasterizer, each *pixel* walks its own
//! per-cell sphere list — a per-thread (non-warp-uniform) loop, which is
//! why butterfly reduction "cannot be used for PS-SS and PS-SL" (paper
//! Fig. 23) while serialized reduction still applies.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::image::Image;
use crate::loss::PixelGrads;
use crate::math::{Vec2, Vec3};

/// Trainable floats per sphere: center (2) + radius (1) + opacity logit
/// (1) + RGB (3).
pub const PARAMS_PER_SPHERE: usize = 7;
/// Binning cell edge in pixels (per-cell sphere lists).
pub const CELL: usize = 8;
/// Minimum blending weight for a sphere to contribute.
pub const W_MIN: f32 = 1.0 / 255.0;
/// Transmittance early-out threshold.
pub const T_MIN: f32 = 1e-4;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A screen-space sphere (disk) model, depth-ordered by index
/// (lower index = nearer).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SphereModel {
    /// Projected centers in pixels.
    pub center: Vec<Vec2>,
    /// Disk radii in pixels (kept positive by the optimizer interface).
    pub radius: Vec<f32>,
    /// Opacity logits.
    pub opacity_logit: Vec<f32>,
    /// RGB colors.
    pub color: Vec<Vec3>,
}

impl SphereModel {
    /// An empty model.
    pub fn new() -> Self {
        SphereModel::default()
    }

    /// Number of spheres.
    pub fn len(&self) -> usize {
        self.center.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.center.is_empty()
    }

    /// Appends a sphere.
    pub fn push(&mut self, center: Vec2, radius: f32, opacity_logit: f32, color: Vec3) {
        assert!(radius > 0.0, "sphere radius must be positive");
        self.center.push(center);
        self.radius.push(radius);
        self.opacity_logit.push(opacity_logit);
        self.color.push(color);
    }

    /// Random scene over a canvas (the paper's PS-SS / PS-SL synthetic
    /// sphere datasets).
    pub fn random<R: Rng>(n: usize, width: usize, height: usize, rng: &mut R) -> Self {
        let mut m = SphereModel::new();
        for _ in 0..n {
            m.push(
                Vec2::new(
                    rng.gen_range(0.0..width as f32),
                    rng.gen_range(0.0..height as f32),
                ),
                rng.gen_range(2.0..8.0),
                rng.gen_range(-0.5..1.5),
                Vec3::new(rng.gen(), rng.gen(), rng.gen()),
            );
        }
        m
    }

    /// Flat trainable parameters ([`PARAMS_PER_SPHERE`] per sphere).
    pub fn to_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len() * PARAMS_PER_SPHERE);
        for i in 0..self.len() {
            out.extend_from_slice(&[
                self.center[i].x,
                self.center[i].y,
                self.radius[i],
                self.opacity_logit[i],
                self.color[i].x,
                self.color[i].y,
                self.color[i].z,
            ]);
        }
        out
    }

    /// Loads parameters; radii are clamped to a small positive floor.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.len() * PARAMS_PER_SPHERE,
            "parameter length mismatch"
        );
        for (i, c) in params.chunks_exact(PARAMS_PER_SPHERE).enumerate() {
            self.center[i] = Vec2::new(c[0], c[1]);
            self.radius[i] = c[2].max(0.5);
            self.opacity_logit[i] = c[3];
            self.color[i] = Vec3::new(c[4], c[5], c[6]);
        }
    }
}

/// Per-cell sphere lists: every pixel walks the list of its 8×8 cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellLists {
    /// Cells per row.
    pub cells_x: usize,
    /// Cells per column.
    pub cells_y: usize,
    /// Sphere ids per cell, ascending (depth order).
    pub lists: Vec<Vec<u32>>,
}

impl CellLists {
    /// The list for the cell containing pixel `(x, y)`.
    pub fn list_at(&self, x: usize, y: usize) -> &[u32] {
        &self.lists[(y / CELL) * self.cells_x + (x / CELL)]
    }
}

/// Bins spheres into 8×8 cells by bounding box.
pub fn build_cell_lists(model: &SphereModel, width: usize, height: usize) -> CellLists {
    let cells_x = width.div_ceil(CELL);
    let cells_y = height.div_ceil(CELL);
    let mut lists = vec![Vec::new(); cells_x * cells_y];
    for i in 0..model.len() {
        let c = model.center[i];
        let r = model.radius[i];
        if c.x + r < 0.0 || c.y + r < 0.0 {
            continue;
        }
        let x0 = (((c.x - r) / CELL as f32).floor().max(0.0)) as usize;
        let y0 = (((c.y - r) / CELL as f32).floor().max(0.0)) as usize;
        let x1 = (((c.x + r) / CELL as f32).floor() as usize).min(cells_x.saturating_sub(1));
        let y1 = (((c.y + r) / CELL as f32).floor() as usize).min(cells_y.saturating_sub(1));
        if x0 >= cells_x || y0 >= cells_y || x0 > x1 || y0 > y1 {
            continue;
        }
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                lists[cy * cells_x + cx].push(i as u32);
            }
        }
    }
    CellLists {
        cells_x,
        cells_y,
        lists,
    }
}

/// The blending weight of sphere `i` at a pixel: `w = (1 − d²/r²)²` on
/// the disk, 0 outside; `alpha = sigmoid(opacity) · w`.
fn weight(d2: f32, r: f32) -> f32 {
    let q = 1.0 - d2 / (r * r);
    if q <= 0.0 {
        0.0
    } else {
        q * q
    }
}

/// The forward pass result.
#[derive(Clone, Debug)]
pub struct SphereRenderOutput {
    /// Rendered image.
    pub image: Image,
    /// Per-cell sphere lists.
    pub cells: CellLists,
    /// Per-pixel final transmittance.
    pub final_t: Vec<f32>,
    /// Per-pixel entries processed before early-out.
    pub n_processed: Vec<u32>,
    /// Background color.
    pub background: Vec3,
}

/// Renders the sphere model with front-to-back alpha compositing.
pub fn render(
    model: &SphereModel,
    width: usize,
    height: usize,
    background: Vec3,
) -> SphereRenderOutput {
    let cells = build_cell_lists(model, width, height);
    let mut image = Image::new(width, height);
    let mut final_t = vec![1.0f32; width * height];
    let mut n_processed = vec![0u32; width * height];
    for y in 0..height {
        for x in 0..width {
            let pix = Vec2::new(x as f32 + 0.5, y as f32 + 0.5);
            let mut t = 1.0f32;
            let mut c = Vec3::default();
            let mut processed = 0u32;
            for &sid in cells.list_at(x, y) {
                processed += 1;
                let s = sid as usize;
                let d2 = (pix - model.center[s]).norm_sq();
                let w = weight(d2, model.radius[s]);
                let alpha = sigmoid(model.opacity_logit[s]) * w;
                if alpha < W_MIN {
                    continue;
                }
                let test_t = t * (1.0 - alpha);
                if test_t < T_MIN {
                    processed -= 1;
                    break;
                }
                c += model.color[s] * (alpha * t);
                t = test_t;
            }
            let idx = y * width + x;
            image.pixels_mut()[idx] = c + background * t;
            final_t[idx] = t;
            n_processed[idx] = processed;
        }
    }
    SphereRenderOutput {
        image,
        cells,
        final_t,
        n_processed,
        background,
    }
}

/// Per-sphere raster gradients (what the atomics accumulate).
#[derive(Clone, Debug, PartialEq)]
pub struct SphereGrads {
    /// d L / d center.
    pub center: Vec<Vec2>,
    /// d L / d radius.
    pub radius: Vec<f32>,
    /// d L / d opacity logit.
    pub opacity_logit: Vec<f32>,
    /// d L / d color.
    pub color: Vec<Vec3>,
}

/// One lane's contribution in the gradient kernel, for trace generation.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct SphereLaneGrad {
    /// d L / d center.
    pub center: Vec2,
    /// d L / d radius.
    pub radius: f32,
    /// d L / d opacity logit.
    pub opacity_logit: f32,
    /// d L / d color.
    pub color: Vec3,
}

/// Observer of the sphere gradient kernel: called once per pixel per
/// contributing sphere (the trace generator groups these into warps).
pub trait SphereGradObserver {
    /// `(x, y)` contributed `grad` to sphere `sid` at its list position
    /// `k`.
    fn contribution(&mut self, x: usize, y: usize, k: usize, sid: u32, grad: &SphereLaneGrad);
}

/// Observer that discards contributions (plain training).
#[derive(Debug, Default)]
pub struct NoopSphereObserver;

impl SphereGradObserver for NoopSphereObserver {
    fn contribution(&mut self, _x: usize, _y: usize, _k: usize, _sid: u32, _g: &SphereLaneGrad) {}
}

/// The gradient-computation pass: per pixel, walk its cell list
/// back-to-front accumulating gradients (same compositing calculus as
/// the Gaussian rasterizer, different kernel shape).
pub fn backward<O: SphereGradObserver>(
    model: &SphereModel,
    out: &SphereRenderOutput,
    pixel_grads: &PixelGrads,
    observer: &mut O,
) -> SphereGrads {
    let width = out.image.width();
    let height = out.image.height();
    let mut grads = SphereGrads {
        center: vec![Vec2::default(); model.len()],
        radius: vec![0.0; model.len()],
        opacity_logit: vec![0.0; model.len()],
        color: vec![Vec3::default(); model.len()],
    };
    for y in 0..height {
        for x in 0..width {
            let idx = y * width + x;
            let list = out.cells.list_at(x, y);
            let n = out.n_processed[idx] as usize;
            if n == 0 {
                continue;
            }
            let pix = Vec2::new(x as f32 + 0.5, y as f32 + 0.5);
            let dl_dpix = pixel_grads.get(x, y);
            let t_final = out.final_t[idx];
            let mut t = t_final;
            let mut accum = Vec3::default();
            let mut last_alpha = 0.0f32;
            let mut last_color = Vec3::default();
            for k in (0..n).rev() {
                let sid = list[k];
                let s = sid as usize;
                let op = sigmoid(model.opacity_logit[s]);
                let d = pix - model.center[s];
                let d2 = d.norm_sq();
                let r = model.radius[s];
                let w = weight(d2, r);
                let alpha = op * w;
                if alpha < W_MIN {
                    continue;
                }
                t /= 1.0 - alpha;
                let dl_dcolor = dl_dpix * (alpha * t);
                accum = last_color * last_alpha + accum * (1.0 - last_alpha);
                let mut dl_dalpha = (model.color[s] - accum).dot(dl_dpix) * t;
                dl_dalpha += -(t_final / (1.0 - alpha)) * out.background.dot(dl_dpix);
                last_alpha = alpha;
                last_color = model.color[s];

                // alpha = σ(logit) · w(d², r)
                let dl_dlogit = dl_dalpha * w * op * (1.0 - op);
                let q = 1.0 - d2 / (r * r);
                // w = q², dw/dd² = −2q/r², dw/dr = 4q·d²/r³
                let dl_dw = dl_dalpha * op;
                let dw_dd2 = -2.0 * q / (r * r);
                let dl_dd2 = dl_dw * dw_dd2;
                let dl_dcenter = d * (-2.0 * dl_dd2);
                let dl_dradius = dl_dw * (4.0 * q * d2 / (r * r * r));

                let lane = SphereLaneGrad {
                    center: dl_dcenter,
                    radius: dl_dradius,
                    opacity_logit: dl_dlogit,
                    color: dl_dcolor,
                };
                observer.contribution(x, y, k, sid, &lane);
                grads.center[s] += lane.center;
                grads.radius[s] += lane.radius;
                grads.opacity_logit[s] += lane.opacity_logit;
                grads.color[s] += lane.color;
            }
        }
    }
    grads
}

/// Flattens sphere gradients to align with [`SphereModel::to_params`].
pub fn flatten_grads(grads: &SphereGrads) -> Vec<f32> {
    let n = grads.center.len();
    let mut out = Vec::with_capacity(n * PARAMS_PER_SPHERE);
    for i in 0..n {
        out.extend_from_slice(&[
            grads.center[i].x,
            grads.center[i].y,
            grads.radius[i],
            grads.opacity_logit[i],
            grads.color[i].x,
            grads.color[i].y,
            grads.color[i].z,
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::l2_loss;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_model() -> SphereModel {
        let mut m = SphereModel::new();
        m.push(Vec2::new(8.0, 8.0), 4.0, 1.0, Vec3::new(0.9, 0.1, 0.1));
        m.push(Vec2::new(16.0, 12.0), 5.0, 0.5, Vec3::new(0.1, 0.8, 0.2));
        m.push(Vec2::new(12.0, 20.0), 3.0, 0.0, Vec3::new(0.2, 0.2, 0.9));
        m
    }

    #[test]
    fn render_paints_disk_centers() {
        let out = render(&small_model(), 32, 32, Vec3::splat(0.0));
        assert!(out.image.get(8, 8).x > 0.3);
        assert_eq!(out.image.get(31, 31), Vec3::splat(0.0));
    }

    #[test]
    fn cell_lists_cover_footprints() {
        let cells = build_cell_lists(&small_model(), 32, 32);
        assert_eq!(cells.cells_x, 4);
        assert!(cells.list_at(8, 8).contains(&0));
        assert!(!cells.list_at(31, 31).contains(&0));
    }

    #[test]
    fn weight_is_smooth_and_bounded() {
        assert_eq!(weight(100.0, 5.0), 0.0); // outside
        assert!((weight(0.0, 5.0) - 1.0).abs() < 1e-6); // center
        let w_mid = weight(12.5, 5.0);
        assert!(w_mid > 0.0 && w_mid < 1.0);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut model = small_model();
        let mut rng = StdRng::seed_from_u64(5);
        let target = render(
            &SphereModel::random(5, 32, 32, &mut rng),
            32,
            32,
            Vec3::splat(0.1),
        )
        .image;
        let bg = Vec3::splat(0.1);

        let out = render(&model, 32, 32, bg);
        let (_, pg) = l2_loss(&out.image, &target);
        let analytic = flatten_grads(&backward(&model, &out, &pg, &mut NoopSphereObserver));

        let mut params = model.to_params();
        let h = 5e-3f32;
        let mut checked = 0;
        for idx in 0..params.len() {
            let orig = params[idx];
            params[idx] = orig + h;
            model.set_params(&params);
            let lp = l2_loss(&render(&model, 32, 32, bg).image, &target).0;
            params[idx] = orig - h;
            model.set_params(&params);
            let lm = l2_loss(&render(&model, 32, 32, bg).image, &target).0;
            params[idx] = orig;
            model.set_params(&params);
            let fd = (lp - lm) / (2.0 * h);
            let an = analytic[idx];
            if fd.abs() < 1e-6 && an.abs() < 1e-6 {
                continue;
            }
            assert!(
                (fd - an).abs() <= 2e-3f32.max(0.15 * fd.abs().max(an.abs())),
                "param {idx}: analytic {an} vs fd {fd}"
            );
            checked += 1;
        }
        assert!(checked > 8, "too few params checked ({checked})");
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(6);
        let target = render(
            &SphereModel::random(8, 32, 32, &mut rng),
            32,
            32,
            Vec3::splat(0.0),
        )
        .image;
        let mut model = SphereModel::random(8, 32, 32, &mut rng);
        let mut opt = Adam::new(model.len() * PARAMS_PER_SPHERE, 0.05);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let out = render(&model, 32, 32, Vec3::splat(0.0));
            let (loss, pg) = l2_loss(&out.image, &target);
            first.get_or_insert(loss);
            last = loss;
            let g = flatten_grads(&backward(&model, &out, &pg, &mut NoopSphereObserver));
            let mut params = model.to_params();
            opt.step(&mut params, &g);
            model.set_params(&params);
        }
        assert!(last < first.unwrap(), "loss did not decrease");
    }

    #[test]
    fn observer_sees_contributions() {
        struct Count(usize);
        impl SphereGradObserver for Count {
            fn contribution(
                &mut self,
                _x: usize,
                _y: usize,
                _k: usize,
                _s: u32,
                _g: &SphereLaneGrad,
            ) {
                self.0 += 1;
            }
        }
        let model = small_model();
        let out = render(&model, 32, 32, Vec3::splat(0.0));
        let (_, pg) = l2_loss(&out.image, &Image::new(32, 32));
        let mut c = Count(0);
        let _ = backward(&model, &out, &pg, &mut c);
        assert!(c.0 > 0);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        let mut m = SphereModel::new();
        m.push(Vec2::new(0.0, 0.0), 0.0, 0.0, Vec3::default());
    }
}

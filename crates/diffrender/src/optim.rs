//! Gradient-descent optimizers for the learned scene parameters.

use serde::{Deserialize, Serialize};

/// Adam optimizer state over a flat f32 parameter vector (the standard
/// choice for 3DGS/NvDiffRec/Pulsar training).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `len` parameters with the given learning
    /// rate and standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(len: usize, lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update: `params -= lr · m̂ / (√v̂ + ε)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` lengths differ from the optimizer's.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// Plain SGD, used by tests and ablations as the simplest baseline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Sgd { lr }
    }

    /// Applies `params -= lr · grads`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn step(&self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "length mismatch");
        for (p, g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x − 3)² from x = 0.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn sgd_descends() {
        let mut x = vec![10.0f32];
        let opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = vec![2.0 * x[0]];
            opt.step(&mut x, &g);
        }
        assert!(x[0].abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn adam_length_mismatch_panics() {
        let mut opt = Adam::new(2, 0.1);
        let mut p = vec![0.0; 2];
        opt.step(&mut p, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_lr_panics() {
        let _ = Adam::new(1, -0.5);
    }

    #[test]
    fn learning_rate_can_decay() {
        let mut opt = Adam::new(1, 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}

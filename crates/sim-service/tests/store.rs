//! Store and daemon behaviour under concurrency and byte-identity
//! checks (the crate-local half; the cross-engine-matrix half lives in
//! the conformance `store-equivalence` invariant).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use arc_core::passes::PassPipeline;
use arc_core::technique::Technique;
use gpu_sim::telemetry::TelemetryConfig;
use gpu_sim::GpuConfig;
use sim_service::{
    daemon, run_cell, trace_digest, DaemonClient, EngineOpts, ResultStore, SimRequest, WireCell,
};
use warp_trace::{AtomicInstr, KernelKind, KernelTrace, WarpTraceBuilder};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory (no tempfile crate in the workspace).
fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "arc-sim-service-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn gradcomp_trace(scale: f64) -> Arc<KernelTrace> {
    Arc::new(
        arc_workloads::spec("3D-LE")
            .expect("known workload")
            .scaled(scale)
            .build()
            .gradcomp()
            .clone(),
    )
}

/// A hot-address storm whose repeated same-address atomics the
/// `coalesce` pass merges, so `ARC_PASSES=all` visibly shortens the
/// simulated kernel (a tiny gradcomp slice can round-trip to the same
/// cycle count and make the liveness half of the test vacuous).
fn storm_trace(warps: usize, atomics: usize) -> Arc<KernelTrace> {
    let w = (0..warps)
        .map(|_| {
            let mut b = WarpTraceBuilder::new();
            for _ in 0..atomics {
                b.compute_fp32(1)
                    .atomic(AtomicInstr::same_address(0x100, &[0.5; 32]));
            }
            b.finish()
        })
        .collect();
    Arc::new(KernelTrace::new(
        "store-hot-storm",
        KernelKind::GradCompute,
        w,
    ))
}

fn request(trace: &Arc<KernelTrace>, technique: Technique) -> SimRequest {
    SimRequest {
        config: GpuConfig::tiny(),
        technique,
        trace: Arc::clone(trace),
        rewrite: true,
        telemetry: Some(TelemetryConfig::every(16)),
        want_chrome: true,
        passes: PassPipeline::empty(),
        stage: None,
    }
}

/// Serialize the full observable output for byte comparison.
fn result_bytes(r: &sim_service::SimResult) -> (String, String, String) {
    (
        serde_json::to_string(&r.report).unwrap(),
        serde_json::to_string(&r.telemetry).unwrap(),
        r.chrome.clone().unwrap_or_default(),
    )
}

#[test]
fn warm_hit_is_byte_identical_to_cold_run() {
    let dir = scratch_dir("roundtrip");
    let store = ResultStore::open(&dir).unwrap();
    let trace = gradcomp_trace(0.05);
    let req = request(&trace, Technique::ArcHw);
    let opts = EngineOpts::default();

    let cold = run_cell(None, &req, &opts).unwrap();
    assert!(!cold.cached);
    let miss = run_cell(Some(&store), &req, &opts).unwrap();
    assert!(!miss.cached);
    let warm = run_cell(Some(&store), &req, &opts).unwrap();
    assert!(warm.cached, "second store pass must hit");

    assert_eq!(result_bytes(&cold), result_bytes(&miss));
    assert_eq!(result_bytes(&cold), result_bytes(&warm));
    let stats = store.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.puts, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pass_sets_key_separate_entries_and_round_trip() {
    let dir = scratch_dir("passes");
    let store = ResultStore::open(&dir).unwrap();
    let trace = storm_trace(8, 6);
    let opts = EngineOpts::default();

    let mut plain = request(&trace, Technique::Baseline);
    plain.telemetry = None;
    plain.want_chrome = false;
    let mut piped = plain.clone();
    piped.passes = PassPipeline::all();

    // Distinct pass sets never share a store entry.
    let digest = trace_digest(&trace);
    assert_ne!(
        sim_service::exec::request_key(&plain, &digest),
        sim_service::exec::request_key(&piped, &digest)
    );

    let plain_cold = run_cell(Some(&store), &plain, &opts).unwrap();
    let piped_cold = run_cell(Some(&store), &piped, &opts).unwrap();
    assert!(!plain_cold.cached && !piped_cold.cached);
    assert_eq!(store.stats().puts, 2, "two entries, one per pass set");

    // Warm hits are byte-identical to their own cold runs — and the
    // pass pipeline really changed the simulated result.
    let plain_warm = run_cell(Some(&store), &plain, &opts).unwrap();
    let piped_warm = run_cell(Some(&store), &piped, &opts).unwrap();
    assert!(plain_warm.cached && piped_warm.cached);
    assert_eq!(result_bytes(&plain_cold), result_bytes(&plain_warm));
    assert_eq!(result_bytes(&piped_cold), result_bytes(&piped_warm));
    assert_ne!(
        plain_cold.report.cycles, piped_cold.report.cycles,
        "ARC_PASSES=all should shorten the simulated storm kernel"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_same_key_writes_race_safely() {
    let dir = scratch_dir("race");
    let store = Arc::new(ResultStore::open(&dir).unwrap());
    let trace = gradcomp_trace(0.02);
    let req = request(&trace, Technique::Baseline);
    let opts = EngineOpts::default();

    // Establish the entry once; from here on a reader must never see a
    // torn or absent state, no matter how many writers overwrite it.
    let expected = run_cell(Some(&store), &req, &opts).unwrap();
    let expected_bytes = result_bytes(&expected);
    let digest = trace_digest(&req.trace);
    let key = sim_service::exec::request_key(&req, &digest);

    let writers = 4;
    let readers = 4;
    let barrier = Arc::new(Barrier::new(writers + readers));
    std::thread::scope(|scope| {
        for _ in 0..writers {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            let report = expected.report.clone();
            let telemetry = expected.telemetry.clone();
            let chrome = expected.chrome.clone();
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..25 {
                    store
                        .put(&key, &report, telemetry.as_ref(), chrome.as_deref())
                        .unwrap();
                }
            });
        }
        for _ in 0..readers {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            let req = req.clone();
            let expected_bytes = expected_bytes.clone();
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..50 {
                    let got = run_cell(Some(&store), &req, &opts).unwrap();
                    assert!(got.cached, "entry vanished or tore mid-overwrite");
                    assert_eq!(result_bytes(&got), expected_bytes);
                }
            });
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_never_evicts_a_pinned_entry() {
    let dir = scratch_dir("gc-pin");
    let store = ResultStore::open(&dir).unwrap();
    let trace = gradcomp_trace(0.02);
    let opts = EngineOpts::default();

    // Three entries under distinct keys.
    let techniques = [Technique::Baseline, Technique::ArcHw, Technique::Phi];
    let mut keys = Vec::new();
    for t in techniques {
        let req = request(&trace, t);
        let digest = trace_digest(&req.trace);
        run_cell(Some(&store), &req, &opts).unwrap();
        keys.push(sim_service::exec::request_key(&req, &digest));
    }
    assert_eq!(store.entry_count(), 3);

    // Pin the middle one (a reader holding it open) and squeeze to zero.
    {
        let _pin = store.pin(keys[1]);
        let gc = store.gc(0).unwrap();
        assert_eq!(gc.pinned_kept, 1, "the pinned entry must be skipped");
        assert_eq!(gc.evicted, 2);
        assert!(store.get(&keys[1]).is_some(), "pinned entry still readable");
        assert!(store.get(&keys[0]).is_none());
        assert!(store.get(&keys[2]).is_none());
    }
    // Pin released: now it can go.
    let gc = store.gc(0).unwrap();
    assert_eq!(gc.evicted, 1);
    assert_eq!(store.entry_count(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_evicts_oldest_first_and_respects_budget() {
    let dir = scratch_dir("gc-order");
    let store = ResultStore::open(&dir).unwrap();
    let trace = gradcomp_trace(0.02);
    let opts = EngineOpts::default();
    let order = [Technique::Baseline, Technique::ArcHw, Technique::Phi];
    let mut keys = Vec::new();
    for t in order {
        let req = request(&trace, t);
        let digest = trace_digest(&req.trace);
        run_cell(Some(&store), &req, &opts).unwrap();
        keys.push(sim_service::exec::request_key(&req, &digest));
    }
    // Budget that fits roughly the two newest entries.
    let sizes: Vec<u64> = keys
        .iter()
        .map(|k| {
            let obj = dir.join("objects").join(format!("{}.json", k.to_hex()));
            std::fs::metadata(obj).unwrap().len()
        })
        .collect();
    let budget = sizes[1] + sizes[2];
    let gc = store.gc(budget).unwrap();
    assert_eq!(gc.evicted, 1, "only the oldest entry should go");
    assert!(store.get(&keys[0]).is_none(), "oldest evicted");
    assert!(store.get(&keys[1]).is_some());
    assert!(store.get(&keys[2]).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_keeps_a_reread_entry_over_a_never_read_older_one() {
    let dir = scratch_dir("gc-lru");
    let store = ResultStore::open(&dir).unwrap();
    let trace = gradcomp_trace(0.02);
    let opts = EngineOpts::default();

    // Insert A, then B (B is newer by insertion order).
    let req_a = request(&trace, Technique::Baseline);
    let req_b = request(&trace, Technique::ArcHw);
    run_cell(Some(&store), &req_a, &opts).unwrap();
    run_cell(Some(&store), &req_b, &opts).unwrap();
    let key_a = sim_service::exec::request_key(&req_a, &trace_digest(&req_a.trace));
    let key_b = sim_service::exec::request_key(&req_b, &trace_digest(&req_b.trace));

    // Re-read A: it is now the most recently *used* entry even though
    // it is the older insertion.
    assert!(store.get(&key_a).is_some());

    // Budget that fits exactly one entry: LRU must evict B, not A.
    let size = |k: &sim_service::Digest| {
        let obj = dir.join("objects").join(format!("{}.json", k.to_hex()));
        std::fs::metadata(obj).unwrap().len()
    };
    let budget = size(&key_a).max(size(&key_b));
    let gc = store.gc(budget).unwrap();
    assert_eq!(gc.evicted, 1);
    assert!(
        store.get(&key_a).is_some(),
        "re-read entry must survive the sweep"
    );
    assert!(
        store.get(&key_b).is_none(),
        "never-read entry goes first despite being newer"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsck_removes_garbage_and_keeps_valid_entries() {
    let dir = scratch_dir("fsck");
    let store = ResultStore::open(&dir).unwrap();
    let trace = gradcomp_trace(0.02);
    let req = request(&trace, Technique::Baseline);
    run_cell(Some(&store), &req, &EngineOpts::default()).unwrap();

    // Plant garbage: a truncated object under a plausible key, and an
    // orphaned temp file.
    let bogus_key = sim_service::blake2s(b"bogus");
    std::fs::write(
        dir.join("objects")
            .join(format!("{}.json", bogus_key.to_hex())),
        "{\"key\": \"truncat",
    )
    .unwrap();
    std::fs::write(dir.join("objects").join("x.json.tmp.99.1"), "junk").unwrap();

    let report = store.fsck().unwrap();
    assert_eq!(report.valid, 1);
    assert_eq!(report.removed, 1);
    assert_eq!(report.temps_swept, 1);
    assert_eq!(store.entry_count(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_dedup_delivers_identical_bytes_to_concurrent_clients() {
    let dir = scratch_dir("daemon");
    let sock = std::env::temp_dir().join(format!(
        "arc-simserved-test-{}-{}.sock",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let store = Arc::new(ResultStore::open(&dir).unwrap());
    let mut handle = daemon::spawn(&sock, Some(Arc::clone(&store)), 2).unwrap();

    // A cell big enough that 8 barrier-released clients overlap with
    // the first computation.
    let trace = gradcomp_trace(0.15);
    let cell = WireCell {
        config: GpuConfig::tiny(),
        technique: Technique::SwB(arc_core::BalanceThreshold::new(16).unwrap()),
        trace: (*trace).clone(),
        rewrite: true,
        telemetry: Some(TelemetryConfig::every(16)),
        want_chrome: true,
        passes: PassPipeline::empty(),
        stage: None,
    };

    let n = 8;
    let barrier = Arc::new(Barrier::new(n));
    let mut outputs = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..n {
            let barrier = Arc::clone(&barrier);
            let cell = cell.clone();
            let sock = sock.clone();
            joins.push(scope.spawn(move || {
                let client = DaemonClient::connect(&sock).unwrap();
                barrier.wait();
                let r = client.sim(cell).unwrap();
                (
                    serde_json::to_string(&r.report).unwrap(),
                    serde_json::to_string(&r.telemetry).unwrap(),
                    r.chrome.unwrap_or_default(),
                )
            }));
        }
        for j in joins {
            outputs.push(j.join().unwrap());
        }
    });
    for other in &outputs[1..] {
        assert_eq!(
            &outputs[0], other,
            "all clients must receive the same bytes"
        );
    }
    // With a multi-hundred-ms simulation and barrier-released clients,
    // at least one request must have coalesced onto the in-flight run
    // (and the rest hit the now-populated store).
    let coalesced = handle.coalesced();
    let stats = store.stats();
    assert_eq!(
        stats.puts, 1,
        "dedup + store must yield exactly one simulation (coalesced={coalesced}, stats={stats:?})"
    );

    // Batch round-trip: input order restored, all served from the store.
    let client = DaemonClient::connect(&sock).unwrap();
    let batch = client
        .batch(vec![cell.clone(), cell.clone(), cell])
        .unwrap();
    assert_eq!(batch.len(), 3);
    for r in &batch {
        assert!(r.cached, "everything is in the store now");
        assert_eq!(
            serde_json::to_string(&r.report).unwrap(),
            outputs[0].0,
            "batch bytes match the first client's"
        );
    }
    client.shutdown().unwrap();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

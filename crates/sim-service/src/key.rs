//! Content-addressed store keys.
//!
//! A key is the BLAKE2s-256 digest of a domain-separated, length-prefixed
//! concatenation of everything that determines a simulation's *output*:
//!
//! ```text
//! key = H( tag("arc-store-key-v1")
//!        ‖ seg(SIM_VERSION)
//!        ‖ seg(canonical GpuConfig JSON)
//!        ‖ seg(canonical Technique JSON)
//!        ‖ seg("rewritten" | "raw")
//!        ‖ seg(canonical TelemetryConfig JSON)   (or seg("none"))
//!        ‖ seg(trace digest bytes)
//!        ‖ seg(pass-pipeline key)                (omitted when empty) )
//! ```
//!
//! where `seg(x)` is `u64_le(len(x)) ‖ x` — the length prefixes make the
//! encoding injective, so no two distinct input tuples collide by
//! concatenation tricks. The trace enters via its own digest (hash of
//! its canonical JSON) so harness callers can hash each workload trace
//! once and reuse the digest across every (config, technique) cell.
//!
//! Deliberately *excluded* from the key: engine execution knobs — worker
//! count, fast-forward, epoch mode, job fan-out. The conformance
//! invariants `worker-determinism`, `fast-forward`, and
//! `epoch-equivalence` pin those to be byte-identical, so they can only
//! change how fast a result is produced, never the result. Folding them
//! in would shatter the cache across machines for no correctness gain.
//! The telemetry configuration *is* keyed: it changes the telemetry and
//! chrome-trace bytes stored alongside the report.
//!
//! The `ARC_PASSES` optimizer pipeline (`arc_core::passes`) is keyed
//! too — unlike the engine knobs, passes rewrite the trace the
//! simulator sees, so results legitimately differ per pass set. The
//! segment is appended *only* for a non-empty pipeline, which keeps
//! every pre-pipeline key (and every on-disk store populated before
//! passes existed) byte-identical for default-off runs. This stays
//! injective: the trace-digest segment before it is fixed-length
//! (8-byte prefix + 32-byte digest), so a keyless stream can never
//! alias a stream that carries the extra segment.
//!
//! Frame-pipeline stages follow the same compatibility discipline via
//! [`store_key_staged`]: a `seg("stage:" ‖ name)` segment is appended
//! *only* for stage names outside the legacy three-kernel frame
//! (`forward` / `loss` / `gradcomp`). Legacy stages and stage-less
//! requests key byte-identically to every store populated before frames
//! existed. Injectivity holds because the stage segment always starts
//! with `stage:` while a pass key never can (pass keys are comma-joined
//! names from a fixed registry containing no `:`), and both trail the
//! fixed-length trace-digest segment — so no (passes, stage) ambiguity
//! can arise.

use crate::hash::{Blake2s, Digest};
use arc_core::passes::PassPipeline;
use arc_core::technique::Technique;
use gpu_sim::telemetry::TelemetryConfig;
use gpu_sim::GpuConfig;
use warp_trace::KernelTrace;

/// Append one length-prefixed segment.
fn seg(h: &mut Blake2s, bytes: &[u8]) {
    h.update(&(bytes.len() as u64).to_le_bytes());
    h.update(bytes);
}

/// Digest of a trace's canonical JSON serialization.
///
/// This is the expensive part of key derivation for large traces;
/// callers batching many cells over the same trace should compute it
/// once and pass it to [`store_key`].
pub fn trace_digest(trace: &KernelTrace) -> Digest {
    let json = serde_json::to_string(trace).expect("KernelTrace serializes");
    let mut h = Blake2s::new();
    seg(&mut h, b"arc-trace-v1");
    seg(&mut h, json.as_bytes());
    h.finalize()
}

/// Derive the store key for one simulation cell.
///
/// `telemetry = None` keys a report-only run; `Some(cfg)` keys a run
/// whose stored value also carries the telemetry (and derived chrome
/// trace) produced under `cfg`. `rewrite` says whether the technique's
/// trace transform is applied before simulating (true for gradcomp
/// kernels, false for forward/loss kernels, which run unrewritten on
/// the technique's hardware path — see `run_iteration_with`). `passes`
/// is the optimizer pipeline applied to the trace before any technique
/// rewrite; an empty pipeline keys identically to a build without the
/// pipeline (see the module docs for why that stays injective).
pub fn store_key(
    sim_version: &str,
    config: &GpuConfig,
    technique: Technique,
    rewrite: bool,
    telemetry: Option<&TelemetryConfig>,
    trace: &Digest,
    passes: &PassPipeline,
) -> Digest {
    store_key_staged(
        sim_version,
        config,
        technique,
        rewrite,
        telemetry,
        trace,
        passes,
        None,
    )
}

/// [`store_key`] for one named stage of a frame pipeline.
///
/// Legacy stage names (`forward`, `loss`, `gradcomp`) and `None` key
/// byte-identically to [`store_key`] — the legacy frame is fully
/// determined by `(trace digest, rewrite)`, so renaming its stages must
/// not shatter existing on-disk stores. Non-legacy stages (the
/// tile-binned frame's sort/scan/bin kernels) append a `stage:`-tagged
/// segment so two stages sharing a trace digest but differing in name
/// stay distinct cells.
#[allow(clippy::too_many_arguments)]
pub fn store_key_staged(
    sim_version: &str,
    config: &GpuConfig,
    technique: Technique,
    rewrite: bool,
    telemetry: Option<&TelemetryConfig>,
    trace: &Digest,
    passes: &PassPipeline,
    stage: Option<&str>,
) -> Digest {
    let mut h = Blake2s::new();
    seg(&mut h, b"arc-store-key-v1");
    seg(&mut h, sim_version.as_bytes());
    let cfg_json = serde_json::to_string(config).expect("GpuConfig serializes");
    seg(&mut h, cfg_json.as_bytes());
    let tech_json = serde_json::to_string(&technique).expect("Technique serializes");
    seg(&mut h, tech_json.as_bytes());
    seg(&mut h, if rewrite { b"rewritten" } else { b"raw" });
    match telemetry {
        Some(t) => {
            let t_json = serde_json::to_string(t).expect("TelemetryConfig serializes");
            seg(&mut h, t_json.as_bytes());
        }
        None => seg(&mut h, b"none"),
    }
    seg(&mut h, &trace.0);
    if !passes.is_empty() {
        seg(&mut h, passes.key().as_bytes());
    }
    if let Some(name) = stage {
        if !LEGACY_STAGES.contains(&name) {
            let mut tagged = Vec::with_capacity(6 + name.len());
            tagged.extend_from_slice(b"stage:");
            tagged.extend_from_slice(name.as_bytes());
            seg(&mut h, &tagged);
        }
    }
    h.finalize()
}

/// The stage names of the legacy three-kernel frame, whose store keys
/// predate stage naming and must stay byte-identical (mirrors
/// `arc_workloads::LEGACY_STAGES`; sim-service deliberately does not
/// depend on the workloads crate).
const LEGACY_STAGES: [&str; 3] = ["forward", "loss", "gradcomp"];

#[cfg(test)]
mod tests {
    use super::*;
    use warp_trace::{KernelKind, WarpTraceBuilder};

    fn tiny_trace(name: &str) -> KernelTrace {
        let mut w = WarpTraceBuilder::new();
        w.compute_fp32(1);
        KernelTrace::new(name, KernelKind::GradCompute, vec![w.finish()])
    }

    #[test]
    fn key_sensitivity() {
        let cfg = GpuConfig::tiny();
        let mut cfg2 = cfg.clone();
        cfg2.num_sms += 1;
        let t = trace_digest(&tiny_trace("a"));
        let t2 = trace_digest(&tiny_trace("b"));
        let none = PassPipeline::empty();
        let base = store_key("v1", &cfg, Technique::Baseline, true, None, &t, &none);
        // Every input moves the key.
        assert_ne!(
            base,
            store_key("v2", &cfg, Technique::Baseline, true, None, &t, &none)
        );
        assert_ne!(
            base,
            store_key("v1", &cfg2, Technique::Baseline, true, None, &t, &none)
        );
        assert_ne!(
            base,
            store_key("v1", &cfg, Technique::ArcHw, true, None, &t, &none)
        );
        assert_ne!(
            base,
            store_key("v1", &cfg, Technique::Baseline, false, None, &t, &none)
        );
        assert_ne!(
            base,
            store_key("v1", &cfg, Technique::Baseline, true, None, &t2, &none)
        );
        assert_ne!(
            base,
            store_key(
                "v1",
                &cfg,
                Technique::Baseline,
                true,
                Some(&TelemetryConfig::every(4)),
                &t,
                &none
            )
        );
        // Telemetry interval is keyed too.
        assert_ne!(
            store_key(
                "v1",
                &cfg,
                Technique::Baseline,
                true,
                Some(&TelemetryConfig::every(4)),
                &t,
                &none
            ),
            store_key(
                "v1",
                &cfg,
                Technique::Baseline,
                true,
                Some(&TelemetryConfig::every(8)),
                &t,
                &none
            ),
        );
        // The pass set is keyed, and distinct sets key distinctly.
        let all = PassPipeline::all();
        let one = PassPipeline::parse("coalesce").unwrap();
        assert_ne!(
            base,
            store_key("v1", &cfg, Technique::Baseline, true, None, &t, &all)
        );
        assert_ne!(
            store_key("v1", &cfg, Technique::Baseline, true, None, &t, &one),
            store_key("v1", &cfg, Technique::Baseline, true, None, &t, &all)
        );
        // And it is deterministic.
        assert_eq!(
            base,
            store_key("v1", &cfg, Technique::Baseline, true, None, &t, &none)
        );
    }

    #[test]
    fn legacy_and_absent_stages_key_identically() {
        let cfg = GpuConfig::tiny();
        let t = trace_digest(&tiny_trace("a"));
        let none = PassPipeline::empty();
        let base = store_key("v1", &cfg, Technique::ArcHw, true, None, &t, &none);
        // None and every legacy stage name reproduce the historical key.
        for stage in [None, Some("forward"), Some("loss"), Some("gradcomp")] {
            assert_eq!(
                base,
                store_key_staged("v1", &cfg, Technique::ArcHw, true, None, &t, &none, stage),
                "stage {stage:?} must not move a legacy key"
            );
        }
    }

    #[test]
    fn non_legacy_stages_key_distinctly() {
        let cfg = GpuConfig::tiny();
        let t = trace_digest(&tiny_trace("a"));
        let none = PassPipeline::empty();
        let base = store_key("v1", &cfg, Technique::ArcHw, true, None, &t, &none);
        let hist = store_key_staged(
            "v1",
            &cfg,
            Technique::ArcHw,
            true,
            None,
            &t,
            &none,
            Some("radix-histogram"),
        );
        let scan = store_key_staged(
            "v1",
            &cfg,
            Technique::ArcHw,
            true,
            None,
            &t,
            &none,
            Some("intersect-scan"),
        );
        assert_ne!(base, hist, "a named pipeline stage is a distinct cell");
        assert_ne!(hist, scan, "stage names separate cells sharing a digest");
        // Deterministic.
        assert_eq!(
            hist,
            store_key_staged(
                "v1",
                &cfg,
                Technique::ArcHw,
                true,
                None,
                &t,
                &none,
                Some("radix-histogram"),
            )
        );
        // Stage and pass segments compose without aliasing.
        let all = PassPipeline::all();
        let hist_piped = store_key_staged(
            "v1",
            &cfg,
            Technique::ArcHw,
            true,
            None,
            &t,
            &all,
            Some("radix-histogram"),
        );
        assert_ne!(hist, hist_piped);
        assert_ne!(
            hist_piped,
            store_key("v1", &cfg, Technique::ArcHw, true, None, &t, &all)
        );
    }

    #[test]
    fn trace_digest_reflects_content() {
        let a = tiny_trace("k");
        let mut w = WarpTraceBuilder::new();
        w.compute_fp32(2);
        let b = KernelTrace::new("k", KernelKind::GradCompute, vec![w.finish()]);
        assert_ne!(trace_digest(&a), trace_digest(&b));
        assert_eq!(trace_digest(&a), trace_digest(&tiny_trace("k")));
    }
}

//! Client side of the `simserved` protocol.

use std::fmt;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::exec::SimResult;
use crate::proto::{read_frame, write_frame, WireCell, WireRequest, WireResponse};
use crate::store::StoreStats;

/// Errors from talking to a daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (socket gone, truncated frame, …).
    Io(io::Error),
    /// The daemon answered with an error frame.
    Remote(String),
    /// The daemon answered with a frame that makes no sense for the
    /// request (protocol bug).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "daemon I/O error: {e}"),
            ClientError::Remote(msg) => write!(f, "daemon error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn to_result(resp: WireResponse) -> Result<SimResult, ClientError> {
    if !resp.ok {
        return Err(ClientError::Remote(
            resp.error.unwrap_or_else(|| "unspecified".to_string()),
        ));
    }
    let Some(r) = resp.result else {
        return Err(ClientError::Protocol("ok frame without result".to_string()));
    };
    Ok(SimResult {
        report: r.report,
        telemetry: r.telemetry,
        chrome: r.chrome,
        cached: r.cached,
    })
}

/// A connection to a running `simserved`. One request is in flight at a
/// time per client (the stream is locked for the round-trip); clone a
/// second client for overlap.
pub struct DaemonClient {
    stream: Mutex<UnixStream>,
    next_id: AtomicU64,
}

impl DaemonClient {
    /// Connect to the daemon socket at `path`.
    pub fn connect(path: impl AsRef<Path>) -> io::Result<DaemonClient> {
        Ok(DaemonClient {
            stream: Mutex::new(UnixStream::connect(path)?),
            next_id: AtomicU64::new(1),
        })
    }

    fn request(&self, req: &WireRequest) -> Result<WireResponse, ClientError> {
        let mut stream = self.stream.lock().unwrap();
        write_frame(&mut *stream, req)?;
        match read_frame::<_, WireResponse>(&mut *stream)? {
            Some(resp) => Ok(resp),
            None => Err(ClientError::Protocol(
                "daemon closed the stream mid-request".to_string(),
            )),
        }
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ClientError> {
        let resp = self.request(&WireRequest {
            id: self.fresh_id(),
            op: "ping".to_string(),
            cell: None,
            cells: None,
        })?;
        if resp.ok {
            Ok(())
        } else {
            Err(ClientError::Remote(
                resp.error.unwrap_or_else(|| "ping failed".to_string()),
            ))
        }
    }

    /// Store hit/miss counters from the daemon (None if it runs
    /// storeless).
    pub fn stats(&self) -> Result<Option<StoreStats>, ClientError> {
        let resp = self.request(&WireRequest {
            id: self.fresh_id(),
            op: "stats".to_string(),
            cell: None,
            cells: None,
        })?;
        if resp.ok {
            Ok(resp.stats)
        } else {
            Err(ClientError::Remote(
                resp.error.unwrap_or_else(|| "stats failed".to_string()),
            ))
        }
    }

    /// Ask the daemon to exit after answering.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        let resp = self.request(&WireRequest {
            id: self.fresh_id(),
            op: "shutdown".to_string(),
            cell: None,
            cells: None,
        })?;
        if resp.ok {
            Ok(())
        } else {
            Err(ClientError::Remote(
                resp.error.unwrap_or_else(|| "shutdown failed".to_string()),
            ))
        }
    }

    /// Simulate one cell remotely.
    pub fn sim(&self, cell: WireCell) -> Result<SimResult, ClientError> {
        let resp = self.request(&WireRequest {
            id: self.fresh_id(),
            op: "sim".to_string(),
            cell: Some(cell),
            cells: None,
        })?;
        to_result(resp)
    }

    /// Simulate a batch remotely; results come back in input order
    /// (the daemon streams them unordered, the client reassembles).
    ///
    /// The first failed cell aborts with its error after the stream
    /// drains, matching the fail-fast behaviour of local batch APIs.
    pub fn batch(&self, cells: Vec<WireCell>) -> Result<Vec<SimResult>, ClientError> {
        let n = cells.len();
        let id = self.fresh_id();
        let mut stream = self.stream.lock().unwrap();
        write_frame(
            &mut *stream,
            &WireRequest {
                id,
                op: "batch".to_string(),
                cell: None,
                cells: Some(cells),
            },
        )?;
        let mut slots: Vec<Option<SimResult>> = (0..n).map(|_| None).collect();
        let mut first_err: Option<ClientError> = None;
        loop {
            let Some(resp) = read_frame::<_, WireResponse>(&mut *stream)? else {
                return Err(ClientError::Protocol(
                    "daemon closed the stream mid-batch".to_string(),
                ));
            };
            if resp.id != id {
                return Err(ClientError::Protocol(format!(
                    "response id {} for request {id}",
                    resp.id
                )));
            }
            if resp.done {
                break;
            }
            let Some(item) = resp.item else {
                return Err(ClientError::Protocol(
                    "batch frame without item index".to_string(),
                ));
            };
            let idx = item as usize;
            if idx >= n {
                return Err(ClientError::Protocol(format!(
                    "batch item {idx} out of range ({n} cells)"
                )));
            }
            match to_result(resp) {
                Ok(result) => slots[idx] = Some(result),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.ok_or_else(|| ClientError::Protocol(format!("batch item {i} never answered")))
            })
            .collect()
    }
}

//! Cell execution: run one simulation through the store (check before,
//! populate after) or straight through the engine.
//!
//! This is the single choke point both the in-process API and the
//! daemon use, so the "store hit is byte-identical to a fresh run"
//! guarantee is enforced in exactly one place.

use std::borrow::Cow;
use std::sync::Arc;

use arc_core::passes::PassPipeline;
use arc_core::technique::{Technique, TraceTransform};
use gpu_sim::telemetry::{KernelTelemetry, TelemetryConfig};
use gpu_sim::{EpochMode, GpuConfig, KernelReport, SimError, Simulator, TechniquePath};
use warp_trace::KernelTrace;

use crate::hash::Digest;
use crate::key::{store_key_staged, trace_digest};
use crate::store::ResultStore;

/// One simulation cell: everything that determines the output.
#[derive(Clone, Debug)]
pub struct SimRequest {
    /// GPU model.
    pub config: GpuConfig,
    /// Atomic-reduction technique (selects path + trace rewrite).
    pub technique: Technique,
    /// The kernel to run (pre-rewrite; the executor applies the
    /// technique's trace transform when `rewrite` is set).
    pub trace: Arc<KernelTrace>,
    /// Apply the technique's trace rewrite before simulating. True for
    /// gradcomp kernels; false for forward/loss kernels, which run
    /// unrewritten on the technique's hardware path (mirroring
    /// `run_iteration_with`).
    pub rewrite: bool,
    /// Telemetry sampling configuration; `None` = report only.
    pub telemetry: Option<TelemetryConfig>,
    /// Also produce the `chrome://tracing` export (requires
    /// `telemetry`).
    pub want_chrome: bool,
    /// Optimizer pass pipeline applied to the trace *before* any
    /// technique rewrite (`ARC_PASSES`). Part of the store key; the
    /// empty pipeline keys and simulates exactly like a build without
    /// passes.
    pub passes: PassPipeline,
    /// Frame-pipeline stage name this cell simulates, if any. Keys the
    /// cell via [`crate::key::store_key_staged`]: `None` and legacy
    /// stage names (`forward`/`loss`/`gradcomp`) reproduce the
    /// historical stage-less key; other stages get their own cell even
    /// when two stages share a trace digest. Execution is unaffected.
    pub stage: Option<String>,
}

/// Engine execution knobs. These never change results (pinned by the
/// conformance determinism invariants) and are therefore *not* part of
/// the store key; they only apply when a cell actually simulates.
/// `None` fields fall back to the engine's environment-variable
/// defaults (`ARC_SIM_WORKERS`, `ARC_FF`, `ARC_SIM_EPOCH`).
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineOpts {
    /// SM worker threads.
    pub workers: Option<usize>,
    /// Event-driven fast-forward.
    pub fast_forward: Option<bool>,
    /// Epoch synchronization mode.
    pub epoch: Option<EpochMode>,
}

/// The observable output of one cell, plus whether it came from the
/// store.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The kernel report.
    pub report: KernelReport,
    /// Telemetry (present iff requested).
    pub telemetry: Option<KernelTelemetry>,
    /// Chrome-trace JSON (present iff requested).
    pub chrome: Option<String>,
    /// True when served from the store without simulating.
    pub cached: bool,
}

/// Derive the store key for `req` given a precomputed trace digest.
pub fn request_key(req: &SimRequest, trace: &Digest) -> Digest {
    store_key_staged(
        gpu_sim::SIM_VERSION,
        &req.config,
        req.technique,
        req.rewrite,
        req.telemetry.as_ref(),
        trace,
        &req.passes,
        req.stage.as_deref(),
    )
}

/// Run one cell, consulting `store` first when present and populating
/// it after a miss. `digest` is the precomputed digest of `req.trace`
/// (see [`trace_digest`]); batch callers hash each trace once.
pub fn run_cell_with_digest(
    store: Option<&ResultStore>,
    req: &SimRequest,
    opts: &EngineOpts,
    digest: &Digest,
) -> Result<SimResult, SimError> {
    let key = store.map(|s| (s, request_key(req, digest)));

    if let Some((store, key)) = &key {
        if let Some(mut hit) = store.get(key) {
            // A hit must be able to serve everything the request wants;
            // an entry produced without telemetry cannot answer a
            // telemetry request (the key includes the telemetry config,
            // so this only happens with hand-built entries — treat as a
            // defect, i.e. a miss).
            let servable = (req.telemetry.is_none() || hit.telemetry.is_some())
                && (!req.want_chrome || hit.telemetry.is_some());
            if servable {
                let chrome = if req.want_chrome {
                    // chrome_trace is a pure function of the telemetry,
                    // which round-trips exactly through JSON — so a
                    // derived export is byte-identical to a fresh one.
                    match hit.chrome.take() {
                        Some(c) => Some(c),
                        None => hit.telemetry.as_ref().map(KernelTelemetry::chrome_trace),
                    }
                } else {
                    None
                };
                return Ok(SimResult {
                    report: hit.report,
                    telemetry: if req.telemetry.is_some() {
                        hit.telemetry
                    } else {
                        None
                    },
                    chrome,
                    cached: true,
                });
            }
        }
    }

    // Miss: simulate.
    let mut sim = Simulator::new(req.config.clone(), req.technique.path())?;
    if let Some(w) = opts.workers {
        sim = sim.with_sm_workers(w);
    }
    if let Some(ff) = opts.fast_forward {
        sim = sim.with_fast_forward(ff);
    }
    if let Some(e) = opts.epoch {
        sim = sim.with_epoch(e);
    }
    let piped: Cow<'_, KernelTrace> = req.passes.apply(&req.trace);
    let prepared: Cow<'_, KernelTrace> = if req.rewrite {
        match req.technique.prepare_cow(&piped) {
            Cow::Borrowed(_) => piped,
            Cow::Owned(t) => Cow::Owned(t),
        }
    } else {
        piped
    };
    let (report, telemetry) = match &req.telemetry {
        Some(tcfg) => {
            let sim = sim.with_telemetry(tcfg.clone());
            sim.run_with_telemetry(&prepared)?
        }
        None => (sim.run(&prepared)?, None),
    };
    let chrome = if req.want_chrome {
        telemetry.as_ref().map(KernelTelemetry::chrome_trace)
    } else {
        None
    };

    if let Some((store, key)) = &key {
        // Population failures (disk full, permissions) must not fail
        // the simulation itself — the result is already in hand.
        let _ = store.put(key, &report, telemetry.as_ref(), chrome.as_deref());
    }

    Ok(SimResult {
        report,
        telemetry,
        chrome,
        cached: false,
    })
}

/// [`run_cell_with_digest`] with the trace digest computed on the spot.
pub fn run_cell(
    store: Option<&ResultStore>,
    req: &SimRequest,
    opts: &EngineOpts,
) -> Result<SimResult, SimError> {
    let digest = trace_digest(&req.trace);
    run_cell_with_digest(store, req, opts, &digest)
}

//! Vendored BLAKE2s-256 (RFC 7693), keyless, 32-byte digest.
//!
//! The build environment is offline, so instead of pulling `blake2` from
//! crates.io the store vendors the ~120 lines of the reference
//! compression function. BLAKE2s (the 32-bit variant) is chosen over
//! BLAKE2b because store keys are small (a few KiB of canonical JSON per
//! cell plus a trace digest) and the 32-bit rotations keep the code
//! word-width-agnostic. Verified against the RFC test vectors in the
//! unit tests below.

/// BLAKE2s initialization vector (identical to the SHA-256 IV).
const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

/// Message-word schedule for the 10 rounds.
const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

/// A 256-bit content digest: the address of a store entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lower-hex rendering, used for object file names and wire keys.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parse a 64-char lower/upper-hex string back into a digest.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental BLAKE2s-256 hasher (keyless).
pub struct Blake2s {
    h: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    /// Total bytes compressed so far (not counting `buf`).
    t: u64,
}

impl Default for Blake2s {
    fn default() -> Self {
        Self::new()
    }
}

impl Blake2s {
    /// Fresh hasher with the 32-byte-digest, keyless parameter block.
    pub fn new() -> Self {
        let mut h = IV;
        // Parameter block word 0: digest_length=32, key_length=0,
        // fanout=1, depth=1 → 0x0101_0020.
        h[0] ^= 0x0101_0020;
        Blake2s {
            h,
            buf: [0u8; 64],
            buf_len: 0,
            t: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        // Only flush the buffer once we know more input follows: the
        // final block must be compressed with the finalization flag.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if data.is_empty() {
                return;
            }
            self.t += 64;
            let block = self.buf;
            self.compress(&block, false);
            self.buf_len = 0;
        }
        while data.len() > 64 {
            self.t += 64;
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block, false);
            data = &data[64..];
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Finish and return the 32-byte digest.
    pub fn finalize(mut self) -> Digest {
        self.t += self.buf_len as u64;
        let mut block = [0u8; 64];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        self.compress(&block, true);
        let mut out = [0u8; 32];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64], last: bool) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut v = [0u32; 16];
        v[..8].copy_from_slice(&self.h);
        v[8..].copy_from_slice(&IV);
        v[12] ^= self.t as u32;
        v[13] ^= (self.t >> 32) as u32;
        if last {
            v[14] = !v[14];
        }

        #[inline(always)]
        fn g(v: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, x: u32, y: u32) {
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
            v[d] = (v[d] ^ v[a]).rotate_right(16);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(12);
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
            v[d] = (v[d] ^ v[a]).rotate_right(8);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(7);
        }

        for s in &SIGMA {
            g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
            g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
            g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
            g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
            g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
            g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
            g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
            g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
        }
        for i in 0..8 {
            self.h[i] ^= v[i] ^ v[i + 8];
        }
    }
}

/// One-shot convenience: BLAKE2s-256 of `data`.
pub fn blake2s(data: &[u8]) -> Digest {
    let mut h = Blake2s::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_vector_empty() {
        // RFC 7693 / reference implementation: BLAKE2s-256("")
        assert_eq!(
            blake2s(b"").to_hex(),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9"
        );
    }

    #[test]
    fn rfc_vector_abc() {
        assert_eq!(
            blake2s(b"abc").to_hex(),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = blake2s(&data);
        // Feed in awkward chunk sizes that straddle block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 127, 500] {
            let mut h = Blake2s::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn multi_block_vector() {
        // 256 bytes = 4 full blocks; cross-checked against the reference
        // implementation's selftest corpus generator pattern is overkill —
        // instead pin a digest computed by this implementation once and
        // guarded by the incremental test above for internal consistency,
        // plus the two official vectors for external consistency.
        let data: Vec<u8> = (0..=255u8).collect();
        let d1 = blake2s(&data);
        let d2 = blake2s(&data);
        assert_eq!(d1, d2);
        assert_ne!(d1, blake2s(&data[..255]));
    }

    #[test]
    fn hex_round_trip() {
        let d = blake2s(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"a".repeat(63)), None);
    }
}

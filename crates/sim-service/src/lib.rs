//! Simulation-as-a-service for the ARC reproduction.
//!
//! Cycle-level simulation is this repo's cost center. The engine-side
//! levers (worker sharding, fast-forward, epoch sync — PRs 1/4/6) make
//! a single run faster; this crate adds the complementary lever:
//! **never simulating the same cell twice**. It provides
//!
//! * [`store::ResultStore`] — a content-addressed on-disk cache keyed
//!   by a vendored BLAKE2s digest ([`hash`]) of the canonical trace
//!   bytes, [`gpu_sim::GpuConfig`], `Technique`, telemetry config, and
//!   the [`gpu_sim::SIM_VERSION`] fingerprint ([`key`]); entries are
//!   written atomically and anything unservable is a miss, never an
//!   error;
//! * [`exec`] — the single execution choke point: check the store,
//!   simulate on miss, populate;
//! * [`daemon`] / [`client`] — `simserved`, a long-lived Unix-socket
//!   server speaking length-prefixed JSON ([`proto`]) with request
//!   deduplication, a global concurrency bound, and streamed batch
//!   responses.
//!
//! The contract — a store or daemon hit is **byte-identical** to a
//! fresh run — is enforced by the conformance invariant
//! `store-equivalence` (see `crates/conformance`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod exec;
pub mod hash;
pub mod key;
pub mod proto;
pub mod store;

pub use client::{ClientError, DaemonClient};
pub use daemon::DaemonHandle;
pub use exec::request_key;
pub use exec::{run_cell, run_cell_with_digest, EngineOpts, SimRequest, SimResult};
pub use hash::{blake2s, Digest};
pub use key::{store_key, store_key_staged, trace_digest};
pub use proto::WireCell;
pub use store::{FsckReport, GcReport, ResultStore, StoreStats, StoredValue};

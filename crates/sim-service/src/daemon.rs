//! The `simserved` daemon: a long-lived simulation server on a Unix
//! socket.
//!
//! Per connection, a thread reads request frames and answers them.
//! Simulation work flows through two shared mechanisms:
//!
//! * a **job semaphore** bounding concurrently running simulations
//!   across *all* connections to the configured job count (the same
//!   knob `gpu_sim::par_map` uses for in-process fan-out);
//! * an **in-flight table** deduplicating identical requests: when two
//!   clients (or one client's batch twice) ask for the same store key
//!   while the first computation is still running, the later arrivals
//!   block on the first one's slot and receive a clone of the same
//!   result — one simulation, N answers, all byte-identical.
//!
//! Batches stream: each cell's frame is written as soon as that cell
//! finishes (tagged with its index), so a client can overlap its own
//! post-processing with the daemon's remaining work.

use std::collections::HashMap;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::exec::{run_cell_with_digest, EngineOpts, SimRequest, SimResult};
use crate::hash::Digest;
use crate::key::trace_digest;
use crate::proto::{read_frame, write_frame, WireCell, WireRequest, WireResponse, WireResult};
use crate::store::ResultStore;

/// Counting semaphore (std has none): bounds concurrent simulations.
struct Semaphore {
    slots: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(slots: usize) -> Self {
        Semaphore {
            slots: Mutex::new(slots.max(1)),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> SemGuard<'_> {
        let mut slots = self.slots.lock().unwrap();
        while *slots == 0 {
            slots = self.cv.wait(slots).unwrap();
        }
        *slots -= 1;
        SemGuard { sem: self }
    }
}

struct SemGuard<'a> {
    sem: &'a Semaphore,
}

impl Drop for SemGuard<'_> {
    fn drop(&mut self) {
        *self.sem.slots.lock().unwrap() += 1;
        self.sem.cv.notify_one();
    }
}

/// One deduplicated computation slot.
struct Inflight {
    done: Mutex<Option<Result<SimResult, String>>>,
    cv: Condvar,
}

impl Inflight {
    fn new() -> Self {
        Inflight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> Result<SimResult, String> {
        let mut done = self.done.lock().unwrap();
        while done.is_none() {
            done = self.cv.wait(done).unwrap();
        }
        done.clone().unwrap()
    }

    fn fulfill(&self, result: Result<SimResult, String>) {
        *self.done.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }
}

/// Shared daemon state.
struct Shared {
    store: Option<Arc<ResultStore>>,
    opts: EngineOpts,
    sock: PathBuf,
    jobs: usize,
    sem: Semaphore,
    inflight: Mutex<HashMap<Digest, Arc<Inflight>>>,
    /// Dedup diagnostics: requests that piggybacked on an in-flight
    /// computation instead of starting their own.
    coalesced: AtomicUsize,
    stop: AtomicBool,
}

impl Shared {
    /// Run one cell with dedup + the job semaphore.
    fn exec(&self, cell: &WireCell) -> Result<SimResult, String> {
        let req = SimRequest {
            config: cell.config.clone(),
            technique: cell.technique,
            trace: Arc::new(cell.trace.clone()),
            rewrite: cell.rewrite,
            telemetry: cell.telemetry.clone(),
            want_chrome: cell.want_chrome,
            passes: cell.passes.clone(),
            stage: cell.stage.clone(),
        };
        let digest = trace_digest(&req.trace);
        // Dedup on the *request identity*: the store key plus the
        // output-shape flag the key doesn't carry (want_chrome), so a
        // chrome-less waiter never receives a chrome-less clone of a
        // richer request or vice versa. Hash the flag into the slot id.
        let mut slot_key = crate::exec::request_key(&req, &digest);
        if cell.want_chrome {
            slot_key.0[0] ^= 0x80;
        }

        let (slot, leader) = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(&slot_key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Inflight::new());
                    inflight.insert(slot_key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if !leader {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return slot.wait();
        }

        let result = {
            let _permit = self.sem.acquire();
            run_cell_with_digest(self.store.as_deref(), &req, &self.opts, &digest)
                .map_err(|e| e.to_string())
        };
        self.inflight.lock().unwrap().remove(&slot_key);
        slot.fulfill(result.clone());
        result
    }
}

fn to_wire(result: SimResult) -> WireResult {
    WireResult {
        report: result.report,
        telemetry: result.telemetry,
        chrome: result.chrome,
        cached: result.cached,
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: UnixStream) -> io::Result<()> {
    let mut reader = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream));
    loop {
        let Some(req): Option<WireRequest> = read_frame(&mut reader)? else {
            return Ok(());
        };
        match req.op.as_str() {
            "ping" => {
                write_frame(&mut *writer.lock().unwrap(), &WireResponse::ack(req.id))?;
            }
            "stats" => {
                let mut resp = WireResponse::ack(req.id);
                resp.stats = shared.store.as_ref().map(|s| s.stats());
                write_frame(&mut *writer.lock().unwrap(), &resp)?;
            }
            "shutdown" => {
                shared.stop.store(true, Ordering::SeqCst);
                write_frame(&mut *writer.lock().unwrap(), &WireResponse::ack(req.id))?;
                // Wake the accept loop so it observes the stop flag.
                let _ = UnixStream::connect(&shared.sock);
                return Ok(());
            }
            "sim" => {
                let Some(cell) = req.cell else {
                    write_frame(
                        &mut *writer.lock().unwrap(),
                        &WireResponse::err(req.id, None, "sim request without cell"),
                    )?;
                    continue;
                };
                let resp = match shared.exec(&cell) {
                    Ok(result) => {
                        let mut r = WireResponse::ack(req.id);
                        r.result = Some(to_wire(result));
                        r
                    }
                    Err(e) => WireResponse::err(req.id, None, e),
                };
                write_frame(&mut *writer.lock().unwrap(), &resp)?;
            }
            "batch" => {
                let cells = req.cells.unwrap_or_default();
                let id = req.id;
                // Stream results as cells finish: a shared cursor hands
                // indices to a bounded set of worker threads; each
                // worker writes its own frames (writer mutex keeps
                // frames whole). The job semaphore inside exec() still
                // bounds *global* simulation concurrency across
                // connections.
                let cursor = AtomicUsize::new(0);
                let workers = shared.jobs.max(1).min(cells.len().max(1));
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= cells.len() {
                                return;
                            }
                            let resp = match shared.exec(&cells[i]) {
                                Ok(result) => {
                                    let mut r = WireResponse::ack(id);
                                    r.item = Some(i as u64);
                                    r.result = Some(to_wire(result));
                                    r
                                }
                                Err(e) => WireResponse::err(id, Some(i as u64), e),
                            };
                            let _ = write_frame(&mut *writer.lock().unwrap(), &resp);
                        });
                    }
                });
                let mut done = WireResponse::ack(id);
                done.done = true;
                write_frame(&mut *writer.lock().unwrap(), &done)?;
            }
            other => {
                write_frame(
                    &mut *writer.lock().unwrap(),
                    &WireResponse::err(req.id, None, format!("unknown op `{other}`")),
                )?;
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// A running daemon. Dropping the handle shuts it down and removes the
/// socket file.
pub struct DaemonHandle {
    sock: PathBuf,
    accept_thread: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl DaemonHandle {
    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.sock
    }

    /// Requests deduplicated onto an already-running computation so far.
    pub fn coalesced(&self) -> usize {
        self.shared.coalesced.load(Ordering::Relaxed)
    }

    /// Block until the daemon stops (a client sent `shutdown`).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.sock);
    }

    /// Ask the daemon to stop and wait for the accept loop to exit.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = UnixStream::connect(&self.sock);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.sock);
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a daemon listening on `sock`, serving through `store` (if
/// any), running at most `jobs` simulations concurrently.
///
/// This is a library entry point so tests and the conformance suite can
/// spin up an in-process daemon on a temp socket; the `simserved serve`
/// subcommand is a thin wrapper.
pub fn spawn(
    sock: impl Into<PathBuf>,
    store: Option<Arc<ResultStore>>,
    jobs: usize,
) -> io::Result<DaemonHandle> {
    let sock = sock.into();
    // A stale socket file from a dead daemon would fail the bind.
    let _ = std::fs::remove_file(&sock);
    let listener = UnixListener::bind(&sock)?;
    let shared = Arc::new(Shared {
        store,
        opts: EngineOpts::default(),
        sock: sock.clone(),
        jobs: jobs.max(1),
        sem: Semaphore::new(jobs),
        inflight: Mutex::new(HashMap::new()),
        coalesced: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
    });

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || {
        let mut conn_threads = Vec::new();
        for stream in listener.incoming() {
            if accept_shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { break };
            let conn_shared = Arc::clone(&accept_shared);
            conn_threads.push(std::thread::spawn(move || {
                let _ = handle_connection(&conn_shared, stream);
            }));
        }
        for t in conn_threads {
            let _ = t.join();
        }
    });

    Ok(DaemonHandle {
        sock,
        accept_thread: Some(accept_thread),
        shared,
    })
}

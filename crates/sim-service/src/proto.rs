//! Wire protocol for `simserved`: length-prefixed JSON frames over a
//! Unix stream socket.
//!
//! Every frame is a big-endian `u32` byte count followed by that many
//! bytes of UTF-8 JSON. Requests carry a client-chosen `id` echoed on
//! every response so a client can pipeline. Operations:
//!
//! | op         | request fields | responses                               |
//! |------------|----------------|-----------------------------------------|
//! | `sim`      | `cell`         | one `{id, ok, result}`                  |
//! | `batch`    | `cells`        | one `{id, ok, item, result}` per cell as it completes (streamed, any order), then `{id, ok, done: true}` |
//! | `ping`     | —              | `{id, ok}`                              |
//! | `stats`    | —              | `{id, ok, stats}`                       |
//! | `shutdown` | —              | `{id, ok}`, then the daemon exits       |
//!
//! Errors come back as `{id, ok: false, error}`; for batches a failed
//! cell produces an error frame carrying its `item` index while other
//! cells keep streaming.

use std::io::{self, Read, Write};

use arc_core::passes::PassPipeline;
use arc_core::technique::Technique;
use gpu_sim::telemetry::{KernelTelemetry, TelemetryConfig};
use gpu_sim::{GpuConfig, KernelReport};
use serde::{Deserialize, Serialize};
use warp_trace::KernelTrace;

use crate::store::StoreStats;

/// Refuse frames above this size (a corrupt length prefix would
/// otherwise ask us to allocate gigabytes).
pub const MAX_FRAME_BYTES: u32 = 256 * 1024 * 1024;

/// One simulation cell on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireCell {
    /// GPU model.
    pub config: GpuConfig,
    /// Technique (typed; same serde form as the registry).
    pub technique: Technique,
    /// Full kernel trace, inline.
    pub trace: KernelTrace,
    /// Apply the technique's trace rewrite before simulating (true for
    /// gradcomp kernels, false for forward/loss kernels).
    pub rewrite: bool,
    /// Telemetry sampling config, if sampled output is wanted.
    pub telemetry: Option<TelemetryConfig>,
    /// Also render the chrome-trace export.
    pub want_chrome: bool,
    /// Optimizer pass pipeline applied before the technique rewrite.
    /// Defaults to empty so frames from pre-pipeline clients still
    /// parse (and mean exactly what they used to).
    #[serde(default)]
    pub passes: PassPipeline,
    /// Frame-pipeline stage name, if the cell is one stage of a
    /// multi-kernel frame. Defaults to `None` so frames from pre-frame
    /// clients still parse; `None` and legacy stage names key
    /// identically (see `key::store_key_staged`).
    #[serde(default)]
    pub stage: Option<String>,
}

/// A request frame.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed on every response.
    pub id: u64,
    /// Operation: `sim`, `batch`, `ping`, `stats`, or `shutdown`.
    pub op: String,
    /// The cell for `sim`.
    #[serde(default)]
    pub cell: Option<WireCell>,
    /// The cells for `batch`.
    #[serde(default)]
    pub cells: Option<Vec<WireCell>>,
}

/// A cell result on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireResult {
    /// The kernel report.
    pub report: KernelReport,
    /// Telemetry, iff requested.
    pub telemetry: Option<KernelTelemetry>,
    /// Chrome-trace JSON, iff requested.
    pub chrome: Option<String>,
    /// Served from the result store without simulating.
    pub cached: bool,
}

/// A response frame.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireResponse {
    /// Correlation id from the request.
    pub id: u64,
    /// False iff this frame reports an error.
    pub ok: bool,
    /// Batch item index this frame answers, if any.
    #[serde(default)]
    pub item: Option<u64>,
    /// Marks the final frame of a batch.
    #[serde(default)]
    pub done: bool,
    /// Payload for `sim` / `batch` item frames.
    #[serde(default)]
    pub result: Option<WireResult>,
    /// Store counters for `stats`.
    #[serde(default)]
    pub stats: Option<StoreStats>,
    /// Human-readable error when `ok` is false.
    #[serde(default)]
    pub error: Option<String>,
}

impl WireResponse {
    /// A bare `{id, ok: true}` acknowledgement.
    pub fn ack(id: u64) -> Self {
        WireResponse {
            id,
            ok: true,
            item: None,
            done: false,
            result: None,
            stats: None,
            error: None,
        }
    }

    /// An error frame.
    pub fn err(id: u64, item: Option<u64>, msg: impl Into<String>) -> Self {
        WireResponse {
            id,
            ok: false,
            item,
            done: false,
            result: None,
            stats: None,
            error: Some(msg.into()),
        }
    }
}

/// Serialize `value` and write it as one frame.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, value: &T) -> io::Result<()> {
    let json = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = json.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame and deserialize it. `Ok(None)` means the peer closed
/// the stream cleanly between frames.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> io::Result<Option<T>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    let text = String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    let value = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(value))
}

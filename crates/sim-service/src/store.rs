//! Content-addressed on-disk result store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/objects/<64-hex-key>.json   one entry per simulated cell
//! <root>/index.json                  {sim_version, next_seq, entries}
//! ```
//!
//! Every write is atomic: the bytes land in a uniquely named `*.tmp.*`
//! sibling first and are `rename(2)`d into place, so readers (including
//! concurrent processes) only ever observe absent or complete files —
//! never torn ones. Two writers racing on the same key both write valid
//! identical content; whichever rename lands last wins and nothing is
//! corrupted.
//!
//! Reads are paranoid by construction: an entry is served only if its
//! JSON parses, its embedded key matches the file it was addressed by,
//! and its embedded `sim_version` matches the store's. Anything else —
//! truncation, stale version, hand-edited bytes, partial copy — is a
//! *miss*, and the caller recomputes. The store can therefore never make
//! a result wrong, only slower.
//!
//! The index file is a cache of entry sizes and insertion order for
//! `gc`; it is advisory. `fsck` rebuilds it from the objects directory
//! and deletes undecodable objects.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gpu_sim::telemetry::KernelTelemetry;
use gpu_sim::KernelReport;
use serde::{Deserialize, Serialize};

use crate::hash::Digest;

/// The value stored per key: the full observable output of one
/// simulation cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoredValue {
    /// Hex of the key this value was stored under (integrity check).
    pub key: String,
    /// `gpu_sim::SIM_VERSION` at production time.
    pub sim_version: String,
    /// The kernel report.
    pub report: KernelReport,
    /// Telemetry, when the keyed request sampled it.
    pub telemetry: Option<KernelTelemetry>,
    /// Pre-rendered `chrome://tracing` JSON, when it was requested at
    /// production time. Derivable from `telemetry`, so optional.
    pub chrome: Option<String>,
}

/// One advisory index row.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct IndexEntry {
    key: String,
    bytes: u64,
    seq: u64,
    /// Recency stamp of the most recent successful `get`, drawn from
    /// the same monotonic counter as `seq` (0 = never read). Defaults
    /// so index files written before hit tracking still parse; their
    /// entries age by insertion order until re-read.
    #[serde(default)]
    last_hit: u64,
}

impl IndexEntry {
    /// Eviction ordering stamp: an entry is as recent as its last read,
    /// or its insertion when it was never read.
    fn recency(&self) -> u64 {
        self.seq.max(self.last_hit)
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct IndexFile {
    sim_version: String,
    next_seq: u64,
    entries: Vec<IndexEntry>,
}

/// Hit/miss/insert counters for one store handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Successful `get`s.
    pub hits: u64,
    /// `get`s that found nothing servable (absent, torn, or stale).
    pub misses: u64,
    /// Successful `put`s.
    pub puts: u64,
}

/// Outcome of [`ResultStore::fsck`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Valid entries kept.
    pub valid: u64,
    /// Undecodable / mismatched / stale objects removed.
    pub removed: u64,
    /// Orphaned temp files swept.
    pub temps_swept: u64,
}

/// Outcome of [`ResultStore::gc`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries evicted (oldest first).
    pub evicted: u64,
    /// Entries skipped because a reader had them pinned.
    pub pinned_kept: u64,
    /// Total object bytes remaining after the sweep.
    pub bytes_after: u64,
}

/// A content-addressed, crash-safe result store rooted at a directory.
pub struct ResultStore {
    root: PathBuf,
    sim_version: String,
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    /// Keys currently being read (or externally pinned); `gc` will not
    /// evict them.
    pins: Mutex<HashMap<Digest, u64>>,
    /// Serializes index rewrites within this process.
    index_lock: Mutex<()>,
    /// Hits observed since the last index rewrite: hex key → in-process
    /// hit order. Folded into the index (as `last_hit` stamps) by the
    /// next `put`/`gc`/`fsck` under `index_lock`, so the hot read path
    /// never pays an index rewrite — which would wreck warm-store
    /// latency for nothing, since recency only matters when `gc` runs.
    pending_hits: Mutex<HashMap<String, u64>>,
    /// Orders entries within `pending_hits`.
    hit_seq: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`, keyed for
    /// the current [`gpu_sim::SIM_VERSION`].
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ResultStore> {
        Self::open_versioned(root, gpu_sim::SIM_VERSION)
    }

    /// Opens a store pinned to an explicit version string (tests use
    /// this to simulate stale stores).
    pub fn open_versioned(root: impl Into<PathBuf>, sim_version: &str) -> io::Result<ResultStore> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        Ok(ResultStore {
            root,
            sim_version: sim_version.to_string(),
            tmp_seq: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            pins: Mutex::new(HashMap::new()),
            index_lock: Mutex::new(()),
            pending_hits: Mutex::new(HashMap::new()),
            hit_seq: AtomicU64::new(1),
        })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The version string entries must carry to be served.
    pub fn sim_version(&self) -> &str {
        &self.sim_version
    }

    fn object_path(&self, key: &Digest) -> PathBuf {
        self.root
            .join("objects")
            .join(format!("{}.json", key.to_hex()))
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.json")
    }

    /// Write `bytes` to `path` atomically (unique temp file + rename).
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tag = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{}.{}", std::process::id(), tag));
        fs::write(&tmp, bytes)?;
        match fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Pin `key` against eviction for the guard's lifetime.
    pub fn pin(&self, key: Digest) -> PinGuard<'_> {
        *self.pins.lock().unwrap().entry(key).or_insert(0) += 1;
        PinGuard { store: self, key }
    }

    fn is_pinned(&self, key: &Digest) -> bool {
        self.pins.lock().unwrap().contains_key(key)
    }

    /// Validate raw object bytes against the key and store version.
    fn decode(&self, key: &Digest, bytes: &str) -> Option<StoredValue> {
        let value: StoredValue = serde_json::from_str(bytes).ok()?;
        if value.key != key.to_hex() || value.sim_version != self.sim_version {
            return None;
        }
        Some(value)
    }

    /// Look up `key`. Any defect in the stored entry — missing file,
    /// truncated or unparsable JSON, key/version mismatch — is reported
    /// as a miss (`None`); the store never errors a read.
    pub fn get(&self, key: &Digest) -> Option<StoredValue> {
        // Pin for the duration of the read so a concurrent `gc` cannot
        // unlink the object mid-read.
        let _pin = self.pin(*key);
        let found = fs::read_to_string(self.object_path(key))
            .ok()
            .and_then(|bytes| self.decode(key, &bytes));
        match &found {
            Some(_) => {
                // Record the read for LRU eviction; inserting again
                // overwrites the order stamp, so only the latest read
                // of a key counts.
                let order = self.hit_seq.fetch_add(1, Ordering::Relaxed);
                self.pending_hits
                    .lock()
                    .unwrap()
                    .insert(key.to_hex(), order);
                self.hits.fetch_add(1, Ordering::Relaxed)
            }
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert `value` under `key`. The embedded key/version fields are
    /// overwritten to match, so callers only supply the payload.
    pub fn put(
        &self,
        key: &Digest,
        report: &KernelReport,
        telemetry: Option<&KernelTelemetry>,
        chrome: Option<&str>,
    ) -> io::Result<()> {
        let value = StoredValue {
            key: key.to_hex(),
            sim_version: self.sim_version.clone(),
            report: report.clone(),
            telemetry: telemetry.cloned(),
            chrome: chrome.map(str::to_string),
        };
        let json = serde_json::to_string(&value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.write_atomic(&self.object_path(key), json.as_bytes())?;
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.index_add(key, json.len() as u64)?;
        Ok(())
    }

    /// Hit/miss/put counters for this handle.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
        }
    }

    /// Number of object files currently on disk.
    pub fn entry_count(&self) -> u64 {
        self.scan_objects().len() as u64
    }

    fn load_index(&self) -> IndexFile {
        let fallback = IndexFile {
            sim_version: self.sim_version.clone(),
            next_seq: 1,
            entries: Vec::new(),
        };
        let Ok(bytes) = fs::read_to_string(self.index_path()) else {
            return fallback;
        };
        match serde_json::from_str::<IndexFile>(&bytes) {
            Ok(idx) if idx.sim_version == self.sim_version => idx,
            _ => fallback,
        }
    }

    fn store_index(&self, idx: &IndexFile) -> io::Result<()> {
        let json = serde_json::to_string(idx)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.write_atomic(&self.index_path(), json.as_bytes())
    }

    /// Fold hits recorded since the last index rewrite into `entries`,
    /// stamping `last_hit` from `next_seq` in observed read order.
    /// Caller must hold `index_lock`. Hits on keys the index does not
    /// know (stale index, foreign object) are dropped — they re-arm on
    /// the next read.
    fn fold_pending_hits(&self, entries: &mut [IndexEntry], next_seq: &mut u64) {
        let pending = std::mem::take(&mut *self.pending_hits.lock().unwrap());
        if pending.is_empty() {
            return;
        }
        let mut hits: Vec<(String, u64)> = pending.into_iter().collect();
        hits.sort_by_key(|&(_, order)| order);
        for (hex, _) in hits {
            if let Some(e) = entries.iter_mut().find(|e| e.key == hex) {
                e.last_hit = *next_seq;
                *next_seq += 1;
            }
        }
    }

    fn index_add(&self, key: &Digest, bytes: u64) -> io::Result<()> {
        let _guard = self.index_lock.lock().unwrap();
        let mut idx = self.load_index();
        self.fold_pending_hits(&mut idx.entries, &mut idx.next_seq);
        let hex = key.to_hex();
        let seq = idx.next_seq;
        idx.next_seq += 1;
        match idx.entries.iter_mut().find(|e| e.key == hex) {
            // Re-insert refreshes the size but keeps the original age:
            // identical content, no reason to treat it as newer.
            Some(e) => e.bytes = bytes,
            None => idx.entries.push(IndexEntry {
                key: hex,
                bytes,
                seq,
                last_hit: 0,
            }),
        }
        self.store_index(&idx)
    }

    /// Hex keys (with sizes) of every object file on disk.
    fn scan_objects(&self) -> Vec<(Digest, u64)> {
        let mut out = Vec::new();
        let Ok(dir) = fs::read_dir(self.root.join("objects")) else {
            return out;
        };
        for entry in dir.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name.strip_suffix(".json") else {
                continue;
            };
            let Some(key) = Digest::from_hex(hex) else {
                continue;
            };
            let size = entry.metadata().map(|m| m.len()).unwrap_or(0);
            out.push((key, size));
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Verify every object on disk; remove undecodable/stale ones and
    /// rebuild the index (preserving known insertion order).
    pub fn fsck(&self) -> io::Result<FsckReport> {
        let _guard = self.index_lock.lock().unwrap();
        let mut report = FsckReport::default();

        // Sweep orphaned temp files first (crashed writers).
        if let Ok(dir) = fs::read_dir(self.root.join("objects")) {
            for entry in dir.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.contains(".tmp.") {
                    let _ = fs::remove_file(entry.path());
                    report.temps_swept += 1;
                }
            }
        }

        let old = self.load_index();
        let old_entry: HashMap<&str, (u64, u64)> = old
            .entries
            .iter()
            .map(|e| (e.key.as_str(), (e.seq, e.last_hit)))
            .collect();
        let mut entries = Vec::new();
        let mut next_seq = old.next_seq;
        for (key, _) in self.scan_objects() {
            let path = self.object_path(&key);
            let ok = fs::read_to_string(&path)
                .ok()
                .and_then(|bytes| self.decode(&key, &bytes));
            match ok {
                Some(_) => {
                    let hex = key.to_hex();
                    let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                    let (seq, last_hit) =
                        old_entry.get(hex.as_str()).copied().unwrap_or_else(|| {
                            let s = next_seq;
                            next_seq += 1;
                            (s, 0)
                        });
                    entries.push(IndexEntry {
                        key: hex,
                        bytes,
                        seq,
                        last_hit,
                    });
                    report.valid += 1;
                }
                None => {
                    let _ = fs::remove_file(&path);
                    report.removed += 1;
                }
            }
        }
        entries.sort_by_key(|e| e.seq);
        self.fold_pending_hits(&mut entries, &mut next_seq);
        self.store_index(&IndexFile {
            sim_version: self.sim_version.clone(),
            next_seq,
            entries,
        })?;
        Ok(report)
    }

    /// Evict least-recently-used entries until total object bytes fit
    /// in `max_bytes`. "Used" means read (`get`) or inserted, whichever
    /// came later — so a hot entry survives a sweep even when it was
    /// written long before colder, newer ones. Pinned entries
    /// (mid-read) are never evicted — they are skipped this pass and
    /// remain candidates for the next one.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let _guard = self.index_lock.lock().unwrap();
        let mut report = GcReport::default();

        // Refresh the index from disk so cross-process writes are seen.
        let old = self.load_index();
        let old_entry: HashMap<&str, (u64, u64)> = old
            .entries
            .iter()
            .map(|e| (e.key.as_str(), (e.seq, e.last_hit)))
            .collect();
        let mut next_seq = old.next_seq;
        let mut live: Vec<(Digest, IndexEntry)> = self
            .scan_objects()
            .into_iter()
            .map(|(key, bytes)| {
                let hex = key.to_hex();
                let (seq, last_hit) = old_entry.get(hex.as_str()).copied().unwrap_or_else(|| {
                    let s = next_seq;
                    next_seq += 1;
                    (s, 0)
                });
                (
                    key,
                    IndexEntry {
                        key: hex,
                        bytes,
                        seq,
                        last_hit,
                    },
                )
            })
            .collect();
        {
            let mut entries: Vec<IndexEntry> = live.iter().map(|(_, e)| e.clone()).collect();
            self.fold_pending_hits(&mut entries, &mut next_seq);
            for ((_, live), folded) in live.iter_mut().zip(entries) {
                *live = folded;
            }
        }
        live.sort_by_key(|(_, e)| e.recency());

        let mut total: u64 = live.iter().map(|(_, e)| e.bytes).sum();
        let mut kept = Vec::new();
        for (key, entry) in live {
            if total <= max_bytes {
                kept.push(entry);
                continue;
            }
            if self.is_pinned(&key) {
                report.pinned_kept += 1;
                kept.push(entry);
                continue;
            }
            let _ = fs::remove_file(self.object_path(&key));
            report.evicted += 1;
            total -= entry.bytes;
        }
        report.bytes_after = total;
        kept.sort_by_key(|e| e.seq);
        self.store_index(&IndexFile {
            sim_version: self.sim_version.clone(),
            next_seq,
            entries: kept,
        })?;
        Ok(report)
    }
}

/// Keeps one key safe from `gc` while alive. Returned by
/// [`ResultStore::pin`]; also taken internally for the span of every
/// `get`.
pub struct PinGuard<'a> {
    store: &'a ResultStore,
    key: Digest,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        let mut pins = self.store.pins.lock().unwrap();
        if let Some(count) = pins.get_mut(&self.key) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&self.key);
            }
        }
    }
}

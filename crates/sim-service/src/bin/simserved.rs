//! `simserved` — the simulation service CLI.
//!
//! ```text
//! simserved serve --sock PATH [--store DIR] [--jobs N]
//! simserved fsck  --store DIR
//! simserved gc    --store DIR --max-bytes N
//! simserved sweep --store DIR [--scale S] [--jobs N] [--daemon SOCK]
//! ```
//!
//! `serve` runs the daemon until a client sends `shutdown`. `fsck`
//! verifies every object and rebuilds the index; `gc` evicts
//! oldest-first down to a byte budget. `sweep` simulates a fixed,
//! deterministic cell grid through the store (or a daemon) and prints
//! one canonical line per cell — CI runs it twice against a fresh store
//! and asserts the warm pass is byte-identical and ≥5× faster (see
//! `scripts/ci.sh`, step `store`).

use std::process::ExitCode;
use std::sync::Arc;

use arc_core::passes::PassPipeline;
use arc_core::technique::Technique;
use arc_core::BalanceThreshold;
use gpu_sim::telemetry::TelemetryConfig;
use gpu_sim::GpuConfig;
use sim_service::{
    daemon, exec, trace_digest, DaemonClient, EngineOpts, ResultStore, SimRequest, WireCell,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: simserved <serve|fsck|gc|sweep> [options]\n\
         \n\
         serve --sock PATH [--store DIR] [--jobs N]   run the daemon\n\
         fsck  --store DIR                            verify objects, rebuild index\n\
         gc    --store DIR --max-bytes N              evict oldest entries to fit N bytes\n\
         sweep --store DIR [--scale S] [--jobs N]     run the fixed CI cell grid through the store\n\
               [--daemon SOCK]                        ...or through a running daemon"
    );
    ExitCode::FAILURE
}

/// Pop `--flag VALUE` from `args`; returns the value.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("simserved: {flag} requires a value");
        std::process::exit(2);
    }
    args.remove(pos);
    Some(args.remove(pos))
}

fn open_store(dir: &str) -> ResultStore {
    match ResultStore::open(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simserved: cannot open store at {dir}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "serve" => {
            let Some(sock) = take_opt(&mut args, "--sock") else {
                eprintln!("simserved serve: --sock PATH is required");
                return ExitCode::FAILURE;
            };
            let store = take_opt(&mut args, "--store").map(|d| Arc::new(open_store(&d)));
            let jobs = take_opt(&mut args, "--jobs")
                .map(|j| j.parse::<usize>().unwrap_or(0).max(1))
                .unwrap_or_else(gpu_sim::default_jobs);
            if !args.is_empty() {
                return usage();
            }
            match daemon::spawn(&sock, store, jobs) {
                Ok(mut handle) => {
                    eprintln!("simserved: listening on {sock} ({jobs} jobs)");
                    handle.wait();
                    eprintln!(
                        "simserved: stopped ({} requests coalesced)",
                        handle.coalesced()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("simserved: cannot bind {sock}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "fsck" => {
            let Some(dir) = take_opt(&mut args, "--store") else {
                eprintln!("simserved fsck: --store DIR is required");
                return ExitCode::FAILURE;
            };
            if !args.is_empty() {
                return usage();
            }
            let store = open_store(&dir);
            match store.fsck() {
                Ok(r) => {
                    println!(
                        "fsck: {} valid, {} removed, {} temp files swept",
                        r.valid, r.removed, r.temps_swept
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("simserved: fsck failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "gc" => {
            let Some(dir) = take_opt(&mut args, "--store") else {
                eprintln!("simserved gc: --store DIR is required");
                return ExitCode::FAILURE;
            };
            let Some(max) = take_opt(&mut args, "--max-bytes") else {
                eprintln!("simserved gc: --max-bytes N is required");
                return ExitCode::FAILURE;
            };
            let Ok(max_bytes) = max.parse::<u64>() else {
                eprintln!("simserved gc: --max-bytes wants an integer, got `{max}`");
                return ExitCode::FAILURE;
            };
            if !args.is_empty() {
                return usage();
            }
            let store = open_store(&dir);
            match store.gc(max_bytes) {
                Ok(r) => {
                    println!(
                        "gc: {} evicted, {} pinned kept, {} bytes remain",
                        r.evicted, r.pinned_kept, r.bytes_after
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("simserved: gc failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "sweep" => {
            let Some(dir) = take_opt(&mut args, "--store") else {
                eprintln!("simserved sweep: --store DIR is required");
                return ExitCode::FAILURE;
            };
            let scale = take_opt(&mut args, "--scale")
                .map(|s| s.parse::<f64>().unwrap_or(0.2))
                .unwrap_or(0.2);
            let jobs = take_opt(&mut args, "--jobs")
                .map(|j| j.parse::<usize>().unwrap_or(0).max(1))
                .unwrap_or_else(gpu_sim::default_jobs);
            let daemon_sock = take_opt(&mut args, "--daemon");
            if !args.is_empty() {
                return usage();
            }
            sweep(&dir, scale, jobs, daemon_sock.as_deref())
        }
        _ => usage(),
    }
}

/// FNV-1a fingerprint, same as the determinism probe: keeps the chrome
/// trace's full byte stream in the comparison without megabytes of
/// output.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The fixed CI grid: small but exercises every atomic path, telemetry,
/// and the chrome export. Deterministic by construction — byte-equal
/// stdout on every run is the point.
fn sweep(dir: &str, scale: f64, jobs: usize, daemon_sock: Option<&str>) -> ExitCode {
    let thr = BalanceThreshold::new(16).expect("0..=32");
    let techniques = [
        Technique::Baseline,
        Technique::ArcHw,
        Technique::SwB(thr),
        Technique::Phi,
    ];
    let cfg = GpuConfig::tiny();
    let telemetry = TelemetryConfig::every(32);

    // Trace construction is deliberately outside the timed region: the
    // cold/warm comparison in CI measures simulation avoided, not trace
    // synthesis.
    let mut cells = Vec::new();
    for id in ["3D-LE", "PS-SS"] {
        let traces = arc_workloads::spec(id)
            .expect("known workload")
            .scaled(scale)
            .build();
        let gradcomp = Arc::new(traces.gradcomp().clone());
        let digest = trace_digest(&gradcomp);
        for t in techniques {
            cells.push((id, t, Arc::clone(&gradcomp), digest));
        }
    }

    let store = open_store(dir);
    let start = std::time::Instant::now();
    let rows: Vec<Result<String, String>> = if let Some(sock) = daemon_sock {
        let client = match DaemonClient::connect(sock) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("simserved sweep: cannot connect to {sock}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let wire: Vec<WireCell> = cells
            .iter()
            .map(|(_, t, trace, _)| WireCell {
                config: cfg.clone(),
                technique: *t,
                trace: (**trace).clone(),
                rewrite: true,
                telemetry: Some(telemetry.clone()),
                want_chrome: true,
                // The sweep is a byte-compared CI fixture: always
                // pass-free so its output never depends on ARC_PASSES,
                // and stage-less so its keys predate frame naming.
                passes: PassPipeline::empty(),
                stage: None,
            })
            .collect();
        match client.batch(wire) {
            Ok(results) => cells
                .iter()
                .zip(results)
                .map(|((id, t, _, _), r)| Ok(render_row(id, *t, &r)))
                .collect(),
            Err(e) => {
                eprintln!("simserved sweep: batch failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        gpu_sim::par_map(jobs, cells, |(id, technique, trace, digest)| {
            let req = SimRequest {
                config: cfg.clone(),
                technique,
                trace,
                rewrite: true,
                telemetry: Some(telemetry.clone()),
                want_chrome: true,
                passes: PassPipeline::empty(),
                stage: None,
            };
            exec::run_cell_with_digest(Some(&store), &req, &EngineOpts::default(), &digest)
                .map(|r| render_row(id, technique, &r))
                .map_err(|e| format!("{id}/{}: {e}", technique.label()))
        })
    };
    let elapsed = start.elapsed().as_secs_f64();

    let mut failed = false;
    for row in rows {
        match row {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("simserved sweep: {e}");
                failed = true;
            }
        }
    }
    let stats = store.stats();
    eprintln!(
        "sweep-wall-seconds {elapsed:.3} hits {} misses {}",
        stats.hits, stats.misses
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn render_row(id: &str, technique: Technique, r: &sim_service::SimResult) -> String {
    let tel = r.telemetry.as_ref().expect("sweep requests telemetry");
    let s = tel.summary();
    let chrome = r.chrome.as_deref().expect("sweep requests chrome");
    format!(
        "{id} {:<8} cycles={} instr={} lsu_full={} icnt={} rop_peak={}@{} chrome_fnv={:016x}",
        technique.label(),
        r.report.cycles,
        r.report.counters.instructions_issued,
        r.report.stalls.lsu_full,
        r.report.counters.icnt_flits,
        s.rop_queue_peak,
        s.rop_queue_peak_cycle,
        fnv1a(chrome.as_bytes())
    )
}

//! Ablation benches for the design choices called out in DESIGN.md §6:
//!
//! * `scheduler`: the greedy ARC-HW scheduler (LDST-stall driven)
//!   against always-reduce and ROP-preferring policies, emulated via
//!   the stall-threshold knob;
//! * `rop_ratio`: the ROP:SM ratio sweep that explains why the 4090
//!   benefits more than the 3060;
//! * `reduction`: serialized vs butterfly rewrite under identical
//!   thresholds;
//! * `renderer`: the raw CPU cost of the differentiable forward and
//!   backward passes that generate the traces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arc_workloads::{spec, Technique, TechniquePath};
use diffrender::gaussian::{backward, render, GaussianModel, NoopRecorder};
use diffrender::loss::l2_loss;
use diffrender::math::Vec3;
use gpu_sim::{GpuConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scheduler_policy(c: &mut Criterion) {
    let traces = spec("3D-TK").expect("Table-2 id").scaled(0.25).build();
    let trace = Technique::ArcHw.prepare(traces.gradcomp());

    let mut group = c.benchmark_group("ablation_scheduler");
    group.sample_size(10);
    for (name, threshold) in [
        ("always-reduce", 0.0f64),
        ("greedy-0.25", 0.25),
        ("rop-preferring", 0.98),
    ] {
        let mut cfg = GpuConfig::rtx4090_sim();
        cfg.lsu_stall_threshold = threshold;
        let sim = Simulator::new(cfg, gpu_sim::AtomicPath::ArcHw).expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| black_box(sim.run(t).expect("kernel drains")))
        });
    }
    group.finish();
}

fn bench_rop_ratio(c: &mut Criterion) {
    let traces = spec("3D-TK").expect("Table-2 id").scaled(0.25).build();
    let mut group = c.benchmark_group("ablation_rop_ratio");
    group.sample_size(10);
    for partitions in [6u32, 11, 22] {
        let mut cfg = GpuConfig::rtx4090_sim();
        cfg.num_mem_partitions = partitions;
        let sim = Simulator::new(cfg, gpu_sim::AtomicPath::Baseline).expect("valid config");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}rops", partitions * 4)),
            traces.gradcomp(),
            |b, t| b.iter(|| black_box(sim.run(t).expect("kernel drains"))),
        );
    }
    group.finish();
}

fn bench_reduction_kind(c: &mut Criterion) {
    let traces = spec("3D-TK").expect("Table-2 id").scaled(0.25).build();
    let cfg = GpuConfig::rtx4090_sim();
    let thr = arc_core::BalanceThreshold::new(8).expect("0..=32");

    let mut group = c.benchmark_group("ablation_reduction");
    group.sample_size(10);
    for technique in [Technique::SwS(thr), Technique::SwB(thr)] {
        let trace = technique.prepare(traces.gradcomp());
        let sim = Simulator::new(cfg.clone(), technique.path()).expect("valid config");
        group.bench_with_input(
            BenchmarkId::from_parameter(technique.label()),
            &trace,
            |b, t| b.iter(|| black_box(sim.run(t).expect("kernel drains"))),
        );
    }
    group.finish();
}

fn bench_renderer(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let model = GaussianModel::random(400, 96, 96, &mut rng);
    let target = render(
        &GaussianModel::random(400, 96, 96, &mut rng),
        96,
        96,
        Vec3::splat(0.0),
    )
    .image;

    let mut group = c.benchmark_group("ablation_renderer");
    group.sample_size(10);
    group.bench_function("forward", |b| {
        b.iter(|| black_box(render(&model, 96, 96, Vec3::splat(0.0))))
    });
    let out = render(&model, 96, 96, Vec3::splat(0.0));
    let (_, pixel_grads) = l2_loss(&out.image, &target);
    group.bench_function("backward", |b| {
        b.iter(|| black_box(backward(&model, &out, &pixel_grads, &mut NoopRecorder)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scheduler_policy,
    bench_rop_ratio,
    bench_reduction_kind,
    bench_renderer
);
criterion_main!(benches);

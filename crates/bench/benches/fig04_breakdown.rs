//! Fig. 4 companion bench: simulation of the three training-stage
//! kernels of a 3DGS workload under the baseline. The relative wall
//! times mirror the simulated-cycle breakdown the figure reports
//! (gradient computation dominates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arc_workloads::{spec, Technique, TechniquePath};
use gpu_sim::{GpuConfig, Simulator};

fn bench_breakdown(c: &mut Criterion) {
    let traces = spec("3D-LE").expect("Table-2 id").scaled(0.3).build();
    let cfg = GpuConfig::rtx4090_sim();
    let sim = Simulator::new(cfg, Technique::Baseline.path()).expect("valid config");

    let mut group = c.benchmark_group("fig04_breakdown");
    group.sample_size(10);
    for (name, trace) in [
        ("forward", traces.forward()),
        ("loss", traces.loss()),
        ("gradcomp", traces.gradcomp()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), trace, |b, t| {
            b.iter(|| black_box(sim.run(t).expect("kernel drains")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);

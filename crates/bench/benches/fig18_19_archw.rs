//! Figs. 18/19 companion bench: the gradient kernel of a large 3DGS
//! scene under each hardware atomic path. Criterion's comparison mirrors
//! the figures' speedup bars (ARC-HW fastest, then LAB/LAB-ideal, PHI
//! near baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arc_workloads::{spec, Technique, TechniquePath};
use gpu_sim::{GpuConfig, Simulator};

fn bench_hw_paths(c: &mut Criterion) {
    let traces = spec("3D-DR").expect("Table-2 id").scaled(0.25).build();
    let cfg = GpuConfig::rtx4090_sim();

    let mut group = c.benchmark_group("fig18_19_archw");
    group.sample_size(10);
    for technique in [
        Technique::Baseline,
        Technique::Phi,
        Technique::Lab,
        Technique::LabIdeal,
        Technique::ArcHw,
    ] {
        let trace = technique.prepare(traces.gradcomp());
        let sim = Simulator::new(cfg.clone(), technique.path()).expect("valid config");
        group.bench_with_input(
            BenchmarkId::from_parameter(technique.label()),
            &trace,
            |b, t| b.iter(|| black_box(sim.run(t).expect("kernel drains"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hw_paths);
criterion_main!(benches);

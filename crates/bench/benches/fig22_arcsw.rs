//! Fig. 22/26 companion bench: ARC-SW variants and CCCL on the gradient
//! kernel, including the rewrite pass itself (which on a real system is
//! compile-time work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arc_core::{rewrite_kernel_sw, BalanceThreshold, SwConfig};
use arc_workloads::{spec, Technique, TechniquePath};
use gpu_sim::{GpuConfig, Simulator};

fn thr(v: u8) -> BalanceThreshold {
    BalanceThreshold::new(v).expect("0..=32")
}

fn bench_sw_sim(c: &mut Criterion) {
    let traces = spec("3D-LE").expect("Table-2 id").scaled(0.3).build();
    let cfg = GpuConfig::rtx4090_sim();

    let mut group = c.benchmark_group("fig22_arcsw_sim");
    group.sample_size(10);
    for technique in [
        Technique::Baseline,
        Technique::SwS(thr(16)),
        Technique::SwB(thr(16)),
        Technique::SwB(thr(0)),
        Technique::Cccl,
    ] {
        let trace = technique.prepare(traces.gradcomp());
        let sim = Simulator::new(cfg.clone(), technique.path()).expect("valid config");
        group.bench_with_input(
            BenchmarkId::from_parameter(technique.label()),
            &trace,
            |b, t| b.iter(|| black_box(sim.run(t).expect("kernel drains"))),
        );
    }
    group.finish();
}

fn bench_rewrite_pass(c: &mut Criterion) {
    let traces = spec("3D-LE").expect("Table-2 id").scaled(0.3).build();
    let mut group = c.benchmark_group("fig22_rewrite_pass");
    group.sample_size(10);
    for config in [SwConfig::serialized(thr(16)), SwConfig::butterfly(thr(16))] {
        group.bench_with_input(
            BenchmarkId::from_parameter(config.label()),
            traces.gradcomp(),
            |b, t| b.iter(|| black_box(rewrite_kernel_sw(t, &config))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sw_sim, bench_rewrite_pass);
criterion_main!(benches);

//! End-to-end coverage for the tile-binned 3DGS frame (`3D-TB`) through
//! the bench harness: the six-stage pipeline must simulate under every
//! registered technique on both the engine path and the store-backed
//! service path (exercising the stage-tagged store keys), and the
//! rewritable radix-histogram stage must be where the techniques bite.
//!
//! Image correctness (tile-binned rasterize == functional rasterizer)
//! and the sorted-key / bin-edge structural invariants are pinned in
//! `arc-diffrender`'s primitives tests; per-stage oracle coverage lives
//! in the conformance crate. This test owns the harness plumbing.

use arc_bench::Harness;
use arc_core::BalanceThreshold;
use arc_workloads::{StageRole, Technique};
use gpu_sim::GpuConfig;

const SCALE: f64 = 0.15;

#[test]
fn tile_binned_frame_runs_under_every_technique() {
    let mut h = Harness::new(SCALE);
    let cfg = GpuConfig::tiny();
    let thr = BalanceThreshold::new(8).expect("0..=32");

    let stages = h.traces("3D-TB").stages().len();
    assert!(stages > 3, "3D-TB must be a multi-kernel frame");

    let mut baseline_total = 0u64;
    for technique in Technique::all_with(&[thr]) {
        let report = h.iteration(&cfg, technique, "3D-TB");
        assert_eq!(
            report.kernels.len(),
            stages,
            "{} must simulate one kernel per stage",
            technique.label()
        );
        assert!(
            report.kernels.iter().all(|k| k.cycles > 0),
            "{} produced an empty stage report",
            technique.label()
        );
        if technique == Technique::Baseline {
            baseline_total = report.total_cycles();
        }
    }
    assert!(baseline_total > 0, "baseline frame must cost cycles");

    // The frame names exactly one rewritable stage, and it is the radix
    // sort's histogram kernel — the contention point ARC targets.
    let frame = h.traces("3D-TB");
    let rewritable: Vec<&str> = frame
        .stages()
        .iter()
        .filter(|s| s.role() == StageRole::Rewritable)
        .map(|s| s.name())
        .collect();
    assert_eq!(rewritable, ["radix-histogram"]);
}

#[test]
fn tile_binned_frame_round_trips_the_stage_keyed_store() {
    let dir = std::env::temp_dir().join(format!("arc-frame-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.to_str().expect("utf-8 temp dir").to_string();
    let cfg = GpuConfig::tiny();

    // Cold pass: every stage of every technique simulates and lands in
    // the store under its stage-tagged key.
    let mut cold = Harness::new(SCALE);
    cold.set_store_dir(&store).expect("temp store opens");
    let base = cold.iteration(&cfg, Technique::Baseline, "3D-TB");
    let hw = cold.iteration(&cfg, Technique::ArcHw, "3D-TB");
    let cold_stats = cold.store_stats().expect("store configured");
    assert_eq!(cold_stats.hits, 0, "cold pass cannot hit");
    assert!(cold_stats.misses > 0);

    // Warm pass through a fresh harness: only the on-disk store carries
    // state, so every stage must be served from its key.
    let mut warm = Harness::new(SCALE);
    warm.set_store_dir(&store).expect("temp store reopens");
    let base_warm = warm.iteration(&cfg, Technique::Baseline, "3D-TB");
    let hw_warm = warm.iteration(&cfg, Technique::ArcHw, "3D-TB");
    let warm_stats = warm.store_stats().expect("store configured");
    assert_eq!(warm_stats.misses, 0, "warm pass must be all hits");
    assert_eq!(warm_stats.hits, cold_stats.misses);

    let cycles =
        |r: &gpu_sim::IterationReport| -> Vec<u64> { r.kernels.iter().map(|k| k.cycles).collect() };
    assert_eq!(cycles(&base), cycles(&base_warm), "store changed results");
    assert_eq!(cycles(&hw), cycles(&hw_warm), "store changed results");

    let _ = std::fs::remove_dir_all(&dir);
}

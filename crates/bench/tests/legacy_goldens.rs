//! Bit-identity goldens for the three-stage legacy workloads.
//!
//! The checked-in golden under `tests/golden/legacy_frames.txt` was
//! blessed against the pre-frame-pipeline code (fixed
//! `forward`/`loss`/`gradcomp` fields); this test replays the same grid
//! through the current APIs and compares byte-for-byte, pinning that
//! the `IterationTraces` → `FrameTrace` rebase changed no report bytes,
//! no telemetry/chrome bytes, and no sim-service store keys for legacy
//! workloads. Rows use the determinism probe's canonical-line style so
//! a mismatch diff reads the same as the CI determinism matrix.
//!
//! Re-bless (only for an intentional simulator change, never for a
//! refactor) with `UPDATE_GOLDENS=1 cargo test -p arc-bench --test
//! legacy_goldens`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use arc_core::passes::PassPipeline;
use arc_core::technique::Technique;
use arc_core::BalanceThreshold;
use arc_workloads::StageRole;
use gpu_sim::{GpuConfig, TelemetryConfig};
use sim_service::{request_key, run_cell, trace_digest, EngineOpts, SimRequest};

const SCALE: f64 = 0.2;
const INTERVAL: u64 = 32;

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/legacy_frames.txt")
}

/// FNV-1a, the same fingerprint the determinism probe uses for chrome
/// traces, applied here to every serialized artifact so the golden file
/// stays small while still covering full bytes.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One canonical line per (workload, stage, technique) cell covering
/// the report bytes, telemetry bytes, chrome bytes, and the store key.
fn render_rows() -> String {
    let cfg = GpuConfig::tiny();
    let tcfg = TelemetryConfig::every(INTERVAL);
    let thr = BalanceThreshold::new(16).expect("0..=32");
    let techniques = [Technique::Baseline, Technique::ArcHw, Technique::SwB(thr)];

    let mut out = String::new();
    for id in ["3D-LE", "PS-SS"] {
        let frame = arc_workloads::spec(id)
            .expect("known workload")
            .scaled(SCALE)
            .build();
        assert!(frame.is_legacy(), "{id} must stay a legacy 3-stage frame");
        for kernel in frame.stages() {
            let stage = kernel.name();
            let rewrite = kernel.role() == StageRole::Rewritable;
            let trace = Arc::new(kernel.trace().clone());
            for technique in techniques {
                // `stage` is set on the request exactly as the harness
                // now sends it; for legacy stage names the request key
                // must still match the pre-refactor golden.
                let req = SimRequest {
                    config: cfg.clone(),
                    technique,
                    trace: Arc::clone(&trace),
                    rewrite,
                    telemetry: Some(tcfg.clone()),
                    want_chrome: true,
                    passes: PassPipeline::empty(),
                    stage: Some(stage.to_string()),
                };
                let digest = trace_digest(&trace);
                let key = request_key(&req, &digest);
                let result = run_cell(None, &req, &EngineOpts::default()).expect("cell simulates");
                let report_json = serde_json::to_string(&result.report).expect("report serializes");
                let tel = result.telemetry.expect("telemetry requested");
                let tel_json = serde_json::to_string(&tel).expect("telemetry serializes");
                let chrome = result.chrome.expect("chrome requested");
                out.push_str(&format!(
                    "{id} {stage:<8} {:<8} cycles={} report_fnv={:016x} telemetry_fnv={:016x} chrome_fnv={:016x} key={}\n",
                    technique.label(),
                    result.report.cycles,
                    fnv1a(report_json.as_bytes()),
                    fnv1a(tel_json.as_bytes()),
                    fnv1a(chrome.as_bytes()),
                    key.to_hex(),
                ));
            }
        }
    }
    out
}

#[test]
fn legacy_workloads_are_bit_identical_to_golden() {
    let got = render_rows();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "legacy three-stage outputs diverged from the blessed golden \
         (report/telemetry/chrome bytes or store keys changed)"
    );
}

//! The figure/table regeneration harness: one function per table and
//! figure of the ARC paper's evaluation, all driven by a shared
//! trace-and-report cache ([`Harness`]).
//!
//! The `figures` binary prints these as tables; the Criterion benches
//! re-run the hot ones at reduced scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod report;

pub use harness::Harness;
pub use report::{geo_mean, Series};

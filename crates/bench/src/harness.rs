//! Shared trace-building and simulation cache for the figure harness.

use std::collections::HashMap;

use arc_workloads::{all_specs, IterationTraces, Technique};
use gpu_sim::{GpuConfig, IterationReport, KernelReport, Simulator};

/// Builds workload traces on demand (each is an actual render + backward
/// pass) and caches simulation reports so figures sharing data points —
/// e.g. the baseline runs used by every speedup — are computed once.
pub struct Harness {
    scale: f64,
    traces: HashMap<String, IterationTraces>,
    gradcomp_cache: HashMap<(String, String, String), KernelReport>,
    iteration_cache: HashMap<(String, String, String), IterationReport>,
}

impl Harness {
    /// Creates a harness. `scale` scales workload canvases/primitive
    /// counts (1.0 = the full evaluation size; benches use less).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        Harness {
            scale,
            traces: HashMap::new(),
            gradcomp_cache: HashMap::new(),
            iteration_cache: HashMap::new(),
        }
    }

    /// The workload scale in use.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// All workload ids, in Table-2 order.
    pub fn workload_ids(&self) -> Vec<String> {
        all_specs().into_iter().map(|s| s.id).collect()
    }

    /// The 3DGS workload ids only.
    pub fn gaussian_ids(&self) -> Vec<String> {
        all_specs()
            .into_iter()
            .filter(|s| s.id.starts_with("3D"))
            .map(|s| s.id)
            .collect()
    }

    /// The (possibly scaled) traces for a workload, building them on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a Table-2 workload id.
    pub fn traces(&mut self, id: &str) -> &IterationTraces {
        let scale = self.scale;
        self.traces.entry(id.to_string()).or_insert_with(|| {
            let spec = arc_workloads::spec(id)
                .unwrap_or_else(|| panic!("unknown workload id `{id}`"));
            let spec = if (scale - 1.0).abs() < 1e-9 {
                spec
            } else {
                spec.scaled(scale)
            };
            spec.build()
        })
    }

    /// Simulates (with caching) the gradient-computation kernel of
    /// `id` under `technique` on `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on unknown workload or simulator failure (the workloads
    /// and configs shipped here always drain).
    pub fn gradcomp(&mut self, cfg: &GpuConfig, technique: Technique, id: &str) -> KernelReport {
        let key = (cfg.name.clone(), technique.label(), id.to_string());
        if let Some(hit) = self.gradcomp_cache.get(&key) {
            return hit.clone();
        }
        let trace = self.traces(id).gradcomp.clone();
        let sim = Simulator::new(cfg.clone(), technique.path()).expect("valid config");
        let report = sim
            .run(&technique.prepare(&trace))
            .expect("kernel must drain");
        self.gradcomp_cache.insert(key, report.clone());
        report
    }

    /// Simulates (with caching) the full training iteration.
    ///
    /// # Panics
    ///
    /// Panics on unknown workload or simulator failure.
    pub fn iteration(&mut self, cfg: &GpuConfig, technique: Technique, id: &str) -> IterationReport {
        let key = (cfg.name.clone(), technique.label(), id.to_string());
        if let Some(hit) = self.iteration_cache.get(&key) {
            return hit.clone();
        }
        let traces = self.traces(id).clone();
        let report =
            arc_workloads::run_iteration(cfg, technique, &traces).expect("iteration must drain");
        self.iteration_cache.insert(key, report.clone());
        report
    }

    /// Gradient-computation speedup of `technique` over the baseline.
    pub fn gradcomp_speedup(&mut self, cfg: &GpuConfig, technique: Technique, id: &str) -> f64 {
        let base = self.gradcomp(cfg, Technique::Baseline, id).cycles;
        let var = self.gradcomp(cfg, technique, id).cycles;
        base as f64 / var as f64
    }

    /// End-to-end (forward + loss + gradcomp) speedup over baseline.
    pub fn e2e_speedup(&mut self, cfg: &GpuConfig, technique: Technique, id: &str) -> f64 {
        let base = self.iteration(cfg, Technique::Baseline, id).total_cycles();
        let var = self.iteration(cfg, technique, id).total_cycles();
        base as f64 / var as f64
    }

    /// The best-performing ARC-SW configuration for a workload on a
    /// GPU, sweeping both algorithms over the paper's threshold grid
    /// (§7.2: "SW-B and SW-S with the best-performing balancing
    /// threshold").
    pub fn best_sw(&mut self, cfg: &GpuConfig, id: &str) -> (Technique, f64) {
        let mut best: Option<(Technique, f64)> = None;
        for thr in arc_core::BalanceThreshold::paper_sweep() {
            for technique in [Technique::SwS(thr), Technique::SwB(thr)] {
                let s = self.gradcomp_speedup(cfg, technique, id);
                if best.as_ref().is_none_or(|(_, b)| s > *b) {
                    best = Some((technique, s));
                }
            }
        }
        best.expect("sweep is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_caches_reports() {
        let mut h = Harness::new(0.2);
        let cfg = GpuConfig::tiny();
        let a = h.gradcomp(&cfg, Technique::Baseline, "PS-SS");
        let b = h.gradcomp(&cfg, Technique::Baseline, "PS-SS");
        assert_eq!(a, b);
        assert_eq!(h.workload_ids().len(), 12);
        assert_eq!(h.gaussian_ids().len(), 6);
    }

    #[test]
    fn speedup_of_baseline_is_one() {
        let mut h = Harness::new(0.2);
        let cfg = GpuConfig::tiny();
        let s = h.gradcomp_speedup(&cfg, Technique::Baseline, "PS-SS");
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_id_panics() {
        let mut h = Harness::new(0.2);
        let _ = h.traces("3D-XX");
    }
}

//! Shared trace-building and simulation cache for the figure harness.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use arc_core::passes::{PassCache, PassPipeline};
use arc_workloads::{all_specs, FrameTrace, StageRole, Technique, TechniquePath};
use gpu_sim::{
    par_map, AtomicPath, GpuConfig, IterationReport, KernelReport, KernelTelemetry, Simulator,
    TelemetryConfig, TelemetrySummary,
};
use sim_service::{
    run_cell_with_digest, trace_digest, DaemonClient, Digest, EngineOpts, ResultStore, SimRequest,
    StoreStats, WireCell,
};
use warp_trace::KernelTrace;

/// Builds workload traces on demand (each is an actual render + backward
/// pass) and caches simulation reports so figures sharing data points —
/// e.g. the baseline runs used by every speedup — are computed once.
///
/// Traces are held behind [`Arc`] and simulators are cached per
/// (config, path), so neither is cloned or rebuilt per simulation. The
/// batch APIs ([`Harness::gradcomp_batch`] / [`Harness::iteration_batch`])
/// fan missing cells across a job pool (`jobs`, defaulting to the
/// `ARC_JOBS` environment variable or the machine's core count); the
/// per-cell accessors then serve warm cache hits, so figure code keeps
/// its simple serial loops and deterministic output order.
///
/// Beyond the in-memory caches, simulations can be routed through the
/// persistent result store or a `simserved` daemon: set `ARC_STORE` to
/// a directory (or call [`Harness::set_store`] /
/// [`Harness::set_daemon`]) and every kernel run first consults the
/// store, simulating and populating it only on a miss. Results are
/// byte-identical with and without a store — the conformance
/// `store-equivalence` invariant pins this — so the default stays off
/// and nothing changes unless explicitly opted in.
///
/// Independently of the backend, a trace-IR optimizer pass pipeline
/// (`arc_core::passes`) can run on every kernel before the technique
/// rewrite: set `ARC_PASSES` (or call [`Harness::set_passes`]). The
/// default (empty) pipeline is byte-identical to a build without the
/// pipeline; a non-empty pipeline is part of the result-store key, so
/// optimized and unoptimized results never alias.
pub struct Harness {
    scale: f64,
    jobs: usize,
    telemetry: TelemetryConfig,
    config_names: Interner,
    workload_names: Interner,
    traces: HashMap<String, Arc<FrameTrace>>,
    sims: HashMap<(ConfigId, AtomicPath), Arc<Simulator>>,
    gradcomp_cache: HashMap<CacheKey, KernelReport>,
    iteration_cache: HashMap<CacheKey, IterationReport>,
    telemetry_cache: HashMap<CacheKey, KernelTelemetry>,
    store: Option<Arc<ResultStore>>,
    daemon: Option<Arc<DaemonClient>>,
    service_traces: HashMap<(WorkloadId, usize), (Arc<KernelTrace>, Digest)>,
    passes: PassPipeline,
    /// Memoized optimized traces, keyed `workload-id/kernel`: across
    /// the full (config × technique) grid each kernel trace pays for
    /// the fused pass traversal once; every other cell gets the cached
    /// `Arc`. The stored pipeline acts as the cache generation, so
    /// [`Harness::set_passes`] invalidation is automatic.
    pass_cache: PassCache,
}

/// A simulation cell: one (config, technique, workload) point.
pub type Cell = (GpuConfig, Technique, String);

/// Interned GPU-config name (see [`Interner`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
struct ConfigId(u32);

/// A registered technique, keyed as the typed value itself — two
/// distinct techniques can never collide the way formatted labels
/// could.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
struct TechniqueId(Technique);

/// Interned workload id (see [`Interner`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
struct WorkloadId(u32);

/// Typed cache key: no `String` triple allocation per lookup on the
/// hot batch path, and no label-collision foot-gun.
type CacheKey = (ConfigId, TechniqueId, WorkloadId);

/// Bidirectional name ↔ small-id map for config/workload names. Keys
/// are interned once; every subsequent lookup is a `Copy` id.
#[derive(Default)]
struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }
}

/// A cache miss prepared for the job pool: its key plus the shared
/// simulator and frame it runs on, and the workload id (the pass-cache
/// key prefix).
type PreparedCell = (CacheKey, Arc<Simulator>, Technique, Arc<FrameTrace>, String);

/// One kernel-level request prepared for the service backend (store or
/// daemon), with the trace digest already computed. `stage` is the
/// frame-stage name; legacy names key identically to the stage-less
/// era (see `sim_service::store_key_staged`).
struct ServiceCell {
    cfg: GpuConfig,
    technique: Technique,
    trace: Arc<KernelTrace>,
    rewrite: bool,
    digest: Digest,
    telemetry: Option<TelemetryConfig>,
    stage: String,
}

/// The canonical non-rewriting technique for a hardware path: what the
/// fixed stages of a frame run as (they are never trace-rewritten — see
/// `run_frame_staged`), so every technique sharing a path also shares
/// their store entries.
fn path_technique(path: AtomicPath) -> Technique {
    match path {
        AtomicPath::Baseline => Technique::Baseline,
        AtomicPath::ArcHw => Technique::ArcHw,
        AtomicPath::Lab => Technique::Lab,
        AtomicPath::LabIdeal => Technique::LabIdeal,
        AtomicPath::Phi => Technique::Phi,
    }
}

/// Memoized pass application (see [`Harness::optimized`]); free
/// function so the batch closures can call it while borrowing only the
/// cache and pipeline fields. The cold path fans the fused traversal's
/// per-warp work over [`par_map`] when `jobs > 1`.
fn optimize_cached(
    cache: &PassCache,
    passes: &PassPipeline,
    id: &str,
    kernel: &str,
    trace: &KernelTrace,
    jobs: usize,
) -> Arc<KernelTrace> {
    let key = format!("{id}/{kernel}");
    cache.apply_with(passes, &key, trace, |p, t| {
        gpu_sim::apply_passes(p, t, jobs).0.into_owned()
    })
}

fn build_traces(scale: f64, id: &str) -> FrameTrace {
    let spec = arc_workloads::spec(id).unwrap_or_else(|| panic!("unknown workload id `{id}`"));
    let spec = if (scale - 1.0).abs() < 1e-9 {
        spec
    } else {
        spec.scaled(scale)
    };
    spec.build()
}

impl Harness {
    /// Creates a harness. `scale` scales workload canvases/primitive
    /// counts (1.0 = the full evaluation size; benches use less).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        // Opt into the persistent result store via the environment so
        // every binary built on the harness gets it without plumbing;
        // unset (the default) leaves behaviour byte-identical to a
        // store-less build.
        let store = match std::env::var("ARC_STORE") {
            Ok(dir) if !dir.is_empty() => {
                let store = ResultStore::open(&dir)
                    .unwrap_or_else(|e| panic!("ARC_STORE={dir}: cannot open result store: {e}"));
                Some(Arc::new(store))
            }
            _ => None,
        };
        // Same story for the optimizer pass pipeline: `ARC_PASSES`
        // opts in, unset keeps the trace untouched.
        let passes = PassPipeline::from_env().unwrap_or_else(|e| panic!("ARC_PASSES: {e}"));
        Harness {
            scale,
            jobs: gpu_sim::default_jobs(),
            telemetry: TelemetryConfig::default(),
            config_names: Interner::default(),
            workload_names: Interner::default(),
            traces: HashMap::new(),
            sims: HashMap::new(),
            gradcomp_cache: HashMap::new(),
            iteration_cache: HashMap::new(),
            telemetry_cache: HashMap::new(),
            store,
            daemon: None,
            service_traces: HashMap::new(),
            passes,
            pass_cache: PassCache::new(),
        }
    }

    /// The optimizer pass pipeline applied before every simulation.
    pub fn passes(&self) -> &PassPipeline {
        &self.passes
    }

    /// Overrides the optimizer pass pipeline (`ARC_PASSES` sets it at
    /// construction). The report caches are keyed by cell only, so
    /// changing the pipeline mid-flight drops anything already cached
    /// rather than serving results computed under the old pipeline.
    /// The memoized optimized traces invalidate themselves: the pass
    /// cache stores the pipeline it was filled under and clears on the
    /// first apply with a different one.
    pub fn set_passes(&mut self, passes: PassPipeline) {
        if passes != self.passes {
            self.gradcomp_cache.clear();
            self.iteration_cache.clear();
            self.telemetry_cache.clear();
        }
        self.passes = passes;
    }

    /// The workload scale in use.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The job-pool width used by the batch APIs.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Overrides the job-pool width (1 = serial). Never affects results,
    /// only wall-clock time.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// Sets the telemetry configuration used by the telemetry APIs
    /// ([`Harness::gradcomp_telemetry`] and friends). Plain report runs
    /// never collect telemetry regardless of this setting.
    pub fn set_telemetry(&mut self, telemetry: TelemetryConfig) {
        self.telemetry = telemetry;
    }

    /// Routes simulations through an on-disk result store: hits skip
    /// the simulation entirely, misses simulate and populate. Byte
    /// behaviour is unchanged (pinned by the conformance
    /// `store-equivalence` invariant).
    pub fn set_store(&mut self, store: Arc<ResultStore>) {
        self.store = Some(store);
    }

    /// [`Harness::set_store`] by directory path, creating it if needed.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created or its
    /// index cannot be read.
    pub fn set_store_dir(&mut self, dir: &str) -> std::io::Result<()> {
        self.store = Some(Arc::new(ResultStore::open(dir)?));
        Ok(())
    }

    /// Routes simulations to a running `simserved` daemon on `sock`
    /// (which typically has its own store). Takes precedence over a
    /// local store.
    ///
    /// # Errors
    ///
    /// Returns the connect/ping error if no daemon answers on `sock`.
    pub fn set_daemon(&mut self, sock: &str) -> Result<(), sim_service::ClientError> {
        let client = DaemonClient::connect(sock)?;
        client.ping()?;
        self.daemon = Some(Arc::new(client));
        Ok(())
    }

    /// Hit/miss/put counters of the local store, if one is configured.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// True when simulations route through the store or a daemon
    /// instead of the plain in-process engine.
    fn service_enabled(&self) -> bool {
        self.store.is_some() || self.daemon.is_some()
    }

    /// The shared trace + digest for one stage of a workload's frame,
    /// cloned out of the frame and hashed once on first use.
    fn service_trace(&mut self, id: &str, stage: usize) -> (Arc<KernelTrace>, Digest) {
        let wid = WorkloadId(self.workload_names.intern(id));
        if let Some((trace, digest)) = self.service_traces.get(&(wid, stage)) {
            return (Arc::clone(trace), *digest);
        }
        let frame = self.traces_arc(id);
        let trace = Arc::new(frame.stages()[stage].trace().clone());
        let digest = trace_digest(&trace);
        self.service_traces
            .insert((wid, stage), (Arc::clone(&trace), digest));
        (trace, digest)
    }

    /// The index of the frame's primary rewritable stage (gradcomp for
    /// legacy workloads, the radix digit histogram for tile-binned
    /// ones).
    fn rewritable_index(&mut self, id: &str) -> usize {
        let frame = self.traces_arc(id);
        frame
            .stages()
            .iter()
            .position(|s| s.rewritable())
            .unwrap_or_else(|| panic!("workload `{id}` has no rewritable stage"))
    }

    /// Builds one service request for stage `stage` of `id`'s frame.
    /// Fixed stages run unrewritten under the path's canonical
    /// technique; rewritable stages carry the real technique and its
    /// trace rewrite.
    fn service_cell(
        &mut self,
        cfg: &GpuConfig,
        technique: Technique,
        id: &str,
        stage: usize,
        telemetry: bool,
    ) -> ServiceCell {
        let (trace, digest) = self.service_trace(id, stage);
        let frame = self.traces_arc(id);
        let s = &frame.stages()[stage];
        let (technique, rewrite) = if s.rewritable() {
            (technique, true)
        } else {
            (path_technique(technique.path()), false)
        };
        ServiceCell {
            cfg: cfg.clone(),
            technique,
            trace,
            rewrite,
            digest,
            telemetry: if telemetry {
                Some(self.telemetry.clone())
            } else {
                None
            },
            stage: s.name().to_string(),
        }
    }

    /// Runs kernel cells through the service backend — the daemon if
    /// connected, the local store otherwise — preserving input order.
    ///
    /// # Panics
    ///
    /// Panics on simulator or daemon failure, like the engine path.
    fn service_run(&self, cells: Vec<ServiceCell>) -> Vec<(KernelReport, Option<KernelTelemetry>)> {
        if let Some(client) = &self.daemon {
            let wire: Vec<WireCell> = cells
                .iter()
                .map(|c| WireCell {
                    config: c.cfg.clone(),
                    technique: c.technique,
                    trace: (*c.trace).clone(),
                    rewrite: c.rewrite,
                    telemetry: c.telemetry.clone(),
                    want_chrome: false,
                    passes: self.passes.clone(),
                    stage: Some(c.stage.clone()),
                })
                .collect();
            let results = client.batch(wire).expect("daemon batch must succeed");
            return results
                .into_iter()
                .map(|r| (r.report, r.telemetry))
                .collect();
        }
        let store = self.store.as_ref().expect("service_run without a backend");
        let passes = self.passes.clone();
        par_map(self.jobs, cells, move |c| {
            let req = SimRequest {
                config: c.cfg,
                technique: c.technique,
                trace: c.trace,
                rewrite: c.rewrite,
                telemetry: c.telemetry,
                want_chrome: false,
                passes: passes.clone(),
                stage: Some(c.stage),
            };
            let r = run_cell_with_digest(Some(store), &req, &EngineOpts::default(), &c.digest)
                .expect("kernel must drain");
            (r.report, r.telemetry)
        })
    }

    /// All workload ids, in Table-2 order.
    pub fn workload_ids(&self) -> Vec<String> {
        all_specs().into_iter().map(|s| s.id).collect()
    }

    /// The 3DGS workload ids only.
    pub fn gaussian_ids(&self) -> Vec<String> {
        all_specs()
            .into_iter()
            .filter(|s| s.id.starts_with("3D"))
            .map(|s| s.id)
            .collect()
    }

    fn ensure_trace(&mut self, id: &str) {
        if !self.traces.contains_key(id) {
            let t = build_traces(self.scale, id);
            self.traces.insert(id.to_string(), Arc::new(t));
        }
    }

    /// Builds any missing workload traces for `ids` in parallel on the
    /// job pool. Each build is an actual render + backward pass, so this
    /// is worth fanning out even before any simulation runs.
    pub fn trace_batch(&mut self, ids: &[String]) {
        let scale = self.scale;
        let mut seen: HashSet<&str> = HashSet::new();
        let missing: Vec<String> = ids
            .iter()
            .filter(|id| seen.insert(id.as_str()) && !self.traces.contains_key(id.as_str()))
            .cloned()
            .collect();
        let built = par_map(self.jobs, missing, |id| {
            let traces = Arc::new(build_traces(scale, &id));
            (id, traces)
        });
        for (id, traces) in built {
            self.traces.insert(id, traces);
        }
    }

    /// The (possibly scaled) frame for a workload, building it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a registered workload id.
    pub fn traces(&mut self, id: &str) -> &FrameTrace {
        self.ensure_trace(id);
        self.traces[id].as_ref()
    }

    fn traces_arc(&mut self, id: &str) -> Arc<FrameTrace> {
        self.ensure_trace(id);
        Arc::clone(&self.traces[id])
    }

    /// The typed cache key for one cell, interning the names on first
    /// sight.
    fn key(&mut self, cfg: &GpuConfig, technique: Technique, id: &str) -> CacheKey {
        (
            ConfigId(self.config_names.intern(&cfg.name)),
            TechniqueId(technique),
            WorkloadId(self.workload_names.intern(id)),
        )
    }

    /// Memoized pass application for one kernel of a workload: the
    /// fused traversal runs once per (pipeline, workload, kernel) and
    /// every later cell sharing the kernel reuses the cached trace
    /// (pointer-identical `Arc` — the `pass-equivalence` conformance
    /// invariant pins it). `jobs` sizes the cold-path warp fan-out;
    /// the batch paths pass 1 because they already parallelize at cell
    /// granularity.
    fn optimized(
        &self,
        id: &str,
        kernel: &str,
        trace: &KernelTrace,
        jobs: usize,
    ) -> Arc<KernelTrace> {
        optimize_cached(&self.pass_cache, &self.passes, id, kernel, trace, jobs)
    }

    /// The number of distinct kernel traces whose optimized form is
    /// currently memoized (observability for tests and perf_smoke).
    pub fn pass_cache_len(&self) -> usize {
        self.pass_cache.len()
    }

    fn sim_for(&mut self, cfg: &GpuConfig, path: AtomicPath) -> Arc<Simulator> {
        let key = (ConfigId(self.config_names.intern(&cfg.name)), path);
        if let Some(sim) = self.sims.get(&key) {
            return Arc::clone(sim);
        }
        let sim = Arc::new(Simulator::new(cfg.clone(), path).expect("valid config"));
        self.sims.insert(key, Arc::clone(&sim));
        sim
    }

    /// Simulates (with caching) the frame's primary rewritable stage —
    /// the kernel the techniques target: gradcomp for the legacy
    /// workloads, the radix digit histogram for tile-binned ones —
    /// under `technique` on `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on unknown workload or simulator failure (the workloads
    /// and configs shipped here always drain).
    pub fn gradcomp(&mut self, cfg: &GpuConfig, technique: Technique, id: &str) -> KernelReport {
        let key = self.key(cfg, technique, id);
        if let Some(hit) = self.gradcomp_cache.get(&key) {
            return hit.clone();
        }
        let report = if self.service_enabled() {
            let stage = self.rewritable_index(id);
            let cell = self.service_cell(cfg, technique, id, stage, false);
            self.service_run(vec![cell]).remove(0).0
        } else {
            let frame = self.traces_arc(id);
            let sim = self.sim_for(cfg, technique.path());
            let stage = frame.rewritable();
            let piped = self.optimized(id, stage.name(), stage.trace(), self.jobs);
            sim.run(&technique.prepare_cow(&piped))
                .expect("kernel must drain")
        };
        self.gradcomp_cache.insert(key, report.clone());
        report
    }

    /// Simulates (with caching) the gradient-computation kernel with
    /// telemetry collection, returning the report plus the sampled
    /// [`KernelTelemetry`]. The report is byte-identical to the one
    /// [`Harness::gradcomp`] returns (telemetry never changes results),
    /// so this also warms the plain report cache.
    ///
    /// # Panics
    ///
    /// Panics on unknown workload or simulator failure.
    pub fn gradcomp_telemetry(
        &mut self,
        cfg: &GpuConfig,
        technique: Technique,
        id: &str,
    ) -> (KernelReport, KernelTelemetry) {
        let key = self.key(cfg, technique, id);
        if let (Some(report), Some(tel)) = (
            self.gradcomp_cache.get(&key),
            self.telemetry_cache.get(&key),
        ) {
            return (report.clone(), tel.clone());
        }
        let (report, tel) = if self.service_enabled() {
            let stage = self.rewritable_index(id);
            let cell = self.service_cell(cfg, technique, id, stage, true);
            let (report, tel) = self.service_run(vec![cell]).remove(0);
            (report, tel.expect("telemetry was requested"))
        } else {
            let frame = self.traces_arc(id);
            let sim = self.telemetry_sim(cfg, technique.path());
            let stage = frame.rewritable();
            let piped = self.optimized(id, stage.name(), stage.trace(), self.jobs);
            let (report, tel) = sim
                .run_with_telemetry(&technique.prepare_cow(&piped))
                .expect("kernel must drain");
            (report, tel.expect("telemetry was enabled"))
        };
        self.gradcomp_cache.insert(key, report.clone());
        self.telemetry_cache.insert(key, tel.clone());
        (report, tel)
    }

    /// Computes every missing gradient-computation + telemetry cell in
    /// parallel on the job pool (the telemetry analogue of
    /// [`Harness::gradcomp_batch`]). Cells whose *report* is cached but
    /// whose telemetry is not are re-run with telemetry enabled; results
    /// are identical to computing each cell serially.
    pub fn gradcomp_telemetry_batch(&mut self, cells: &[Cell]) {
        let jobs = self.jobs;
        let ids: Vec<String> = cells.iter().map(|(_, _, id)| id.clone()).collect();
        self.trace_batch(&ids);

        let mut claimed: HashSet<CacheKey> = HashSet::new();
        let mut misses: Vec<Cell> = Vec::new();
        let mut keys: Vec<CacheKey> = Vec::new();
        for cell @ (cfg, technique, id) in cells {
            let key = self.key(cfg, *technique, id);
            if self.telemetry_cache.contains_key(&key) || !claimed.insert(key) {
                continue;
            }
            misses.push(cell.clone());
            keys.push(key);
        }

        if self.service_enabled() {
            let svc: Vec<ServiceCell> = misses
                .iter()
                .map(|(cfg, t, id)| {
                    let stage = self.rewritable_index(id);
                    self.service_cell(cfg, *t, id, stage, true)
                })
                .collect();
            for (key, (report, tel)) in keys.into_iter().zip(self.service_run(svc)) {
                self.gradcomp_cache.insert(key, report);
                self.telemetry_cache
                    .insert(key, tel.expect("telemetry was requested"));
            }
            return;
        }

        let mut todo: Vec<PreparedCell> = Vec::new();
        for ((cfg, technique, id), key) in misses.iter().zip(&keys) {
            let sim = Arc::new(self.telemetry_sim(cfg, technique.path()));
            let frame = Arc::clone(&self.traces[id.as_str()]);
            todo.push((*key, sim, *technique, frame, id.clone()));
        }
        let cache = &self.pass_cache;
        let passes = &self.passes;
        let results = par_map(jobs, todo, move |(key, sim, technique, frame, id)| {
            let stage = frame.rewritable();
            let piped = optimize_cached(cache, passes, &id, stage.name(), stage.trace(), 1);
            let (report, tel) = sim
                .run_with_telemetry(&technique.prepare_cow(&piped))
                .expect("kernel must drain");
            (key, report, tel.expect("telemetry was enabled"))
        });
        for (key, report, tel) in results {
            self.gradcomp_cache.insert(key, report);
            self.telemetry_cache.insert(key, tel);
        }
    }

    /// All collected telemetry summaries as
    /// `(config, technique, workload, summary)` rows, sorted for
    /// deterministic output — the payload of the machine-readable
    /// `telemetry.json` the experiment binaries write.
    pub fn telemetry_summaries(&self) -> Vec<(String, String, String, TelemetrySummary)> {
        let mut rows: Vec<_> = self
            .telemetry_cache
            .iter()
            .map(|(&(c, t, w), tel)| {
                (
                    self.config_names.name(c.0).to_string(),
                    t.0.label(),
                    self.workload_names.name(w.0).to_string(),
                    tel.summary(),
                )
            })
            .collect();
        rows.sort_by(|a, b| (&a.0, &a.1, &a.2).cmp(&(&b.0, &b.1, &b.2)));
        rows
    }

    /// Chrome-trace (`chrome://tracing`) JSON for one telemetry cell,
    /// running it first if needed.
    ///
    /// # Panics
    ///
    /// Panics on unknown workload or simulator failure.
    pub fn gradcomp_chrome_trace(
        &mut self,
        cfg: &GpuConfig,
        technique: Technique,
        id: &str,
    ) -> String {
        self.gradcomp_telemetry(cfg, technique, id).1.chrome_trace()
    }

    /// A telemetry-enabled clone of the cached simulator for this
    /// (config, path). Kept out of the `sims` cache so plain report
    /// runs never pay for sampling.
    fn telemetry_sim(&mut self, cfg: &GpuConfig, path: AtomicPath) -> Simulator {
        let base = self.sim_for(cfg, path);
        (*base).clone().with_telemetry(self.telemetry.clone())
    }

    /// Simulates (with caching) the full frame — every stage of the
    /// workload's pipeline, in order (three kernels for the legacy
    /// workloads, six for tile-binned 3DGS).
    ///
    /// # Panics
    ///
    /// Panics on unknown workload or simulator failure.
    pub fn iteration(
        &mut self,
        cfg: &GpuConfig,
        technique: Technique,
        id: &str,
    ) -> IterationReport {
        let key = self.key(cfg, technique, id);
        if let Some(hit) = self.iteration_cache.get(&key) {
            return hit.clone();
        }
        let report = if self.service_enabled() {
            let stages = self.traces_arc(id).stages().len();
            let svc: Vec<ServiceCell> = (0..stages)
                .map(|stage| self.service_cell(cfg, technique, id, stage, false))
                .collect();
            let kernels = self.service_run(svc).into_iter().map(|(r, _)| r).collect();
            IterationReport { kernels }
        } else {
            let frame = self.traces_arc(id);
            let sim = self.sim_for(cfg, technique.path());
            let optimized: Vec<(StageRole, Arc<KernelTrace>)> = frame
                .stages()
                .iter()
                .map(|s| (s.role(), self.optimized(id, s.name(), s.trace(), self.jobs)))
                .collect();
            arc_workloads::run_frame_staged(
                &sim,
                technique,
                optimized.iter().map(|(role, t)| (*role, t.as_ref())),
            )
            .expect("iteration must drain")
        };
        self.iteration_cache.insert(key, report.clone());
        report
    }

    /// Computes every missing gradient-computation cell in parallel on
    /// the job pool, filling the cache consulted by
    /// [`Harness::gradcomp`] / [`Harness::gradcomp_speedup`] /
    /// [`Harness::best_sw`]. Duplicate and already-cached cells are
    /// skipped; results are identical to computing each cell serially.
    pub fn gradcomp_batch(&mut self, cells: &[Cell]) {
        self.prefill(cells, false);
    }

    /// Computes every missing full-iteration cell in parallel on the
    /// job pool, filling the cache consulted by [`Harness::iteration`] /
    /// [`Harness::e2e_speedup`].
    pub fn iteration_batch(&mut self, cells: &[Cell]) {
        self.prefill(cells, true);
    }

    fn prefill(&mut self, cells: &[Cell], iteration: bool) {
        let jobs = self.jobs;

        // Build every missing workload trace first (each is an actual
        // render + backward pass — the other expensive step), also in
        // parallel.
        let ids: Vec<String> = cells.iter().map(|(_, _, id)| id.clone()).collect();
        self.trace_batch(&ids);

        // Collect the unique uncached cells.
        let mut claimed: HashSet<CacheKey> = HashSet::new();
        let mut misses: Vec<Cell> = Vec::new();
        let mut keys: Vec<CacheKey> = Vec::new();
        for cell @ (cfg, technique, id) in cells {
            let key = self.key(cfg, *technique, id);
            let cached = if iteration {
                self.iteration_cache.contains_key(&key)
            } else {
                self.gradcomp_cache.contains_key(&key)
            };
            if cached || !claimed.insert(key) {
                continue;
            }
            misses.push(cell.clone());
            keys.push(key);
        }

        if self.service_enabled() {
            if iteration {
                // One kernel request per frame stage per cell, flattened
                // so the pool (or daemon) schedules them all at once;
                // per-cell stage counts unflatten the results (frames
                // are no longer uniformly three kernels).
                let mut svc = Vec::new();
                let mut counts = Vec::with_capacity(misses.len());
                for (cfg, t, id) in &misses {
                    let stages = self.traces_arc(id).stages().len();
                    counts.push(stages);
                    for stage in 0..stages {
                        svc.push(self.service_cell(cfg, *t, id, stage, false));
                    }
                }
                let mut results = self.service_run(svc).into_iter();
                for (key, stages) in keys.into_iter().zip(counts) {
                    let mut kernels = Vec::with_capacity(stages);
                    for _ in 0..stages {
                        kernels.push(results.next().expect("one kernel per stage").0);
                    }
                    self.iteration_cache
                        .insert(key, IterationReport { kernels });
                }
            } else {
                let svc: Vec<ServiceCell> = misses
                    .iter()
                    .map(|(cfg, t, id)| {
                        let stage = self.rewritable_index(id);
                        self.service_cell(cfg, *t, id, stage, false)
                    })
                    .collect();
                for (key, (report, _)) in keys.into_iter().zip(self.service_run(svc)) {
                    self.gradcomp_cache.insert(key, report);
                }
            }
            return;
        }

        let mut todo: Vec<PreparedCell> = Vec::new();
        for ((cfg, technique, id), key) in misses.iter().zip(&keys) {
            let sim = self.sim_for(cfg, technique.path());
            let frame = Arc::clone(&self.traces[id.as_str()]);
            todo.push((*key, sim, *technique, frame, id.clone()));
        }

        // Simulate across the pool; inserting in input order keeps the
        // whole operation deterministic regardless of `jobs`.
        let cache = &self.pass_cache;
        let passes = &self.passes;
        if iteration {
            let reports = par_map(jobs, todo, move |(key, sim, technique, frame, id)| {
                let optimized: Vec<(StageRole, Arc<KernelTrace>)> = frame
                    .stages()
                    .iter()
                    .map(|s| {
                        let t = optimize_cached(cache, passes, &id, s.name(), s.trace(), 1);
                        (s.role(), t)
                    })
                    .collect();
                let report = arc_workloads::run_frame_staged(
                    &sim,
                    technique,
                    optimized.iter().map(|(role, t)| (*role, t.as_ref())),
                )
                .expect("iteration must drain");
                (key, report)
            });
            for (key, report) in reports {
                self.iteration_cache.insert(key, report);
            }
        } else {
            let reports = par_map(jobs, todo, move |(key, sim, technique, frame, id)| {
                let stage = frame.rewritable();
                let piped = optimize_cached(cache, passes, &id, stage.name(), stage.trace(), 1);
                let report = sim
                    .run(&technique.prepare_cow(&piped))
                    .expect("kernel must drain");
                (key, report)
            });
            for (key, report) in reports {
                self.gradcomp_cache.insert(key, report);
            }
        }
    }

    /// Gradient-computation speedup of `technique` over the baseline.
    pub fn gradcomp_speedup(&mut self, cfg: &GpuConfig, technique: Technique, id: &str) -> f64 {
        let base = self.gradcomp(cfg, Technique::Baseline, id).cycles;
        let var = self.gradcomp(cfg, technique, id).cycles;
        base as f64 / var as f64
    }

    /// End-to-end (forward + loss + gradcomp) speedup over baseline.
    pub fn e2e_speedup(&mut self, cfg: &GpuConfig, technique: Technique, id: &str) -> f64 {
        let base = self.iteration(cfg, Technique::Baseline, id).total_cycles();
        let var = self.iteration(cfg, technique, id).total_cycles();
        base as f64 / var as f64
    }

    /// The techniques [`Harness::best_sw`] sweeps: both ARC-SW
    /// algorithms over the paper's threshold grid.
    pub fn sw_sweep() -> Vec<Technique> {
        arc_core::BalanceThreshold::paper_sweep()
            .into_iter()
            .flat_map(|thr| [Technique::SwS(thr), Technique::SwB(thr)])
            .collect()
    }

    /// The best-performing ARC-SW configuration for a workload on a
    /// GPU, sweeping both algorithms over the paper's threshold grid
    /// (§7.2: "SW-B and SW-S with the best-performing balancing
    /// threshold").
    pub fn best_sw(&mut self, cfg: &GpuConfig, id: &str) -> (Technique, f64) {
        let mut best: Option<(Technique, f64)> = None;
        for technique in Self::sw_sweep() {
            let s = self.gradcomp_speedup(cfg, technique, id);
            if best.as_ref().is_none_or(|(_, b)| s > *b) {
                best = Some((technique, s));
            }
        }
        best.expect("sweep is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_caches_reports() {
        let mut h = Harness::new(0.2);
        let cfg = GpuConfig::tiny();
        let a = h.gradcomp(&cfg, Technique::Baseline, "PS-SS");
        let b = h.gradcomp(&cfg, Technique::Baseline, "PS-SS");
        assert_eq!(a, b);
        assert_eq!(h.workload_ids().len(), 12);
        assert_eq!(h.gaussian_ids().len(), 6);
    }

    #[test]
    fn speedup_of_baseline_is_one() {
        let mut h = Harness::new(0.2);
        let cfg = GpuConfig::tiny();
        let s = h.gradcomp_speedup(&cfg, Technique::Baseline, "PS-SS");
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_id_panics() {
        let mut h = Harness::new(0.2);
        let _ = h.traces("3D-XX");
    }

    #[test]
    fn telemetry_batch_matches_serial_and_plain_reports() {
        let cfg = GpuConfig::tiny();
        let cells: Vec<Cell> = [Technique::Baseline, Technique::ArcHw]
            .into_iter()
            .map(|t| (cfg.clone(), t, "PS-SS".to_string()))
            .collect();

        let mut serial = Harness::new(0.2);
        serial.set_jobs(1);
        let mut parallel = Harness::new(0.2);
        parallel.set_jobs(4);
        parallel.gradcomp_telemetry_batch(&cells);

        for (cfg, technique, id) in &cells {
            let (sr, st) = serial.gradcomp_telemetry(cfg, *technique, id);
            let (pr, pt) = parallel.gradcomp_telemetry(cfg, *technique, id);
            assert_eq!(sr, pr, "telemetry report for {}", technique.label());
            assert_eq!(st, pt, "telemetry for {}", technique.label());
            // Telemetry runs also warm the plain report cache with
            // identical results.
            assert_eq!(serial.gradcomp(cfg, *technique, id), sr);
        }
        let rows = parallel.telemetry_summaries();
        assert_eq!(rows.len(), cells.len());
        assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1), "rows sorted");
    }

    #[test]
    fn store_backed_harness_matches_engine() {
        let dir = std::env::temp_dir().join(format!("arc-harness-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = GpuConfig::tiny();
        let cells: Vec<Cell> = [Technique::Baseline, Technique::ArcHw]
            .into_iter()
            .map(|t| (cfg.clone(), t, "PS-SS".to_string()))
            .collect();

        let mut plain = Harness::new(0.2);
        let mut stored = Harness::new(0.2);
        stored.set_store_dir(dir.to_str().unwrap()).unwrap();
        stored.gradcomp_batch(&cells);
        stored.iteration_batch(&cells);
        for (cfg, t, id) in &cells {
            assert_eq!(plain.gradcomp(cfg, *t, id), stored.gradcomp(cfg, *t, id));
            assert_eq!(plain.iteration(cfg, *t, id), stored.iteration(cfg, *t, id));
            let (pr, pt) = plain.gradcomp_telemetry(cfg, *t, id);
            let (sr, st) = stored.gradcomp_telemetry(cfg, *t, id);
            assert_eq!(pr, sr, "telemetry report via store for {}", t.label());
            assert_eq!(pt, st, "telemetry via store for {}", t.label());
        }

        // A fresh harness over the same store serves everything warm.
        let mut warm = Harness::new(0.2);
        warm.set_store_dir(dir.to_str().unwrap()).unwrap();
        for (cfg, t, id) in &cells {
            assert_eq!(plain.gradcomp(cfg, *t, id), warm.gradcomp(cfg, *t, id));
            assert_eq!(plain.iteration(cfg, *t, id), warm.iteration(cfg, *t, id));
        }
        let stats = warm.store_stats().unwrap();
        assert_eq!(stats.misses, 0, "warm pass must not simulate");
        assert!(stats.hits > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_prefill_matches_serial() {
        let cfg = GpuConfig::tiny();
        let mut cells: Vec<Cell> = Vec::new();
        for id in ["PS-SS", "3D-LE"] {
            for t in [Technique::Baseline, Technique::ArcHw] {
                cells.push((cfg.clone(), t, id.to_string()));
            }
        }

        let mut serial = Harness::new(0.2);
        serial.set_jobs(1);
        let mut parallel = Harness::new(0.2);
        parallel.set_jobs(4);
        parallel.gradcomp_batch(&cells);
        parallel.iteration_batch(&cells);

        for (cfg, technique, id) in &cells {
            assert_eq!(
                serial.gradcomp(cfg, *technique, id),
                parallel.gradcomp(cfg, *technique, id),
                "gradcomp mismatch for {} on {}",
                technique.label(),
                id
            );
            assert_eq!(
                serial.iteration(cfg, *technique, id),
                parallel.iteration(cfg, *technique, id),
                "iteration mismatch for {} on {}",
                technique.label(),
                id
            );
        }
    }
}

//! Small reporting helpers shared by the figure functions.

use serde::{Deserialize, Serialize};

/// A labeled series of (workload, value) points plus its mean — the
/// shape of most of the paper's bar charts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label (e.g. a technique name).
    pub label: String,
    /// `(workload id, value)` points.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, id: impl Into<String>, value: f64) {
        self.points.push((id.into(), value));
    }

    /// Geometric mean of the values (the conventional speedup average).
    pub fn geo_mean(&self) -> f64 {
        geo_mean(self.points.iter().map(|&(_, v)| v))
    }

    /// Arithmetic mean of the values.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// The maximum value with its workload id.
    pub fn max(&self) -> Option<(&str, f64)> {
        self.points
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, v)| (id.as_str(), *v))
    }
}

/// Geometric mean of an iterator of positive values (0.0 when empty).
pub fn geo_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geometric mean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean([]), 0.0);
        assert!((geo_mean([4.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean([1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geo_mean_rejects_nonpositive() {
        let _ = geo_mean([1.0, 0.0]);
    }

    #[test]
    fn series_stats() {
        let mut s = Series::new("ARC-HW");
        s.push("A", 2.0);
        s.push("B", 8.0);
        assert!((s.geo_mean() - 4.0).abs() < 1e-12);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.max(), Some(("B", 8.0)));
    }

    #[test]
    fn empty_series() {
        let s = Series::new("x");
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.geo_mean(), 0.0);
        assert_eq!(s.max(), None);
    }
}

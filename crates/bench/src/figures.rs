//! One function per table/figure of the paper's evaluation.
//!
//! Every function takes the shared [`Harness`] and the GPU configs it
//! needs, returning plain serializable data; the `figures` binary and
//! EXPERIMENTS.md are generated from these.

use serde::{Deserialize, Serialize};
use warp_trace::{KernelKind, TraceStats};

use arc_core::tuner::tune;
use arc_core::{AreaModel, BalanceThreshold};
use arc_workloads::{pagerank, Technique};
use gpu_sim::GpuConfig;

use crate::harness::{Cell, Harness};
use crate::report::Series;

/// The evaluated GPU models (quarter-scale experiment configurations,
/// see `GpuConfig::rtx4090_sim`).
pub fn gpus() -> [GpuConfig; 2] {
    [GpuConfig::rtx4090_sim(), GpuConfig::rtx3060_sim()]
}

/// The cartesian (config × technique × workload) grid as batch cells.
fn grid(cfgs: &[GpuConfig], techniques: &[Technique], ids: &[String]) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(cfgs.len() * techniques.len() * ids.len());
    for cfg in cfgs {
        for id in ids {
            for &t in techniques {
                cells.push((cfg.clone(), t, id.clone()));
            }
        }
    }
    cells
}

/// Baseline plus the full ARC-SW threshold sweep — the cells
/// [`Harness::best_sw`] consults.
fn sw_grid(cfgs: &[GpuConfig], ids: &[String]) -> Vec<Cell> {
    let mut techniques = vec![Technique::Baseline];
    techniques.extend(Harness::sw_sweep());
    grid(cfgs, &techniques, ids)
}

// ---------------------------------------------------------------------
// Fig. 4 — training-time breakdown.
// ---------------------------------------------------------------------

/// One workload's training-time split on one GPU.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Workload id.
    pub workload: String,
    /// GPU config name.
    pub gpu: String,
    /// Fraction of iteration cycles in the forward pass.
    pub forward: f64,
    /// Fraction in the loss kernel.
    pub loss: f64,
    /// Fraction in gradient computation.
    pub gradcomp: f64,
}

/// Fig. 4: baseline training-time breakdown for every workload on both
/// GPUs.
pub fn fig4(h: &mut Harness) -> Vec<BreakdownRow> {
    let ids = h.workload_ids();
    h.iteration_batch(&grid(&gpus(), &[Technique::Baseline], &ids));
    let mut rows = Vec::new();
    for cfg in gpus() {
        for id in &ids {
            let it = h.iteration(&cfg, Technique::Baseline, id);
            rows.push(BreakdownRow {
                workload: id.clone(),
                gpu: cfg.name.clone(),
                forward: it.fraction_of(KernelKind::Forward),
                loss: it.fraction_of(KernelKind::Loss),
                gradcomp: it.fraction_of(KernelKind::GradCompute),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// §3.1 Observation 1 + Fig. 7 — atomic locality characterization.
// ---------------------------------------------------------------------

/// Per-workload atomic-locality statistics (Observation 1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LocalityRow {
    /// Workload id.
    pub workload: String,
    /// Fraction of atomic instructions whose active lanes all hit one
    /// address.
    pub same_address: f64,
    /// The ≥2-active-lane variant of the same fraction.
    pub same_address_multi: f64,
    /// Mean active lanes per atomic (Observation 2).
    pub mean_active: f64,
}

/// Observation 1 across all workloads.
pub fn obs1(h: &mut Harness) -> Vec<LocalityRow> {
    let ids = h.workload_ids();
    h.trace_batch(&ids);
    ids.into_iter()
        .map(|id| {
            let stats = TraceStats::compute(h.traces(&id).gradcomp());
            LocalityRow {
                workload: id,
                same_address: stats.same_address_fraction(),
                same_address_multi: stats.same_address_multi_fraction(),
                mean_active: stats.mean_active_lanes(),
            }
        })
        .collect()
}

/// One workload's active-lane histogram (Fig. 7).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HistogramRow {
    /// Workload id.
    pub workload: String,
    /// Bucket counts, index = active lanes (0..=32).
    pub buckets: Vec<u64>,
}

/// Fig. 7: active-lane histograms (the paper shows 3D-PR and NV-LE;
/// we emit all requested ids).
pub fn fig7(h: &mut Harness, ids: &[&str]) -> Vec<HistogramRow> {
    h.trace_batch(&ids.iter().map(|id| id.to_string()).collect::<Vec<_>>());
    ids.iter()
        .map(|id| {
            let stats = TraceStats::compute(h.traces(id).gradcomp());
            HistogramRow {
                workload: id.to_string(),
                buckets: stats.active_lanes.buckets().to_vec(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 8 / Fig. 24 — warp-stall breakdowns.
// ---------------------------------------------------------------------

/// One workload's stall profile under one technique on one GPU.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StallRow {
    /// Workload id.
    pub workload: String,
    /// GPU config name.
    pub gpu: String,
    /// Technique label.
    pub technique: String,
    /// Mean stall cycles per issued instruction.
    pub stalls_per_instr: f64,
    /// Fraction of active stalls that are LSU stalls.
    pub lsu_fraction: f64,
}

/// Fig. 8: baseline gradient-computation stall breakdown on both GPUs.
pub fn fig8(h: &mut Harness) -> Vec<StallRow> {
    stall_rows(h, Technique::Baseline)
}

/// Fig. 24: the same breakdown under the best ARC-SW configuration.
pub fn fig24(h: &mut Harness) -> Vec<StallRow> {
    let ids = h.workload_ids();
    h.gradcomp_batch(&sw_grid(&gpus(), &ids));
    let mut rows = Vec::new();
    for cfg in gpus() {
        for id in &ids {
            let (technique, _) = h.best_sw(&cfg, id);
            let report = h.gradcomp(&cfg, technique, id);
            rows.push(StallRow {
                workload: id.clone(),
                gpu: cfg.name.clone(),
                technique: technique.label(),
                stalls_per_instr: report.stalls_per_instruction(),
                lsu_fraction: report.stalls.lsu_fraction(),
            });
        }
    }
    rows
}

fn stall_rows(h: &mut Harness, technique: Technique) -> Vec<StallRow> {
    let ids = h.workload_ids();
    h.gradcomp_batch(&grid(&gpus(), &[technique], &ids));
    let mut rows = Vec::new();
    for cfg in gpus() {
        for id in &ids {
            let report = h.gradcomp(&cfg, technique, id);
            rows.push(StallRow {
                workload: id.clone(),
                gpu: cfg.name.clone(),
                technique: technique.label(),
                stalls_per_instr: report.stalls_per_instruction(),
                lsu_fraction: report.stalls.lsu_fraction(),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Figs. 18/19 — ARC-HW vs PHI/LAB/LAB-ideal speedups.
// ---------------------------------------------------------------------

/// Figs. 18 (3060-Sim) / 19 (4090-Sim): gradient-computation speedup of
/// the hardware techniques, normalized to baseline.
pub fn fig18_19(h: &mut Harness, cfg: &GpuConfig) -> Vec<Series> {
    let techniques = [
        Technique::Phi,
        Technique::Lab,
        Technique::LabIdeal,
        Technique::ArcHw,
    ];
    let ids = h.workload_ids();
    let mut all = vec![Technique::Baseline];
    all.extend(techniques);
    h.gradcomp_batch(&grid(std::slice::from_ref(cfg), &all, &ids));
    techniques
        .iter()
        .map(|&t| {
            let mut series = Series::new(t.label());
            for id in &ids {
                series.push(id.clone(), h.gradcomp_speedup(cfg, t, id));
            }
            series
        })
        .collect()
}

/// Figs. 20 (3060-Sim) / 21 (4090-Sim): reduction in shader atomic
/// stalls (baseline stall cycles ÷ technique stall cycles).
pub fn fig20_21(h: &mut Harness, cfg: &GpuConfig) -> Vec<Series> {
    let techniques = [Technique::Lab, Technique::LabIdeal, Technique::ArcHw];
    let ids = h.workload_ids();
    let mut all = vec![Technique::Baseline];
    all.extend(techniques);
    h.gradcomp_batch(&grid(std::slice::from_ref(cfg), &all, &ids));
    techniques
        .iter()
        .map(|&t| {
            let mut series = Series::new(t.label());
            for id in &ids {
                let base = h
                    .gradcomp(cfg, Technique::Baseline, id)
                    .counters
                    .atomic_stall_cycles
                    .max(1);
                let var = h.gradcomp(cfg, t, id).counters.atomic_stall_cycles.max(1);
                series.push(id.clone(), base as f64 / var as f64);
            }
            series
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 22 — ARC-SW end-to-end and gradcomp speedups.
// ---------------------------------------------------------------------

/// One workload's ARC-SW result on one GPU (Fig. 22).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SwRow {
    /// Workload id.
    pub workload: String,
    /// GPU config name.
    pub gpu: String,
    /// The best SW configuration found (e.g. `SW-B-16`).
    pub best_config: String,
    /// Gradient-computation speedup over baseline.
    pub gradcomp_speedup: f64,
    /// End-to-end training-iteration speedup over baseline.
    pub e2e_speedup: f64,
}

/// Fig. 22: ARC-SW (best threshold per workload) on both GPUs.
pub fn fig22(h: &mut Harness) -> Vec<SwRow> {
    let ids = h.workload_ids();
    h.gradcomp_batch(&sw_grid(&gpus(), &ids));
    // The end-to-end cells depend on which threshold won, so batch them
    // in a second wave once the (cached) sweep has been consulted.
    let mut best = Vec::new();
    let mut iter_cells = Vec::new();
    for cfg in gpus() {
        for id in &ids {
            let (technique, gradcomp_speedup) = h.best_sw(&cfg, id);
            iter_cells.push((cfg.clone(), Technique::Baseline, id.clone()));
            iter_cells.push((cfg.clone(), technique, id.clone()));
            best.push((cfg.clone(), id.clone(), technique, gradcomp_speedup));
        }
    }
    h.iteration_batch(&iter_cells);
    best.into_iter()
        .map(|(cfg, id, technique, gradcomp_speedup)| {
            let e2e = h.e2e_speedup(&cfg, technique, &id);
            SwRow {
                workload: id,
                gpu: cfg.name.clone(),
                best_config: technique.label(),
                gradcomp_speedup,
                e2e_speedup: e2e,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 23 — balancing-threshold sensitivity.
// ---------------------------------------------------------------------

/// One (workload, algorithm, threshold) speedup sample (Fig. 23).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThresholdRow {
    /// Workload id.
    pub workload: String,
    /// `SW-S` or `SW-B`.
    pub algorithm: String,
    /// Threshold value.
    pub threshold: u8,
    /// Gradient-computation speedup on the 4090 model.
    pub speedup: f64,
}

/// Fig. 23: sensitivity of SW-S and SW-B to the balancing threshold on
/// the 4090 model. SW-B rows are omitted for Pulsar workloads (the
/// paper: "SW-B cannot be used for PS-SS and PS-SL").
pub fn fig23(h: &mut Harness) -> Vec<ThresholdRow> {
    let cfg = GpuConfig::rtx4090_sim();
    let ids = h.workload_ids();
    h.gradcomp_batch(&sw_grid(std::slice::from_ref(&cfg), &ids));
    let mut rows = Vec::new();
    for id in ids {
        for thr in BalanceThreshold::paper_sweep() {
            rows.push(ThresholdRow {
                workload: id.clone(),
                algorithm: "SW-S".to_string(),
                threshold: thr.value(),
                speedup: h.gradcomp_speedup(&cfg, Technique::SwS(thr), &id),
            });
            if !id.starts_with("PS") {
                rows.push(ThresholdRow {
                    workload: id.clone(),
                    algorithm: "SW-B".to_string(),
                    threshold: thr.value(),
                    speedup: h.gradcomp_speedup(&cfg, Technique::SwB(thr), &id),
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Fig. 25 — ARC-HW vs ARC-SW in the simulator.
// ---------------------------------------------------------------------

/// Fig. 25: per-workload speedup of ARC-HW normalized to the best
/// ARC-SW, on the given GPU model.
pub fn fig25(h: &mut Harness, cfg: &GpuConfig) -> Series {
    let ids = h.workload_ids();
    let mut cells = sw_grid(std::slice::from_ref(cfg), &ids);
    cells.extend(grid(std::slice::from_ref(cfg), &[Technique::ArcHw], &ids));
    h.gradcomp_batch(&cells);
    let mut series = Series::new(format!("ARC-HW / ARC-SW ({})", cfg.name));
    for id in ids {
        let hw = h.gradcomp_speedup(cfg, Technique::ArcHw, &id);
        let (_, sw) = h.best_sw(cfg, &id);
        series.push(id.clone(), hw / sw);
    }
    series
}

// ---------------------------------------------------------------------
// Fig. 26 — ARC-SW vs CCCL.
// ---------------------------------------------------------------------

/// Fig. 26: ARC-SW and CCCL gradcomp speedups on the 4090 model.
pub fn fig26(h: &mut Harness) -> Vec<Series> {
    let cfg = GpuConfig::rtx4090_sim();
    let ids = h.workload_ids();
    let mut cells = sw_grid(std::slice::from_ref(&cfg), &ids);
    cells.extend(grid(std::slice::from_ref(&cfg), &[Technique::Cccl], &ids));
    h.gradcomp_batch(&cells);
    let mut sw = Series::new("ARC-SW");
    let mut cccl = Series::new("CCCL");
    for id in ids {
        let (_, s) = h.best_sw(&cfg, &id);
        sw.push(id.clone(), s);
        cccl.push(id.clone(), h.gradcomp_speedup(&cfg, Technique::Cccl, &id));
    }
    vec![sw, cccl]
}

// ---------------------------------------------------------------------
// Figs. 27/28 — energy.
// ---------------------------------------------------------------------

/// Fig. 27 (ARC-SW) / Fig. 28 (ARC-HW): gradient-computation energy
/// reduction (baseline energy ÷ technique energy) on the given GPU.
pub fn fig27_28(h: &mut Harness, cfg: &GpuConfig, hw: bool) -> Series {
    let label = if hw { "ARC-HW" } else { "ARC-SW" };
    let ids = h.workload_ids();
    let cells = if hw {
        grid(
            std::slice::from_ref(cfg),
            &[Technique::Baseline, Technique::ArcHw],
            &ids,
        )
    } else {
        sw_grid(std::slice::from_ref(cfg), &ids)
    };
    h.gradcomp_batch(&cells);
    let mut series = Series::new(format!("{label} energy reduction ({})", cfg.name));
    for id in ids {
        let base = h.gradcomp(cfg, Technique::Baseline, &id).energy.total_mj;
        let technique = if hw {
            Technique::ArcHw
        } else {
            h.best_sw(cfg, &id).0
        };
        let var = h.gradcomp(cfg, technique, &id).energy.total_mj;
        series.push(id.clone(), base / var);
    }
    series
}

// ---------------------------------------------------------------------
// §5.4 area, §5.6 pagerank, §5.5.3 tuner.
// ---------------------------------------------------------------------

/// §5.4: the area-overhead numbers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AreaRow {
    /// GPU name.
    pub gpu: String,
    /// Transistors added by ARC-HW.
    pub added_transistors: u64,
    /// Overhead as a percentage of the die.
    pub overhead_percent: f64,
}

/// §5.4 area table for both GPUs.
pub fn area() -> Vec<AreaRow> {
    [
        ("RTX 4090", AreaModel::rtx4090()),
        ("RTX 3060", AreaModel::rtx3060()),
    ]
    .into_iter()
    .map(|(gpu, m)| AreaRow {
        gpu: gpu.to_string(),
        added_transistors: m.added_transistors(),
        overhead_percent: m.overhead_fraction() * 100.0,
    })
    .collect()
}

/// §5.6: the pagerank-vs-rendering locality contrast.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PagerankRow {
    /// Fraction of ≥2-lane atomic warps with full same-address locality
    /// in pagerank.
    pub pagerank_locality: f64,
    /// Fraction of memory accesses that are atomic in pagerank.
    pub pagerank_atomic_fraction: f64,
    /// The same locality metric for 3D-DR, for contrast.
    pub rendering_locality: f64,
}

/// §5.6 comparison.
pub fn pagerank_contrast(h: &mut Harness) -> PagerankRow {
    let graph = pagerank::Graph::power_law(4000, 10.0, 77);
    let rank = vec![1.0 / 4000.0; 4000];
    let trace = pagerank::pagerank_trace(&graph, &rank, 0.85);
    let stats = TraceStats::compute(&trace);
    let atomic_fraction = stats.atomic_requests as f64
        / (stats.atomic_requests + stats.load_sectors + stats.store_sectors) as f64;
    let rendering = TraceStats::compute(h.traces("3D-DR").gradcomp());
    PagerankRow {
        pagerank_locality: stats.same_address_multi_fraction(),
        pagerank_atomic_fraction: atomic_fraction,
        rendering_locality: rendering.same_address_multi_fraction(),
    }
}

/// §5.5.3: the automatic threshold tuner run against real simulated
/// costs for one workload; returns the probe curve and chosen value.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TuneRow {
    /// Workload id.
    pub workload: String,
    /// Selected threshold.
    pub best_threshold: u8,
    /// Speedup of the tuned threshold over the worst probed one.
    pub best_over_worst: f64,
}

/// §5.5.3 tuner demo over the 3DGS workloads on the 4090 model.
pub fn tune_demo(h: &mut Harness) -> Vec<TuneRow> {
    let cfg = GpuConfig::rtx4090_sim();
    let ids = h.gaussian_ids();
    let probes: Vec<Technique> = BalanceThreshold::paper_sweep()
        .into_iter()
        .map(Technique::SwB)
        .collect();
    h.gradcomp_batch(&grid(std::slice::from_ref(&cfg), &probes, &ids));
    ids.into_iter()
        .map(|id| {
            let outcome = tune(BalanceThreshold::paper_sweep(), |thr| {
                h.gradcomp(&cfg, Technique::SwB(thr), &id).cycles as f64
            });
            TuneRow {
                workload: id,
                best_threshold: outcome.best.value(),
                best_over_worst: outcome.best_over_worst(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Scaling ablation — scene size vs. the atomic bottleneck (§3, §7.2).
// ---------------------------------------------------------------------

/// One point of the scene-size scaling sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Workload scale factor applied to 3D-DR.
    pub scale: f64,
    /// Atomic lane-value requests in the gradient kernel.
    pub atomic_requests: u64,
    /// Gradient-computation share of the baseline iteration.
    pub gradcomp_share: f64,
    /// ARC-HW gradcomp speedup at this size.
    pub arc_hw_speedup: f64,
}

/// Sweeps the 3D-DR workload size on the 4090 model, reproducing the
/// paper's observation that "there is a larger increase in gradient
/// computation time with scene size ... gradient computation is limited
/// by atomic operations, thus becoming a bigger bottleneck in more
/// complex scenes" (§3).
pub fn scaling_sweep(scales: &[f64], jobs: usize) -> Vec<ScalingRow> {
    let cfg = GpuConfig::rtx4090_sim();
    gpu_sim::par_map(jobs, scales.to_vec(), |scale| {
        let traces = arc_workloads::spec("3D-DR")
            .expect("3D-DR exists")
            .scaled(scale)
            .build();
        let base_iter =
            arc_workloads::run_iteration(&cfg, Technique::Baseline, &traces).expect("drains");
        let base = arc_workloads::run_gradcomp(&cfg, Technique::Baseline, traces.gradcomp())
            .expect("drains");
        let hw =
            arc_workloads::run_gradcomp(&cfg, Technique::ArcHw, traces.gradcomp()).expect("drains");
        ScalingRow {
            scale,
            atomic_requests: traces.gradcomp().total_atomic_requests(),
            gradcomp_share: base_iter.fraction_of(KernelKind::GradCompute),
            arc_hw_speedup: base.cycles as f64 / hw.cycles as f64,
        }
    })
}

/// The analytic roofline predictions (arc-core §5.5.3 discussion) next
/// to the simulated speedups, per workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RooflineRow {
    /// Workload id.
    pub workload: String,
    /// Analytic ARC-HW speedup prediction.
    pub predicted_hw: f64,
    /// Simulated ARC-HW speedup.
    pub simulated_hw: f64,
}

/// Compares the first-order analytical model against the simulator for
/// ARC-HW on the 4090 model.
pub fn roofline(h: &mut Harness) -> Vec<RooflineRow> {
    let cfg = GpuConfig::rtx4090_sim();
    let model = cfg.machine_model();
    let ids = h.workload_ids();
    h.gradcomp_batch(&grid(
        std::slice::from_ref(&cfg),
        &[Technique::Baseline, Technique::ArcHw],
        &ids,
    ));
    ids.into_iter()
        .map(|id| {
            let stats = TraceStats::compute(h.traces(&id).gradcomp());
            let profile = arc_core::analysis::KernelProfile::from_stats(&stats);
            RooflineRow {
                predicted_hw: arc_core::analysis::predicted_hw_speedup(&model, &profile),
                simulated_hw: h.gradcomp_speedup(&cfg, Technique::ArcHw, &id),
                workload: id,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_matches_paper() {
        let rows = area();
        assert_eq!(rows.len(), 2);
        let r4090 = &rows[0];
        assert_eq!(r4090.added_transistors, 35_840_000);
        assert!((r4090.overhead_percent - 0.047).abs() < 0.001);
    }

    #[test]
    fn fig7_buckets_have_33_entries() {
        let mut h = Harness::new(0.2);
        let rows = fig7(&mut h, &["PS-SS"]);
        assert_eq!(rows[0].buckets.len(), 33);
    }

    #[test]
    fn pagerank_contrast_shape() {
        let mut h = Harness::new(0.2);
        let row = pagerank_contrast(&mut h);
        assert!(row.pagerank_locality < 0.05);
        assert!(row.rendering_locality > 0.95);
        assert!(row.pagerank_atomic_fraction > 0.5);
    }
}

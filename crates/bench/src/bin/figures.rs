//! Regenerates every table and figure of the ARC paper's evaluation.
//!
//! Usage:
//! ```text
//! figures [--scale S] [--jobs N] [--telemetry] [--technique <name>]
//!         [--chrome-trace <path>] [--store DIR] [--daemon SOCK]
//!         [--passes SPEC]
//!         [all|tab1|fig4|obs1|fig7|fig8|fig18|fig19|fig20|fig21|fig22|
//!          fig23|fig24|fig25|fig26|fig27|fig28|area|pagerank|scaling|
//!          roofline|tune]
//! ```
//!
//! `--jobs N` (or the `ARC_JOBS` environment variable) sets how many
//! worker threads the harness fans simulation cells across; the default
//! is the machine's core count. The results are identical at any job
//! count.
//!
//! `all` runs everything (the default) and also writes
//! `experiments/results.json` with the raw data.
//!
//! `--telemetry` additionally simulates the Baseline/ARC-HW gradcomp
//! cells with the observability layer enabled and writes one
//! machine-readable summary per cell to `experiments/telemetry.json`.
//! `--technique <name>` restricts the telemetry sweep to one registered
//! technique instead (any registry label or CLI name — `sw-b-16`,
//! `phi`, …; a bad name lists every valid spelling).
//! `--chrome-trace <path>` dumps the Baseline 3D-DR run on the 4090
//! model as a `chrome://tracing` / Perfetto JSON timeline.
//!
//! `--store DIR` (or `ARC_STORE`) routes simulations through the
//! persistent result store — reruns at the same scale skip every
//! already-simulated cell. `--daemon SOCK` sends cells to a running
//! `simserved` instead. Both produce byte-identical output to a plain
//! run.
//!
//! `--passes SPEC` (or `ARC_PASSES`) runs the trace-IR optimizer pass
//! pipeline (`arc_core::passes`) on every kernel before its technique
//! rewrite: `all`, `none`, or a comma list like `dead-lane,coalesce`.
//! The pipeline is part of the result-store key, so piped and plain
//! runs never collide.

use std::collections::BTreeMap;
use std::env;
use std::fs;

use arc_bench::figures::{self, BreakdownRow, StallRow, SwRow, ThresholdRow};
use arc_bench::harness::Cell;
use arc_bench::{Harness, Series};
use arc_workloads::Technique;
use gpu_sim::{GpuConfig, TelemetrySummary};
use serde::Serialize;

/// One `experiments/telemetry.json` entry: the cell key plus its
/// sampled summary.
#[derive(Serialize)]
struct TelemetryRow {
    config: String,
    technique: String,
    workload: String,
    summary: TelemetrySummary,
}

fn main() {
    let mut args = env::args().skip(1).collect::<Vec<_>>();
    let mut scale = 1.0f64;
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        args.remove(pos);
        scale = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--scale requires a positive number");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    let mut jobs = None;
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        args.remove(pos);
        jobs = Some(
            args.get(pos)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("--jobs requires a positive integer");
                    std::process::exit(2);
                }),
        );
        args.remove(pos);
    }
    let mut store = None;
    if let Some(pos) = args.iter().position(|a| a == "--store") {
        args.remove(pos);
        store = Some(args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--store requires a directory");
            std::process::exit(2);
        }));
        args.remove(pos);
    }
    let mut daemon = None;
    if let Some(pos) = args.iter().position(|a| a == "--daemon") {
        args.remove(pos);
        daemon = Some(args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--daemon requires a socket path");
            std::process::exit(2);
        }));
        args.remove(pos);
    }
    let mut passes = None;
    if let Some(pos) = args.iter().position(|a| a == "--passes") {
        args.remove(pos);
        let spec = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--passes requires a pass list (`all`, `none`, or comma-separated names)");
            std::process::exit(2);
        });
        args.remove(pos);
        match arc_core::passes::PassPipeline::parse(&spec) {
            Ok(p) => passes = Some(p),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    let mut telemetry = false;
    if let Some(pos) = args.iter().position(|a| a == "--telemetry") {
        args.remove(pos);
        telemetry = true;
    }
    let mut telemetry_techniques = vec![Technique::Baseline, Technique::ArcHw];
    if let Some(pos) = args.iter().position(|a| a == "--technique") {
        args.remove(pos);
        let name = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--technique requires a technique name");
            std::process::exit(2);
        });
        args.remove(pos);
        // Registry parse: accepts any registered label or CLI name and
        // reports the full list of valid spellings on a bad argument.
        match name.parse::<Technique>() {
            Ok(t) => telemetry_techniques = vec![t],
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        telemetry = true;
    }
    let mut chrome_trace = None;
    if let Some(pos) = args.iter().position(|a| a == "--chrome-trace") {
        args.remove(pos);
        chrome_trace = Some(args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--chrome-trace requires an output path");
            std::process::exit(2);
        }));
        args.remove(pos);
    }
    let which = args
        .first()
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let mut h = Harness::new(scale);
    if let Some(jobs) = jobs {
        h.set_jobs(jobs);
    }
    // `Harness::new` already honors `ARC_PASSES`; the flag overrides it.
    if let Some(p) = passes {
        h.set_passes(p);
    }
    if let Some(dir) = &store {
        if let Err(e) = h.set_store_dir(dir) {
            eprintln!("cannot open result store {dir}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(sock) = &daemon {
        if let Err(e) = h.set_daemon(sock) {
            eprintln!("cannot reach simserved at {sock}: {e}");
            std::process::exit(1);
        }
    }
    let mut json = BTreeMap::<String, serde_json::Value>::new();

    let run_all = which == "all";
    let want = |name: &str| run_all || which == name;

    if want("tab1") {
        tab1();
    }
    if want("fig4") {
        let rows = figures::fig4(&mut h);
        print_fig4(&rows);
        json.insert("fig4".into(), serde_json::to_value(&rows).unwrap());
    }
    if want("obs1") {
        let rows = figures::obs1(&mut h);
        println!("\n== S3.1 Observation 1: intra-warp atomic locality ==");
        println!(
            "{:<8} {:>12} {:>18} {:>12}",
            "workload", "same-addr", "same-addr(>=2ln)", "mean active"
        );
        for r in &rows {
            println!(
                "{:<8} {:>11.2}% {:>17.2}% {:>12.1}",
                r.workload,
                100.0 * r.same_address,
                100.0 * r.same_address_multi,
                r.mean_active
            );
        }
        json.insert("obs1".into(), serde_json::to_value(&rows).unwrap());
    }
    if want("fig7") {
        let rows = figures::fig7(&mut h, &["3D-PR", "NV-LE"]);
        println!("\n== Fig. 7: active-lane histograms (log-scale in the paper) ==");
        for r in &rows {
            println!("{}:", r.workload);
            for (k, &n) in r.buckets.iter().enumerate() {
                if n > 0 {
                    println!("  {k:>2} active lanes: {n}");
                }
            }
        }
        json.insert("fig7".into(), serde_json::to_value(&rows).unwrap());
    }
    if want("fig8") {
        let rows = figures::fig8(&mut h);
        print_stalls("Fig. 8: baseline warp-stall breakdown", &rows);
        json.insert("fig8".into(), serde_json::to_value(&rows).unwrap());
    }
    for (name, cfg) in [
        ("fig18", GpuConfig::rtx3060_sim()),
        ("fig19", GpuConfig::rtx4090_sim()),
    ] {
        if want(name) {
            let series = figures::fig18_19(&mut h, &cfg);
            print_series(
                &format!("{name}: gradcomp speedup vs baseline on {}", cfg.name),
                &series,
            );
            json.insert(name.into(), serde_json::to_value(&series).unwrap());
        }
    }
    for (name, cfg) in [
        ("fig20", GpuConfig::rtx3060_sim()),
        ("fig21", GpuConfig::rtx4090_sim()),
    ] {
        if want(name) {
            let series = figures::fig20_21(&mut h, &cfg);
            print_series(
                &format!("{name}: atomic-stall reduction on {}", cfg.name),
                &series,
            );
            json.insert(name.into(), serde_json::to_value(&series).unwrap());
        }
    }
    if want("fig22") {
        let rows = figures::fig22(&mut h);
        print_fig22(&rows);
        json.insert("fig22".into(), serde_json::to_value(&rows).unwrap());
    }
    if want("fig23") {
        let rows = figures::fig23(&mut h);
        print_fig23(&rows);
        json.insert("fig23".into(), serde_json::to_value(&rows).unwrap());
    }
    if want("fig24") {
        let rows = figures::fig24(&mut h);
        print_stalls("Fig. 24: warp stalls under ARC-SW", &rows);
        json.insert("fig24".into(), serde_json::to_value(&rows).unwrap());
    }
    if want("fig25") {
        let mut out = Vec::new();
        for cfg in figures::gpus() {
            let s = figures::fig25(&mut h, &cfg);
            print_series(
                "fig25: ARC-HW normalized to best ARC-SW",
                std::slice::from_ref(&s),
            );
            out.push(s);
        }
        json.insert("fig25".into(), serde_json::to_value(&out).unwrap());
    }
    if want("fig26") {
        let series = figures::fig26(&mut h);
        print_series("fig26: ARC-SW vs CCCL (4090 model)", &series);
        json.insert("fig26".into(), serde_json::to_value(&series).unwrap());
    }
    for (name, hw) in [("fig27", false), ("fig28", true)] {
        if want(name) {
            let mut out = Vec::new();
            for cfg in figures::gpus() {
                let s = figures::fig27_28(&mut h, &cfg, hw);
                print_series(
                    &format!("{name}: energy reduction"),
                    std::slice::from_ref(&s),
                );
                out.push(s);
            }
            json.insert(name.into(), serde_json::to_value(&out).unwrap());
        }
    }
    if want("area") {
        let rows = figures::area();
        println!("\n== S5.4 ARC-HW area overhead ==");
        for r in &rows {
            println!(
                "{:<10} +{} transistors = {:.3}% of die",
                r.gpu, r.added_transistors, r.overhead_percent
            );
        }
        json.insert("area".into(), serde_json::to_value(&rows).unwrap());
    }
    if want("pagerank") {
        let row = figures::pagerank_contrast(&mut h);
        println!("\n== S5.6 pagerank contrast ==");
        println!(
            "pagerank same-address (>=2 lanes): {:.3}%  |  3D-DR: {:.1}%",
            100.0 * row.pagerank_locality,
            100.0 * row.rendering_locality
        );
        println!(
            "pagerank atomic share of memory accesses: {:.1}%",
            100.0 * row.pagerank_atomic_fraction
        );
        json.insert("pagerank".into(), serde_json::to_value(&row).unwrap());
    }
    if want("scaling") {
        let rows = figures::scaling_sweep(&[0.4, 0.6, 0.8, 1.0], h.jobs());
        println!("\n== scene-size scaling (3D-DR on the 4090 model) ==");
        println!(
            "{:>6} {:>14} {:>15} {:>12}",
            "scale", "atomics", "gradcomp share", "ARC-HW"
        );
        for r in &rows {
            println!(
                "{:>6.2} {:>14} {:>14.1}% {:>11.2}x",
                r.scale,
                r.atomic_requests,
                100.0 * r.gradcomp_share,
                r.arc_hw_speedup
            );
        }
        json.insert("scaling".into(), serde_json::to_value(&rows).unwrap());
    }
    if want("roofline") {
        let rows = figures::roofline(&mut h);
        println!("\n== analytic roofline vs simulator (ARC-HW, 4090 model) ==");
        println!("{:<8} {:>11} {:>11}", "workload", "predicted", "simulated");
        for r in &rows {
            println!(
                "{:<8} {:>10.2}x {:>10.2}x",
                r.workload, r.predicted_hw, r.simulated_hw
            );
        }
        json.insert("roofline".into(), serde_json::to_value(&rows).unwrap());
    }
    if want("tune") {
        let rows = figures::tune_demo(&mut h);
        println!("\n== S5.5.3 automatic threshold tuning (SW-B, 4090 model) ==");
        for r in &rows {
            println!(
                "{:<8} best threshold = {:<3} ({:.2}x over worst probe)",
                r.workload, r.best_threshold, r.best_over_worst
            );
        }
        json.insert("tune".into(), serde_json::to_value(&rows).unwrap());
    }

    if telemetry {
        let mut cells: Vec<Cell> = Vec::new();
        for cfg in [GpuConfig::rtx3060_sim(), GpuConfig::rtx4090_sim()] {
            for &t in &telemetry_techniques {
                for id in h.workload_ids() {
                    cells.push((cfg.clone(), t, id));
                }
            }
        }
        println!("\ntelemetry: sampling {} gradcomp cells...", cells.len());
        h.gradcomp_telemetry_batch(&cells);
        let rows: Vec<TelemetryRow> = h
            .telemetry_summaries()
            .into_iter()
            .map(|(config, technique, workload, summary)| TelemetryRow {
                config,
                technique,
                workload,
                summary,
            })
            .collect();
        fs::create_dir_all("experiments").ok();
        let path = "experiments/telemetry.json";
        match fs::write(path, serde_json::to_string_pretty(&rows).unwrap()) {
            Ok(()) => println!("telemetry summaries written to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if let Some(path) = chrome_trace {
        let trace =
            h.gradcomp_chrome_trace(&GpuConfig::rtx4090_sim(), Technique::Baseline, "3D-DR");
        match fs::write(&path, trace) {
            Ok(()) => println!("chrome trace (Baseline 3D-DR, 4090 model) written to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    if run_all {
        fs::create_dir_all("experiments").ok();
        let path = "experiments/results.json";
        match fs::write(path, serde_json::to_string_pretty(&json).unwrap()) {
            Ok(()) => println!("\nraw data written to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn tab1() {
    println!("== Table 1: simulated GPU configurations ==");
    for cfg in [
        GpuConfig::rtx4090(),
        GpuConfig::rtx3060(),
        GpuConfig::rtx4090_sim(),
        GpuConfig::rtx3060_sim(),
    ] {
        println!(
            "{:<12} {:>4} SMs  {:>4} ROPs  {:>4.2} GHz  {} sub-cores/SM  (ROP:SM = {:.2})",
            cfg.name,
            cfg.num_sms,
            cfg.total_rops(),
            cfg.clock_ghz,
            cfg.subcores_per_sm,
            cfg.rop_to_sm_ratio()
        );
    }
}

fn print_fig4(rows: &[BreakdownRow]) {
    println!("\n== Fig. 4: training-time breakdown (baseline) ==");
    println!(
        "{:<8} {:<10} {:>9} {:>7} {:>9}",
        "workload", "gpu", "forward", "loss", "gradcomp"
    );
    for r in rows {
        println!(
            "{:<8} {:<10} {:>8.1}% {:>6.1}% {:>8.1}%",
            r.workload,
            r.gpu,
            100.0 * r.forward,
            100.0 * r.loss,
            100.0 * r.gradcomp
        );
    }
}

fn print_series(title: &str, series: &[Series]) {
    println!("\n== {title} ==");
    for s in series {
        print!("{:<28}", s.label);
        for (id, v) in &s.points {
            print!(" {id}={v:.2}x");
        }
        println!(
            "  | geomean {:.2}x, max {:.2}x",
            s.geo_mean(),
            s.max().map_or(0.0, |m| m.1)
        );
    }
}

fn print_stalls(title: &str, rows: &[StallRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<8} {:<10} {:<10} {:>16} {:>10}",
        "workload", "gpu", "technique", "stalls/instr", "LSU share"
    );
    for r in rows {
        println!(
            "{:<8} {:<10} {:<10} {:>16.2} {:>9.1}%",
            r.workload,
            r.gpu,
            r.technique,
            r.stalls_per_instr,
            100.0 * r.lsu_fraction
        );
    }
}

fn print_fig22(rows: &[SwRow]) {
    println!("\n== Fig. 22: ARC-SW speedups (best threshold per workload) ==");
    println!(
        "{:<8} {:<10} {:<10} {:>10} {:>10}",
        "workload", "gpu", "config", "gradcomp", "end2end"
    );
    for r in rows {
        println!(
            "{:<8} {:<10} {:<10} {:>9.2}x {:>9.2}x",
            r.workload, r.gpu, r.best_config, r.gradcomp_speedup, r.e2e_speedup
        );
    }
}

fn print_fig23(rows: &[ThresholdRow]) {
    println!("\n== Fig. 23: balancing-threshold sensitivity (4090 model) ==");
    let mut by_workload: BTreeMap<&str, Vec<&ThresholdRow>> = BTreeMap::new();
    for r in rows {
        by_workload.entry(&r.workload).or_default().push(r);
    }
    for (id, rows) in by_workload {
        print!("{id:<8}");
        for r in rows {
            print!(" {}-{}={:.2}x", r.algorithm, r.threshold, r.speedup);
        }
        println!();
    }
}

//! Diagnostic: prints detailed simulator counters and resource
//! utilizations for one workload under every technique — the tool used
//! to calibrate the model (see DESIGN.md §5a). Not part of the figure
//! set; useful when modifying `gpu-sim` internals.
//!
//! The frame header lists every kernel stage with its cycles and atomic
//! request count (multi-kernel frames like `3D-TB` get the full
//! pipeline breakdown); the per-technique sweep below runs the frame's
//! rewritable stage.
//!
//! ```text
//! probe [workload-id] [scale]     # defaults: 3D-DR, 1.0
//! ```

use arc_core::BalanceThreshold;
use arc_workloads::{spec, Technique, TechniquePath};
use gpu_sim::{GpuConfig, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("3D-DR");
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let Some(workload) = spec(id) else {
        eprintln!("unknown workload `{id}`; valid ids: 3D-LE..PS-SL, 3D-TB");
        std::process::exit(2);
    };
    println!("building {id} at scale {scale}...");
    let frame = workload.scaled(scale).build();

    // Per-stage breakdown under the baseline path: stage name, cycles,
    // atomic requests. This is the whole frame, not just gradcomp.
    let cfg = GpuConfig::rtx4090_sim();
    let sim = Simulator::new(cfg.clone(), gpu_sim::AtomicPath::Baseline).expect("valid config");
    println!("--- frame stages ({}) ---", cfg.name);
    for stage in frame.stages() {
        let r = sim.run(stage.trace()).expect("drains");
        println!(
            "{:16} {:10} cycles={:8} atomics={:8}",
            stage.name(),
            format!("{:?}", stage.role()).to_lowercase(),
            r.cycles,
            stage.trace().total_atomic_requests()
        );
    }

    let rewritable = frame.rewritable();
    println!(
        "rewritable stage `{}` atomics = {}",
        rewritable.name(),
        rewritable.trace().total_atomic_requests()
    );
    let thr = BalanceThreshold::new(8).expect("valid");
    for cfg in [GpuConfig::rtx4090_sim(), GpuConfig::rtx3060_sim()] {
        println!("--- {} ---", cfg.name);
        // Every registered technique, parametric families at thr=8.
        for t in Technique::all_with(&[thr]) {
            let sim = Simulator::new(cfg.clone(), t.path()).expect("valid config");
            let (r, _, engine) = sim
                .run_detailed(&t.prepare(rewritable.trace()))
                .expect("drains");
            println!(
                "{:10} cycles={:8} rop_util={:4.2} red_util={:4.2} issue_util={:4.2} \
                 rop_ops={:8} red_ops={:8} atomic_stalls={}",
                t.label(),
                r.cycles,
                r.rop_utilization,
                r.redunit_utilization,
                r.issue_utilization,
                r.counters.rop_lane_ops,
                r.counters.redunit_lane_ops,
                r.counters.atomic_stall_cycles
            );
            println!(
                "{:10} stepped={:8} skip={:4.2} lane_skip={:4.2} lane_skipped={:10} \
                 epochs={:6} epoch_cycles={:8} mean_len={:5.1} max_len={:3} \
                 waits_avoided={:8} boundary_flits={}",
                "",
                engine.cycles_stepped,
                engine.skip_ratio(),
                engine.lane_skip_ratio(),
                engine.lane_steps_skipped,
                engine.epochs,
                engine.epoch_cycles,
                engine.mean_epoch_len(),
                engine.epoch_len_max,
                engine.barrier_waits_avoided,
                engine.boundary_flits
            );
        }
    }
}

//! Throughput smoke benchmark for the parallel simulation engine.
//!
//! Measures simulated cycles per wall-clock second at both parallelism
//! levels — the job pool that fans (config, technique, workload) cells
//! across cores, and the SM sharding inside a single simulation — each
//! against its serial counterpart, and writes the numbers to
//! `BENCH_parallel_sim.json` so the speedup can be tracked across PRs.
//!
//! ```text
//! cargo run --release -p arc-bench --bin perf_smoke [--scale S] [--jobs N]
//! ```
//!
//! Parallel and serial runs produce bit-identical reports (see the
//! determinism tests); only wall-clock time differs. On a single-core
//! machine both speedups are expected to hover around 1.0×.

use std::time::Instant;

use serde::Serialize;

use arc_bench::harness::Cell;
use arc_bench::Harness;
use arc_workloads::Technique;
use gpu_sim::{GpuConfig, Simulator};

#[derive(Serialize)]
struct LevelResult {
    label: String,
    simulated_cycles: u64,
    serial_s: f64,
    parallel_s: f64,
    serial_cycles_per_sec: f64,
    parallel_cycles_per_sec: f64,
    speedup: f64,
}

impl LevelResult {
    fn new(label: String, cycles: u64, serial_s: f64, parallel_s: f64) -> Self {
        LevelResult {
            label,
            simulated_cycles: cycles,
            serial_s,
            parallel_s,
            serial_cycles_per_sec: cycles as f64 / serial_s,
            parallel_cycles_per_sec: cycles as f64 / parallel_s,
            speedup: serial_s / parallel_s,
        }
    }
}

#[derive(Serialize)]
struct SmokeResult {
    bench: &'static str,
    scale: f64,
    machine_cores: usize,
    jobs: usize,
    cell_level: LevelResult,
    sm_level: LevelResult,
    note: &'static str,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.5f64;
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        args.remove(pos);
        scale = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--scale requires a positive number");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    let mut jobs = gpu_sim::default_jobs();
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        args.remove(pos);
        jobs = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--jobs requires a positive integer");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- Level 1: the experiment-cell job pool. -----------------------
    let cfg = GpuConfig::rtx4090_sim();
    let ids = ["3D-LE", "3D-DR", "NV-LE", "PS-SS"];
    let techniques = [
        Technique::Baseline,
        Technique::ArcHw,
        Technique::Lab,
        Technique::Phi,
    ];
    let mut cells: Vec<Cell> = Vec::new();
    for id in ids {
        for t in techniques {
            cells.push((cfg.clone(), t, id.to_string()));
        }
    }
    let id_strings: Vec<String> = ids.iter().map(|s| s.to_string()).collect();

    let run_cells = |jobs: usize| -> (f64, u64) {
        let mut h = Harness::new(scale);
        h.set_jobs(jobs);
        h.trace_batch(&id_strings); // exclude trace building from the timing
        let start = Instant::now();
        h.gradcomp_batch(&cells);
        let elapsed = start.elapsed().as_secs_f64();
        let cycles = cells
            .iter()
            .map(|(cfg, t, id)| h.gradcomp(cfg, *t, id).cycles)
            .sum();
        (elapsed, cycles)
    };
    println!("cell-level: {} cells, serial...", cells.len());
    let (cell_serial_s, cell_cycles) = run_cells(1);
    println!("cell-level: parallel ({jobs} jobs)...");
    let (cell_parallel_s, cell_cycles_par) = run_cells(jobs);
    assert_eq!(cell_cycles, cell_cycles_par, "parallel run changed results");

    // --- Level 2: SM sharding inside one simulation. ------------------
    let traces = arc_workloads::spec("3D-DR")
        .expect("known workload")
        .scaled(scale)
        .build();
    let run_sim = |workers: usize| -> (f64, u64) {
        let sim = Simulator::new(cfg.clone(), Technique::Baseline.path())
            .expect("valid config")
            .with_sm_workers(workers);
        let start = Instant::now();
        let report = sim.run(&traces.gradcomp).expect("kernel drains");
        (start.elapsed().as_secs_f64(), report.cycles)
    };
    println!("sm-level: serial...");
    let (sm_serial_s, sm_cycles) = run_sim(1);
    println!("sm-level: parallel ({jobs} workers)...");
    let (sm_parallel_s, sm_cycles_par) = run_sim(jobs);
    assert_eq!(sm_cycles, sm_cycles_par, "parallel run changed results");

    let result = SmokeResult {
        bench: "parallel_sim_throughput",
        scale,
        machine_cores: cores,
        jobs,
        cell_level: LevelResult::new(
            format!("{} experiment cells", cells.len()),
            cell_cycles,
            cell_serial_s,
            cell_parallel_s,
        ),
        sm_level: LevelResult::new(
            "3D-DR gradcomp, sharded SMs".to_string(),
            sm_cycles,
            sm_serial_s,
            sm_parallel_s,
        ),
        note: "results are bit-identical between serial and parallel runs; \
               speedups near 1.0 are expected when machine_cores == 1",
    };
    let pretty = serde_json::to_string_pretty(&result).expect("serializable");
    println!("{pretty}");
    match std::fs::write("BENCH_parallel_sim.json", format!("{pretty}\n")) {
        Ok(()) => println!("wrote BENCH_parallel_sim.json"),
        Err(e) => eprintln!("could not write BENCH_parallel_sim.json: {e}"),
    }
}

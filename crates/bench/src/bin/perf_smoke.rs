//! Throughput smoke benchmark and perf-regression gate for the parallel
//! simulation engine.
//!
//! Measures simulated cycles per wall-clock second at both parallelism
//! levels — the job pool that fans (config, technique, workload) cells
//! across cores, and the SM sharding inside a single simulation — each
//! against its serial counterpart, and appends the sample to
//! `BENCH_parallel_sim.json` so the file becomes a perf trajectory
//! across PRs.
//!
//! ```text
//! cargo run --release -p arc-bench --bin perf_smoke \
//!     [--scale S] [--jobs N] [--gate TOL] [--out PATH]
//! ```
//!
//! `--gate TOL` turns the run into a CI gate: the fresh sample is
//! compared against the most recent **gateable** recorded sample with
//! the same scale, job count, and core count, and the run fails
//! (exit 1, sample not recorded) if serial throughput dropped by more
//! than `TOL` (e.g. `0.2` = 20%) at either parallelism level, **or** on
//! any fast-forward workload's FF-on throughput, **or** if any `passes`
//! workload's pass overhead (`wall_on_s / wall_off_s`) grew by more
//! than `TOL` over the baseline's ratio. On a host with more
//! than one core (and more than one worker) the gate additionally
//! requires `sm_level.speedup > 1.0` — epoch-synchronized SM sharding
//! must beat serial; on a single-core (or single-job) host the gate is
//! skipped entirely and the sample carries an explicit note saying so,
//! because gating a parallelism benchmark there measures scheduler
//! noise. Such gate-skipped samples are also never used as baselines:
//! the search seeks backwards past them to the most recent sample
//! recorded as meaningful signal (see [`find_baseline`]). With no
//! gateable baseline the gate records the sample and passes. The
//! legacy formats of `BENCH_parallel_sim.json` (single object, and
//! trajectories recorded before the fast-forward section existed) are
//! read transparently.
//!
//! Besides the two parallelism levels, each sample records the
//! event-driven fast-forward engine (`ARC_FF`, see `gpu-sim`): for a
//! hot-address storm, a full-densify sweep, and the 3D-DR gradient
//! kernel, the skip ratio (`cycles_stepped` vs `cycles_simulated`) and
//! the FF-on / FF-off wall-clock ratio.
//!
//! Each sample records a `passes` section: the hot-address storm and
//! the 3D-DR gradient kernel simulated with the trace-IR optimizer
//! pipeline off and with `ARC_PASSES=all`, recording the
//! simulated-cycle reduction, both wall-clock times, and the pipeline's
//! own cost (`pass_apply_s`) — the perf-trajectory axis for the
//! optimizer. A `pass_cache` section runs the full cell grid with
//! `ARC_PASSES=all` through the harness and records how far its
//! memoization amortizes the fused traversals (traversal counts come
//! from `arc_core::passes::trace_traversals`).
//!
//! Each sample records a `frame` section: the tile-binned 3DGS frame
//! (`3D-TB`) simulated stage by stage, recording each kernel's baseline
//! cycles and — under the ARC-HW path — how its atomic lane ops split
//! between the near-bank reduction units and the conventional ROP path.
//! The radix sort's histogram kernel must show nonzero reduction-unit
//! routing, pinning that ARC actually bites on the sort front-end.
//!
//! Each sample also measures the persistent result store
//! (`sim-service`): the cell grid runs cold then warm against a
//! throwaway store, recording both wall-clock times and the warm-pass
//! hit ratio, so the cache win is tracked in the trajectory alongside
//! `sm_epoch` and `fast_forward`.
//!
//! Parallel and serial runs — and FF-on and FF-off runs, and
//! store-served and freshly simulated runs — produce bit-identical
//! reports (see the determinism and conformance tests); only
//! wall-clock time differs. On a single-core machine both parallelism
//! speedups are expected to hover around 1.0×.

use std::process::ExitCode;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use arc_bench::harness::Cell;
use arc_bench::Harness;
use arc_core::passes::PassPipeline;
use arc_workloads::Technique;
use gpu_sim::{AtomicPath, GpuConfig, Simulator, TechniquePath};
use warp_trace::{AtomicInstr, KernelKind, KernelTrace, WarpTraceBuilder};

const DEFAULT_OUT: &str = "BENCH_parallel_sim.json";
const NOTE: &str = "results are bit-identical between serial and parallel runs; \
                    speedups near 1.0 are expected when machine_cores == 1";
/// Cap on recorded history; the oldest samples are dropped beyond it.
const MAX_HISTORY: usize = 64;

#[derive(Clone, Serialize, Deserialize)]
struct LevelResult {
    label: String,
    simulated_cycles: u64,
    serial_s: f64,
    parallel_s: f64,
    serial_cycles_per_sec: f64,
    parallel_cycles_per_sec: f64,
    speedup: f64,
}

impl LevelResult {
    fn new(label: String, cycles: u64, serial_s: f64, parallel_s: f64) -> Self {
        LevelResult {
            label,
            simulated_cycles: cycles,
            serial_s,
            parallel_s,
            serial_cycles_per_sec: cycles as f64 / serial_s,
            parallel_cycles_per_sec: cycles as f64 / parallel_s,
            speedup: serial_s / parallel_s,
        }
    }
}

/// One fast-forward measurement: the same kernel run with the
/// event-driven engine on and off, plus the engine's own accounting.
#[derive(Clone, Serialize, Deserialize)]
struct FastForwardResult {
    label: String,
    cycles_simulated: u64,
    /// Cycles the FF-on run actually stepped one at a time; the rest
    /// were covered by jumps and the lane active-set.
    cycles_stepped: u64,
    /// `1 - cycles_stepped / cycles_simulated`.
    skip_ratio: f64,
    ff_on_s: f64,
    ff_off_s: f64,
    ff_on_cycles_per_sec: f64,
    /// FF-off wall-clock over FF-on wall-clock (higher is better).
    ff_speedup: f64,
    /// SM-cycle steps the active set skipped — the second FF win, which
    /// `skip_ratio` is blind to (dense storms jump no cycles yet skip
    /// most lane steps). Zero in samples recorded before the counter.
    #[serde(default)]
    lane_steps_skipped: u64,
    /// `lane_steps_skipped / (cycles_stepped * SMs)`.
    #[serde(default)]
    lane_skip_ratio: f64,
}

impl FastForwardResult {
    fn new(label: String, stats: gpu_sim::EngineStats, ff_on_s: f64, ff_off_s: f64) -> Self {
        FastForwardResult {
            label,
            cycles_simulated: stats.cycles_simulated,
            cycles_stepped: stats.cycles_stepped,
            skip_ratio: stats.skip_ratio(),
            ff_on_s,
            ff_off_s,
            ff_on_cycles_per_sec: stats.cycles_simulated as f64 / ff_on_s,
            ff_speedup: ff_off_s / ff_on_s,
            lane_steps_skipped: stats.lane_steps_skipped,
            lane_skip_ratio: stats.lane_skip_ratio(),
        }
    }
}

/// Engine accounting for the epoch-synchronized sm-level run: how much
/// of the kernel ran inside privately-stepped epochs instead of paying
/// the per-cycle barrier round-trip.
#[derive(Clone, Serialize, Deserialize)]
struct EpochResult {
    epochs: u64,
    epoch_cycles: u64,
    mean_epoch_len: f64,
    epoch_len_max: u64,
    barrier_waits_avoided: u64,
    boundary_flits: u64,
}

impl EpochResult {
    fn new(stats: &gpu_sim::EngineStats) -> Self {
        EpochResult {
            epochs: stats.epochs,
            epoch_cycles: stats.epoch_cycles,
            mean_epoch_len: stats.mean_epoch_len(),
            epoch_len_max: stats.epoch_len_max,
            barrier_waits_avoided: stats.barrier_waits_avoided,
            boundary_flits: stats.boundary_flits,
        }
    }
}

/// One trace-IR optimizer measurement: the same kernel simulated with
/// the pass pipeline off and with `ARC_PASSES=all`, recording the
/// simulated-cycle reduction the optimized trace buys and both
/// wall-clock times (the pass-on time includes running the pipeline
/// itself).
#[derive(Clone, Serialize, Deserialize)]
struct PassesResult {
    label: String,
    /// Canonical pipeline key (`PassPipeline::key`), e.g.
    /// `dead-lane,hoist,coalesce,fma`.
    pass_set: String,
    cycles_off: u64,
    cycles_on: u64,
    /// `1 - cycles_on / cycles_off` (higher = the passes pay off).
    cycle_reduction: f64,
    /// Issue slots the pipeline removed from the trace.
    issue_slots_removed: u64,
    wall_off_s: f64,
    wall_on_s: f64,
    /// Time spent running the pass pipeline itself (included in
    /// `wall_on_s`); zero in samples recorded before the metric.
    #[serde(default)]
    pass_apply_s: f64,
}

/// Memoized pass application measured over the full cell grid: with
/// the harness's `PassCache`, the fused traversal runs once per
/// distinct kernel trace instead of once per cell.
#[derive(Clone, Serialize, Deserialize)]
struct PassCacheResult {
    cells: usize,
    /// Trace traversals the grid actually performed (one per fused
    /// `PassPipeline` run; warm cache hits perform none).
    traversals: u64,
    /// Traversals the same grid would perform without memoization —
    /// one fused run per cell.
    traversals_uncached: u64,
    /// `traversals_uncached / traversals` (higher = memoization pays).
    amortization: f64,
    wall_s: f64,
}

/// The persistent result store measured cold (every cell simulated and
/// written) and warm (every cell served from disk) over the same cell
/// grid, each pass through a fresh [`Harness`] so the in-memory caches
/// cannot mask the store.
#[derive(Clone, Serialize, Deserialize)]
struct StoreResult {
    cells: usize,
    cold_s: f64,
    warm_s: f64,
    /// Cold wall-clock over warm (higher = the store pays off).
    speedup: f64,
    warm_hits: u64,
    warm_misses: u64,
    /// `warm_hits / (warm_hits + warm_misses)`; 1.0 means the warm pass
    /// never touched the simulator.
    hit_ratio: f64,
}

impl StoreResult {
    fn new(cells: usize, cold_s: f64, warm_s: f64, warm_hits: u64, warm_misses: u64) -> Self {
        let lookups = warm_hits + warm_misses;
        StoreResult {
            cells,
            cold_s,
            warm_s,
            speedup: cold_s / warm_s,
            warm_hits,
            warm_misses,
            hit_ratio: if lookups == 0 {
                0.0
            } else {
                warm_hits as f64 / lookups as f64
            },
        }
    }
}

/// One kernel stage of the tile-binned frame: baseline cycles plus the
/// ARC-HW atomic-path routing split on the stage's lane ops.
#[derive(Clone, Serialize, Deserialize)]
struct FrameStageResult {
    stage: String,
    role: String,
    cycles: u64,
    atomic_requests: u64,
    /// ARC-HW lane ops absorbed by the near-bank reduction units.
    redunit_lane_ops: u64,
    /// ARC-HW lane ops that stayed on the conventional ROP path.
    rop_lane_ops: u64,
}

/// The multi-kernel frame measurement (see the module docs).
#[derive(Clone, Serialize, Deserialize)]
struct FrameResult {
    workload: String,
    stages: Vec<FrameStageResult>,
    wall_s: f64,
}

/// One measurement of both parallelism levels and the fast-forward
/// engine.
#[derive(Clone, Serialize, Deserialize)]
struct Sample {
    scale: f64,
    machine_cores: usize,
    jobs: usize,
    cell_level: LevelResult,
    sm_level: LevelResult,
    fast_forward: Vec<FastForwardResult>,
    /// Epoch-synchronization accounting for the sm-level run; `None` in
    /// samples recorded before epoch mode existed.
    #[serde(default)]
    sm_epoch: Option<EpochResult>,
    /// Result-store cold/warm measurement; `None` in samples recorded
    /// before the store existed.
    #[serde(default)]
    store: Option<StoreResult>,
    /// Trace-IR optimizer pass measurements (`ARC_PASSES=all` vs off);
    /// empty in samples recorded before the pipeline existed.
    #[serde(default)]
    passes: Vec<PassesResult>,
    /// Pass-memoization amortization over the cell grid; `None` in
    /// samples recorded before the harness pass cache existed.
    #[serde(default)]
    pass_cache: Option<PassCacheResult>,
    /// Per-stage tile-binned frame measurement; `None` in samples
    /// recorded before multi-kernel frames existed.
    #[serde(default)]
    frame: Option<FrameResult>,
    /// Gating decisions worth preserving next to the numbers they
    /// affected (e.g. "not gated: single-core host").
    #[serde(default)]
    notes: Vec<String>,
}

impl Sample {
    /// Whether `other` was measured under comparable conditions —
    /// wall-clock throughput is only gateable against the same
    /// workload size on the same class of machine.
    fn comparable(&self, other: &Sample) -> bool {
        (self.scale - other.scale).abs() < 1e-12
            && self.jobs == other.jobs
            && self.machine_cores == other.machine_cores
    }

    /// Whether this sample's throughput numbers were recorded as
    /// meaningful signal. A sample measured on a single-core host or
    /// with a single job skipped the gate when it was taken (its
    /// `notes` say "not gated"), so its wall-clock numbers are
    /// scheduler noise and it must never anchor a future gate — even
    /// after migration strips the structural evidence, the note
    /// survives.
    fn gateable(&self) -> bool {
        self.machine_cores > 1
            && self.jobs > 1
            && self.notes.iter().all(|n| !n.contains("not gated"))
    }
}

/// The most recent sample `fresh` can be gated against: comparable
/// measurement conditions *and* recorded as meaningful signal. The
/// search seeks backwards past gate-skipped samples (see
/// [`Sample::gateable`]) instead of blindly taking the last comparable
/// entry.
fn find_baseline<'a>(history: &'a [Sample], fresh: &Sample) -> Option<&'a Sample> {
    history
        .iter()
        .rev()
        .find(|prev| fresh.comparable(prev) && prev.gateable())
}

/// The on-disk trajectory: every recorded sample, oldest first.
#[derive(Serialize, Deserialize)]
struct Trajectory {
    bench: String,
    note: String,
    history: Vec<Sample>,
}

impl Trajectory {
    fn empty() -> Self {
        Trajectory {
            bench: "parallel_sim_throughput".to_string(),
            note: NOTE.to_string(),
            history: Vec::new(),
        }
    }
}

/// A sample recorded before the fast-forward section existed. The JSON
/// shim errors on missing fields (no `#[serde(default)]`), so the old
/// layout is parsed explicitly and migrated with an empty `fast_forward`
/// list — the gate then simply has no FF baseline to compare against.
#[derive(Deserialize)]
struct LegacySample {
    scale: f64,
    machine_cores: usize,
    jobs: usize,
    cell_level: LevelResult,
    sm_level: LevelResult,
}

impl LegacySample {
    fn migrate(self) -> Sample {
        Sample {
            scale: self.scale,
            machine_cores: self.machine_cores,
            jobs: self.jobs,
            cell_level: self.cell_level,
            sm_level: self.sm_level,
            fast_forward: Vec::new(),
            sm_epoch: None,
            store: None,
            passes: Vec::new(),
            pass_cache: None,
            frame: None,
            notes: Vec::new(),
        }
    }
}

/// A trajectory whose history predates the fast-forward section.
#[derive(Deserialize)]
struct LegacyTrajectory {
    bench: String,
    note: String,
    history: Vec<LegacySample>,
}

/// The pre-trajectory single-object layout, kept readable so existing
/// baselines seed the history.
#[derive(Deserialize)]
struct LegacySmoke {
    bench: String,
    scale: f64,
    machine_cores: usize,
    jobs: usize,
    cell_level: LevelResult,
    sm_level: LevelResult,
    note: String,
}

fn load_trajectory(path: &str) -> Trajectory {
    let Ok(data) = std::fs::read_to_string(path) else {
        return Trajectory::empty();
    };
    if let Ok(t) = serde_json::from_str::<Trajectory>(&data) {
        return t;
    }
    if let Ok(old) = serde_json::from_str::<LegacyTrajectory>(&data) {
        return Trajectory {
            bench: old.bench,
            note: old.note,
            history: old.history.into_iter().map(LegacySample::migrate).collect(),
        };
    }
    if let Ok(old) = serde_json::from_str::<LegacySmoke>(&data) {
        return Trajectory {
            bench: old.bench,
            note: old.note,
            history: vec![LegacySample {
                scale: old.scale,
                machine_cores: old.machine_cores,
                jobs: old.jobs,
                cell_level: old.cell_level,
                sm_level: old.sm_level,
            }
            .migrate()],
        };
    }
    eprintln!("warning: could not parse {path}; starting a fresh history");
    Trajectory::empty()
}

/// A hot-address storm: every warp hammers one gradient word with
/// full-warp atomics — one partition's ROP queue absorbs everything.
fn storm_trace(warps: usize, atomics: usize) -> KernelTrace {
    let w = (0..warps)
        .map(|_| {
            let mut b = WarpTraceBuilder::new();
            for _ in 0..atomics {
                b.compute_fp32(1)
                    .atomic(AtomicInstr::same_address(0x100, &[0.5; 32]));
            }
            b.finish()
        })
        .collect();
    KernelTrace::new("ff-hot-storm", KernelKind::GradCompute, w)
}

/// A full-densify sweep: full-warp single-address atomics, each
/// instruction on a distinct word, spreading across partitions.
fn densify_trace(warps: usize, atomics: usize) -> KernelTrace {
    let w = (0..warps)
        .map(|wi| {
            let mut b = WarpTraceBuilder::new();
            for a in 0..atomics {
                let addr = ((wi * atomics + a) as u64) * 256;
                b.compute_fp32(1)
                    .atomic(AtomicInstr::same_address(addr, &[0.5; 32]));
            }
            b.finish()
        })
        .collect();
    KernelTrace::new("ff-full-densify", KernelKind::GradCompute, w)
}

/// Times one kernel with fast-forward on and off (serial SM loop, so
/// the measurement isolates the FF engine from worker scheduling) and
/// checks the reports agree bit-for-bit.
fn measure_ff(label: &str, cfg: &GpuConfig, trace: &KernelTrace) -> FastForwardResult {
    let run = |ff: bool| {
        let sim = Simulator::new(cfg.clone(), AtomicPath::Baseline)
            .expect("valid config")
            .with_fast_forward(ff);
        let start = Instant::now();
        let (report, _, stats) = sim.run_detailed(trace).expect("kernel drains");
        (start.elapsed().as_secs_f64(), report, stats)
    };
    let (ff_on_s, on_report, on_stats) = run(true);
    let (ff_off_s, off_report, off_stats) = run(false);
    assert_eq!(
        on_report, off_report,
        "{label}: fast-forward changed results"
    );
    assert_eq!(
        off_stats.cycles_stepped, off_stats.cycles_simulated,
        "{label}: FF-off run skipped cycles"
    );
    FastForwardResult::new(label.to_string(), on_stats, ff_on_s, ff_off_s)
}

/// Simulates one kernel with the pass pipeline off and with every pass
/// on, timing both (the pass-on wall clock includes the pipeline run
/// itself — the optimizer must pay for its own analysis).
fn measure_passes(label: &str, cfg: &GpuConfig, trace: &KernelTrace) -> PassesResult {
    let pipeline = PassPipeline::all();
    let sim = Simulator::new(cfg.clone(), AtomicPath::Baseline).expect("valid config");

    let start = Instant::now();
    let off = sim.run(trace).expect("kernel drains");
    let wall_off_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let (piped, stats) = pipeline.run(trace);
    let pass_apply_s = start.elapsed().as_secs_f64();
    let on = sim.run(&piped).expect("kernel drains");
    let wall_on_s = start.elapsed().as_secs_f64();

    PassesResult {
        label: label.to_string(),
        pass_set: pipeline.key(),
        cycles_off: off.cycles,
        cycles_on: on.cycles,
        cycle_reduction: 1.0 - on.cycles as f64 / off.cycles.max(1) as f64,
        issue_slots_removed: stats.iter().map(|(_, s)| s.issue_slots_removed).sum(),
        wall_off_s,
        wall_on_s,
        pass_apply_s,
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.5f64;
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        args.remove(pos);
        scale = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--scale requires a positive number");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    let mut jobs = gpu_sim::default_jobs();
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        args.remove(pos);
        jobs = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--jobs requires a positive integer");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    let mut gate: Option<f64> = None;
    if let Some(pos) = args.iter().position(|a| a == "--gate") {
        args.remove(pos);
        gate = Some(
            args.get(pos)
                .and_then(|s| s.parse().ok())
                .filter(|t: &f64| (0.0..1.0).contains(t))
                .unwrap_or_else(|| {
                    eprintln!("--gate requires a tolerance in [0, 1), e.g. 0.2");
                    std::process::exit(2);
                }),
        );
        args.remove(pos);
    }
    let mut out = DEFAULT_OUT.to_string();
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        args.remove(pos);
        out = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--out requires a path");
            std::process::exit(2);
        });
        args.remove(pos);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- Level 1: the experiment-cell job pool. -----------------------
    let cfg = GpuConfig::rtx4090_sim();
    let ids = ["3D-LE", "3D-DR", "NV-LE", "PS-SS"];
    let techniques = [
        Technique::Baseline,
        Technique::ArcHw,
        Technique::Lab,
        Technique::Phi,
    ];
    let mut cells: Vec<Cell> = Vec::new();
    for id in ids {
        for t in techniques {
            cells.push((cfg.clone(), t, id.to_string()));
        }
    }
    let id_strings: Vec<String> = ids.iter().map(|s| s.to_string()).collect();

    let run_cells = |jobs: usize| -> (f64, u64) {
        let mut h = Harness::new(scale);
        h.set_jobs(jobs);
        h.trace_batch(&id_strings); // exclude trace building from the timing
        let start = Instant::now();
        h.gradcomp_batch(&cells);
        let elapsed = start.elapsed().as_secs_f64();
        let cycles = cells
            .iter()
            .map(|(cfg, t, id)| h.gradcomp(cfg, *t, id).cycles)
            .sum();
        (elapsed, cycles)
    };
    println!("cell-level: {} cells, serial...", cells.len());
    let (cell_serial_s, cell_cycles) = run_cells(1);
    println!("cell-level: parallel ({jobs} jobs)...");
    let (cell_parallel_s, cell_cycles_par) = run_cells(jobs);
    assert_eq!(cell_cycles, cell_cycles_par, "parallel run changed results");

    // --- Level 2: SM sharding inside one simulation. ------------------
    let traces = arc_workloads::spec("3D-DR")
        .expect("known workload")
        .scaled(scale)
        .build();
    let run_sim = |workers: usize| -> (f64, u64, gpu_sim::EngineStats) {
        let sim = Simulator::new(cfg.clone(), Technique::Baseline.path())
            .expect("valid config")
            .with_sm_workers(workers);
        let start = Instant::now();
        let (report, _, stats) = sim.run_detailed(traces.gradcomp()).expect("kernel drains");
        (start.elapsed().as_secs_f64(), report.cycles, stats)
    };
    println!("sm-level: serial...");
    let (sm_serial_s, sm_cycles, _) = run_sim(1);
    println!("sm-level: parallel ({jobs} workers)...");
    let (sm_parallel_s, sm_cycles_par, sm_stats) = run_sim(jobs);
    assert_eq!(sm_cycles, sm_cycles_par, "parallel run changed results");
    println!(
        "sm-level: {} epochs covered {} of {} cycles \
         (mean len {:.1}, max {}), {} barrier waits avoided",
        sm_stats.epochs,
        sm_stats.epoch_cycles,
        sm_stats.cycles_simulated,
        sm_stats.mean_epoch_len(),
        sm_stats.epoch_len_max,
        sm_stats.barrier_waits_avoided
    );

    // --- Level 3: the event-driven fast-forward engine. ---------------
    let atomics = ((64.0 * scale).round() as usize).max(4);
    let mut fast_forward = Vec::new();
    for (label, trace) in [
        ("hot-address storm", storm_trace(24, atomics)),
        ("full densify", densify_trace(24, atomics)),
        ("3D-DR gradcomp", traces.gradcomp().clone()),
    ] {
        println!("fast-forward: {label}...");
        let r = measure_ff(label, &cfg, &trace);
        println!(
            "  skip ratio {:.3} ({} of {} cycles stepped), \
             lane skip ratio {:.3} ({} lane steps skipped), {:.2}x wall-clock",
            r.skip_ratio,
            r.cycles_stepped,
            r.cycles_simulated,
            r.lane_skip_ratio,
            r.lane_steps_skipped,
            r.ff_speedup
        );
        fast_forward.push(r);
    }

    // --- Level 4: the trace-IR optimizer pass pipeline. ---------------
    let mut passes = Vec::new();
    for (label, trace) in [
        ("hot-address storm", &storm_trace(24, atomics)),
        ("3D-DR gradcomp", traces.gradcomp()),
    ] {
        println!("passes: {label} (ARC_PASSES=all vs off)...");
        let r = measure_passes(label, &cfg, trace);
        println!(
            "  {} -> {} cycles ({:.1}% fewer), {} issue slots removed",
            r.cycles_off,
            r.cycles_on,
            100.0 * r.cycle_reduction,
            r.issue_slots_removed
        );
        passes.push(r);
    }

    // --- Level 4b: pass memoization across the cell grid. -------------
    // The same 16-cell grid with `ARC_PASSES=all` through a fresh
    // harness: the pass cache must collapse per-cell pipeline runs to
    // one fused traversal per distinct kernel trace.
    let pass_cache = {
        println!(
            "pass-cache: {} cells with ARC_PASSES=all ({jobs} jobs)...",
            cells.len()
        );
        let mut h = Harness::new(scale);
        h.set_jobs(jobs);
        h.set_passes(PassPipeline::all());
        h.trace_batch(&id_strings);
        let before = arc_core::passes::trace_traversals();
        let start = Instant::now();
        h.gradcomp_batch(&cells);
        let wall_s = start.elapsed().as_secs_f64();
        let traversals = arc_core::passes::trace_traversals() - before;
        let traversals_uncached = cells.len() as u64;
        let r = PassCacheResult {
            cells: cells.len(),
            traversals,
            traversals_uncached,
            amortization: traversals_uncached as f64 / traversals.max(1) as f64,
            wall_s,
        };
        println!(
            "  {} traversals for {} cells ({:.1}x amortization, {} memoized traces)",
            r.traversals,
            r.cells,
            r.amortization,
            h.pass_cache_len()
        );
        r
    };

    // --- Level 5: the persistent result store (cold vs warm). ---------
    let store_dir =
        std::env::temp_dir().join(format!("arc-perf-smoke-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_path = store_dir.to_str().expect("temp dir is utf-8").to_string();
    // Each pass gets a fresh harness so only the on-disk store carries
    // state between them; trace building is excluded from the timing
    // like in the cell-level measurement.
    let run_store_pass = |label: &str| -> (f64, u64, u64, u64) {
        println!(
            "store: {label} pass ({} cells, {jobs} jobs)...",
            cells.len()
        );
        let mut h = Harness::new(scale);
        h.set_jobs(jobs);
        h.set_store_dir(&store_path).expect("temp store opens");
        h.trace_batch(&id_strings);
        let start = Instant::now();
        h.gradcomp_batch(&cells);
        let elapsed = start.elapsed().as_secs_f64();
        let cycles = cells
            .iter()
            .map(|(cfg, t, id)| h.gradcomp(cfg, *t, id).cycles)
            .sum();
        let stats = h.store_stats().expect("store was configured");
        (elapsed, cycles, stats.hits, stats.misses)
    };
    let (store_cold_s, store_cycles, _, _) = run_store_pass("cold");
    let (store_warm_s, store_cycles_warm, warm_hits, warm_misses) = run_store_pass("warm");
    let _ = std::fs::remove_dir_all(&store_dir);
    assert_eq!(store_cycles, store_cycles_warm, "store hit changed results");
    assert_eq!(
        store_cycles, cell_cycles,
        "store-backed run changed results"
    );
    let store = StoreResult::new(
        cells.len(),
        store_cold_s,
        store_warm_s,
        warm_hits,
        warm_misses,
    );
    println!(
        "store: warm {:.3}s vs cold {:.3}s ({:.1}x), hit ratio {:.2}",
        store.warm_s, store.cold_s, store.speedup, store.hit_ratio
    );

    // --- Level 6: the multi-kernel tile-binned frame. -----------------
    let frame = {
        println!("frame: 3D-TB per-stage (baseline cycles + ARC-HW routing)...");
        let tb = arc_workloads::spec("3D-TB")
            .expect("tile-binned workload registered")
            .scaled(scale)
            .build();
        let base_sim =
            Simulator::new(cfg.clone(), Technique::Baseline.path()).expect("valid config");
        let hw_sim = Simulator::new(cfg.clone(), Technique::ArcHw.path()).expect("valid config");
        let start = Instant::now();
        let stages: Vec<FrameStageResult> = tb
            .stages()
            .iter()
            .map(|s| {
                let base = base_sim.run(s.trace()).expect("stage drains");
                let hw = hw_sim
                    .run(&Technique::ArcHw.prepare_cow(s.trace()))
                    .expect("stage drains");
                FrameStageResult {
                    stage: s.name().to_string(),
                    role: format!("{:?}", s.role()).to_lowercase(),
                    cycles: base.cycles,
                    atomic_requests: s.trace().total_atomic_requests(),
                    redunit_lane_ops: hw.counters.redunit_lane_ops,
                    rop_lane_ops: hw.counters.rop_lane_ops,
                }
            })
            .collect();
        let wall_s = start.elapsed().as_secs_f64();
        for st in &stages {
            println!(
                "  {:16} {:10} cycles={:8} atomics={:8} arc_red={:8} rop={:8}",
                st.stage,
                st.role,
                st.cycles,
                st.atomic_requests,
                st.redunit_lane_ops,
                st.rop_lane_ops
            );
        }
        let hist = stages
            .iter()
            .find(|s| s.stage == "radix-histogram")
            .expect("sort kernel present in the tile-binned frame");
        assert!(
            hist.redunit_lane_ops > 0,
            "ARC-HW must route the radix histogram's atomics through the reduction units"
        );
        FrameResult {
            workload: "3D-TB".to_string(),
            stages,
            wall_s,
        }
    };

    let mut sample = Sample {
        scale,
        machine_cores: cores,
        jobs,
        cell_level: LevelResult::new(
            format!("{} experiment cells", cells.len()),
            cell_cycles,
            cell_serial_s,
            cell_parallel_s,
        ),
        sm_level: LevelResult::new(
            "3D-DR gradcomp, sharded SMs".to_string(),
            sm_cycles,
            sm_serial_s,
            sm_parallel_s,
        ),
        fast_forward,
        sm_epoch: Some(EpochResult::new(&sm_stats)),
        store: Some(store),
        passes,
        pass_cache: Some(pass_cache),
        frame: Some(frame),
        notes: Vec::new(),
    };
    // A parallelism speedup measured on a single core (or with a single
    // worker) is scheduling noise, not signal — record it, but say so
    // and never gate on it (nor, via `find_baseline`, against it).
    let sm_speedup_meaningful = cores > 1 && jobs > 1;
    let skip_note = format!(
        "not gated: machine_cores == {cores}, jobs == {jobs} \
         (a parallelism benchmark needs > 1 of both)"
    );
    if !sm_speedup_meaningful {
        sample.notes.push(skip_note.clone());
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&sample).expect("serializable")
    );

    let mut trajectory = load_trajectory(&out);

    // --- Gate: compare against the last gateable sample. --------------
    if let Some(tol) = gate {
        if !sm_speedup_meaningful {
            // Nothing measured here is gateable signal, and
            // `find_baseline` will never hand this sample to a future
            // gate either — record it and pass.
            println!("gate: skipped — {skip_note}");
        } else if sample.sm_level.speedup <= 1.0 {
            // Epoch-synchronized sharding must actually beat serial
            // where the hardware gives it a chance.
            eprintln!(
                "gate: FAIL — sm-level speedup {:.2}x <= 1.0 with {jobs} workers \
                 on a {cores}-core host; sample not recorded",
                sample.sm_level.speedup
            );
            return ExitCode::FAILURE;
        } else {
            match find_baseline(&trajectory.history, &sample) {
                None => println!(
                    "gate: no gateable baseline in {out} \
                 (scale {scale}, jobs {jobs}, {cores} cores) — recording first sample"
                ),
                Some(prev) => {
                    let mut regressed = false;
                    for (level, new, old) in [
                        ("cell-level", &sample.cell_level, &prev.cell_level),
                        ("sm-level", &sample.sm_level, &prev.sm_level),
                    ] {
                        let floor = old.serial_cycles_per_sec * (1.0 - tol);
                        let ratio = new.serial_cycles_per_sec / old.serial_cycles_per_sec;
                        println!(
                            "gate: {level} serial {:.0} cycles/s vs baseline {:.0} \
                         ({:+.1}%, floor {:.0})",
                            new.serial_cycles_per_sec,
                            old.serial_cycles_per_sec,
                            100.0 * (ratio - 1.0),
                            floor
                        );
                        if new.serial_cycles_per_sec < floor {
                            regressed = true;
                        }
                    }
                    // Fast-forward gate: the FF-on number is the one every
                    // consumer actually sees (FF defaults on), so it is the
                    // gated quantity. Labels only present on one side (e.g.
                    // a migrated pre-FF baseline) are skipped.
                    for new in &sample.fast_forward {
                        let Some(old) = prev.fast_forward.iter().find(|o| o.label == new.label)
                        else {
                            continue;
                        };
                        let floor = old.ff_on_cycles_per_sec * (1.0 - tol);
                        let ratio = new.ff_on_cycles_per_sec / old.ff_on_cycles_per_sec;
                        println!(
                            "gate: ff {} {:.0} cycles/s vs baseline {:.0} \
                         ({:+.1}%, floor {:.0})",
                            new.label,
                            new.ff_on_cycles_per_sec,
                            old.ff_on_cycles_per_sec,
                            100.0 * (ratio - 1.0),
                            floor
                        );
                        if new.ff_on_cycles_per_sec < floor {
                            regressed = true;
                        }
                    }
                    // Pass-overhead gate: running the optimizer must not
                    // get relatively more expensive — wall_on_s/wall_off_s
                    // per workload must stay within tolerance of the
                    // baseline's ratio. Labels only on one side (migrated
                    // pre-pipeline baselines) are skipped.
                    for new in &sample.passes {
                        let Some(old) = prev.passes.iter().find(|o| o.label == new.label) else {
                            continue;
                        };
                        let new_overhead = new.wall_on_s / new.wall_off_s;
                        let old_overhead = old.wall_on_s / old.wall_off_s;
                        let ceiling = old_overhead * (1.0 + tol);
                        println!(
                            "gate: passes {} overhead {:.2}x vs baseline {:.2}x \
                         ({:+.1}%, ceiling {:.2}x)",
                            new.label,
                            new_overhead,
                            old_overhead,
                            100.0 * (new_overhead / old_overhead - 1.0),
                            ceiling
                        );
                        if new_overhead > ceiling {
                            regressed = true;
                        }
                    }
                    if regressed {
                        eprintln!(
                            "gate: FAIL — throughput regressed more than {:.0}%; \
                         sample not recorded",
                            100.0 * tol
                        );
                        return ExitCode::FAILURE;
                    }
                    println!("gate: PASS (tolerance {:.0}%)", 100.0 * tol);
                }
            }
        }
    }

    trajectory.history.push(sample);
    if trajectory.history.len() > MAX_HISTORY {
        let excess = trajectory.history.len() - MAX_HISTORY;
        trajectory.history.drain(..excess);
    }
    let pretty = serde_json::to_string_pretty(&trajectory).expect("serializable");
    match std::fs::write(&out, format!("{pretty}\n")) {
        Ok(()) => println!("recorded sample {} in {out}", trajectory.history.len()),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(serial_s: f64) -> LevelResult {
        LevelResult::new("test".to_string(), 1_000, serial_s, serial_s / 2.0)
    }

    fn sample(cores: usize, jobs: usize, notes: Vec<String>) -> Sample {
        Sample {
            scale: 0.35,
            machine_cores: cores,
            jobs,
            cell_level: level(1.0),
            sm_level: level(1.0),
            fast_forward: Vec::new(),
            sm_epoch: None,
            store: None,
            passes: Vec::new(),
            pass_cache: None,
            frame: None,
            notes,
        }
    }

    #[test]
    fn baseline_is_the_most_recent_comparable_sample() {
        let history = vec![
            sample(8, 2, Vec::new()),
            sample(8, 4, Vec::new()), // different jobs: not comparable
            sample(8, 2, Vec::new()),
        ];
        let fresh = sample(8, 2, Vec::new());
        let picked = find_baseline(&history, &fresh).expect("a baseline exists");
        assert!(
            std::ptr::eq(picked, &history[2]),
            "most recent comparable wins"
        );
    }

    #[test]
    fn gate_skipped_samples_are_sought_past() {
        // The most recent comparable sample carries a gate-skip note;
        // the search must seek backwards to the older clean one instead
        // of blindly taking the last entry.
        let history = vec![
            sample(8, 2, Vec::new()),
            sample(
                8,
                2,
                vec!["not gated: machine load made this run noise".to_string()],
            ),
        ];
        let fresh = sample(8, 2, Vec::new());
        let picked = find_baseline(&history, &fresh).expect("the clean sample anchors");
        assert!(std::ptr::eq(picked, &history[0]));
        assert!(picked.notes.is_empty());
    }

    #[test]
    fn single_core_runs_never_anchor_the_gate() {
        // A single-core (or single-job) sample is scheduler noise even
        // when its notes were lost to a legacy migration: the
        // structural check alone rejects it.
        let history = vec![sample(1, 2, Vec::new()), sample(8, 1, Vec::new())];
        assert!(find_baseline(&history, &sample(1, 2, Vec::new())).is_none());
        assert!(find_baseline(&history, &sample(8, 1, Vec::new())).is_none());
    }

    #[test]
    fn incomparable_conditions_are_not_baselines() {
        let mut other_scale = sample(8, 2, Vec::new());
        other_scale.scale = 0.5;
        let history = vec![other_scale, sample(4, 2, Vec::new())];
        assert!(find_baseline(&history, &sample(8, 2, Vec::new())).is_none());
    }

    #[test]
    fn store_hit_ratio_is_guarded_against_zero_lookups() {
        let r = StoreResult::new(16, 10.0, 1.0, 0, 0);
        assert_eq!(r.hit_ratio, 0.0);
        let r = StoreResult::new(16, 10.0, 2.0, 15, 1);
        assert!((r.speedup - 5.0).abs() < 1e-12);
        assert!((r.hit_ratio - 15.0 / 16.0).abs() < 1e-12);
    }
}

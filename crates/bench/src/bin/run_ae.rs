//! Reproduces the paper's artifact-evaluation workflow (Appendix A):
//! for every combination of backward-kernel implementation (org /
//! ARC-SW-S / ARC-SW-B / CCCL), 3DGS workload, and balancing threshold,
//! report the model-quality metrics (Train/Test PSNR↑ and L1↓) and the
//! end-to-end training time, writing `experiments/ae_result.csv` with
//! the same columns as the artifact's `ae_result.csv` (§A.6).
//!
//! Faithfulness notes: training runs on the actual differentiable
//! renderer (multi-view 3D Gaussian reconstruction with a held-out test
//! view); the rewrites provably preserve gradient values (see the
//! property tests), so — exactly as the artifact expects — "PSNR and L1
//! values are similar across all experiments on the same dataset".
//! End-to-end time is `iterations × simulated per-iteration time` on
//! the 4090 model.
//!
//! ```text
//! cargo run --release -p arc-bench --bin run_ae [--jobs N] [--telemetry]
//!     [--chrome-trace <out.json>] [--store DIR] [--daemon SOCK]
//!     [--passes SPEC] [iters]
//! ```
//!
//! `--store DIR` (or `ARC_STORE`) routes kernel simulations through the
//! persistent result store; `--daemon SOCK` sends them to a running
//! `simserved`. Training always runs locally — only the simulated
//! kernels are served — and output bytes are identical either way.
//!
//! `--passes SPEC` (or `ARC_PASSES`) runs the trace-IR optimizer pass
//! pipeline on every simulated kernel before the technique rewrite; it
//! applies identically on the engine, store, and daemon backends.
//!
//! `--telemetry` samples each dataset's baseline gradient kernel with
//! the observability layer and writes the per-dataset summaries to
//! `experiments/ae_telemetry.json`. `--chrome-trace <out.json>` also
//! dumps the first dataset's run as a `chrome://tracing` timeline
//! (implies `--telemetry`).
//!
//! Each dataset (training run + technique grid) is independent, so the
//! six datasets are fanned across `--jobs N` worker threads (default:
//! the `ARC_JOBS` environment variable, then the core count). Rows are
//! emitted in dataset order regardless of job count.

use std::fmt::Write as _;
use std::fs;
use std::sync::Arc;

use arc_core::passes::PassPipeline;
use arc_core::technique::TraceTransform;
use arc_core::BalanceThreshold;
use arc_workloads::Technique;
use diffrender::gaussian::{backward_scene, render_scene, NoopRecorder};
use diffrender::image::{l1, psnr, Image};
use diffrender::loss::l1_loss;
use diffrender::math::Vec3;
use diffrender::projection::{project, Camera, Gaussian3DModel};
use diffrender::tracegen::{gaussian_forward_trace, loss_trace, splat_gradcomp_trace, TraceCosts};
use diffrender::train::{train_3d, LossKind, TrainConfig};
use gpu_sim::{GpuConfig, KernelReport, KernelTelemetry, TelemetryConfig, TelemetrySummary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use sim_service::{
    run_cell_with_digest, trace_digest, DaemonClient, Digest, EngineOpts, ResultStore, SimRequest,
    WireCell,
};
use warp_trace::KernelTrace;

const SIZE: usize = 64;

/// One `experiments/ae_telemetry.json` entry: a dataset's baseline
/// gradcomp kernel observed through the telemetry layer.
#[derive(Serialize)]
struct AeTelemetry {
    dataset: String,
    summary: TelemetrySummary,
}

/// Telemetry carried back from a dataset worker: the JSON row plus an
/// optional Chrome-trace timeline when the user asked for one.
struct DatasetTelemetry {
    row: AeTelemetry,
    chrome: Option<String>,
}

struct AeDataset {
    id: &'static str,
    gaussians: usize,
    seed: u64,
}

const DATASETS: [AeDataset; 6] = [
    AeDataset {
        id: "NeRF-Synthetic Ship",
        gaussians: 140,
        seed: 901,
    },
    AeDataset {
        id: "NeRF-Synthetic Lego",
        gaussians: 120,
        seed: 902,
    },
    AeDataset {
        id: "DB-COLMAP Playroom",
        gaussians: 260,
        seed: 903,
    },
    AeDataset {
        id: "DB-COLMAP DrJohnson",
        gaussians: 300,
        seed: 904,
    },
    AeDataset {
        id: "Tanks&Temples Truck",
        gaussians: 180,
        seed: 905,
    },
    AeDataset {
        id: "Tanks&Temples Train",
        gaussians: 200,
        seed: 906,
    },
];

/// How this binary runs simulated kernels: in-process, through the
/// persistent result store, or via a `simserved` daemon.
enum SimBackend {
    Engine,
    Store(Arc<ResultStore>),
    Daemon(DaemonClient),
}

impl SimBackend {
    /// Runs one gradcomp-style kernel cell, optionally with telemetry.
    /// `digest` is the precomputed digest of `trace` (unused by the
    /// engine and daemon paths).
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        cfg: &GpuConfig,
        technique: Technique,
        trace: &Arc<KernelTrace>,
        digest: &Digest,
        telemetry: Option<TelemetryConfig>,
        passes: &PassPipeline,
    ) -> (KernelReport, Option<KernelTelemetry>) {
        match self {
            SimBackend::Engine => {
                let piped = passes.apply(trace);
                match telemetry {
                    Some(tcfg) => {
                        let (r, t) =
                            arc_workloads::run_gradcomp_telemetry(cfg, technique, &piped, tcfg)
                                .expect("kernel drains");
                        (r, Some(t))
                    }
                    None => (
                        arc_workloads::run_gradcomp(cfg, technique, &piped).expect("kernel drains"),
                        None,
                    ),
                }
            }
            SimBackend::Store(store) => {
                let req = SimRequest {
                    config: cfg.clone(),
                    technique,
                    trace: Arc::clone(trace),
                    rewrite: true,
                    telemetry,
                    want_chrome: false,
                    passes: passes.clone(),
                    stage: None,
                };
                let r = run_cell_with_digest(Some(store), &req, &EngineOpts::default(), digest)
                    .expect("kernel drains");
                (r.report, r.telemetry)
            }
            SimBackend::Daemon(client) => {
                let r = client
                    .sim(WireCell {
                        config: cfg.clone(),
                        technique,
                        trace: (**trace).clone(),
                        rewrite: true,
                        telemetry,
                        want_chrome: false,
                        passes: passes.clone(),
                        stage: None,
                    })
                    .expect("daemon sim must succeed");
                (r.report, r.telemetry)
            }
        }
    }
}

fn orbit_cameras(n: usize) -> Vec<Camera> {
    (0..n)
        .map(|k| {
            let angle = k as f32 * std::f32::consts::TAU / n as f32;
            let pos = Vec3::new(4.0 * angle.sin(), 0.8, -4.0 * angle.cos());
            Camera::look_at(
                pos,
                Vec3::default(),
                Vec3::new(0.0, 1.0, 0.0),
                0.9,
                SIZE,
                SIZE,
            )
        })
        .collect()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = gpu_sim::default_jobs();
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        args.remove(pos);
        jobs = args
            .get(pos)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--jobs requires a positive integer");
                std::process::exit(2);
            });
        args.remove(pos);
    }
    let mut telemetry = false;
    if let Some(pos) = args.iter().position(|a| a == "--telemetry") {
        args.remove(pos);
        telemetry = true;
    }
    let mut chrome_trace = None;
    if let Some(pos) = args.iter().position(|a| a == "--chrome-trace") {
        args.remove(pos);
        chrome_trace = Some(args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--chrome-trace requires an output path");
            std::process::exit(2);
        }));
        args.remove(pos);
        telemetry = true;
    }
    let mut backend = SimBackend::Engine;
    if let Some(pos) = args.iter().position(|a| a == "--store") {
        args.remove(pos);
        let dir = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--store requires a directory");
            std::process::exit(2);
        });
        args.remove(pos);
        let store = ResultStore::open(&dir).unwrap_or_else(|e| {
            eprintln!("cannot open result store {dir}: {e}");
            std::process::exit(1);
        });
        backend = SimBackend::Store(Arc::new(store));
    }
    if let Some(pos) = args.iter().position(|a| a == "--daemon") {
        args.remove(pos);
        let sock = args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--daemon requires a socket path");
            std::process::exit(2);
        });
        args.remove(pos);
        let client = DaemonClient::connect(&sock).unwrap_or_else(|e| {
            eprintln!("cannot reach simserved at {sock}: {e}");
            std::process::exit(1);
        });
        if let Err(e) = client.ping() {
            eprintln!("cannot reach simserved at {sock}: {e}");
            std::process::exit(1);
        }
        backend = SimBackend::Daemon(client);
    }
    let mut passes_spec = None;
    if let Some(pos) = args.iter().position(|a| a == "--passes") {
        args.remove(pos);
        passes_spec = Some(args.get(pos).cloned().unwrap_or_else(|| {
            eprintln!("--passes requires a pass list (`all`, `none`, or comma-separated names)");
            std::process::exit(2);
        }));
        args.remove(pos);
    }
    let passes = match passes_spec {
        Some(spec) => PassPipeline::parse(&spec).unwrap_or_else(|e| {
            eprintln!("--passes: {e}");
            std::process::exit(2);
        }),
        None => PassPipeline::from_env().unwrap_or_else(|e| {
            eprintln!("ARC_PASSES: {e}");
            std::process::exit(2);
        }),
    };
    if matches!(backend, SimBackend::Engine) {
        if let Ok(dir) = std::env::var("ARC_STORE") {
            if !dir.is_empty() {
                let store = ResultStore::open(&dir).unwrap_or_else(|e| {
                    eprintln!("ARC_STORE={dir}: cannot open result store: {e}");
                    std::process::exit(1);
                });
                backend = SimBackend::Store(Arc::new(store));
            }
        }
    }
    let iters: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(120);
    let cfg = GpuConfig::rtx4090_sim();
    let bg = Vec3::splat(0.02);

    let mut csv = String::from(
        "BW Implementation,Balance Threshold,Dataset,Train PSNR,Train L1,Test PSNR,Test L1,End-to-end Training Time (ms)\n",
    );
    println!(
        "{:<10} {:>4} {:<22} {:>10} {:>9} {:>10} {:>9} {:>12}",
        "impl", "thr", "dataset", "trainPSNR", "trainL1", "testPSNR", "testL1", "e2e (ms)"
    );

    // Each dataset's training run and technique grid is independent of
    // the others; fan them across the job pool and splice the finished
    // (table, csv) blocks back together in dataset order.
    let want_chrome = chrome_trace.is_some();
    let backend = &backend;
    let passes = &passes;
    let blocks = gpu_sim::par_map(jobs, DATASETS.iter().enumerate().collect(), |(idx, ds)| {
        dataset_rows(
            ds,
            &cfg,
            bg,
            iters,
            telemetry,
            want_chrome && idx == 0,
            backend,
            passes,
        )
    });
    let mut tel_rows = Vec::new();
    let mut chrome_json = None;
    for (table, csv_block, tel) in blocks {
        print!("{table}");
        csv.push_str(&csv_block);
        if let Some(tel) = tel {
            if tel.chrome.is_some() {
                chrome_json = tel.chrome;
            }
            tel_rows.push(tel.row);
        }
    }

    fs::create_dir_all("experiments").ok();
    match fs::write("experiments/ae_result.csv", &csv) {
        Ok(()) => println!("\nwrote experiments/ae_result.csv"),
        Err(e) => eprintln!("could not write ae_result.csv: {e}"),
    }
    if telemetry {
        let path = "experiments/ae_telemetry.json";
        match fs::write(
            path,
            serde_json::to_string_pretty(&tel_rows).expect("serializable"),
        ) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if let (Some(path), Some(json)) = (chrome_trace, chrome_json) {
        match fs::write(&path, json) {
            Ok(()) => println!("wrote chrome trace ({}) to {path}", DATASETS[0].id),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// Trains one dataset, simulates the artifact's technique grid, and
/// renders its table and CSV rows — plus, when asked, the baseline
/// gradcomp kernel's telemetry (and Chrome-trace timeline).
#[allow(clippy::too_many_arguments)]
fn dataset_rows(
    ds: &AeDataset,
    cfg: &GpuConfig,
    bg: Vec3,
    iters: usize,
    telemetry: bool,
    chrome: bool,
    backend: &SimBackend,
    passes: &PassPipeline,
) -> (String, String, Option<DatasetTelemetry>) {
    let mut table = String::new();
    let mut csv = String::new();
    let mut rng = StdRng::seed_from_u64(ds.seed);
    let cams = orbit_cameras(6);
    let (train_views, test_cam) = (&cams[..5], &cams[5]);
    let gt = Gaussian3DModel::random(ds.gaussians, 0.9, &mut rng);
    let views: Vec<(Camera, Image)> = train_views
        .iter()
        .map(|c| {
            (
                *c,
                render_scene(&project(&gt, c).splats, SIZE, SIZE, bg).image,
            )
        })
        .collect();
    let test_target = render_scene(&project(&gt, test_cam).splats, SIZE, SIZE, bg).image;

    // Train once on the real pipeline: the backward-kernel variants
    // compute identical gradients (verified by property tests), so
    // the artifact's correctness metrics are shared.
    let mut model = Gaussian3DModel::random(ds.gaussians, 0.9, &mut rng);
    let stats = train_3d(
        &mut model,
        &views,
        &TrainConfig {
            iters,
            lr: 0.02,
            loss: LossKind::L2,
            background: bg,
        },
    );
    let train_l1 = {
        let (cam, target) = &views[0];
        let img = render_scene(&project(&model, cam).splats, cam.width, cam.height, bg).image;
        l1(&img, target)
    };
    let test_img = render_scene(&project(&model, test_cam).splats, SIZE, SIZE, bg).image;
    let (test_psnr, test_l1) = (psnr(&test_img, &test_target), l1(&test_img, &test_target));

    // Per-iteration kernel traces from the trained model's view-0
    // backward pass.
    let (cam0, target0) = &views[0];
    let proj = project(&model, cam0);
    let out = render_scene(&proj.splats, SIZE, SIZE, bg);
    let (_, pixel_grads) = l1_loss(&out.image, target0);
    let _ = backward_scene(&proj.splats, &out, &pixel_grads, &mut NoopRecorder);
    let (gradcomp, _) =
        splat_gradcomp_trace(&proj.splats, &out, &pixel_grads, TraceCosts::default());
    let gradcomp = Arc::new(gradcomp);
    let forward = Arc::new(gaussian_forward_trace(&out, TraceCosts::default()));
    let loss_k = Arc::new(loss_trace(SIZE, SIZE));
    // One digest per trace; the store-backed path reuses it across the
    // whole technique grid.
    let gradcomp_digest = trace_digest(&gradcomp);
    let forward_digest = trace_digest(&forward);
    let loss_digest = trace_digest(&loss_k);

    let fixed_ms: f64 = [(&forward, &forward_digest), (&loss_k, &loss_digest)]
        .iter()
        .map(|(t, d)| {
            backend
                .run(cfg, Technique::Baseline, t, d, None, passes)
                .0
                .time_ms
        })
        .sum();

    // The artifact's grid: 4 implementations × thresholds.
    for (impl_name, techniques) in variants() {
        for (thr_label, technique) in techniques {
            let grad_ms = backend
                .run(cfg, technique, &gradcomp, &gradcomp_digest, None, passes)
                .0
                .time_ms;
            let e2e_ms = (fixed_ms + grad_ms) * iters as f64;
            let _ = writeln!(
                table,
                "{:<10} {:>4} {:<22} {:>10.2} {:>9.4} {:>10.2} {:>9.4} {:>12.2}",
                impl_name, thr_label, ds.id, stats.final_psnr, train_l1, test_psnr, test_l1, e2e_ms
            );
            let _ = writeln!(
                csv,
                "{impl_name},{thr_label},{},{:.3},{:.5},{:.3},{:.5},{:.3}",
                ds.id, stats.final_psnr, train_l1, test_psnr, test_l1, e2e_ms
            );
        }
    }
    let tel = telemetry.then(|| {
        let (_, tel) = backend.run(
            cfg,
            Technique::Baseline,
            &gradcomp,
            &gradcomp_digest,
            Some(TelemetryConfig::default()),
            passes,
        );
        let tel = tel.expect("telemetry was requested");
        DatasetTelemetry {
            chrome: chrome.then(|| tel.chrome_trace()),
            row: AeTelemetry {
                dataset: ds.id.to_string(),
                summary: tel.summary(),
            },
        }
    });
    (table, csv, tel)
}

type Variant = (&'static str, Vec<(String, Technique)>);

/// The artifact's four backward implementations; `org` and `CCCL`
/// ignore the threshold (§A.6).
fn variants() -> Vec<Variant> {
    let sweep = BalanceThreshold::paper_sweep();
    vec![
        ("org", vec![("-".to_string(), Technique::Baseline)]),
        (
            "ARC-SW-S",
            sweep
                .iter()
                .map(|&t| (t.value().to_string(), Technique::SwS(t)))
                .collect(),
        ),
        (
            "ARC-SW-B",
            sweep
                .iter()
                .map(|&t| (t.value().to_string(), Technique::SwB(t)))
                .collect(),
        ),
        ("CCCL", vec![("-".to_string(), Technique::Cccl)]),
    ]
}

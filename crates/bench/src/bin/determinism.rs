//! Determinism probe for the CI matrix.
//!
//! Simulates a fixed grid of small cells — with telemetry off and on —
//! and prints one canonical line per cell. The output depends only on
//! the simulated machine, never on host parallelism, so CI runs this
//! binary under every `ARC_JOBS` × `ARC_SIM_WORKERS` combination and
//! `cmp`s the outputs byte-for-byte (see `scripts/ci.sh`). The
//! telemetry-on run is also asserted, in-process, to produce the exact
//! report of the telemetry-off run.
//!
//! ```text
//! ARC_JOBS=8 ARC_SIM_WORKERS=2 cargo run --release -p arc-bench --bin determinism
//! ```
//!
//! `ARC_PASSES` selects the trace-IR optimizer pipeline applied before
//! each cell's technique rewrite; CI also compares runs with
//! `ARC_PASSES=all` among themselves (the pipeline is deterministic)
//! and pins `ARC_PASSES` unset against the plain baseline output.

use arc_core::passes::PassPipeline;
use arc_core::technique::TraceTransform;
use arc_core::BalanceThreshold;
use arc_workloads::{run_gradcomp, run_gradcomp_telemetry, Technique};
use gpu_sim::{GpuConfig, TelemetryConfig};

const SCALE: f64 = 0.2;
const INTERVAL: u64 = 32;

/// FNV-1a over the Chrome-trace bytes: a stable fingerprint that keeps
/// the probe's output small while still covering the full timeline.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn main() {
    let thr = BalanceThreshold::new(16).expect("0..=32");
    let techniques = [
        Technique::Baseline,
        Technique::ArcHw,
        Technique::SwB(thr),
        Technique::Phi,
    ];
    let mut cells = Vec::new();
    for id in ["3D-LE", "PS-SS"] {
        for t in techniques {
            cells.push((id, t));
        }
    }
    println!(
        "determinism probe: {} cells at scale {SCALE}, telemetry interval {INTERVAL}",
        cells.len()
    );

    let cfg = GpuConfig::tiny();
    let passes = PassPipeline::from_env().unwrap_or_else(|e| {
        eprintln!("ARC_PASSES: {e}");
        std::process::exit(2);
    });
    let passes = &passes;
    let rows = gpu_sim::par_map(gpu_sim::default_jobs(), cells, |(id, technique)| {
        let traces = arc_workloads::spec(id)
            .expect("known workload")
            .scaled(SCALE)
            .build();
        let piped = passes.apply(traces.gradcomp());
        let plain = run_gradcomp(&cfg, technique, &piped).expect("kernel drains");
        let (report, tel) =
            run_gradcomp_telemetry(&cfg, technique, &piped, TelemetryConfig::every(INTERVAL))
                .expect("kernel drains");
        assert_eq!(
            plain,
            report,
            "telemetry changed the {id}/{} report",
            technique.label()
        );
        let s = tel.summary();
        format!(
            "{id} {:<8} cycles={} instr={} lsu_full={} icnt={} rop_peak={}@{} chrome_fnv={:016x}",
            technique.label(),
            report.cycles,
            report.counters.instructions_issued,
            report.stalls.lsu_full,
            report.counters.icnt_flits,
            s.rop_queue_peak,
            s.rop_queue_peak_cycle,
            fnv1a(tel.chrome_trace().as_bytes())
        )
    });
    for row in rows {
        println!("{row}");
    }
}

//! Trace tooling: export Table-2 workload kernels as JSON trace files,
//! inspect their statistics, apply ARC-SW/CCCL rewrites offline, and
//! simulate trace files on any GPU model.
//!
//! ```text
//! trace_tool export  <workload-id> <out.json> [scale] [stage]
//! trace_tool stages  <workload-id> [scale]
//! trace_tool stats   <trace.json>
//! trace_tool rewrite <trace.json> <out.json> [technique] [threshold]
//! trace_tool sim     <trace.json> [technique] [4090|3060]
//!                    [--telemetry] [--chrome-trace <out.json>]
//!                    [--store DIR] [--daemon SOCK] [--passes SPEC]
//! ```
//!
//! `export` writes one kernel stage of the workload's frame — by default
//! the rewritable (gradient/histogram) stage the techniques target; pass
//! a stage name (see `stages`) to export any other kernel. `stages`
//! prints the frame's per-stage breakdown: name, role, simulated
//! baseline cycles, and atomic request count.
//!
//! Technique names are resolved through the canonical registry
//! (`arc_core::technique`) — any registered label or CLI name is
//! accepted (`sw-b`, `SW-B-16`, `arc-hw`, …), and a bad name lists
//! every valid spelling. `rewrite` accepts the trace-rewriting
//! techniques; `sim` accepts them all.
//!
//! `sim --telemetry` enables the observability layer and prints the
//! sampled summary (queue-occupancy peaks, interconnect throughput,
//! warp spans). `--chrome-trace <out.json>` additionally writes the
//! run's `chrome://tracing` / Perfetto timeline (implies `--telemetry`).
//!
//! `sim --store DIR` (or `ARC_STORE`) serves repeated runs from the
//! persistent result store; `sim --daemon SOCK` asks a running
//! `simserved` instead of simulating in-process. Output is
//! byte-identical on every path.
//!
//! `sim --passes SPEC` (or `ARC_PASSES`) runs the trace-IR optimizer
//! pass pipeline (`arc_core::passes`) before the technique rewrite —
//! `all`, `none`, or a comma list like `dead-lane,coalesce`. The
//! pipeline applies identically on the engine, store, and daemon paths,
//! and a non-empty pipeline keys its own store entries.

use std::fs;
use std::process::ExitCode;
use std::sync::Arc;

use arc_core::passes::PassPipeline;
use arc_core::technique::TraceTransform;
use arc_core::{BalanceThreshold, Technique, TECHNIQUES};
use gpu_sim::{GpuConfig, Simulator, TechniquePath, TelemetryConfig};
use sim_service::{run_cell, DaemonClient, EngineOpts, ResultStore, SimRequest, WireCell};
use warp_trace::{KernelTrace, TraceStats};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("export") => export(&args[1..]),
        Some("stages") => stages(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("rewrite") => rewrite(&args[1..]),
        Some("sim") => sim(&args[1..]),
        _ => Err("usage: trace_tool <export|stages|stats|rewrite|sim> ...".to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<KernelTrace, String> {
    let data = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&data).map_err(|e| format!("parsing {path}: {e}"))
}

fn save(trace: &KernelTrace, path: &str) -> Result<(), String> {
    let data = serde_json::to_string(trace).map_err(|e| e.to_string())?;
    fs::write(path, data).map_err(|e| format!("writing {path}: {e}"))
}

fn export(args: &[String]) -> Result<(), String> {
    let [id, out] = args
        .first()
        .zip(args.get(1))
        .map(|(a, b)| [a, b])
        .ok_or("usage: trace_tool export <workload-id> <out.json> [scale] [stage]")?;
    let scale: f64 = args.get(2).map_or(Ok(1.0), |s| {
        s.parse().map_err(|_| "scale must be a number".to_string())
    })?;
    let spec = arc_workloads::spec(id).ok_or_else(|| format!("unknown workload `{id}`"))?;
    let frame = spec.scaled(scale).build();
    let stage = match args.get(3) {
        Some(name) => frame.stage(name).ok_or_else(|| {
            let names: Vec<&str> = frame.stages().iter().map(|s| s.name()).collect();
            format!("no stage `{name}` in {id}; stages: {}", names.join(", "))
        })?,
        None => frame.rewritable(),
    };
    save(stage.trace(), out)?;
    println!(
        "wrote {} (stage `{}`, {} warps, {} atomic requests)",
        out,
        stage.name(),
        stage.trace().warps().len(),
        stage.trace().total_atomic_requests()
    );
    Ok(())
}

fn stages(args: &[String]) -> Result<(), String> {
    let id = args
        .first()
        .ok_or("usage: trace_tool stages <workload-id> [scale]")?;
    let scale: f64 = args.get(1).map_or(Ok(1.0), |s| {
        s.parse().map_err(|_| "scale must be a number".to_string())
    })?;
    let spec = arc_workloads::spec(id).ok_or_else(|| format!("unknown workload `{id}`"))?;
    let frame = spec.scaled(scale).build();
    let sim = Simulator::new(GpuConfig::rtx4090_sim(), gpu_sim::AtomicPath::Baseline)
        .map_err(|e| e.to_string())?;
    println!("frame `{}` ({} stages):", frame.id(), frame.stages().len());
    for stage in frame.stages() {
        let r = sim.run(stage.trace()).map_err(|e| e.to_string())?;
        println!(
            "  {:16} {:10} cycles={:8} atomics={:8} warps={}",
            stage.name(),
            format!("{:?}", stage.role()).to_lowercase(),
            r.cycles,
            stage.trace().total_atomic_requests(),
            stage.trace().warps().len()
        );
    }
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: trace_tool stats <trace.json>")?;
    let trace = load(path)?;
    let s = TraceStats::compute(&trace);
    println!("kernel `{}`:", trace.name());
    println!("  warps               {}", s.warps);
    println!("  compute slots       {}", s.compute_slots);
    println!("  load sectors        {}", s.load_sectors);
    println!("  atomic instructions {}", s.atomic_instrs);
    println!("  atomic requests     {}", s.atomic_requests);
    println!("  unique addresses    {}", s.unique_addresses);
    println!(
        "  same-address        {:.2}% ({:.2}% among >=2-lane)",
        100.0 * s.same_address_fraction(),
        100.0 * s.same_address_multi_fraction()
    );
    println!("  mean active lanes   {:.2}", s.mean_active_lanes());
    Ok(())
}

fn rewrite(args: &[String]) -> Result<(), String> {
    let (input, out) = args
        .first()
        .zip(args.get(1))
        .ok_or("usage: trace_tool rewrite <in.json> <out.json> [technique] [threshold]")?;
    let algo = args.get(2).map_or("sw-b", String::as_str);
    let thr: u8 = args.get(3).map_or(Ok(8), |s| {
        s.parse()
            .map_err(|_| "threshold must be 0..=32".to_string())
    })?;
    let threshold = BalanceThreshold::new(thr).map_err(|e| e.to_string())?;
    let technique = Technique::from_cli(algo, Some(threshold)).map_err(|e| e.to_string())?;
    if !technique.rewrites_trace() {
        let rewriters: Vec<&str> = TECHNIQUES
            .iter()
            .filter(|d| d.rewrites_trace)
            .map(|d| d.cli_name)
            .collect();
        return Err(format!(
            "technique `{algo}` does not rewrite traces; rewriting techniques: {}",
            rewriters.join(", ")
        ));
    }
    let trace = load(input)?;
    let before = trace.total_atomic_requests();
    let rewritten = technique.prepare(&trace);
    save(&rewritten, out)?;
    println!(
        "{algo} rewrite: {} -> {} atomic requests ({:.1}% removed)",
        before,
        rewritten.total_atomic_requests(),
        100.0 * (1.0 - rewritten.total_atomic_requests() as f64 / before.max(1) as f64)
    );
    Ok(())
}

fn sim(args: &[String]) -> Result<(), String> {
    let mut args: Vec<String> = args.to_vec();
    let mut telemetry = false;
    if let Some(pos) = args.iter().position(|a| a == "--telemetry") {
        args.remove(pos);
        telemetry = true;
    }
    let mut chrome_trace = None;
    if let Some(pos) = args.iter().position(|a| a == "--chrome-trace") {
        args.remove(pos);
        let out = args
            .get(pos)
            .cloned()
            .ok_or("--chrome-trace requires an output path")?;
        args.remove(pos);
        chrome_trace = Some(out);
        telemetry = true;
    }
    let mut store_dir = None;
    if let Some(pos) = args.iter().position(|a| a == "--store") {
        args.remove(pos);
        let dir = args
            .get(pos)
            .cloned()
            .ok_or("--store requires a directory")?;
        args.remove(pos);
        store_dir = Some(dir);
    }
    let mut daemon_sock = None;
    if let Some(pos) = args.iter().position(|a| a == "--daemon") {
        args.remove(pos);
        let sock = args
            .get(pos)
            .cloned()
            .ok_or("--daemon requires a socket path")?;
        args.remove(pos);
        daemon_sock = Some(sock);
    }
    let mut passes_spec = None;
    if let Some(pos) = args.iter().position(|a| a == "--passes") {
        args.remove(pos);
        let spec = args
            .get(pos)
            .cloned()
            .ok_or("--passes requires a pass list (`all`, `none`, or comma-separated names)")?;
        args.remove(pos);
        passes_spec = Some(spec);
    }
    // The environment opt-ins mirror the harness.
    let store_dir = store_dir.or_else(|| std::env::var("ARC_STORE").ok().filter(|s| !s.is_empty()));
    let passes = match passes_spec {
        Some(spec) => PassPipeline::parse(&spec).map_err(|e| e.to_string())?,
        None => PassPipeline::from_env().map_err(|e| e.to_string())?,
    };
    let path = args.first().ok_or(
        "usage: trace_tool sim <trace.json> [technique] [gpu] [--telemetry] \
         [--chrome-trace <out.json>] [--store DIR] [--daemon SOCK] [--passes SPEC]",
    )?;
    let technique: Technique = args
        .get(1)
        .map_or("baseline", String::as_str)
        .parse()
        .map_err(|e: arc_core::UnknownTechniqueError| e.to_string())?;
    let cfg = match args.get(2).map_or("4090", String::as_str) {
        "4090" => GpuConfig::rtx4090_sim(),
        "3060" => GpuConfig::rtx3060_sim(),
        other => return Err(format!("unknown GPU `{other}` (4090|3060)")),
    };
    let trace = Arc::new(load(path)?);
    let tcfg = telemetry.then(TelemetryConfig::default);
    let (report, tel) = if let Some(sock) = daemon_sock {
        let client = DaemonClient::connect(&sock).map_err(|e| format!("connecting {sock}: {e}"))?;
        let r = client
            .sim(WireCell {
                config: cfg.clone(),
                technique,
                trace: (*trace).clone(),
                rewrite: true,
                telemetry: tcfg,
                want_chrome: false,
                passes: passes.clone(),
                stage: None,
            })
            .map_err(|e| e.to_string())?;
        (r.report, r.telemetry)
    } else if let Some(dir) = store_dir {
        let store = ResultStore::open(&dir).map_err(|e| format!("opening store {dir}: {e}"))?;
        let req = SimRequest {
            config: cfg.clone(),
            technique,
            trace: Arc::clone(&trace),
            rewrite: true,
            telemetry: tcfg,
            want_chrome: false,
            passes: passes.clone(),
            stage: None,
        };
        let r = run_cell(Some(&store), &req, &EngineOpts::default()).map_err(|e| e.to_string())?;
        (r.report, r.telemetry)
    } else {
        let piped = passes.apply(&trace);
        let prepared = technique.prepare(&piped);
        let mut sim = Simulator::new(cfg.clone(), technique.path()).map_err(|e| e.to_string())?;
        if telemetry {
            sim = sim.with_telemetry(TelemetryConfig::default());
        }
        sim.run_with_telemetry(&prepared)
            .map_err(|e| e.to_string())?
    };
    println!(
        "{} on {}: {} cycles ({:.3} ms), rop util {:.2}, redunit util {:.2}, \
         stalls/instr {:.2}",
        technique.label(),
        cfg.name,
        report.cycles,
        report.time_ms,
        report.rop_utilization,
        report.redunit_utilization,
        report.stalls_per_instruction()
    );
    if let Some(tel) = tel {
        let s = tel.summary();
        println!(
            "telemetry: {} samples every {} cycles, rop.queue peak {} @ cycle {}, \
             icnt {:.2} flits/cycle, {} warp spans ({} dropped)",
            s.samples,
            s.sample_interval,
            s.rop_queue_peak,
            s.rop_queue_peak_cycle,
            s.icnt_flits_per_cycle,
            s.warp_spans,
            s.dropped_spans
        );
        for m in &s.metrics {
            println!(
                "  {:<22} total {:>14.1}  peak {:>10.1} @ cycle {:<10} mean {:>10.2}",
                m.name, m.total, m.peak, m.peak_cycle, m.mean
            );
        }
        if let Some(out) = chrome_trace {
            fs::write(&out, tel.chrome_trace()).map_err(|e| format!("writing {out}: {e}"))?;
            println!("chrome trace written to {out}");
        }
    }
    Ok(())
}

//! Functional execution of trace atomics.
//!
//! The simulator models *timing*; this module models *values*. Running a
//! kernel trace through [`GlobalMemory`] yields the final contents of every
//! atomically-updated word, which the test suites use to prove that the
//! ARC-SW / CCCL rewrite passes and the ARC-HW reduction path preserve the
//! reduction semantics (up to floating-point reassociation, paper §5.2).

use std::collections::HashMap;

use crate::{Instr, KernelTrace};

/// A sparse model of global memory holding the f32 words targeted by
/// atomic adds. Accumulation is performed in f64 so the reference result
/// is insensitive to summation order; comparisons against any f32
/// reduction order then use a tolerance.
///
/// # Example
///
/// ```
/// use warp_trace::{AtomicInstr, GlobalMemory, KernelKind, KernelTrace, WarpTraceBuilder};
///
/// let mut w = WarpTraceBuilder::new();
/// w.atomic(AtomicInstr::same_address(0x8, &[0.25; 32]));
/// let t = KernelTrace::new("k", KernelKind::GradCompute, vec![w.finish()]);
/// let mut mem = GlobalMemory::new();
/// mem.apply_trace(&t);
/// assert_eq!(mem.read(0x8), 8.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GlobalMemory {
    words: HashMap<u64, f64>,
}

impl GlobalMemory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        GlobalMemory::default()
    }

    /// Atomically adds `value` to the word at `addr`.
    pub fn atomic_add(&mut self, addr: u64, value: f32) {
        *self.words.entry(addr).or_insert(0.0) += f64::from(value);
    }

    /// Applies every atomic in the trace (both `Atomic` and `AtomRed`
    /// instructions; loads/stores/compute have no functional effect here).
    pub fn apply_trace(&mut self, trace: &KernelTrace) {
        for warp in trace.warps() {
            for instr in &warp.instrs {
                if let Instr::Atomic(bundle) | Instr::AtomRed(bundle) = instr {
                    for param in &bundle.params {
                        for op in param.ops() {
                            self.atomic_add(op.addr, op.value);
                        }
                    }
                }
            }
        }
    }

    /// Reads the accumulated value at `addr` (0.0 if never written),
    /// rounded to f32 as a real GPU word would be.
    pub fn read(&self, addr: u64) -> f32 {
        self.words.get(&addr).copied().unwrap_or(0.0) as f32
    }

    /// Reads the full-precision accumulator at `addr`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        self.words.get(&addr).copied().unwrap_or(0.0)
    }

    /// Number of distinct words ever touched.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no word was ever touched.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterator over `(address, accumulated value)` pairs in arbitrary
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }

    /// Maximum absolute difference against another memory over the union
    /// of touched addresses. Used to assert rewrite equivalence within a
    /// floating-point tolerance.
    pub fn max_abs_diff(&self, other: &GlobalMemory) -> f64 {
        let mut max = 0.0f64;
        for (&addr, &v) in &self.words {
            max = max.max((v - other.read_f64(addr)).abs());
        }
        for (&addr, &v) in &other.words {
            max = max.max((v - self.read_f64(addr)).abs());
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomicInstr, KernelKind, LaneOp, WarpTraceBuilder};

    #[test]
    fn accumulates_across_warps() {
        let mk_warp = || {
            let mut b = WarpTraceBuilder::new();
            b.atomic(AtomicInstr::same_address(0x0, &[1.0; 32]));
            b.finish()
        };
        let t = KernelTrace::new("k", KernelKind::GradCompute, vec![mk_warp(), mk_warp()]);
        let mut mem = GlobalMemory::new();
        mem.apply_trace(&t);
        assert_eq!(mem.read(0x0), 64.0);
        assert_eq!(mem.len(), 1);
    }

    #[test]
    fn untouched_addresses_read_zero() {
        let mem = GlobalMemory::new();
        assert_eq!(mem.read(0xdead), 0.0);
        assert!(mem.is_empty());
    }

    #[test]
    fn max_abs_diff_covers_both_sides() {
        let mut a = GlobalMemory::new();
        a.atomic_add(0, 3.0);
        let mut b = GlobalMemory::new();
        b.atomic_add(8, 2.0);
        assert_eq!(a.max_abs_diff(&b), 3.0);
        assert_eq!(b.max_abs_diff(&a), 3.0);
    }

    #[test]
    fn distinct_addresses_stay_separate() {
        let mut w = WarpTraceBuilder::new();
        w.atomic(AtomicInstr::new(vec![
            LaneOp {
                lane: 0,
                addr: 0,
                value: 1.5,
            },
            LaneOp {
                lane: 1,
                addr: 8,
                value: -2.5,
            },
        ]));
        let t = KernelTrace::new("k", KernelKind::GradCompute, vec![w.finish()]);
        let mut mem = GlobalMemory::new();
        mem.apply_trace(&t);
        assert_eq!(mem.read(0), 1.5);
        assert_eq!(mem.read(8), -2.5);
    }
}

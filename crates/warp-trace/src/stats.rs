//! Trace statistics used for the paper's workload characterization
//! (§3.1 Observations 1 and 2, Fig. 6/7, §5.6).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::{Instr, KernelTrace, WARP_SIZE};

/// Histogram of the number of active lanes per atomic instruction
/// (0..=32 buckets) — the quantity plotted in paper Fig. 7.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveLaneHistogram {
    buckets: Vec<u64>,
}

impl Default for ActiveLaneHistogram {
    fn default() -> Self {
        ActiveLaneHistogram {
            buckets: vec![0; WARP_SIZE + 1],
        }
    }
}

impl ActiveLaneHistogram {
    /// An all-zero histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one atomic instruction with `active` participating lanes.
    ///
    /// # Panics
    ///
    /// Panics if `active > 32`.
    pub fn record(&mut self, active: u32) {
        self.buckets[active as usize] += 1;
    }

    /// Count for the bucket with exactly `active` lanes.
    pub fn bucket(&self, active: u32) -> u64 {
        self.buckets[active as usize]
    }

    /// All buckets, index = active-lane count.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean active lanes per sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(k, &n)| k as u64 * n)
            .sum();
        weighted as f64 / total as f64
    }

    /// Fraction of samples in the full-warp (32 active lanes) bucket.
    pub fn full_warp_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.buckets[WARP_SIZE] as f64 / total as f64
        }
    }
}

/// Aggregate statistics of a kernel trace's atomic behaviour.
///
/// `same_address_fraction` is the paper's Observation 1 metric ("over 99%
/// of warps have all their threads update the same memory location"),
/// measured per atomic instruction over instructions with at least one
/// active lane.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of warps in the kernel.
    pub warps: u64,
    /// Total warp-level atomic instructions (bundle params counted
    /// individually).
    pub atomic_instrs: u64,
    /// Total lane-level atomic requests.
    pub atomic_requests: u64,
    /// Atomic instructions whose active lanes all share one address.
    pub same_address_instrs: u64,
    /// Atomic instructions with at least one active lane.
    pub nonempty_atomic_instrs: u64,
    /// Atomic instructions with ≥2 active lanes.
    pub multi_lane_instrs: u64,
    /// Atomic instructions with ≥2 active lanes, all on one address.
    pub same_address_multi_instrs: u64,
    /// Number of distinct global addresses updated atomically.
    pub unique_addresses: u64,
    /// Total compute issue slots.
    pub compute_slots: u64,
    /// Total load sectors.
    pub load_sectors: u64,
    /// Total store sectors.
    pub store_sectors: u64,
    /// Histogram of active lanes per atomic instruction.
    pub active_lanes: ActiveLaneHistogram,
}

impl TraceStats {
    /// Computes statistics over a kernel trace.
    ///
    /// # Example
    ///
    /// ```
    /// use warp_trace::{AtomicInstr, KernelKind, KernelTrace, TraceStats, WarpTraceBuilder};
    ///
    /// let mut w = WarpTraceBuilder::new();
    /// w.atomic(AtomicInstr::same_address(0x10, &[1.0; 32]));
    /// let t = KernelTrace::new("g", KernelKind::GradCompute, vec![w.finish()]);
    /// let s = TraceStats::compute(&t);
    /// assert_eq!(s.atomic_requests, 32);
    /// assert_eq!(s.same_address_fraction(), 1.0);
    /// ```
    pub fn compute(trace: &KernelTrace) -> Self {
        let mut stats = TraceStats {
            warps: trace.warps().len() as u64,
            ..TraceStats::default()
        };
        let mut addrs: HashSet<u64> = HashSet::new();
        for warp in trace.warps() {
            for instr in &warp.instrs {
                match instr {
                    Instr::Compute { repeat, .. } => stats.compute_slots += u64::from(*repeat),
                    Instr::Load { sectors } => stats.load_sectors += u64::from(*sectors),
                    Instr::Store { sectors } => stats.store_sectors += u64::from(*sectors),
                    Instr::Atomic(bundle) | Instr::AtomRed(bundle) => {
                        for param in &bundle.params {
                            stats.atomic_instrs += 1;
                            stats.atomic_requests += u64::from(param.active_count());
                            stats.active_lanes.record(param.active_count());
                            if !param.is_empty() {
                                stats.nonempty_atomic_instrs += 1;
                                let single = param.single_address();
                                if single {
                                    stats.same_address_instrs += 1;
                                }
                                if param.active_count() >= 2 {
                                    stats.multi_lane_instrs += 1;
                                    if single {
                                        stats.same_address_multi_instrs += 1;
                                    }
                                }
                            }
                            for op in param.ops() {
                                addrs.insert(op.addr);
                            }
                        }
                    }
                }
            }
        }
        stats.unique_addresses = addrs.len() as u64;
        stats
    }

    /// Fraction of non-empty atomic instructions whose active lanes all
    /// update one address (Observation 1). Returns 0.0 when there are no
    /// atomics.
    pub fn same_address_fraction(&self) -> f64 {
        if self.nonempty_atomic_instrs == 0 {
            0.0
        } else {
            self.same_address_instrs as f64 / self.nonempty_atomic_instrs as f64
        }
    }

    /// Mean active lanes per atomic instruction (Observation 2).
    pub fn mean_active_lanes(&self) -> f64 {
        self.active_lanes.mean()
    }

    /// Same-address fraction restricted to instructions with ≥2 active
    /// lanes — the discriminating form of Observation 1 (a lone active
    /// lane is trivially "single-address"). Paper §5.6 uses this to
    /// contrast pagerank (<0.1%) against rendering (~99%). Returns 0.0
    /// when no multi-lane atomics exist.
    pub fn same_address_multi_fraction(&self) -> f64 {
        if self.multi_lane_instrs == 0 {
            0.0
        } else {
            self.same_address_multi_instrs as f64 / self.multi_lane_instrs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomicInstr, KernelKind, LaneOp, WarpTraceBuilder};

    fn lane_op(lane: u8, addr: u64, value: f32) -> LaneOp {
        LaneOp { lane, addr, value }
    }

    #[test]
    fn histogram_mean_and_buckets() {
        let mut h = ActiveLaneHistogram::new();
        h.record(32);
        h.record(32);
        h.record(0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bucket(32), 2);
        assert!((h.mean() - 64.0 / 3.0).abs() < 1e-12);
        assert!((h.full_warp_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let h = ActiveLaneHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.full_warp_fraction(), 0.0);
    }

    #[test]
    fn stats_counts_mixed_trace() {
        let mut w = WarpTraceBuilder::new();
        w.compute_fp32(10)
            .load(4)
            .atomic(AtomicInstr::same_address(0x100, &[1.0; 32]))
            .atomic(AtomicInstr::new(vec![
                lane_op(0, 0x100, 1.0),
                lane_op(1, 0x200, 1.0),
            ]))
            .store(2);
        let t = KernelTrace::new("k", KernelKind::GradCompute, vec![w.finish()]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.warps, 1);
        assert_eq!(s.compute_slots, 10);
        assert_eq!(s.load_sectors, 4);
        assert_eq!(s.store_sectors, 2);
        assert_eq!(s.atomic_instrs, 2);
        assert_eq!(s.atomic_requests, 34);
        assert_eq!(s.unique_addresses, 2);
        assert_eq!(s.same_address_instrs, 1);
        assert!((s.same_address_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_ignore_empty_atomics_for_locality() {
        let mut w = WarpTraceBuilder::new();
        w.atomic(AtomicInstr::new(vec![]));
        let t = KernelTrace::new("k", KernelKind::GradCompute, vec![w.finish()]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.atomic_instrs, 1);
        assert_eq!(s.nonempty_atomic_instrs, 0);
        assert_eq!(s.same_address_fraction(), 0.0);
    }
}
